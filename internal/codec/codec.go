// Package codec implements the compact on-disk encoding for sampled
// simulation output. The .vtp format stores four float64s per sample
// (32 bytes); but in the paper's workflow every sample *is* a grid
// point of a known grid, so its position is fully described by a flat
// grid index, and scalar values tolerate bounded quantization (the
// same observation behind the error-bounded lossy compressors the
// paper cites as related work, Di et al. 2024). The codec stores:
//
//   - the grid geometry (dims, origin, spacing),
//   - sorted sample indices, delta-encoded as uvarints,
//   - values min-max quantized to a configurable bit depth with a
//     guaranteed absolute error bound of range/(2^bits-1)/2.
//
// At 1% sampling and 16-bit values this is ~4-5 bytes per sample vs 32
// raw — a further 6-8x on top of the sampling reduction — and the
// decoder reproduces positions exactly.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
)

// magic identifies the format; the version byte follows it.
var magic = [4]byte{'F', 'V', 'S', 'C'}

const version = 1

// Options controls encoding.
type Options struct {
	// ValueBits is the quantization depth in [4, 32]; default 16.
	ValueBits int
}

func (o Options) withDefaults() (Options, error) {
	if o.ValueBits == 0 {
		o.ValueBits = 16
	}
	if o.ValueBits < 4 || o.ValueBits > 32 {
		return o, fmt.Errorf("codec: ValueBits %d outside [4, 32]", o.ValueBits)
	}
	return o, nil
}

// MaxQuantizationError returns the worst-case absolute value error the
// encoder introduces for data spanning (hi - lo) at the given depth.
func MaxQuantizationError(lo, hi float64, bits int) float64 {
	if hi <= lo {
		return 0
	}
	levels := float64(uint64(1)<<uint(bits) - 1)
	return (hi - lo) / levels / 2
}

// Encode writes the sampled indices and values of volume geometry g.
// idxs must be sorted ascending (as the samplers return them) and
// values[i] is the scalar at idxs[i].
func Encode(w io.Writer, g *grid.Volume, fieldName string, idxs []int, values []float64, opts Options) error {
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	if len(idxs) != len(values) {
		return errors.New("codec: index/value length mismatch")
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			return errors.New("codec: indices must be strictly ascending")
		}
	}
	if len(idxs) > 0 && (idxs[0] < 0 || idxs[len(idxs)-1] >= g.Len()) {
		return errors.New("codec: index out of grid range")
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("codec: non-finite value")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if len(values) == 0 {
		lo, hi = 0, 0
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(opts.ValueBits)); err != nil {
		return err
	}
	writeString := func(s string) error {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(s)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(fieldName); err != nil {
		return err
	}
	hdr := []any{
		uint32(g.NX), uint32(g.NY), uint32(g.NZ),
		g.Origin.X, g.Origin.Y, g.Origin.Z,
		g.Spacing.X, g.Spacing.Y, g.Spacing.Z,
		lo, hi,
		uint64(len(idxs)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}

	// Delta-encoded indices.
	var buf [binary.MaxVarintLen64]byte
	prev := -1
	for _, idx := range idxs {
		n := binary.PutUvarint(buf[:], uint64(idx-prev))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = idx
	}

	// Bit-packed quantized values.
	levels := uint64(1)<<uint(opts.ValueBits) - 1
	scale := 0.0
	if hi > lo {
		scale = float64(levels) / (hi - lo)
	}
	var acc uint64
	accBits := 0
	for _, v := range values {
		q := uint64((v-lo)*scale + 0.5)
		if q > levels {
			q = levels
		}
		acc |= q << uint(accBits)
		accBits += opts.ValueBits
		for accBits >= 8 {
			if err := bw.WriteByte(byte(acc)); err != nil {
				return err
			}
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		if err := bw.WriteByte(byte(acc)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decoded is the result of Decode: the cloud (positions reconstructed
// exactly from grid indices, values dequantized), the grid geometry it
// came from, and the flat indices.
type Decoded struct {
	Cloud     *pointcloud.Cloud
	Indices   []int
	NX        int
	NY        int
	NZ        int
	Origin    mathutil.Vec3
	Spacing   mathutil.Vec3
	FieldName string
	// MaxError is the guaranteed bound on the per-value decoding error.
	MaxError float64
}

// Grid returns an empty volume with the decoded geometry.
func (d *Decoded) Grid() *grid.Volume {
	return grid.NewWithGeometry(d.NX, d.NY, d.NZ, d.Origin, d.Spacing)
}

// Decode reads a stream written by Encode.
func Decode(r io.Reader) (*Decoded, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("codec: bad magic")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("codec: unsupported version %d", ver)
	}
	bitsByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	bits := int(bitsByte)
	if bits < 4 || bits > 32 {
		return nil, fmt.Errorf("codec: invalid value depth %d", bits)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, errors.New("codec: implausible field-name length")
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}

	var nx, ny, nz uint32
	var ox, oy, oz, sx, sy, sz, lo, hi float64
	var count uint64
	for _, p := range []any{&nx, &ny, &nz, &ox, &oy, &oz, &sx, &sy, &sz, &lo, &hi, &count} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if nx < 1 || ny < 1 || nz < 1 || sx <= 0 || sy <= 0 || sz <= 0 {
		return nil, errors.New("codec: invalid grid geometry")
	}
	if math.IsNaN(ox) || math.IsNaN(oy) || math.IsNaN(oz) ||
		math.IsNaN(sx) || math.IsNaN(sy) || math.IsNaN(sz) ||
		math.IsInf(lo, 0) || math.IsInf(hi, 0) ||
		!(lo <= hi) { // NaN bounds fail this comparison too
		return nil, errors.New("codec: non-finite geometry or value range")
	}
	// The three uint32 dims multiply to at most 2^96, which overflows
	// uint64 — an attacker-crafted header could wrap `total` small and
	// slip indices past the range check below. Divide instead of
	// multiplying.
	if uint64(ny)*uint64(nz) > math.MaxUint64/uint64(nx) {
		return nil, errors.New("codec: grid dimensions overflow")
	}
	total := uint64(nx) * uint64(ny) * uint64(nz)
	if total > math.MaxInt64 {
		// Keeps every later index computation inside int range.
		return nil, errors.New("codec: grid too large")
	}
	if count > total {
		return nil, errors.New("codec: more samples than grid points")
	}

	d := &Decoded{
		NX: int(nx), NY: int(ny), NZ: int(nz),
		Origin:    mathutil.Vec3{X: ox, Y: oy, Z: oz},
		Spacing:   mathutil.Vec3{X: sx, Y: sy, Z: sz},
		FieldName: string(nameBuf),
		MaxError:  MaxQuantizationError(lo, hi, bits),
	}
	// A geometry-only shell for index→position mapping: Decode must not
	// allocate the full nx*ny*nz data volume (d.Grid() does) just to
	// decode a sample stream — with header-declared dims that would be an
	// attacker-controlled allocation.
	geom := &grid.Volume{NX: d.NX, NY: d.NY, NZ: d.NZ, Origin: d.Origin, Spacing: d.Spacing}

	// Preallocate only what a well-formed stream could actually deliver:
	// every index costs at least one input byte, so capping the initial
	// capacity bounds memory by the real input size, not the header's
	// claimed count.
	d.Indices = make([]int, 0, minU64(count, 1<<16))
	prev := -1
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		// Deltas are strictly positive (indices strictly ascend) and
		// bounded by the grid size; checking in uint64 space avoids the
		// signed wrap of int(delta) for huge varints.
		if delta == 0 || delta > total-uint64(prev+1) {
			return nil, errors.New("codec: index stream out of range")
		}
		idx := prev + int(delta)
		d.Indices = append(d.Indices, idx)
		prev = idx
	}

	levels := uint64(1)<<uint(bits) - 1
	inv := 0.0
	if levels > 0 && hi > lo {
		inv = (hi - lo) / float64(levels)
	}
	d.Cloud = pointcloud.New(d.FieldName, int(minU64(count, 1<<16)))
	var acc uint64
	accBits := 0
	for _, idx := range d.Indices {
		for accBits < bits {
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("codec: value stream truncated: %w", err)
			}
			acc |= uint64(b) << uint(accBits)
			accBits += 8
		}
		q := acc & levels
		acc >>= uint(bits)
		accBits -= bits
		d.Cloud.Add(geom.PointAt(idx), lo+float64(q)*inv)
	}
	return d, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// EncodedSize returns the exact number of bytes Encode would produce
// (useful for storage accounting without writing).
func EncodedSize(g *grid.Volume, fieldName string, idxs []int, opts Options) (int64, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	var n int64 = 4 + 1 + 1 // magic + version + bits
	var lenBuf [binary.MaxVarintLen64]byte
	n += int64(binary.PutUvarint(lenBuf[:], uint64(len(fieldName)))) + int64(len(fieldName))
	n += 3*4 + 6*8 + 2*8 + 8 // dims + geometry + range + count
	prev := -1
	for _, idx := range idxs {
		n += int64(binary.PutUvarint(lenBuf[:], uint64(idx-prev)))
		prev = idx
	}
	n += int64((len(idxs)*opts.ValueBits + 7) / 8)
	return n, nil
}
