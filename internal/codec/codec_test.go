package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/sampling"
)

func sampleFixture(t *testing.T) (*grid.Volume, []int, []float64) {
	t.Helper()
	gen := datasets.NewIsabel(5)
	v := datasets.Volume(gen, 20, 18, 8, 6)
	_, idxs, err := (&sampling.Importance{Seed: 3}).Sample(v, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(idxs))
	for i, idx := range idxs {
		values[i] = v.Data[idx]
	}
	return v, idxs, values
}

func TestRoundTripPositionsExactValuesBounded(t *testing.T) {
	v, idxs, values := sampleFixture(t)
	for _, bits := range []int{8, 16, 32} {
		var buf bytes.Buffer
		if err := Encode(&buf, v, "pressure", idxs, values, Options{ValueBits: bits}); err != nil {
			t.Fatal(err)
		}
		d, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if d.FieldName != "pressure" {
			t.Fatalf("field %q", d.FieldName)
		}
		if d.NX != v.NX || d.NY != v.NY || d.NZ != v.NZ || d.Origin != v.Origin || d.Spacing != v.Spacing {
			t.Fatal("geometry mismatch")
		}
		if len(d.Indices) != len(idxs) {
			t.Fatalf("count %d want %d", len(d.Indices), len(idxs))
		}
		lo, hi := values[0], values[0]
		for _, x := range values {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		wantErr := MaxQuantizationError(lo, hi, bits)
		if math.Abs(d.MaxError-wantErr) > 1e-15*(wantErr+1) {
			t.Fatalf("bits=%d reported error %g want %g", bits, d.MaxError, wantErr)
		}
		for i, idx := range idxs {
			if d.Indices[i] != idx {
				t.Fatalf("bits=%d: index %d decoded as %d", bits, idx, d.Indices[i])
			}
			if d.Cloud.Points[i] != v.PointAt(idx) {
				t.Fatalf("bits=%d: position not exact at %d", bits, i)
			}
			if e := math.Abs(d.Cloud.Values[i] - values[i]); e > wantErr*1.000001 {
				t.Fatalf("bits=%d: value error %g exceeds bound %g", bits, e, wantErr)
			}
		}
	}
}

func TestCompressionBeatsRawVTP(t *testing.T) {
	v, idxs, values := sampleFixture(t)
	var buf bytes.Buffer
	if err := Encode(&buf, v, "pressure", idxs, values, Options{}); err != nil {
		t.Fatal(err)
	}
	raw := int64(len(idxs)) * 32 // x, y, z, value float64
	t.Logf("codec: %d bytes vs %d raw (%.1fx)", buf.Len(), raw, float64(raw)/float64(buf.Len()))
	if int64(buf.Len())*4 > raw {
		t.Fatalf("codec only reached %d bytes for %d raw", buf.Len(), raw)
	}
	// EncodedSize predicts the exact length.
	n, err := EncodedSize(v, "pressure", idxs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodedSize %d, actual %d", n, buf.Len())
	}
}

func TestEncodeValidation(t *testing.T) {
	v, idxs, values := sampleFixture(t)
	var buf bytes.Buffer
	if err := Encode(&buf, v, "f", idxs, values[:1], Options{}); err == nil {
		t.Fatal("accepted length mismatch")
	}
	bad := append([]int{}, idxs...)
	bad[1] = bad[0]
	if err := Encode(&buf, v, "f", bad, values, Options{}); err == nil {
		t.Fatal("accepted duplicate indices")
	}
	if err := Encode(&buf, v, "f", []int{v.Len()}, []float64{1}, Options{}); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if err := Encode(&buf, v, "f", []int{0}, []float64{math.NaN()}, Options{}); err == nil {
		t.Fatal("accepted NaN value")
	}
	if err := Encode(&buf, v, "f", idxs, values, Options{ValueBits: 3}); err == nil {
		t.Fatal("accepted 3-bit quantization")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	v, idxs, values := sampleFixture(t)
	var buf bytes.Buffer
	if err := Encode(&buf, v, "f", idxs, values, Options{}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations at every region boundary-ish offset must error.
	for _, cut := range []int{0, 3, 5, 20, 40, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("accepted truncation to %d bytes", cut)
		}
	}
	// Bad magic.
	corrupt := append([]byte{}, full...)
	corrupt[0] = 'X'
	if _, err := Decode(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Bad version.
	corrupt = append([]byte{}, full...)
	corrupt[4] = 99
	if _, err := Decode(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("accepted bad version")
	}
}

func TestEmptySampleSet(t *testing.T) {
	v := grid.New(4, 4, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, v, "f", nil, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cloud.Len() != 0 {
		t.Fatalf("decoded %d points", d.Cloud.Len())
	}
}

func TestQuantizationErrorBoundProperty(t *testing.T) {
	// Property: for random values and depths, every decoded value is
	// within the promised bound.
	f := func(seed int64, bitsRaw uint8) bool {
		bits := 4 + int(bitsRaw)%29 // [4, 32]
		v := grid.New(6, 6, 6)
		rng := mathutil.NewRNG(seed)
		var idxs []int
		var values []float64
		for i := 0; i < v.Len(); i += 1 + rng.Intn(4) {
			idxs = append(idxs, i)
			values = append(values, rng.NormFloat64()*100)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, v, "f", idxs, values, Options{ValueBits: bits}); err != nil {
			return false
		}
		d, err := Decode(&buf)
		if err != nil {
			return false
		}
		for i := range values {
			if math.Abs(d.Cloud.Values[i]-values[i]) > d.MaxError*1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
