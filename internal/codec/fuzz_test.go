package codec

import (
	"bytes"
	"math"
	"testing"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
)

// fuzzSeedStream builds a small valid encoded stream for the corpus.
func fuzzSeedStream(tb testing.TB) []byte {
	tb.Helper()
	g := grid.NewWithGeometry(4, 3, 2, mathutil.Vec3{}, mathutil.Vec3{X: 1, Y: 1, Z: 1})
	idxs := []int{0, 3, 7, 11, 23}
	values := []float64{-1, 0.25, 0.5, 2, 8}
	var buf bytes.Buffer
	if err := Encode(&buf, g, "pressure", idxs, values, Options{ValueBits: 12}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary bytes to Decode. The invariant under test:
// malformed input of any shape returns an error — never a panic, hang,
// or unbounded allocation — and an input that decodes successfully
// satisfies the format's documented guarantees (strictly ascending
// in-range indices, matching cloud size).
func FuzzDecode(f *testing.F) {
	valid := fuzzSeedStream(f)
	f.Add(valid)
	// Truncations at structurally interesting offsets.
	for _, n := range []int{0, 3, 5, 6, 10, 20, 60, len(valid) - 1} {
		if n >= 0 && n < len(valid) {
			f.Add(valid[:n])
		}
	}
	// A corrupted header copy.
	bad := append([]byte(nil), valid...)
	bad[8] ^= 0xff
	f.Add(bad)
	f.Add([]byte("FVSC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if d.Cloud == nil {
			t.Fatal("successful decode returned nil cloud")
		}
		if d.Cloud.Len() != len(d.Indices) {
			t.Fatalf("cloud has %d points, %d indices", d.Cloud.Len(), len(d.Indices))
		}
		if d.NX < 1 || d.NY < 1 || d.NZ < 1 {
			t.Fatalf("non-positive dims %dx%dx%d", d.NX, d.NY, d.NZ)
		}
		total := d.NX * d.NY * d.NZ
		prev := -1
		for _, idx := range d.Indices {
			if idx <= prev || idx >= total {
				t.Fatalf("index %d out of order or range (prev %d, total %d)", idx, prev, total)
			}
			prev = idx
		}
		for _, v := range d.Cloud.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("decoded non-finite value %v", v)
			}
		}
	})
}

// TestDecodeRejectsHostileHeaders pins the specific attacks the decoder
// hardening addresses, independent of whatever the fuzzer finds.
func TestDecodeRejectsHostileHeaders(t *testing.T) {
	valid := fuzzSeedStream(t)

	mutate := func(name string, f func([]byte) []byte) []byte {
		t.Helper()
		return f(append([]byte(nil), valid...))
	}
	// Header layout: magic(4) version(1) bits(1) nameLen(1) name(8)
	// then nx, ny, nz as uint32 LE at offsets 15, 19, 23.
	cases := map[string][]byte{
		// nx=ny=nz=2^31: the dim product overflows uint64 (2^93) and the
		// pre-hardening decoder would allocate the "full grid".
		"dims-overflow": mutate("dims-overflow", func(b []byte) []byte {
			for _, off := range []int{15, 19, 23} {
				b[off+0], b[off+1], b[off+2], b[off+3] = 0, 0, 0, 0x80
			}
			return b
		}),
		// Huge-but-not-overflowing grid with a huge sample count: must
		// not preallocate count entries.
		"huge-count": mutate("huge-count", func(b []byte) []byte {
			for _, off := range []int{15, 19, 23} {
				b[off+0], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0x0f, 0 // ~1M per axis
			}
			// count is the uint64 at offset 15+12+48+16 = 91.
			for i := 0; i < 8; i++ {
				b[91+i] = 0xff
			}
			return b
		}),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile header decoded without error", name)
		}
	}
}
