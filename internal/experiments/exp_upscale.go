package experiments

import (
	"fmt"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/interp"
	"fillvoid/internal/mathutil"
)

// Fig13 regenerates the volume-upscaling experiment: an FCNN pretrained
// on the low-resolution Isabel grid reconstructs samples taken from a
// 2x-per-axis higher-resolution grid that additionally spans a shifted
// spatial domain (the paper modifies the extent so the high-res data
// covers different physics). Series: linear baseline, an FCNN fully
// trained on the high-res data (upper reference), and the low-res model
// fine-tuned for ~10 epochs.
func Fig13(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	t := trainTimestep(gen)

	// Low-resolution training grid over the unit cube.
	nx, ny, nz := cfg.dims(gen)
	lowRes := cfg.truthAt(gen, t)

	// High-resolution target: 2x per axis over a shifted, smaller
	// spatial domain (different physics than the training extent).
	hx, hy, hz := 2*nx, 2*ny, 2*nz
	origin := mathutil.Vec3{X: 0.3, Y: 0.3, Z: 0.1}
	size := mathutil.Vec3{X: 0.65, Y: 0.65, Z: 0.8}
	spacing := mathutil.Vec3{
		X: size.X / float64(hx-1),
		Y: size.Y / float64(hy-1),
		Z: size.Z / float64(hz-1),
	}
	hiRes := datasets.VolumeOnDomain(gen, hx, hy, hz, t, origin, spacing)
	spec := interp.SpecOf(hiRes)

	opts := cfg.coreOptions()
	cfg.logf("[fig13] pretraining low-res model (%dx%dx%d)...", nx, ny, nz)
	lowModel, err := core.Pretrain(lowRes, gen.FieldName(), cfg.sampler(0), opts)
	if err != nil {
		return nil, err
	}
	cfg.logf("[fig13] training full high-res reference model (%dx%dx%d)...", hx, hy, hz)
	hiModel, err := core.Pretrain(hiRes, gen.FieldName(), cfg.sampler(0), opts)
	if err != nil {
		return nil, err
	}
	cfg.logf("[fig13] fine-tuning low-res model to the high-res domain...")
	tuned, err := lowModel.Clone()
	if err != nil {
		return nil, err
	}
	if err := tuned.FineTune(hiRes, cfg.sampler(0), core.FineTuneAll, cfg.Scale.FineTuneEpochs); err != nil {
		return nil, err
	}

	res := &Result{
		ID: "fig13",
		Title: fmt.Sprintf("Upscaling %dx%dx%d -> %dx%dx%d over a shifted domain (Isabel)",
			nx, ny, nz, hx, hy, hz),
		Columns: []string{"sampling", "linear", "fcnn_full_hires", "fcnn_lowres_finetuned"},
	}
	for _, frac := range cfg.Scale.Fractions {
		cloud, _, err := cfg.sampler(801).Sample(hiRes, gen.FieldName(), frac)
		if err != nil {
			return nil, err
		}
		lin, err := (&interp.Linear{Workers: cfg.Workers}).Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		full, err := hiModel.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		ft, err := tuned.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmtPct(frac), fmtF(snr(hiRes, lin)), fmtF(snr(hiRes, full)), fmtF(snr(hiRes, ft)),
		})
		cfg.logf("[fig13] @%s done", fmtPct(frac))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("fine-tune = %d epochs, all layers; high-res domain origin %+v size %+v",
			cfg.Scale.FineTuneEpochs, origin, size),
		"expected shape: fine-tuned low-res model approaches the fully-trained high-res model, both above linear")
	return res, nil
}
