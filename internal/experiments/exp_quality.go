package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/recon"
	"fillvoid/internal/vtk"
)

// Fig9 regenerates the headline quality comparison: SNR for FCNN,
// linear, natural neighbor, Shepard and nearest neighbor at sampling
// percentages from 0.1% to 5%, per dataset.
func Fig9(cfg *Config) (*Result, error) {
	gens, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig9",
		Title:   "Reconstruction quality (SNR dB) vs sampling percentage",
		Columns: []string{"dataset", "sampling", "fcnn", "linear", "natural", "shepard", "nearest"},
	}
	for _, gen := range gens {
		model, truth, err := cfg.pretrained(gen)
		if err != nil {
			return nil, err
		}
		spec := interp.SpecOf(truth)
		methods, err := cfg.methods(model, "fcnn", "linear", "natural", "shepard", "nearest")
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.Scale.Fractions {
			cloud, _, err := cfg.sampler(101).Sample(truth, gen.FieldName(), frac)
			if err != nil {
				return nil, err
			}
			// One query plan per sampled cloud: every method shares its
			// k-d tree and nearest-sample table.
			plan, err := recon.NewPlan(cloud, spec)
			if err != nil {
				return nil, err
			}
			row := []string{gen.Name(), fmtPct(frac)}
			for _, m := range methods {
				vol, err := recon.Reconstruct(context.Background(), m, plan, recon.Full(spec))
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(snr(truth, vol)))
			}
			res.Rows = append(res.Rows, row)
			cfg.logf("[fig9] %s @%s done", gen.Name(), fmtPct(frac))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("scale=%s; FCNN pretrained once per dataset on 1%%+5%% samples of timestep T/4", cfg.Scale.Name),
		"all methods run through one shared query plan per sampled cloud (spatial index built once)",
		"expected shape: fcnn >= linear >= natural >= shepard/nearest, all rising with sampling %")
	return res, nil
}

// Fig10 regenerates the timing comparison: seconds to reconstruct at
// each sampling percentage for every method, including the sequential
// vs parallel linear contrast (the paper's naive Python vs CGAL+OpenMP).
func Fig10(cfg *Config) (*Result, error) {
	gens, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "fig10",
		Title:   "Reconstruction time (seconds) vs sampling percentage",
		Columns: []string{"dataset", "sampling", "fcnn", "linear", "linear-seq", "natural", "shepard", "nearest"},
	}
	timeIt := func(f func() error) (float64, error) {
		start := time.Now()
		err := f()
		return time.Since(start).Seconds(), err
	}
	for _, gen := range gens {
		model, truth, err := cfg.pretrained(gen)
		if err != nil {
			return nil, err
		}
		spec := interp.SpecOf(truth)
		methods, err := cfg.methods(model, "fcnn", "linear", "linear-seq", "natural", "shepard", "nearest")
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.Scale.Fractions {
			cloud, _, err := cfg.sampler(101).Sample(truth, gen.FieldName(), frac)
			if err != nil {
				return nil, err
			}
			// One query plan per sampled cloud; warm its shared pieces
			// (k-d tree, nearest-sample table) outside the per-method
			// timers so each cell is that method's own work.
			plan, err := recon.NewPlan(cloud, spec)
			if err != nil {
				return nil, err
			}
			plan.Tree()
			plan.NearestTable(cfg.Workers)
			row := []string{gen.Name(), fmtPct(frac)}
			for _, m := range methods {
				secs, err := timeIt(func() error {
					_, err := recon.Reconstruct(context.Background(), m, plan, recon.Full(spec))
					return err
				})
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3f", secs))
			}
			res.Rows = append(res.Rows, row)
			cfg.logf("[fig10] %s @%s done", gen.Name(), fmtPct(frac))
		}
	}
	res.Notes = append(res.Notes,
		"model training time excluded, as in the paper (amortized; see table1)",
		"shared query plan per cloud: spatial index + nearest table built once, outside the per-method timers",
		"expected shape: fcnn roughly flat vs sampling %; linear grows with sample count; linear-seq >> linear")
	return res, nil
}

// qualitative renders the Fig 2/3-style side-by-side slice comparison
// for one dataset at 1% sampling: ground truth, FCNN, and one rule-based
// competitor, writing PPM images when cfg.OutDir is set.
func qualitative(cfg *Config, id, title string, gen datasets.Generator, competitor interp.Reconstructor) (*Result, error) {
	model, truth, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}
	spec := interp.SpecOf(truth)
	cloud, _, err := cfg.sampler(202).Sample(truth, gen.FieldName(), 0.01)
	if err != nil {
		return nil, err
	}
	fcnnRecon, err := model.Reconstruct(cloud, spec)
	if err != nil {
		return nil, err
	}
	compRecon, err := competitor.Reconstruct(cloud, spec)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:      id,
		Title:   title,
		Columns: []string{"image", "snr_dB", "rendered_to"},
	}
	slice := truth.NZ / 2
	st := truth.Stats()
	render := func(label string, v *grid.Volume, s float64) error {
		path := "-"
		if cfg.OutDir != "" {
			path = filepath.Join(cfg.OutDir, fmt.Sprintf("%s_%s.ppm", id, label))
			if err := vtk.RenderSlicePPMFile(path, v, slice, st.Min(), st.Max()); err != nil {
				return err
			}
		}
		snrCell := fmtF(s)
		if label == "original" {
			snrCell = "-"
		}
		res.Rows = append(res.Rows, []string{label, snrCell, path})
		return nil
	}
	if err := render("original", truth, 0); err != nil {
		return nil, err
	}
	if err := render("fcnn", fcnnRecon, snr(truth, fcnnRecon)); err != nil {
		return nil, err
	}
	if err := render(competitor.Name(), compRecon, snr(truth, compRecon)); err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("1%% sampling, mid z-slice (k=%d); set -out to write PPM images", slice))
	return res, nil
}

// Fig2 regenerates the combustion qualitative comparison (FCNN vs
// linear interpolation at 1% sampling).
func Fig2(cfg *Config) (*Result, error) {
	gen := datasets.NewCombustion(cfg.Seed)
	return qualitative(cfg, "fig2",
		"Combustion @1%: FCNN vs Delaunay linear interpolation",
		gen, &interp.Linear{Workers: cfg.Workers})
}

// Fig3 regenerates the ionization-front qualitative comparison (FCNN vs
// natural neighbors at 1% sampling).
func Fig3(cfg *Config) (*Result, error) {
	gen := datasets.NewIonization(cfg.Seed)
	return qualitative(cfg, "fig3",
		"Ionization Front @1%: FCNN vs natural neighbor interpolation",
		gen, &interp.NaturalNeighbor{Workers: cfg.Workers})
}
