package experiments

import (
	"fmt"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/interp"
)

// Fig11 regenerates the temporal-transfer experiment: Isabel over its 48
// timesteps at 3% sampling. Series: the linear baseline; two pretrained
// FCNNs (on timesteps ~1 and ~25) applied as-is; and the same two with
// 10 epochs of Case 1 fine-tuning per timestep. Pretrained models
// degrade away from their training timestep; fine-tuned models track
// above linear throughout.
func Fig11(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	const evalFrac = 0.03

	// The paper pretrains on timesteps 01 and 25 of 48.
	tEarly := 1
	tMid := gen.NumTimesteps() / 2

	opts := cfg.coreOptions()
	pretrainAt := func(t int) (*core.FCNN, error) {
		truth := cfg.truthAt(gen, t)
		cfg.logf("[fig11] pretraining at t=%02d...", t)
		return core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts)
	}
	pfEarly, err := pretrainAt(tEarly)
	if err != nil {
		return nil, err
	}
	pfMid, err := pretrainAt(tMid)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "fig11",
		Title: fmt.Sprintf("SNR across Isabel timesteps @%s sampling", fmtPct(evalFrac)),
		Columns: []string{"timestep", "linear",
			fmt.Sprintf("fcnn_pf%02d", tEarly), fmt.Sprintf("fcnn_pf%02d", tMid),
			fmt.Sprintf("fcnn_pf%02d_finetuned", tEarly), fmt.Sprintf("fcnn_pf%02d_finetuned", tMid)},
	}

	stride := cfg.Scale.TimestepStride
	if stride < 1 {
		stride = 1
	}
	for t := 0; t < gen.NumTimesteps(); t += stride {
		truth := cfg.truthAt(gen, t)
		spec := interp.SpecOf(truth)
		cloud, _, err := cfg.sampler(701+int64(t)).Sample(truth, gen.FieldName(), evalFrac)
		if err != nil {
			return nil, err
		}
		lin, err := (&interp.Linear{Workers: cfg.Workers}).Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%02d", t), fmtF(snr(truth, lin))}
		for _, m := range []*core.FCNN{pfEarly, pfMid} {
			recon, err := m.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(snr(truth, recon)))
		}
		for _, m := range []*core.FCNN{pfEarly, pfMid} {
			tuned, err := m.Clone()
			if err != nil {
				return nil, err
			}
			if err := tuned.FineTune(truth, cfg.sampler(0), core.FineTuneAll, cfg.Scale.FineTuneEpochs); err != nil {
				return nil, err
			}
			recon, err := tuned.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(snr(truth, recon)))
		}
		res.Rows = append(res.Rows, row)
		cfg.logf("[fig11] t=%02d done", t)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("timestep stride %d (paper evaluates every timestep); fine-tune = %d epochs, all layers (Case 1)",
			stride, cfg.Scale.FineTuneEpochs),
		"expected shape: pretrained curves peak at their training timestep and decay away from it;",
		"fine-tuned curves stay above linear across the whole run")
	return res, nil
}

// Fig12 regenerates the optimization traces: per-epoch training loss of
// (a) full training from scratch and (b) 10-epoch Case 1 fine-tuning of
// a pretrained model on a new timestep. Fine-tuning starts at a much
// lower loss and converges within a handful of epochs.
func Fig12(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	model, _, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}
	fullLosses := model.Losses()

	later := cfg.truthAt(gen, trainTimestep(gen)+gen.NumTimesteps()/4)
	tuned, err := model.Clone()
	if err != nil {
		return nil, err
	}
	markBefore := len(tuned.Losses())
	if err := tuned.FineTune(later, cfg.sampler(0), core.FineTuneAll, cfg.Scale.FineTuneEpochs); err != nil {
		return nil, err
	}
	ftLosses := tuned.Losses()[markBefore:]

	res := &Result{
		ID:      "fig12",
		Title:   "Loss progression: (a) full training, (b) fine-tuning to a new timestep",
		Columns: []string{"epoch", "full_training_loss", "finetune_loss"},
	}
	n := len(fullLosses)
	if len(ftLosses) > n {
		n = len(ftLosses)
	}
	for e := 0; e < n; e++ {
		full, ft := "-", "-"
		if e < len(fullLosses) {
			full = fmt.Sprintf("%.6f", fullLosses[e])
		}
		if e < len(ftLosses) {
			ft = fmt.Sprintf("%.6f", ftLosses[e])
		}
		res.Rows = append(res.Rows, []string{fmt.Sprint(e), full, ft})
	}
	res.Notes = append(res.Notes,
		"expected shape: full training needs hundreds of epochs to converge;",
		"fine-tuning starts near the converged loss and settles within ~10 epochs")
	return res, nil
}
