// Package experiments regenerates every table and figure in the paper's
// evaluation (Section IV–V): workload generation, parameter sweeps,
// baselines, and row/series printing. Each experiment is registered
// under the paper's figure/table id ("fig9", "table1", ...) and runs at
// a configurable scale — "small" for laptop runs with the same shapes,
// "medium" for closer-to-paper sizes, "paper" for the full resolutions
// (hours of CPU time).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/metrics"
	"fillvoid/internal/nn"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// Scale bundles every knob that trades runtime for fidelity.
type Scale struct {
	// Name identifies the scale ("small", "medium", "paper").
	Name string
	// Divisors maps dataset name to the resolution divisor applied to
	// the paper's native dims.
	Divisors map[string]int
	// Hidden is the FCNN hidden-layer stack.
	Hidden []int
	// Epochs is the full-training epoch count.
	Epochs int
	// FineTuneEpochs is the Case 1 fine-tune epoch count.
	FineTuneEpochs int
	// Case2Epochs is the Case 2 (last-two-layers) fine-tune epoch count.
	Case2Epochs int
	// MaxTrainRows caps the training set (0 = unlimited).
	MaxTrainRows int
	// BatchSize is the minibatch size.
	BatchSize int
	// TimestepStride subsamples the Fig 11 timestep sweep (1 = every
	// timestep like the paper).
	TimestepStride int
	// Fractions is the sampling-percentage sweep for the quality and
	// timing figures (the paper sweeps 0.1%–5%).
	Fractions []float64
}

// Scales returns the built-in scales.
func Scales() map[string]Scale {
	return map[string]Scale{
		"tiny": {
			Name:           "tiny",
			Divisors:       map[string]int{"isabel": 8, "combustion": 10, "ionization": 20},
			Hidden:         []int{48, 32, 16},
			Epochs:         40,
			FineTuneEpochs: 5,
			Case2Epochs:    60,
			MaxTrainRows:   6000,
			BatchSize:      256,
			TimestepStride: 12,
			Fractions:      []float64{0.01, 0.03, 0.05},
		},
		"small": {
			Name:           "small",
			Divisors:       map[string]int{"isabel": 5, "combustion": 5, "ionization": 10},
			Hidden:         []int{128, 64, 32, 16, 8},
			Epochs:         200,
			FineTuneEpochs: 10,
			Case2Epochs:    300,
			MaxTrainRows:   16000,
			BatchSize:      128,
			TimestepStride: 4,
			Fractions:      []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.03, 0.05},
		},
		"medium": {
			Name:           "medium",
			Divisors:       map[string]int{"isabel": 2, "combustion": 2, "ionization": 4},
			Hidden:         []int{256, 128, 64, 32, 16},
			Epochs:         400,
			FineTuneEpochs: 10,
			Case2Epochs:    400,
			MaxTrainRows:   120000,
			BatchSize:      256,
			TimestepStride: 2,
			Fractions:      []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.03, 0.05},
		},
		"paper": {
			Name:           "paper",
			Divisors:       map[string]int{"isabel": 1, "combustion": 1, "ionization": 1},
			Hidden:         nn.PaperHidden(),
			Epochs:         500,
			FineTuneEpochs: 10,
			Case2Epochs:    500,
			MaxTrainRows:   0,
			BatchSize:      256,
			TimestepStride: 1,
			Fractions:      []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.03, 0.05},
		},
	}
}

// Config is the run configuration shared by all experiments.
type Config struct {
	Scale Scale
	// Dataset restricts multi-dataset experiments ("" = all three).
	Dataset string
	// Seed drives every stochastic component.
	Seed int64
	// OutDir receives rendered images (fig2/fig3); "" disables writes.
	OutDir string
	// Workers bounds parallelism (<= 0: all cores).
	Workers int
	// Quant selects quantized inference ("f16" or "int8") for methods
	// that support it (currently fcnn); "" runs full precision.
	Quant string
	// Quiet suppresses progress logging.
	Quiet bool
	// Log receives progress lines (defaults to io.Discard when Quiet).
	Log io.Writer

	mu     sync.Mutex
	models map[string]*core.FCNN
}

func (c *Config) logf(format string, args ...any) {
	if c.Quiet || c.Log == nil {
		return
	}
	//lint:allow errdrop: best-effort progress logging; a failing log writer must not abort an experiment
	fmt.Fprintf(c.Log, format+"\n", args...)
}

// Result is one regenerated table/figure: labeled columns and formatted
// rows, in the same arrangement the paper reports.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records workload parameters and any scale-related caveats.
	Notes []string
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(r.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return nil
}

// CSV renders the result as comma-separated values (header + rows).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is one experiment regenerating one table or figure.
type Runner struct {
	ID          string
	Title       string
	Description string
	Run         func(cfg *Config) (*Result, error)
}

// Registry lists every experiment keyed by id, ordered as in the paper.
func Registry() []Runner {
	return []Runner{
		{"fig2", "Qualitative: combustion @1%, FCNN vs linear", "renders slice images and reports SNR", Fig2},
		{"fig3", "Qualitative: ionization @1%, FCNN vs natural neighbor", "renders slice images and reports SNR", Fig3},
		{"fig6", "SNR vs number of hidden layers (Isabel)", "depth ablation, 1-9 hidden layers", Fig6},
		{"fig7", "SNR vs sampling %% for 1%%-, 5%%-, 1%%+5%%-trained models", "training-fraction ablation", Fig7},
		{"fig8", "SNR with vs without gradient outputs", "gradient-supervision ablation", Fig8},
		{"fig9", "Reconstruction quality (SNR) vs sampling %%, all methods", "the headline quality comparison", Fig9},
		{"fig10", "Reconstruction time vs sampling %%, all methods", "the headline timing comparison", Fig10},
		{"fig11", "SNR across Isabel timesteps @3%: pretrained vs fine-tuned vs linear", "temporal transfer", Fig11},
		{"fig12", "Loss vs epoch: full training vs fine-tuning", "optimization traces", Fig12},
		{"fig13", "Upscaling: low-res model reconstructing 2x resolution", "cross-resolution transfer", Fig13},
		{"fig14", "SNR when training on 100/50/25%% of the training data", "training-set subsampling quality", Fig14},
		{"table1", "Training time for full training per dataset/resolution", "wall-clock training cost", Table1},
		{"table2", "Training time vs training-data fraction (Isabel)", "training cost scaling", Table2},
		{"ext-select", "Extension: uniform vs gradient-weighted training-row selection", "the paper's 'intelligent training set creation' future work", ExtSelect},
		{"ext-uncertainty", "Extension: deep-ensemble reconstruction uncertainty", "the paper's uncertainty future work", ExtUncertainty},
		{"ext-case2", "Extension: Case 1 vs Case 2 fine-tuning trade-off", "epochs/storage trade-off described around Fig 5", ExtCase2},
		{"ext-samplers", "Extension: sensitivity to the in situ sampling method", "importance vs random vs stratified", ExtSamplers},
		{"ext-viz", "Extension: isosurface and volume-render fidelity", "quality at the level of the motivating visualization tasks", ExtViz},
		{"ext-sim", "Extension: reconstruction of a real advection-diffusion simulation", "the pipeline on genuinely time-stepped dynamics", ExtSim},
	}
}

// RunnerByID finds an experiment by id.
func RunnerByID(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (want one of %v)", id, ids)
}

// --- shared helpers ---

// dims returns the scaled grid dims for a dataset.
func (c *Config) dims(gen datasets.Generator) (int, int, int) {
	div := c.Scale.Divisors[gen.Name()]
	if div < 1 {
		div = 1
	}
	return gen.DefaultDims(div)
}

// truthAt materializes the scaled ground-truth volume at a timestep.
func (c *Config) truthAt(gen datasets.Generator, t int) *grid.Volume {
	nx, ny, nz := c.dims(gen)
	return datasets.Volume(gen, nx, ny, nz, t)
}

// trainTimestep is the timestep every single-timestep experiment trains
// and evaluates on — mid-run, where the features are well developed.
func trainTimestep(gen datasets.Generator) int { return gen.NumTimesteps() / 4 }

// coreOptions maps the scale onto core.Options.
func (c *Config) coreOptions() core.Options {
	return core.Options{
		Hidden:         c.Scale.Hidden,
		Epochs:         c.Scale.Epochs,
		FineTuneEpochs: c.Scale.FineTuneEpochs,
		TrainFractions: []float64{0.01, 0.05},
		MaxTrainRows:   c.Scale.MaxTrainRows,
		BatchSize:      c.Scale.BatchSize,
		Workers:        c.Workers,
		Seed:           c.Seed,
	}
}

// pretrained returns (building and caching on first use) the standard
// 1%+5%-trained FCNN for a dataset at this scale.
func (c *Config) pretrained(gen datasets.Generator) (*core.FCNN, *grid.Volume, error) {
	key := gen.Name()
	t := trainTimestep(gen)
	truth := c.truthAt(gen, t)
	c.mu.Lock()
	if c.models == nil {
		c.models = make(map[string]*core.FCNN)
	}
	if m, ok := c.models[key]; ok {
		c.mu.Unlock()
		return m, truth, nil
	}
	c.mu.Unlock()

	c.logf("[%s] pretraining FCNN (%v hidden, %d epochs)...", gen.Name(), c.Scale.Hidden, c.Scale.Epochs)
	sp := telemetry.Default().StartSpan("experiments/pretrain/" + gen.Name())
	start := time.Now()
	m, err := core.Pretrain(truth, gen.FieldName(), c.sampler(0), c.coreOptions())
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	c.logf("[%s] pretraining done in %s", gen.Name(), time.Since(start).Round(time.Millisecond))

	c.mu.Lock()
	c.models[key] = m
	c.mu.Unlock()
	return m, truth, nil
}

// sampler returns the paper's importance sampler with a derived seed.
func (c *Config) sampler(salt int64) sampling.Sampler {
	return &sampling.Importance{Seed: c.Seed + salt}
}

// snr is a must-style SNR helper.
func snr(truth, recon *grid.Volume) float64 {
	s, err := metrics.SNR(truth, recon)
	if err != nil {
		return -999
	}
	return s
}

// datasetsFor returns the generators an experiment should iterate,
// honoring cfg.Dataset.
func (c *Config) datasetsFor() ([]datasets.Generator, error) {
	if c.Dataset != "" {
		g, err := datasets.ByName(c.Dataset, c.Seed)
		if err != nil {
			return nil, err
		}
		return []datasets.Generator{g}, nil
	}
	var gens []datasets.Generator
	for _, name := range []string{"isabel", "combustion", "ionization"} {
		g, err := datasets.ByName(name, c.Seed)
		if err != nil {
			return nil, err
		}
		gens = append(gens, g)
	}
	return gens, nil
}

// fmtF formats a float compactly for table cells.
func fmtF(x float64) string { return fmt.Sprintf("%.2f", x) }

// fmtPct formats a sampling fraction as the paper writes it ("0.5%").
func fmtPct(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", f*100), "0"), ".") + "%"
}

// methods resolves a named method lineup through one registry holding
// the rule-based baselines plus the trained model (as "fcnn"), so the
// neural method is not special-cased anywhere in the harness.
func (cfg *Config) methods(model *core.FCNN, names ...string) ([]interp.Reconstructor, error) {
	reg := interp.StandardRegistry(cfg.Workers)
	if model != nil {
		reg.RegisterMethod(model)
	}
	out := make([]interp.Reconstructor, 0, len(names))
	for _, name := range names {
		m, err := reg.Get(name)
		if err != nil {
			return nil, err
		}
		if cfg.Quant != "" {
			if qm, ok := m.(interface {
				WithQuant(string) (interp.Reconstructor, error)
			}); ok {
				if m, err = qm.WithQuant(cfg.Quant); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, m)
	}
	return out, nil
}
