package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// microScale is an ultra-small configuration so experiment smoke tests
// stay fast enough for the unit suite.
func microScale() Scale {
	return Scale{
		Name:           "micro",
		Divisors:       map[string]int{"isabel": 12, "combustion": 15, "ionization": 30},
		Hidden:         []int{24, 16},
		Epochs:         8,
		FineTuneEpochs: 2,
		Case2Epochs:    4,
		MaxTrainRows:   2000,
		BatchSize:      256,
		TimestepStride: 24,
		Fractions:      []float64{0.02, 0.05},
	}
}

func microConfig() *Config {
	return &Config{Scale: microScale(), Seed: 1, Quiet: true}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "table1", "table2",
		"ext-select", "ext-uncertainty", "ext-case2", "ext-samplers", "ext-viz", "ext-sim"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	seen := map[string]bool{}
	for _, r := range reg {
		if r.Run == nil {
			t.Fatalf("%s has no Run func", r.ID)
		}
		if r.Title == "" {
			t.Fatalf("%s has no title", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestRunnerByID(t *testing.T) {
	r, err := RunnerByID("fig9")
	if err != nil || r.ID != "fig9" {
		t.Fatalf("r=%+v err=%v", r, err)
	}
	if _, err := RunnerByID("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestScalesWellFormed(t *testing.T) {
	for name, s := range Scales() {
		if s.Name != name {
			t.Fatalf("scale %q has Name %q", name, s.Name)
		}
		for _, d := range []string{"isabel", "combustion", "ionization"} {
			if s.Divisors[d] < 1 {
				t.Fatalf("scale %q: missing divisor for %s", name, d)
			}
		}
		if s.Epochs < 1 || len(s.Hidden) == 0 || len(s.Fractions) == 0 {
			t.Fatalf("scale %q incomplete: %+v", name, s)
		}
		for _, f := range s.Fractions {
			if f <= 0 || f > 1 {
				t.Fatalf("scale %q: bad fraction %g", name, f)
			}
		}
	}
	if _, ok := Scales()["paper"]; !ok {
		t.Fatal("the paper scale must exist")
	}
	// Paper scale must use the paper's native resolutions and settings.
	p := Scales()["paper"]
	if p.Divisors["isabel"] != 1 || p.Epochs != 500 || p.TimestepStride != 1 {
		t.Fatalf("paper scale diverges from the paper: %+v", p)
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{
		ID:      "figX",
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "test", "a", "4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if csv != "a,b\n1,2\n3,4\n" {
		t.Fatalf("csv: %q", csv)
	}
}

func TestFmtPct(t *testing.T) {
	cases := map[float64]string{
		0.001:  "0.1%",
		0.0025: "0.25%",
		0.01:   "1%",
		0.05:   "5%",
	}
	for f, want := range cases {
		if got := fmtPct(f); got != want {
			t.Fatalf("fmtPct(%g) = %q, want %q", f, got, want)
		}
	}
}

// checkResult validates the structural contract every experiment must
// satisfy: consistent column counts, at least one row, parseable cells
// where numeric.
func checkResult(t *testing.T, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s produced no rows", res.ID)
	}
	for i, row := range res.Rows {
		if len(row) != len(res.Columns) {
			t.Fatalf("%s row %d has %d cells, want %d", res.ID, i, len(row), len(res.Columns))
		}
	}
}

func TestFig9Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := microConfig()
	cfg.Dataset = "isabel"
	res, err := Fig9(cfg)
	checkResult(t, res, err)
	if len(res.Rows) != len(cfg.Scale.Fractions) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// SNR cells must parse as floats.
	for _, row := range res.Rows {
		for _, cell := range row[2:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("bad SNR cell %q", cell)
			}
		}
	}
}

func TestFig12Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := microConfig()
	res, err := Fig12(cfg)
	checkResult(t, res, err)
	// Full-training losses cover Epochs rows; fine-tune column is
	// shorter and padded with "-".
	if len(res.Rows) != cfg.Scale.Epochs {
		t.Fatalf("%d rows, want %d", len(res.Rows), cfg.Scale.Epochs)
	}
	if res.Rows[len(res.Rows)-1][2] != "-" {
		t.Fatal("fine-tune column should be exhausted before full training")
	}
}

func TestTable2Micro(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := microConfig()
	res, err := Table2(cfg)
	checkResult(t, res, err)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
}

func TestModelCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	cfg := microConfig()
	cfg.Dataset = "isabel"
	gens, err := cfg.datasetsFor()
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := cfg.pretrained(gens[0])
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := cfg.pretrained(gens[0])
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("pretrained model not cached")
	}
}

func TestDatasetsForRestriction(t *testing.T) {
	cfg := microConfig()
	gens, err := cfg.datasetsFor()
	if err != nil || len(gens) != 3 {
		t.Fatalf("gens=%d err=%v", len(gens), err)
	}
	cfg.Dataset = "combustion"
	gens, err = cfg.datasetsFor()
	if err != nil || len(gens) != 1 || gens[0].Name() != "combustion" {
		t.Fatalf("restricted gens=%v err=%v", gens, err)
	}
	cfg.Dataset = "nope"
	if _, err := cfg.datasetsFor(); err == nil {
		t.Fatal("expected error")
	}
}

func TestExtSimMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and steps a simulation")
	}
	cfg := microConfig()
	res, err := ExtSim(cfg)
	checkResult(t, res, err)
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Every SNR cell parses.
	for _, row := range res.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
		}
	}
}
