package experiments

import (
	"fmt"

	"fillvoid/internal/core"
	"fillvoid/internal/interp"
	"fillvoid/internal/sim"
)

// ExtSim exercises the full method on genuinely simulated dynamics
// rather than the procedural analogs: an advection–diffusion run is
// stepped forward, an FCNN is pretrained on an early timestep, and
// reconstruction quality is tracked across later timesteps (zero-shot
// and with per-timestep Case 1 fine-tuning) against the linear
// baseline. This closes the loop on the paper's premise — the data
// really does come from a time-stepping solver here.
func ExtSim(cfg *Config) (*Result, error) {
	simCfg := sim.Config{
		NX: 32, NY: 32, NZ: 16,
		Diffusivity: 5e-4,
		FlowSpeed:   1,
		Seed:        cfg.Seed,
		Blobs:       5,
	}
	s, err := sim.New(simCfg)
	if err != nil {
		return nil, err
	}
	const (
		trainT   = 2
		evalFrac = 0.03
	)
	truth0 := s.At(trainT)
	cfg.logf("[ext-sim] pretraining on simulated timestep %d...", trainT)
	model, err := core.Pretrain(truth0, "scalar", cfg.sampler(0), cfg.coreOptions())
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID: "ext-sim",
		Title: fmt.Sprintf("Advection-diffusion simulation (%dx%dx%d): reconstruction across timesteps @%s",
			simCfg.NX, simCfg.NY, simCfg.NZ, fmtPct(evalFrac)),
		Columns: []string{"timestep", "linear", "fcnn_pretrained", "fcnn_finetuned"},
	}
	lin := &interp.Linear{Workers: cfg.Workers}
	for _, t := range []int{2, 6, 10, 14, 18} {
		truth := s.At(t)
		spec := interp.SpecOf(truth)
		cloud, _, err := cfg.sampler(1001+int64(t)).Sample(truth, "scalar", evalFrac)
		if err != nil {
			return nil, err
		}
		linRecon, err := lin.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		zero, err := model.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		tuned, err := model.Clone()
		if err != nil {
			return nil, err
		}
		if err := tuned.FineTune(truth, cfg.sampler(0), core.FineTuneAll, cfg.Scale.FineTuneEpochs); err != nil {
			return nil, err
		}
		ft, err := tuned.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(t), fmtF(snr(truth, linRecon)), fmtF(snr(truth, zero)), fmtF(snr(truth, ft)),
		})
		cfg.logf("[ext-sim] t=%d done", t)
	}
	res.Notes = append(res.Notes,
		"data source: conservative upwind advection-diffusion solver (internal/sim), not a procedural analog",
		"expected shape: pretrained quality decays as the scalar filaments and mixes; fine-tuning recovers it")
	return res, nil
}
