package experiments

import (
	"fmt"
	"time"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/features"
	"fillvoid/internal/interp"
	"fillvoid/internal/nn"
)

// Fig6 regenerates the hidden-layer-depth ablation: average SNR on the
// Isabel dataset when the FCNN has 1 through 9 hidden layers. The paper
// finds a sweet spot at five (≈28 dB there vs ≈20 at one layer and ≈25
// at nine).
func Fig6(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	res := &Result{
		ID:      "fig6",
		Title:   "Average SNR vs number of hidden layers (Isabel)",
		Columns: []string{"hidden_layers", "widths", "avg_snr_dB"},
	}
	evalFracs := []float64{0.01, 0.02, 0.03}
	widest := cfg.Scale.Hidden[0]
	for layers := 1; layers <= 9; layers++ {
		opts := cfg.coreOptions()
		opts.Hidden = nn.PyramidHidden(layers, widest)
		model, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts)
		if err != nil {
			return nil, err
		}
		total := 0.0
		for _, frac := range evalFracs {
			cloud, _, err := cfg.sampler(301).Sample(truth, gen.FieldName(), frac)
			if err != nil {
				return nil, err
			}
			recon, err := model.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			total += snr(truth, recon)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(layers), fmt.Sprint(opts.Hidden), fmtF(total / float64(len(evalFracs))),
		})
		cfg.logf("[fig6] %d hidden layers done", layers)
	}
	res.Notes = append(res.Notes,
		"expected shape: quality rises from 1 layer, peaks mid-depth, dips again at 9 (overfitting)")
	return res, nil
}

// Fig7 regenerates the training-fraction ablation: models trained on 1%
// samples only, 5% only, and the concatenated 1%+5% set, each evaluated
// across the full sampling sweep. The combined model should be strong
// at both ends; single-fraction models degrade at the opposite end.
func Fig7(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	variants := []struct {
		label     string
		fractions []float64
	}{
		{"train_1pct", []float64{0.01}},
		{"train_5pct", []float64{0.05}},
		{"train_1+5pct", []float64{0.01, 0.05}},
	}
	res := &Result{
		ID:      "fig7",
		Title:   "SNR vs sampling %: effect of the training sampling percentage (Isabel)",
		Columns: []string{"sampling", "train_1pct", "train_5pct", "train_1+5pct"},
	}
	models := make([]*core.FCNN, len(variants))
	for i, v := range variants {
		opts := cfg.coreOptions()
		opts.TrainFractions = v.fractions
		m, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts)
		if err != nil {
			return nil, err
		}
		models[i] = m
		cfg.logf("[fig7] trained %s", v.label)
	}
	for _, frac := range cfg.Scale.Fractions {
		cloud, _, err := cfg.sampler(401).Sample(truth, gen.FieldName(), frac)
		if err != nil {
			return nil, err
		}
		row := []string{fmtPct(frac)}
		for _, m := range models {
			recon, err := m.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(snr(truth, recon)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"expected shape: 1%-trained flat/weak at high sampling; 5%-trained weak at low; 1%+5% strong at both ends")
	return res, nil
}

// Fig8 regenerates the gradient-supervision ablation: SNR across the
// sampling sweep for the standard 4-output network (value + gradients)
// vs a value-only network.
func Fig8(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	res := &Result{
		ID:      "fig8",
		Title:   "SNR vs sampling %: gradient vs no-gradient output layer (Isabel)",
		Columns: []string{"sampling", "with_gradient", "without_gradient"},
	}
	withOpts := cfg.coreOptions()
	withoutOpts := cfg.coreOptions()
	withoutOpts.Features = features.Config{K: 5, WithGradients: false}
	withModel, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), withOpts)
	if err != nil {
		return nil, err
	}
	cfg.logf("[fig8] gradient model trained")
	withoutModel, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), withoutOpts)
	if err != nil {
		return nil, err
	}
	cfg.logf("[fig8] no-gradient model trained")
	for _, frac := range cfg.Scale.Fractions {
		cloud, _, err := cfg.sampler(501).Sample(truth, gen.FieldName(), frac)
		if err != nil {
			return nil, err
		}
		r1, err := withModel.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		r2, err := withoutModel.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{fmtPct(frac), fmtF(snr(truth, r1)), fmtF(snr(truth, r2))})
	}
	res.Notes = append(res.Notes,
		"expected shape: the gradient-supervised network tracks at or above the value-only network")
	return res, nil
}

// Fig14 regenerates the training-subset quality sweep: SNR across the
// sampling sweep when the FCNN trains on 100%, 50%, and 25% of the
// training rows. The paper finds the quality loss negligible.
func Fig14(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	res := &Result{
		ID:      "fig14",
		Title:   "SNR vs sampling %: training on 100/50/25% of the training data (Isabel)",
		Columns: []string{"sampling", "train_100pct", "train_50pct", "train_25pct"},
	}
	subsets := []float64{1.0, 0.5, 0.25}
	models := make([]*core.FCNN, len(subsets))
	for i, sub := range subsets {
		opts := cfg.coreOptions()
		if opts.MaxTrainRows > 0 {
			opts.MaxTrainRows = int(float64(opts.MaxTrainRows) * sub)
		} else if sub < 1 {
			// Unlimited base: emulate the subset by capping at the full
			// training-set size times the fraction.
			full := truth.Len() * 2 // ~99% + ~95% void rows
			opts.MaxTrainRows = int(float64(full) * sub)
		}
		m, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts)
		if err != nil {
			return nil, err
		}
		models[i] = m
		cfg.logf("[fig14] trained on %.0f%% of rows", sub*100)
	}
	for _, frac := range cfg.Scale.Fractions {
		cloud, _, err := cfg.sampler(601).Sample(truth, gen.FieldName(), frac)
		if err != nil {
			return nil, err
		}
		row := []string{fmtPct(frac)}
		for _, m := range models {
			recon, err := m.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(snr(truth, recon)))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"expected shape: the three curves nearly coincide (subsampling the training set is nearly free)")
	return res, nil
}

// Table1 regenerates the training-time table: wall-clock seconds for
// full training on each dataset at its (scaled) resolution, plus the
// Isabel double-resolution row.
func Table1(cfg *Config) (*Result, error) {
	res := &Result{
		ID:      "table1",
		Title:   fmt.Sprintf("Training time for %d epochs", cfg.Scale.Epochs),
		Columns: []string{"dataset", "resolution", "train_rows", "training_time_s"},
	}
	gens, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	type job struct {
		gen    datasets.Generator
		nx, ny int
		nz     int
	}
	var jobs []job
	for _, gen := range gens {
		nx, ny, nz := cfg.dims(gen)
		jobs = append(jobs, job{gen, nx, ny, nz})
		if gen.Name() == "isabel" {
			// The paper's Table I includes Isabel at 2x resolution.
			jobs = append(jobs, job{gen, nx * 2, ny * 2, nz * 2})
		}
	}
	for _, j := range jobs {
		truth := datasets.Volume(j.gen, j.nx, j.ny, j.nz, trainTimestep(j.gen))
		opts := cfg.coreOptions()
		start := time.Now()
		model, err := core.Pretrain(truth, j.gen.FieldName(), cfg.sampler(0), opts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		rows := "<= " + fmt.Sprint(opts.MaxTrainRows)
		if opts.MaxTrainRows == 0 {
			rows = "full"
		}
		_ = model
		res.Rows = append(res.Rows, []string{
			j.gen.Name(),
			fmt.Sprintf("%dx%dx%d", j.nx, j.ny, j.nz),
			rows,
			fmtF(elapsed),
		})
		cfg.logf("[table1] %s %dx%dx%d done in %.1fs", j.gen.Name(), j.nx, j.ny, j.nz, elapsed)
	}
	res.Notes = append(res.Notes,
		"paper (A100 GPU, full data): isabel 533s, isabel@2x 3737s, combustion 829s, ionization 5522s",
		"expected shape: time grows with resolution; isabel@2x >> isabel")
	return res, nil
}

// Table2 regenerates the training-time-vs-subset table for Isabel:
// 100%, 50% and 25% of the training rows. Time should fall roughly
// linearly with the subset size (the paper: 533s / 275s / 161s).
func Table2(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	res := &Result{
		ID:      "table2",
		Title:   fmt.Sprintf("Effect of training-set subsampling on training time (%d epochs, Isabel)", cfg.Scale.Epochs),
		Columns: []string{"pct_of_training_data", "training_time_s"},
	}
	base := cfg.coreOptions().MaxTrainRows
	if base == 0 {
		base = truth.Len() * 2
	}
	for _, sub := range []float64{1.0, 0.5, 0.25} {
		opts := cfg.coreOptions()
		opts.MaxTrainRows = int(float64(base) * sub)
		start := time.Now()
		if _, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f", sub*100),
			fmtF(time.Since(start).Seconds()),
		})
		cfg.logf("[table2] %.0f%% done", sub*100)
	}
	res.Notes = append(res.Notes,
		"expected shape: time scales ~linearly with the training-set fraction (paper: 533/275/161 s)")
	return res, nil
}
