package experiments

import (
	"fmt"
	"time"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/ensemble"
	"fillvoid/internal/interp"
	"fillvoid/internal/sampling"
)

// The ext* experiments go beyond the paper's published tables/figures
// to its stated future-work directions and implicit design choices:
//
//	ext-select       intelligent training-set creation (Section V)
//	ext-uncertainty  deep-ensemble uncertainty (Section V)
//	ext-case2        Case 1 vs Case 2 fine-tuning trade-off (Fig 5 text)
//	ext-samplers     sensitivity to the sampling method (Section II)

// ExtSelect compares uniform training-row selection (the paper's Table
// II protocol) against gradient-weighted selection at aggressive
// training-set reductions.
func ExtSelect(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	res := &Result{
		ID:      "ext-select",
		Title:   "Training-row selection: uniform vs gradient-weighted (Isabel)",
		Columns: []string{"rows_kept", "selection", "train_time_s", "snr_1pct", "snr_3pct"},
	}
	base := cfg.coreOptions().MaxTrainRows
	if base == 0 {
		base = truth.Len()
	}
	for _, keep := range []float64{0.5, 0.25, 0.1} {
		for _, sel := range []core.RowSelection{core.SelectUniform, core.SelectGradient} {
			opts := cfg.coreOptions()
			opts.MaxTrainRows = int(float64(base) * keep)
			opts.RowSelection = sel
			start := time.Now()
			model, err := core.Pretrain(truth, gen.FieldName(), cfg.sampler(0), opts)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start).Seconds()
			row := []string{fmt.Sprintf("%.0f%%", keep*100), sel.String(), fmtF(elapsed)}
			for _, frac := range []float64{0.01, 0.03} {
				cloud, _, err := cfg.sampler(901).Sample(truth, gen.FieldName(), frac)
				if err != nil {
					return nil, err
				}
				recon, err := model.Reconstruct(cloud, spec)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(snr(truth, recon)))
			}
			res.Rows = append(res.Rows, row)
			cfg.logf("[ext-select] keep=%.0f%% sel=%s done", keep*100, sel)
		}
	}
	res.Notes = append(res.Notes,
		"hypothesis (paper Section V): weighting the kept rows toward feature-rich regions preserves quality at aggressive reductions")
	return res, nil
}

// ExtUncertainty evaluates a deep ensemble: mean-reconstruction SNR vs
// a single model, plus the calibration of the predictive uncertainty.
func ExtUncertainty(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	truth := cfg.truthAt(gen, trainTimestep(gen))
	spec := interp.SpecOf(truth)
	const members = 4

	cfg.logf("[ext-uncertainty] training %d-member ensemble...", members)
	ens, err := ensemble.Pretrain(truth, gen.FieldName(), members, cfg.Seed+11, cfg.coreOptions())
	if err != nil {
		return nil, err
	}
	single, _, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:      "ext-uncertainty",
		Title:   fmt.Sprintf("Deep-ensemble (%d members) reconstruction and uncertainty calibration (Isabel)", members),
		Columns: []string{"sampling", "snr_single", "snr_ensemble", "err_sigma_corr", "coverage_2sigma"},
	}
	for _, frac := range []float64{0.01, 0.03, 0.05} {
		cloud, _, err := cfg.sampler(902).Sample(truth, gen.FieldName(), frac)
		if err != nil {
			return nil, err
		}
		sRecon, err := single.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		mean, sigma, err := ens.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		rep, err := ensemble.Calibrate(truth, mean, sigma)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmtPct(frac), fmtF(snr(truth, sRecon)), fmtF(snr(truth, mean)),
			fmt.Sprintf("%.3f", rep.Correlation), fmt.Sprintf("%.3f", rep.Coverage2Sigma),
		})
		cfg.logf("[ext-uncertainty] @%s done", fmtPct(frac))
	}
	res.Notes = append(res.Notes,
		"err_sigma_corr: Pearson correlation between |error| and predicted sigma (useful uncertainty is clearly positive)",
		"coverage_2sigma: fraction of truth within mean +/- 2 sigma")
	return res, nil
}

// ExtCase2 quantifies the Case 1 vs Case 2 fine-tuning trade-off the
// paper describes around Fig 5: epochs to recover quality on a new
// timestep vs per-timestep model storage.
func ExtCase2(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	model, _, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}
	target := cfg.truthAt(gen, trainTimestep(gen)+gen.NumTimesteps()/3)
	spec := interp.SpecOf(target)
	cloud, _, err := cfg.sampler(903).Sample(target, gen.FieldName(), 0.03)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:      "ext-case2",
		Title:   "Fine-tuning: Case 1 (all layers) vs Case 2 (last two layers)",
		Columns: []string{"mode", "epochs", "snr_dB", "stored_params_per_step", "tune_time_s"},
	}
	runs := []struct {
		mode   core.FineTuneMode
		epochs int
	}{
		{core.FineTuneAll, cfg.Scale.FineTuneEpochs},
		{core.FineTuneLastTwo, cfg.Scale.FineTuneEpochs},
		{core.FineTuneLastTwo, cfg.Scale.Case2Epochs},
	}
	for _, r := range runs {
		tuned, err := model.Clone()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := tuned.FineTune(target, cfg.sampler(0), r.mode, r.epochs); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		recon, err := tuned.Reconstruct(cloud, spec)
		if err != nil {
			return nil, err
		}
		stored := tuned.Network().ParamCount()
		if r.mode == core.FineTuneLastTwo {
			tuned.Network().FreezeAllButLast(2)
			stored = tuned.Network().TrainableParamCount()
			tuned.Network().UnfreezeAll()
		}
		res.Rows = append(res.Rows, []string{
			r.mode.String(), fmt.Sprint(r.epochs), fmtF(snr(target, recon)),
			fmt.Sprint(stored), fmtF(elapsed),
		})
		cfg.logf("[ext-case2] %s x%d done", r.mode, r.epochs)
	}
	res.Notes = append(res.Notes,
		"paper: Case 1 converges in ~10 epochs but stores the full model per step;",
		"Case 2 needs ~300-500 epochs but stores only the last two layers per step")
	return res, nil
}

// ExtSamplers measures how reconstruction quality depends on the in
// situ sampling method: the paper's importance sampler vs random and
// stratified baselines, for both the FCNN and linear reconstruction.
func ExtSamplers(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	model, truth, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}
	spec := interp.SpecOf(truth)
	res := &Result{
		ID:      "ext-samplers",
		Title:   "Reconstruction quality vs sampling method (Isabel)",
		Columns: []string{"sampler", "sampling", "fcnn_snr", "linear_snr"},
	}
	lin := &interp.Linear{Workers: cfg.Workers}
	for _, name := range []string{"importance", "random", "stratified"} {
		s, err := sampling.ByName(name, cfg.Seed+904)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.01, 0.03} {
			cloud, _, err := s.Sample(truth, gen.FieldName(), frac)
			if err != nil {
				return nil, err
			}
			fr, err := model.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			lr, err := lin.Reconstruct(cloud, spec)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, fmtPct(frac), fmtF(snr(truth, fr)), fmtF(snr(truth, lr)),
			})
		}
		cfg.logf("[ext-samplers] %s done", name)
	}
	res.Notes = append(res.Notes,
		"the paper adopts Biswas et al.'s importance sampler after observing better reconstructions than random sampling")
	return res, nil
}
