package experiments

import (
	"context"
	"fmt"
	"path/filepath"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/iso"
	"fillvoid/internal/recon"
	"fillvoid/internal/render"
)

// ExtViz measures reconstruction quality at the level of the
// visualization tasks the paper motivates sampling with (Section I):
// isosurface contouring and volume rendering. For each method it
// reports the Chamfer distance between the isosurface extracted from
// the reconstruction and from the original field (in grid units), and
// the image-space RMSE of a volume render against the original's
// render. Field-level SNR is included for reference.
func ExtViz(cfg *Config) (*Result, error) {
	gen := datasets.NewIsabel(cfg.Seed)
	model, truth, err := cfg.pretrained(gen)
	if err != nil {
		return nil, err
	}
	spec := interp.SpecOf(truth)
	const frac = 0.01
	cloud, _, err := cfg.sampler(905).Sample(truth, gen.FieldName(), frac)
	if err != nil {
		return nil, err
	}

	// Isovalue: one standard deviation below the mean picks out the
	// storm's low-pressure structure.
	st := truth.Stats()
	isovalue := st.Mean() - st.StdDev()
	truthMesh, err := iso.Extract(truth, isovalue)
	if err != nil {
		return nil, err
	}
	ropts := render.Options{Lo: st.Min(), Hi: st.Max(), Workers: cfg.Workers}
	truthImg, err := render.Render(truth, ropts)
	if err != nil {
		return nil, err
	}
	if cfg.OutDir != "" {
		if err := truthImg.WritePPMFile(filepath.Join(cfg.OutDir, "ext-viz_original.ppm")); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID:      "ext-viz",
		Title:   fmt.Sprintf("Visualization-task fidelity @%s sampling (Isabel, isovalue %.1f)", fmtPct(frac), isovalue),
		Columns: []string{"method", "field_snr_dB", "isosurface_chamfer", "render_rmse"},
	}

	evalOne := func(name string, vol *grid.Volume) error {
		mesh, err := iso.Extract(vol, isovalue)
		if err != nil {
			return err
		}
		chamfer := -1.0
		if mesh.NumTriangles() > 0 && truthMesh.NumTriangles() > 0 {
			chamfer, err = iso.ChamferDistance(truthMesh, mesh)
			if err != nil {
				return err
			}
		}
		img, err := render.Render(vol, ropts)
		if err != nil {
			return err
		}
		rmse, err := render.RMSE(truthImg, img)
		if err != nil {
			return err
		}
		if cfg.OutDir != "" {
			if err := img.WritePPMFile(filepath.Join(cfg.OutDir, "ext-viz_"+name+".ppm")); err != nil {
				return err
			}
		}
		res.Rows = append(res.Rows, []string{
			name, fmtF(snr(truth, vol)), fmt.Sprintf("%.4f", chamfer), fmtF(rmse),
		})
		cfg.logf("[ext-viz] %s done", name)
		return nil
	}

	methods, err := cfg.methods(model, "fcnn", "linear", "natural", "shepard", "nearest")
	if err != nil {
		return nil, err
	}
	plan, err := recon.NewPlan(cloud, spec)
	if err != nil {
		return nil, err
	}
	for _, m := range methods {
		vol, err := recon.Reconstruct(context.Background(), m, plan, recon.Full(spec))
		if err != nil {
			return nil, err
		}
		if err := evalOne(m.Name(), vol); err != nil {
			return nil, err
		}
	}
	res.Notes = append(res.Notes,
		"isosurface_chamfer: mean surface-to-surface distance in world units (-1 = no surface extracted)",
		"render_rmse: volume-render pixel RMSE vs the original (0-255 scale)",
		"expected shape: the field-SNR ordering carries over to both visualization metrics")
	return res, nil
}
