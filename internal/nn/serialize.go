package nn

import (
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// modelFile is the gob wire format for a saved network. Optimizer state
// is not persisted — a reloaded model is ready for inference or for
// fresh fine-tuning, matching the paper's deployment model (store the
// pretrained model once, fine-tune per timestep as needed).
type modelFile struct {
	Version int
	Config  Config
	Weights [][]float64
	Biases  [][]float64
	Frozen  []bool
	Losses  []float64
}

const modelVersion = 1

// Save writes the network to w in gob format. The weights, biases and
// loss history are snapshotted under the network's mutex before
// encoding, so Save is safe to call while another goroutine trains or
// fine-tunes the network (the snapshot is a consistent post-step state;
// see the Network ownership rule). Encoding itself runs outside the
// lock so a slow writer never stalls training.
func (n *Network) Save(w io.Writer) error {
	mf := n.snapshot()
	return gob.NewEncoder(w).Encode(&mf)
}

// snapshot copies the mutable state (weights, biases, freeze flags,
// losses) under the mutex into a detached modelFile.
func (n *Network) snapshot() modelFile {
	mf := modelFile{
		Version: modelVersion,
		Config:  n.cfg,
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	mf.Losses = append([]float64(nil), n.Losses...)
	for _, l := range n.layers {
		mf.Weights = append(mf.Weights, append([]float64(nil), l.w...))
		mf.Biases = append(mf.Biases, append([]float64(nil), l.b...))
		mf.Frozen = append(mf.Frozen, l.frozen)
	}
	return mf
}

// WriteStable writes the network's persistent state — the same fields
// Save encodes — in a canonical byte form: a JSON config header
// (length-prefixed) followed by little-endian weight/bias/loss arrays.
// Unlike gob, whose streams embed process-global type ids that shift
// with whatever the process happened to encode earlier, these bytes
// depend only on the values, so content addressing can hash them and
// get the same id for the same network in every process.
func (n *Network) WriteStable(w io.Writer) error {
	mf := n.snapshot()
	cfg, err := json.Marshal(mf.Config)
	if err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU64 := func(v uint64) error {
		var b [8]byte
		le.PutUint64(b[:], v)
		_, err := w.Write(b[:])
		return err
	}
	writeF64s := func(s []float64) error {
		if err := writeU64(uint64(len(s))); err != nil {
			return err
		}
		return binary.Write(w, le, s)
	}
	if err := writeU64(uint64(mf.Version)); err != nil {
		return err
	}
	if err := writeU64(uint64(len(cfg))); err != nil {
		return err
	}
	if _, err := w.Write(cfg); err != nil {
		return err
	}
	if err := writeU64(uint64(len(mf.Weights))); err != nil {
		return err
	}
	for i := range mf.Weights {
		if err := writeF64s(mf.Weights[i]); err != nil {
			return err
		}
		if err := writeF64s(mf.Biases[i]); err != nil {
			return err
		}
		var frozen uint64
		if mf.Frozen[i] {
			frozen = 1
		}
		if err := writeU64(frozen); err != nil {
			return err
		}
	}
	return writeF64s(mf.Losses)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", mf.Version)
	}
	n, err := New(mf.Config)
	if err != nil {
		return nil, err
	}
	if len(mf.Weights) != len(n.layers) || len(mf.Biases) != len(n.layers) {
		return nil, fmt.Errorf("nn: model has %d layers, config implies %d", len(mf.Weights), len(n.layers))
	}
	for i, l := range n.layers {
		if len(mf.Weights[i]) != len(l.w) || len(mf.Biases[i]) != len(l.b) {
			return nil, fmt.Errorf("nn: layer %d shape mismatch", i)
		}
		copy(l.w, mf.Weights[i])
		copy(l.b, mf.Biases[i])
		if i < len(mf.Frozen) {
			l.frozen = mf.Frozen[i]
		}
	}
	n.Losses = mf.Losses
	return n, nil
}

// SaveFile writes the model to path.
func (n *Network) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return n.Save(f)
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// TrainState is the complete resumable training state of a network:
// everything needed to continue an interrupted run bit-identically.
// Beyond what Save persists (config, weights, biases, freeze flags,
// loss history) it carries the Adam moment estimates and step counters
// per layer, the minibatch-shuffle generator state, and — when captured
// mid-TrainWithValidation — the early-stopping state. It is plain
// exported data, gob-encodable; internal/checkpoint writes it to disk
// atomically.
type TrainState struct {
	Version int
	Config  Config
	Weights [][]float64
	Biases  [][]float64
	Frozen  []bool
	Losses  []float64
	// Adam first/second moments and step counts, one entry per dense
	// layer, for the weight and bias parameter groups respectively.
	AdamWM, AdamWV [][]float64
	AdamBM, AdamBV [][]float64
	AdamWT, AdamBT []int
	// Shuffle is the minibatch permutation generator state.
	Shuffle uint64
	// Val is the early-stopping state of an in-progress
	// TrainWithValidation run (nil for plain TrainEpochs runs).
	Val *ValState
}

const trainStateVersion = 1

// Epoch returns the number of lifetime epochs completed at capture time.
func (ts *TrainState) Epoch() int { return len(ts.Losses) }

// CaptureTrainState snapshots the complete resumable training state
// under the network's mutex (safe against a concurrent Save/Clone, and
// called between epochs by the training loop itself).
func (n *Network) CaptureTrainState() *TrainState {
	ts := &TrainState{
		Version: trainStateVersion,
		Config:  n.cfg,
		Shuffle: n.shuffle.State(),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ts.Losses = append([]float64(nil), n.Losses...)
	for i, l := range n.layers {
		ts.Weights = append(ts.Weights, append([]float64(nil), l.w...))
		ts.Biases = append(ts.Biases, append([]float64(nil), l.b...))
		ts.Frozen = append(ts.Frozen, l.frozen)
		o := n.opts[i]
		ts.AdamWM = append(ts.AdamWM, append([]float64(nil), o.w.m...))
		ts.AdamWV = append(ts.AdamWV, append([]float64(nil), o.w.v...))
		ts.AdamBM = append(ts.AdamBM, append([]float64(nil), o.b.m...))
		ts.AdamBV = append(ts.AdamBV, append([]float64(nil), o.b.v...))
		ts.AdamWT = append(ts.AdamWT, o.w.t)
		ts.AdamBT = append(ts.AdamBT, o.b.t)
	}
	return ts
}

// Resume reconstructs a network from a captured TrainState. The
// returned network continues training exactly where the capture left
// off: same weights, optimizer moments, loss history, learning-rate
// schedule position, and shuffle-generator state, so
// resume(k epochs) + (N−k) epochs replays an uninterrupted N-epoch run
// bit for bit (given the same training data and worker count).
func Resume(ts *TrainState) (*Network, error) {
	if ts.Version != trainStateVersion {
		return nil, fmt.Errorf("nn: unsupported train-state version %d", ts.Version)
	}
	n, err := New(ts.Config)
	if err != nil {
		return nil, err
	}
	if len(ts.Weights) != len(n.layers) || len(ts.Biases) != len(n.layers) {
		return nil, fmt.Errorf("nn: train state has %d layers, config implies %d", len(ts.Weights), len(n.layers))
	}
	if len(ts.AdamWM) != len(n.layers) || len(ts.AdamWV) != len(n.layers) ||
		len(ts.AdamBM) != len(n.layers) || len(ts.AdamBV) != len(n.layers) ||
		len(ts.AdamWT) != len(n.layers) || len(ts.AdamBT) != len(n.layers) {
		return nil, errors.New("nn: train state optimizer shape mismatch")
	}
	for i, l := range n.layers {
		if len(ts.Weights[i]) != len(l.w) || len(ts.Biases[i]) != len(l.b) ||
			len(ts.AdamWM[i]) != len(l.w) || len(ts.AdamWV[i]) != len(l.w) ||
			len(ts.AdamBM[i]) != len(l.b) || len(ts.AdamBV[i]) != len(l.b) {
			return nil, fmt.Errorf("nn: train state layer %d shape mismatch", i)
		}
		copy(l.w, ts.Weights[i])
		copy(l.b, ts.Biases[i])
		if i < len(ts.Frozen) {
			l.frozen = ts.Frozen[i]
		}
		o := n.opts[i]
		copy(o.w.m, ts.AdamWM[i])
		copy(o.w.v, ts.AdamWV[i])
		copy(o.b.m, ts.AdamBM[i])
		copy(o.b.v, ts.AdamBV[i])
		o.w.t = ts.AdamWT[i]
		o.b.t = ts.AdamBT[i]
	}
	n.Losses = append([]float64(nil), ts.Losses...)
	n.shuffle.SetState(ts.Shuffle)
	return n, nil
}

// Clone deep-copies the network, including weights, freeze flags and
// loss history, with fresh optimizer state. Fine-tuning experiments
// clone the pretrained model per target timestep so the original stays
// untouched. Like Save, the copy is taken under the source network's
// mutex, so cloning is safe while the source trains.
func (n *Network) Clone() (*Network, error) {
	out, err := New(n.cfg)
	if err != nil {
		return nil, fmt.Errorf("nn: cloning network: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, l := range n.layers {
		copy(out.layers[i].w, l.w)
		copy(out.layers[i].b, l.b)
		out.layers[i].frozen = l.frozen
	}
	out.Losses = append([]float64(nil), n.Losses...)
	return out, nil
}
