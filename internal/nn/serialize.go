package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// modelFile is the gob wire format for a saved network. Optimizer state
// is not persisted — a reloaded model is ready for inference or for
// fresh fine-tuning, matching the paper's deployment model (store the
// pretrained model once, fine-tune per timestep as needed).
type modelFile struct {
	Version int
	Config  Config
	Weights [][]float64
	Biases  [][]float64
	Frozen  []bool
	Losses  []float64
}

const modelVersion = 1

// Save writes the network to w in gob format. The weights, biases and
// loss history are snapshotted under the network's mutex before
// encoding, so Save is safe to call while another goroutine trains or
// fine-tunes the network (the snapshot is a consistent post-step state;
// see the Network ownership rule). Encoding itself runs outside the
// lock so a slow writer never stalls training.
func (n *Network) Save(w io.Writer) error {
	mf := n.snapshot()
	return gob.NewEncoder(w).Encode(&mf)
}

// snapshot copies the mutable state (weights, biases, freeze flags,
// losses) under the mutex into a detached modelFile.
func (n *Network) snapshot() modelFile {
	mf := modelFile{
		Version: modelVersion,
		Config:  n.cfg,
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	mf.Losses = append([]float64(nil), n.Losses...)
	for _, l := range n.layers {
		mf.Weights = append(mf.Weights, append([]float64(nil), l.w...))
		mf.Biases = append(mf.Biases, append([]float64(nil), l.b...))
		mf.Frozen = append(mf.Frozen, l.frozen)
	}
	return mf
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", mf.Version)
	}
	n, err := New(mf.Config)
	if err != nil {
		return nil, err
	}
	if len(mf.Weights) != len(n.layers) || len(mf.Biases) != len(n.layers) {
		return nil, fmt.Errorf("nn: model has %d layers, config implies %d", len(mf.Weights), len(n.layers))
	}
	for i, l := range n.layers {
		if len(mf.Weights[i]) != len(l.w) || len(mf.Biases[i]) != len(l.b) {
			return nil, fmt.Errorf("nn: layer %d shape mismatch", i)
		}
		copy(l.w, mf.Weights[i])
		copy(l.b, mf.Biases[i])
		if i < len(mf.Frozen) {
			l.frozen = mf.Frozen[i]
		}
	}
	n.Losses = mf.Losses
	return n, nil
}

// SaveFile writes the model to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Clone deep-copies the network, including weights, freeze flags and
// loss history, with fresh optimizer state. Fine-tuning experiments
// clone the pretrained model per target timestep so the original stays
// untouched. Like Save, the copy is taken under the source network's
// mutex, so cloning is safe while the source trains.
func (n *Network) Clone() (*Network, error) {
	out, err := New(n.cfg)
	if err != nil {
		return nil, fmt.Errorf("nn: cloning network: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, l := range n.layers {
		copy(out.layers[i].w, l.w)
		copy(out.layers[i].b, l.b)
		out.layers[i].frozen = l.frozen
	}
	out.Losses = append([]float64(nil), n.Losses...)
	return out, nil
}
