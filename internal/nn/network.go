package nn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
	"fillvoid/internal/telemetry"
)

// ErrStopped is returned by the training entry points when the run's
// context is cancelled: training halts cleanly on the next epoch
// boundary (a final checkpoint is written first when a checkpoint sink
// is configured). The network is left in a consistent, resumable state.
var ErrStopped = errors.New("nn: training stopped")

// RunOptions controls one training run (TrainEpochsOpts /
// TrainWithValidationOpts). The zero value reproduces the plain
// blocking entry points.
type RunOptions struct {
	// Ctx, when non-nil, is polled at every epoch boundary; once it is
	// cancelled the run writes a final checkpoint (if Checkpoint is set)
	// and returns ErrStopped.
	Ctx context.Context
	// Checkpoint, when non-nil, receives the complete resumable training
	// state. It is called after every CheckpointEvery-th lifetime epoch
	// and once more on cancellation. An error from it aborts the run.
	Checkpoint func(*TrainState) error
	// CheckpointEvery is the lifetime-epoch period between periodic
	// checkpoints (<= 0 with a non-nil Checkpoint: only the final
	// cancellation checkpoint is written).
	CheckpointEvery int
	// ResumeVal restores mid-run early-stopping state captured in a
	// previous TrainWithValidationOpts checkpoint. Ignored by
	// TrainEpochsOpts.
	ResumeVal *ValState
}

// checkpointDue reports whether a checkpoint should follow the given
// 0-based lifetime epoch.
func (o RunOptions) checkpointDue(lifetimeEpoch int) bool {
	return o.Checkpoint != nil && o.CheckpointEvery > 0 && (lifetimeEpoch+1)%o.CheckpointEvery == 0
}

// stopped reports whether the run's context has been cancelled.
func (o RunOptions) stopped() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Config describes a fully connected regression network.
type Config struct {
	// In and Out are the input/output widths. The paper's reconstructor
	// uses In = 23 (five neighbors × (x,y,z,value) + the void point's
	// x,y,z) and Out = 4 (value + three gradients).
	In, Out int
	// Hidden lists the hidden layer widths. The paper settles on five
	// hidden layers, 512 down to 16 (Fig 5/6).
	Hidden []int
	// Seed drives weight initialization and minibatch shuffling.
	Seed int64
	// BatchSize is the minibatch size; default 256.
	BatchSize int
	// Workers bounds training/inference parallelism (<= 0: all cores).
	Workers int
	// Adam holds the optimizer hyperparameters.
	Adam AdamConfig
	// LRDecayEvery applies LRDecayFactor to the learning rate every
	// LRDecayEvery epochs (0 disables scheduling).
	LRDecayEvery int
	// LRDecayFactor is the multiplicative step decay (default 0.5 when
	// LRDecayEvery > 0).
	LRDecayFactor float64
}

// PaperHidden returns the paper's hidden-layer sizes (five layers,
// 512–16).
func PaperHidden() []int { return []int{512, 256, 64, 32, 16} }

// PyramidHidden returns n hidden layers shrinking geometrically from
// `widest` down to a floor of 16; used by the Fig 6 depth ablation,
// which varies the number of hidden layers from 1 to 9. The floor
// matters: deep stacks that pinch below ~8 units develop dead-ReLU
// bottlenecks and collapse outright, which is a pathology of the
// architecture generator rather than the depth effect the ablation is
// measuring (the paper's deep variants stay wide: 512 down to 16).
func PyramidHidden(n, widest int) []int {
	if n < 1 {
		n = 1
	}
	sizes := make([]int, n)
	w := widest
	for i := 0; i < n; i++ {
		if w < 16 {
			w = 16
		}
		sizes[i] = w
		w /= 2
	}
	return sizes
}

// Network is a trained or trainable FCNN.
//
// Ownership rule: at most one goroutine may train (TrainEpochs,
// TrainWithValidation, FineTune paths) or Load-copy into a network at a
// time, but Save and Clone are safe to call concurrently with training:
// every weight mutation happens under an internal mutex that Save and
// Clone also take while snapshotting. Server-side model registries rely
// on this to checkpoint or hot-copy a model while it fine-tunes.
type Network struct {
	cfg    Config
	layers []*dense
	opts   []*adamPair
	// mu guards weight/bias mutation (optimizer steps, best-weight
	// restore) and Losses appends against concurrent Save/Clone
	// snapshots. Gradient computation runs outside the lock; only the
	// apply step takes it, so the cost per minibatch is one uncontended
	// lock.
	mu sync.Mutex
	// obs, when set, receives one telemetry.EpochStat per training
	// epoch (loss, learning rate, throughput, trainable params). It is
	// called synchronously between epochs and is not serialized.
	obs telemetry.TrainObserver
	// Losses records the mean training loss of every epoch ever run on
	// this network, in order — full training followed by any
	// fine-tuning epochs (Fig 12 plots this).
	Losses []float64
	// shuffle drives minibatch permutation. Its entire state is one
	// uint64 that advances epoch by epoch across every training call on
	// this network, and it is captured/restored by TrainState — the key
	// to bit-identical crash/resume replay. Each epoch's permutation is
	// a fresh identity shuffled once, so the permutation is a pure
	// function of the generator state at that epoch.
	shuffle *mathutil.SplitMix
}

type adamPair struct {
	w, b *adam
}

// New constructs a network with He-initialized weights.
func New(cfg Config) (*Network, error) {
	if cfg.In < 1 || cfg.Out < 1 {
		return nil, fmt.Errorf("nn: invalid in/out %d/%d", cfg.In, cfg.Out)
	}
	for _, h := range cfg.Hidden {
		if h < 1 {
			return nil, fmt.Errorf("nn: invalid hidden width %d", h)
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	cfg.Adam = cfg.Adam.withDefaults()
	n := &Network{cfg: cfg, shuffle: mathutil.NewSplitMix(cfg.Seed ^ 0x7a21b3)}
	widths := append(append([]int{cfg.In}, cfg.Hidden...), cfg.Out)
	rng := mathutil.NewRNG(cfg.Seed)
	for i := 0; i+1 < len(widths); i++ {
		relu := i+2 < len(widths) // last layer is linear
		l := newDense(widths[i], widths[i+1], relu)
		l.initHe(rng)
		n.layers = append(n.layers, l)
		n.opts = append(n.opts, &adamPair{w: newAdam(len(l.w)), b: newAdam(len(l.b))})
	}
	return n, nil
}

// Config returns the construction configuration.
func (n *Network) Config() Config { return n.cfg }

// SetObserver installs (or clears, with nil) the per-epoch training
// observer. The observer is invoked synchronously after every epoch of
// TrainEpochs / TrainWithValidation with monotonically increasing
// lifetime epoch indices; it is not copied by Clone nor persisted by
// Save.
func (n *Network) SetObserver(o telemetry.TrainObserver) { n.obs = o }

// Observer returns the installed per-epoch observer (nil when unset).
func (n *Network) Observer() telemetry.TrainObserver { return n.obs }

// NumLayers returns the number of dense layers (hidden + output).
func (n *Network) NumLayers() int { return len(n.layers) }

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += l.paramCount()
	}
	return total
}

// SetTrainable marks layer i (0-based) trainable or frozen. Frozen
// layers still participate in forward/backward but skip updates.
func (n *Network) SetTrainable(i int, trainable bool) error {
	if i < 0 || i >= len(n.layers) {
		return fmt.Errorf("nn: layer %d out of range [0,%d)", i, len(n.layers))
	}
	n.layers[i].frozen = !trainable
	return nil
}

// FreezeAllButLast freezes every layer except the last k — the paper's
// Case 2 fine-tuning trains only the last two layers.
func (n *Network) FreezeAllButLast(k int) {
	for i, l := range n.layers {
		l.frozen = i < len(n.layers)-k
	}
}

// UnfreezeAll marks every layer trainable (the paper's Case 1).
func (n *Network) UnfreezeAll() {
	for _, l := range n.layers {
		l.frozen = false
	}
}

// TrainableParamCount counts parameters in unfrozen layers — the extra
// storage needed per timestep under Case 2 (only the last two layers
// change, so only they must be stored per timestep).
func (n *Network) TrainableParamCount() int {
	total := 0
	for _, l := range n.layers {
		if !l.frozen {
			total += l.paramCount()
		}
	}
	return total
}

// Predict runs batched inference in parallel and returns the (rows ×
// Out) prediction matrix.
func (n *Network) Predict(x *Matrix) (*Matrix, error) {
	if x.Cols != n.cfg.In {
		return nil, fmt.Errorf("nn: input width %d, want %d", x.Cols, n.cfg.In)
	}
	out := NewMatrix(x.Rows, n.cfg.Out)
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	parallel.ForChunked(x.Rows, workers, func(lo, hi int) {
		n.forwardShard(x.SliceRows(lo, hi), out.SliceRows(lo, hi), nil, nil)
	})
	return out, nil
}

// forwardShard runs the full forward pass for a shard. When zs/as are
// non-nil they receive the per-layer caches needed for backward.
func (n *Network) forwardShard(x, out *Matrix, zs, as []*Matrix) {
	cur := x
	for li, l := range n.layers {
		var z, a *Matrix
		if zs != nil {
			z, a = zs[li], as[li]
		} else {
			z = NewMatrix(cur.Rows, l.out)
			if li == len(n.layers)-1 {
				a = out
			} else {
				a = NewMatrix(cur.Rows, l.out)
			}
		}
		l.forward(cur, z, a)
		cur = a
	}
	if zs != nil && out != nil {
		copy(out.Data, as[len(as)-1].Data)
	}
}

// Loss returns the mean squared error of predictions against targets,
// averaged over all elements.
func Loss(pred, target *Matrix) (float64, error) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		return 0, errors.New("nn: loss shape mismatch")
	}
	if len(pred.Data) == 0 {
		return 0, nil
	}
	s := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	return s / float64(len(pred.Data)), nil
}

// TrainEpochs runs `epochs` epochs of minibatch Adam on (x, y) and
// returns the per-epoch mean losses (also appended to n.Losses).
// Training is deterministic for a fixed config, seed, and worker count.
func (n *Network) TrainEpochs(x, y *Matrix, epochs int) ([]float64, error) {
	return n.TrainEpochsOpts(x, y, epochs, RunOptions{})
}

// TrainEpochsOpts is TrainEpochs with run controls: context cancellation
// stops the run on the next epoch boundary (returning ErrStopped with
// the losses so far), and a checkpoint sink receives the complete
// resumable training state on the configured period. Training resumed
// from such a state replays bit-identically: the minibatch permutation
// generator's position is part of the state, and each epoch's
// permutation depends only on that position.
func (n *Network) TrainEpochsOpts(x, y *Matrix, epochs int, run RunOptions) ([]float64, error) {
	if x.Rows != y.Rows {
		return nil, errors.New("nn: x/y row mismatch")
	}
	if x.Cols != n.cfg.In || y.Cols != n.cfg.Out {
		return nil, fmt.Errorf("nn: train shapes (%d,%d), want (%d,%d)", x.Cols, y.Cols, n.cfg.In, n.cfg.Out)
	}
	if x.Rows == 0 {
		return nil, errors.New("nn: empty training set")
	}
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	batch := n.cfg.BatchSize
	if batch > x.Rows {
		batch = x.Rows
	}

	perm := make([]int, x.Rows)

	// Per-worker scratch: gradient buffers and activation caches sized
	// for the largest shard.
	shardCap := (batch + workers - 1) / workers
	scratch := make([]*trainScratch, workers)
	for w := range scratch {
		scratch[w] = n.newTrainScratch(shardCap)
	}
	gw := make([][]float64, len(n.layers))
	gb := make([][]float64, len(n.layers))
	for li, l := range n.layers {
		gw[li] = make([]float64, len(l.w))
		gb[li] = make([]float64, len(l.b))
	}
	bx := NewMatrix(batch, x.Cols)
	by := NewMatrix(batch, y.Cols)

	epochLosses := make([]float64, 0, epochs)
	adamCfg := n.cfg.Adam
	// epochBase keeps observer epoch indices — and the decay schedule —
	// monotone across repeated TrainEpochs calls: fine-tuning and the
	// one-epoch inner calls of TrainWithValidation continue the lifetime
	// count instead of restarting it, so LRDecayEvery fires at lifetime
	// epochs k, 2k, ... no matter how training is sliced into calls.
	epochBase := len(n.Losses)
	var epochStart time.Time
	if n.obs != nil {
		epochStart = time.Now()
	}
	for e := 0; e < epochs; e++ {
		if run.stopped() {
			if err := n.finalCheckpoint(run); err != nil {
				return epochLosses, err
			}
			return epochLosses, ErrStopped
		}
		adamCfg.LearningRate = n.LearningRateAt(epochBase + e)
		// A fresh identity permutation shuffled once: the epoch's batch
		// order is a pure function of the generator state, which a
		// checkpoint restores exactly.
		for i := range perm {
			perm[i] = i
		}
		n.shuffle.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		totalLoss := 0.0
		for start := 0; start < x.Rows; start += batch {
			end := start + batch
			if end > x.Rows {
				end = x.Rows
			}
			bn := end - start
			for i := 0; i < bn; i++ {
				copy(bx.Row(i), x.Row(perm[start+i]))
				copy(by.Row(i), y.Row(perm[start+i]))
			}
			loss := n.trainBatch(bx.SliceRows(0, bn), by.SliceRows(0, bn), scratch, gw, gb, workers, adamCfg)
			// Weight each batch's mean loss by its row count so the
			// epoch mean is the true dataset MSE even when the final
			// minibatch is partial (rows % batch != 0).
			totalLoss += loss * float64(bn)
		}
		meanLoss := totalLoss / float64(x.Rows)
		epochLosses = append(epochLosses, meanLoss)
		// Losses is appended per epoch (not once at the end) so a
		// checkpoint taken after any epoch sees the loss history the
		// resumed run will continue from.
		n.mu.Lock()
		n.Losses = append(n.Losses, meanLoss)
		n.mu.Unlock()
		if n.obs != nil {
			now := time.Now()
			d := now.Sub(epochStart)
			epochStart = now
			eps := 0.0
			if secs := d.Seconds(); secs > 0 {
				eps = float64(x.Rows) / secs
			}
			n.obs.ObserveEpoch(telemetry.EpochStat{
				Epoch:           epochBase + e,
				Loss:            meanLoss,
				LearningRate:    adamCfg.LearningRate,
				Examples:        x.Rows,
				ExamplesPerSec:  eps,
				TrainableParams: n.TrainableParamCount(),
				DurationNS:      int64(d),
			})
		}
		if run.checkpointDue(epochBase + e) {
			if err := run.Checkpoint(n.CaptureTrainState()); err != nil {
				return epochLosses, fmt.Errorf("nn: checkpoint at epoch %d: %w", epochBase+e, err)
			}
		}
	}
	return epochLosses, nil
}

// finalCheckpoint writes the cancellation checkpoint, if configured.
func (n *Network) finalCheckpoint(run RunOptions) error {
	if run.Checkpoint == nil {
		return nil
	}
	if err := run.Checkpoint(n.CaptureTrainState()); err != nil {
		return fmt.Errorf("nn: final checkpoint: %w", err)
	}
	return nil
}

// LearningRateAt returns the learning rate in effect during the given
// 0-based lifetime epoch under the configured step-decay schedule: the
// base Adam rate multiplied by LRDecayFactor once per completed
// LRDecayEvery-epoch interval. It is a pure function of the config and
// the epoch index, so the decayed rate survives any slicing of training
// into calls — and Save/Load, since the lifetime epoch count (len of
// Losses) is persisted.
func (n *Network) LearningRateAt(lifetimeEpoch int) float64 {
	lr := n.cfg.Adam.LearningRate
	if n.cfg.LRDecayEvery <= 0 || lifetimeEpoch <= 0 {
		return lr
	}
	factor := n.cfg.LRDecayFactor
	if factor <= 0 || factor > 1 {
		factor = 0.5
	}
	for i := 0; i < lifetimeEpoch/n.cfg.LRDecayEvery; i++ {
		lr *= factor
	}
	return lr
}

// ValState is the early-stopping state of an in-progress
// TrainWithValidation run: everything beyond the network itself that a
// checkpoint must carry for the resumed run to behave identically —
// best-so-far validation loss and weights, the patience counter, and
// the loss histories accumulated so far in the run.
type ValState struct {
	Best        float64
	Bad         int
	BestWeights [][]float64
	BestBiases  [][]float64
	TrainLosses []float64
	ValLosses   []float64
}

// clone deep-copies the state so a checkpoint cannot alias live buffers.
func (v *ValState) clone() *ValState {
	if v == nil {
		return nil
	}
	cp := &ValState{Best: v.Best, Bad: v.Bad}
	for _, w := range v.BestWeights {
		cp.BestWeights = append(cp.BestWeights, append([]float64(nil), w...))
	}
	for _, b := range v.BestBiases {
		cp.BestBiases = append(cp.BestBiases, append([]float64(nil), b...))
	}
	cp.TrainLosses = append([]float64(nil), v.TrainLosses...)
	cp.ValLosses = append([]float64(nil), v.ValLosses...)
	return cp
}

// TrainWithValidation trains like TrainEpochs but holds out (vx, vy)
// for per-epoch validation and stops early when the validation loss has
// not improved for `patience` consecutive epochs, restoring the weights
// of the best epoch. It returns the per-epoch training and validation
// losses (equal length, ending at the stopping epoch).
func (n *Network) TrainWithValidation(x, y, vx, vy *Matrix, epochs, patience int) (trainLosses, valLosses []float64, err error) {
	return n.TrainWithValidationOpts(x, y, vx, vy, epochs, patience, RunOptions{})
}

// TrainWithValidationOpts is TrainWithValidation with run controls (see
// RunOptions). Checkpoints taken here additionally carry the
// early-stopping state; pass the loaded state back via run.ResumeVal —
// along with a network restored by Resume — and the continued run
// produces bit-identical weights and loss history to one that was never
// interrupted. `epochs` is the number of epochs to run in this call
// (on resume: the original budget minus the epochs already recorded).
// The returned loss histories include the resumed-over prefix, so they
// always span the whole logical run.
func (n *Network) TrainWithValidationOpts(x, y, vx, vy *Matrix, epochs, patience int, run RunOptions) (trainLosses, valLosses []float64, err error) {
	if vx.Rows != vy.Rows || vx.Rows == 0 {
		return nil, nil, errors.New("nn: empty or mismatched validation set")
	}
	if patience < 1 {
		patience = 10
	}
	best := math.Inf(1)
	bad := 0
	var bestW, bestB [][]float64
	if rv := run.ResumeVal; rv != nil {
		best = rv.Best
		bad = rv.Bad
		for _, w := range rv.BestWeights {
			bestW = append(bestW, append([]float64(nil), w...))
		}
		for _, b := range rv.BestBiases {
			bestB = append(bestB, append([]float64(nil), b...))
		}
		trainLosses = append(trainLosses, rv.TrainLosses...)
		valLosses = append(valLosses, rv.ValLosses...)
	}
	snapshot := func() {
		bestW = bestW[:0]
		bestB = bestB[:0]
		for _, l := range n.layers {
			bestW = append(bestW, append([]float64(nil), l.w...))
			bestB = append(bestB, append([]float64(nil), l.b...))
		}
	}
	capture := func() *TrainState {
		ts := n.CaptureTrainState()
		ts.Val = (&ValState{
			Best: best, Bad: bad,
			BestWeights: bestW, BestBiases: bestB,
			TrainLosses: trainLosses, ValLosses: valLosses,
		}).clone()
		return ts
	}
	// The observer is driven from this loop (not the inner TrainEpochs
	// calls) so each stat carries the epoch's validation loss too.
	obs := n.obs
	n.obs = nil
	defer func() { n.obs = obs }()
	for e := 0; e < epochs; e++ {
		if run.stopped() {
			if run.Checkpoint != nil {
				if cerr := run.Checkpoint(capture()); cerr != nil {
					return trainLosses, valLosses, fmt.Errorf("nn: final checkpoint: %w", cerr)
				}
			}
			return trainLosses, valLosses, ErrStopped
		}
		epochStart := time.Now()
		tl, err := n.TrainEpochs(x, y, 1)
		if err != nil {
			return nil, nil, err
		}
		pred, err := n.Predict(vx)
		if err != nil {
			return nil, nil, err
		}
		vl, err := Loss(pred, vy)
		if err != nil {
			return nil, nil, err
		}
		trainLosses = append(trainLosses, tl[0])
		valLosses = append(valLosses, vl)
		if obs != nil {
			d := time.Since(epochStart)
			eps := 0.0
			if secs := d.Seconds(); secs > 0 {
				eps = float64(x.Rows) / secs
			}
			obs.ObserveEpoch(telemetry.EpochStat{
				Epoch:           len(n.Losses) - 1,
				Loss:            tl[0],
				ValLoss:         vl,
				ValLossValid:    true,
				LearningRate:    n.LearningRateAt(len(n.Losses) - 1),
				Examples:        x.Rows,
				ExamplesPerSec:  eps,
				TrainableParams: n.TrainableParamCount(),
				DurationNS:      int64(d),
			})
		}
		if vl < best {
			best = vl
			bad = 0
			snapshot()
		} else {
			bad++
			if bad >= patience {
				break
			}
		}
		if run.checkpointDue(len(n.Losses) - 1) {
			if err := run.Checkpoint(capture()); err != nil {
				return trainLosses, valLosses, fmt.Errorf("nn: checkpoint at epoch %d: %w", len(n.Losses)-1, err)
			}
		}
	}
	if bestW != nil {
		n.mu.Lock()
		for i, l := range n.layers {
			copy(l.w, bestW[i])
			copy(l.b, bestB[i])
		}
		n.mu.Unlock()
	}
	return trainLosses, valLosses, nil
}

// trainScratch holds one worker's forward caches, gradient buffers and
// backprop temporaries.
type trainScratch struct {
	zs, as []*Matrix
	dA     []*Matrix
	gw     [][]float64
	gb     [][]float64
}

func (n *Network) newTrainScratch(rows int) *trainScratch {
	s := &trainScratch{}
	for _, l := range n.layers {
		s.zs = append(s.zs, NewMatrix(rows, l.out))
		s.as = append(s.as, NewMatrix(rows, l.out))
		s.dA = append(s.dA, NewMatrix(rows, l.out))
		s.gw = append(s.gw, make([]float64, len(l.w)))
		s.gb = append(s.gb, make([]float64, len(l.b)))
	}
	return s
}

// trainBatch computes the batch gradient with data-parallel shards,
// reduces the per-worker gradients in fixed order, and applies one Adam
// step per unfrozen layer. It returns the batch's mean loss.
func (n *Network) trainBatch(bx, by *Matrix, scratch []*trainScratch, gw, gb [][]float64, workers int, adamCfg AdamConfig) float64 {
	bn := bx.Rows
	if workers > bn {
		workers = bn
	}
	chunk := (bn + workers - 1) / workers
	losses := make([]float64, workers)
	parallel.ForChunked(bn, workers, func(lo, hi int) {
		w := lo / chunk
		losses[w] = n.shardGradient(bx.SliceRows(lo, hi), by.SliceRows(lo, hi), scratch[w], bn)
	})
	// Fixed-order reduction keeps training deterministic.
	for li := range n.layers {
		gwl, gbl := gw[li], gb[li]
		for i := range gwl {
			gwl[i] = 0
		}
		for i := range gbl {
			gbl[i] = 0
		}
		for w := 0; w < workers; w++ {
			sw := scratch[w].gw[li]
			for i, v := range sw {
				gwl[i] += v
			}
			sb := scratch[w].gb[li]
			for i, v := range sb {
				gbl[i] += v
			}
		}
	}
	// The apply step mutates weights under n.mu so a concurrent Save or
	// Clone snapshots a consistent parameter set.
	n.mu.Lock()
	for li, l := range n.layers {
		if l.frozen {
			continue
		}
		n.opts[li].w.step(l.w, gw[li], adamCfg)
		n.opts[li].b.step(l.b, gb[li], adamCfg)
	}
	n.mu.Unlock()
	total := 0.0
	for _, v := range losses {
		total += v
	}
	return total / float64(bn*by.Cols)
}

// shardGradient runs forward + backward over one shard, accumulating
// gradients into the scratch buffers (zeroed here) and returning the
// shard's summed squared error.
func (n *Network) shardGradient(sx, sy *Matrix, s *trainScratch, batchTotal int) float64 {
	rows := sx.Rows
	nl := len(n.layers)
	zs := make([]*Matrix, nl)
	as := make([]*Matrix, nl)
	dA := make([]*Matrix, nl)
	for li := range n.layers {
		zs[li] = s.zs[li].SliceRows(0, rows)
		as[li] = s.as[li].SliceRows(0, rows)
		dA[li] = s.dA[li].SliceRows(0, rows)
		for i := range s.gw[li] {
			s.gw[li][i] = 0
		}
		for i := range s.gb[li] {
			s.gb[li][i] = 0
		}
	}
	n.forwardShard(sx, nil, zs, as)

	// d(MSE)/d(pred) with the MSE normalized over batch*out elements.
	pred := as[nl-1]
	scale := 2 / float64(batchTotal*sy.Cols)
	sse := 0.0
	dLast := dA[nl-1]
	for i := range pred.Data {
		d := pred.Data[i] - sy.Data[i]
		sse += d * d
		dLast.Data[i] = d * scale
	}

	for li := nl - 1; li >= 0; li-- {
		in := sx
		if li > 0 {
			in = as[li-1]
		}
		var dX *Matrix
		if li > 0 {
			dX = dA[li-1]
		}
		n.layers[li].backward(in, zs[li], dA[li], s.gw[li], s.gb[li], dX)
	}
	return sse
}
