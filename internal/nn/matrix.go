// Package nn is a from-scratch fully-connected neural network engine:
// dense layers with ReLU activations, mean-squared-error loss, the Adam
// optimizer, minibatch training with data-parallel gradient computation
// across CPU cores, per-layer freezing for transfer-learning
// fine-tuning (the paper's Case 2), and gob-based model serialization.
// It implements exactly the model family the paper trains — small MLP
// regressors — with no external dependencies.
package nn

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major float64 matrix. Rows are samples
// throughout this package: X is (batch × features).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, errors.New("nn: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SliceRows returns a view (shared storage) of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}
