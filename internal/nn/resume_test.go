package nn

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"math"
	"testing"
)

// gobRoundTrip encodes and re-decodes a TrainState, as the checkpoint
// layer does on disk.
func gobRoundTrip(t *testing.T, ts *TrainState) *TrainState {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ts); err != nil {
		t.Fatalf("encoding train state: %v", err)
	}
	var out TrainState
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decoding train state: %v", err)
	}
	return &out
}

// resumeCfg pins Workers: the fixed-order gradient reduction makes
// training deterministic only for a fixed worker count, so the
// determinism proofs must not float with the machine.
func resumeCfg() Config {
	return Config{
		In: 2, Out: 1, Hidden: []int{12, 6},
		Seed: 41, BatchSize: 16, Workers: 2,
		LRDecayEvery: 4, LRDecayFactor: 0.5,
	}
}

// resumeData builds a deterministic regression set (no RNG involved).
func resumeData(rows int) (*Matrix, *Matrix) {
	x := NewMatrix(rows, 2)
	y := NewMatrix(rows, 1)
	for i := 0; i < rows; i++ {
		a := float64(i%13)/6.0 - 1.0
		b := float64(i%7)/3.0 - 1.0
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, math.Sin(2*a)+0.5*b*b)
	}
	return x, y
}

// mustEqualState asserts two train states are bit-identical in every
// field that determinism covers: weights, biases, optimizer moments and
// step counts, loss history, and the shuffle-generator position.
func mustEqualState(t *testing.T, got, want *TrainState) {
	t.Helper()
	if got.Shuffle != want.Shuffle {
		t.Fatalf("shuffle state %d != %d", got.Shuffle, want.Shuffle)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("loss history length %d != %d", len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if got.Losses[i] != want.Losses[i] {
			t.Fatalf("loss[%d] = %v != %v", i, got.Losses[i], want.Losses[i])
		}
	}
	eq2 := func(name string, a, b [][]float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s layer count %d != %d", name, len(a), len(b))
		}
		for i := range b {
			for j := range b[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s[%d][%d] = %v != %v (not bit-identical)", name, i, j, a[i][j], b[i][j])
				}
			}
		}
	}
	eq2("weights", got.Weights, want.Weights)
	eq2("biases", got.Biases, want.Biases)
	eq2("adam.wm", got.AdamWM, want.AdamWM)
	eq2("adam.wv", got.AdamWV, want.AdamWV)
	eq2("adam.bm", got.AdamBM, want.AdamBM)
	eq2("adam.bv", got.AdamBV, want.AdamBV)
	for i := range want.AdamWT {
		if got.AdamWT[i] != want.AdamWT[i] || got.AdamBT[i] != want.AdamBT[i] {
			t.Fatalf("adam step counts differ at layer %d", i)
		}
	}
}

// TestResumeBitIdenticalTrainEpochs is the core determinism proof:
// train N epochs straight through, versus train k epochs, capture,
// Resume into a fresh network, train the remaining N−k — the final
// states must match bit for bit (weights, Adam moments, losses, RNG).
func TestResumeBitIdenticalTrainEpochs(t *testing.T) {
	const total, k = 10, 4
	x, y := resumeData(120)

	full, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.TrainEpochs(x, y, total); err != nil {
		t.Fatal(err)
	}
	want := full.CaptureTrainState()

	split, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := split.TrainEpochs(x, y, k); err != nil {
		t.Fatal(err)
	}
	mid := split.CaptureTrainState()
	if mid.Epoch() != k {
		t.Fatalf("mid-capture epoch = %d, want %d", mid.Epoch(), k)
	}

	resumed, err := Resume(mid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainEpochs(x, y, total-k); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, resumed.CaptureTrainState(), want)
}

// TestResumeSurvivesSerialization resumes from a state that made a gob
// round trip through the checkpoint layer's encoding, not just an
// in-memory pointer — proving the serialized form is complete.
func TestResumeSurvivesSerialization(t *testing.T) {
	const total, k = 8, 3
	x, y := resumeData(90)

	full, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.TrainEpochs(x, y, total); err != nil {
		t.Fatal(err)
	}
	want := full.CaptureTrainState()

	split, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	var captured *TrainState
	_, err = split.TrainEpochsOpts(x, y, k, RunOptions{
		CheckpointEvery: k,
		Checkpoint:      func(ts *TrainState) error { captured = ts; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil || captured.Epoch() != k {
		t.Fatalf("expected a checkpoint at epoch %d, got %+v", k, captured)
	}
	restored := gobRoundTrip(t, captured)
	resumed, err := Resume(restored)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainEpochs(x, y, total-k); err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, resumed.CaptureTrainState(), want)
}

// TestResumeBitIdenticalWithValidation proves the same for the
// early-stopping path: the checkpointed ValState (best loss, patience
// counter, best weights, histories) resumes exactly.
func TestResumeBitIdenticalWithValidation(t *testing.T) {
	const total, k, patience = 9, 4, 50
	x, y := resumeData(120)
	vx, vy := resumeData(30)

	full, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	fullTL, fullVL, err := full.TrainWithValidation(x, y, vx, vy, total, patience)
	if err != nil {
		t.Fatal(err)
	}
	want := full.CaptureTrainState()

	split, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	var captured *TrainState
	_, _, err = split.TrainWithValidationOpts(x, y, vx, vy, k, patience, RunOptions{
		CheckpointEvery: k,
		Checkpoint:      func(ts *TrainState) error { captured = ts; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil || captured.Epoch() != k || captured.Val == nil {
		t.Fatalf("expected a validation checkpoint at epoch %d, got %+v", k, captured)
	}

	// NOTE: the split run's TrainWithValidationOpts call above ran to its
	// own completion (k epochs) and restored best weights; resume from
	// the *checkpoint*, which predates that restore — exactly what a
	// crashed process would load.
	restored := gobRoundTrip(t, captured)
	resumed, err := Resume(restored)
	if err != nil {
		t.Fatal(err)
	}
	gotTL, gotVL, err := resumed.TrainWithValidationOpts(x, y, vx, vy, total-k, patience, RunOptions{
		ResumeVal: restored.Val,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, resumed.CaptureTrainState(), want)
	if len(gotTL) != len(fullTL) || len(gotVL) != len(fullVL) {
		t.Fatalf("history lengths (%d,%d) != (%d,%d)", len(gotTL), len(gotVL), len(fullTL), len(fullVL))
	}
	for i := range fullTL {
		if gotTL[i] != fullTL[i] || gotVL[i] != fullVL[i] {
			t.Fatalf("histories diverge at epoch %d: (%v,%v) != (%v,%v)",
				i, gotTL[i], gotVL[i], fullTL[i], fullVL[i])
		}
	}
}

// TestCancellationWritesFinalCheckpoint: a cancelled context stops the
// run at the next epoch boundary with ErrStopped, after pushing a final
// checkpoint through the sink.
func TestCancellationWritesFinalCheckpoint(t *testing.T) {
	x, y := resumeData(60)
	n, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var checkpoints []*TrainState
	sink := func(ts *TrainState) error {
		checkpoints = append(checkpoints, ts)
		if len(ts.Losses) >= 3 {
			cancel()
		}
		return nil
	}
	_, err = n.TrainEpochsOpts(x, y, 100, RunOptions{
		Ctx: ctx, Checkpoint: sink, CheckpointEvery: 1,
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("cancelled run returned %v, want ErrStopped", err)
	}
	if len(checkpoints) < 2 {
		t.Fatalf("expected periodic + final checkpoints, got %d", len(checkpoints))
	}
	last := checkpoints[len(checkpoints)-1]
	if last.Epoch() != 3 {
		t.Fatalf("final checkpoint at epoch %d, want 3", last.Epoch())
	}
	// The final (cancellation) checkpoint equals the last periodic one:
	// no partial epoch is ever captured.
	mustEqualState(t, last, checkpoints[len(checkpoints)-2])
}

// TestCheckpointErrorAbortsRun: a failing sink aborts training with the
// sink's error in the chain.
func TestCheckpointErrorAbortsRun(t *testing.T) {
	x, y := resumeData(60)
	n, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	sinkErr := errors.New("disk full")
	_, err = n.TrainEpochsOpts(x, y, 10, RunOptions{
		Checkpoint:      func(*TrainState) error { return sinkErr },
		CheckpointEvery: 2,
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("run with failing sink returned %v, want wrapped sink error", err)
	}
	if got := len(n.Losses); got != 2 {
		t.Fatalf("run stopped after %d epochs, want 2 (first checkpoint)", got)
	}
}

// TestResumeValidation exercises the shape checks.
func TestResumeValidation(t *testing.T) {
	x, y := resumeData(40)
	n, err := New(resumeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.TrainEpochs(x, y, 1); err != nil {
		t.Fatal(err)
	}
	ok := n.CaptureTrainState()

	bad := *ok
	bad.Version = 99
	if _, err := Resume(&bad); err == nil {
		t.Error("Resume accepted unknown version")
	}
	bad = *ok
	bad.Weights = bad.Weights[:1]
	if _, err := Resume(&bad); err == nil {
		t.Error("Resume accepted missing layers")
	}
	bad = *ok
	bad.AdamWM = append([][]float64{}, bad.AdamWM...)
	bad.AdamWM[0] = bad.AdamWM[0][:1]
	if _, err := Resume(&bad); err == nil {
		t.Error("Resume accepted optimizer shape mismatch")
	}
}
