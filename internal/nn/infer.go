package nn

import "fmt"

// This file is the fused batched-inference path: a register-blocked
// forward kernel plus caller-owned activation buffers, so steady-state
// inference over a stream of chunks performs zero heap allocations.
// The kernel is bit-identical to dense.forward — for every (row, output)
// pair the accumulator starts at the bias and adds w[i]*x[i] with i
// ascending in a single float64 sum, so fusing changes nothing about
// the produced values, only how fast they are produced.

// Predictor is the fused inference contract shared by the
// full-precision Network and its Quantized variants: size buffers once
// with NewInferenceBuffers, then stream batches through PredictInto.
type Predictor interface {
	Config() Config
	NewInferenceBuffers(maxRows int) *InferenceBuffers
	PredictInto(x, out *Matrix, buf *InferenceBuffers) error
}

// InferenceBuffers holds the per-layer activation storage reused across
// PredictInto calls. One buffer set serves one goroutine at a time;
// concurrent workers each own their own set. The same buffers work for
// the full-precision network and any Quantized variant of the same
// architecture.
type InferenceBuffers struct {
	maxRows int
	// acts[li] backs layer li's activation block (maxRows × width of
	// layer li). The final layer writes into the caller's out matrix
	// directly, but its slot is still allocated so buffers built from a
	// config serve any same-shaped network.
	acts [][]float64
	// wrow is the dequantized-weight-row scratch used by the quantized
	// kernels (capacity = widest layer input).
	wrow []float64
}

// MaxRows returns the batch capacity the buffers were sized for.
func (b *InferenceBuffers) MaxRows() int { return b.maxRows }

// newInferenceBuffers sizes buffers for a network with the given layer
// widths (widths[0] is the input width).
func newInferenceBuffers(widths []int, maxRows int) *InferenceBuffers {
	if maxRows < 1 {
		maxRows = 1
	}
	b := &InferenceBuffers{maxRows: maxRows}
	maxIn := 0
	for i := 1; i < len(widths); i++ {
		b.acts = append(b.acts, make([]float64, maxRows*widths[i]))
		if widths[i-1] > maxIn {
			maxIn = widths[i-1]
		}
	}
	b.wrow = make([]float64, maxIn)
	return b
}

// layerWidths returns [In, Hidden..., Out] for a config.
func (c Config) layerWidths() []int {
	return append(append([]int{c.In}, c.Hidden...), c.Out)
}

// NewInferenceBuffers allocates activation buffers for PredictInto
// batches of up to maxRows rows.
func (n *Network) NewInferenceBuffers(maxRows int) *InferenceBuffers {
	return newInferenceBuffers(n.cfg.layerWidths(), maxRows)
}

// PredictInto runs the forward pass for x (rows × In) into out (rows ×
// Out) on the calling goroutine, reusing buf for every intermediate
// activation: zero heap allocations per call. Results are bit-identical
// to Predict. The caller must not run PredictInto concurrently with
// training on the same network, and each goroutine needs its own buf.
func (n *Network) PredictInto(x, out *Matrix, buf *InferenceBuffers) error {
	if err := checkPredictInto(n.cfg, x, out, buf); err != nil {
		return err
	}
	cur := x.Data
	for li, l := range n.layers {
		dst := out.Data
		if li < len(n.layers)-1 {
			dst = buf.acts[li][:x.Rows*l.out]
		}
		denseForwardBlocked(cur, x.Rows, l.in, l.w, l.b, l.out, l.relu, dst)
		cur = dst
	}
	return nil
}

func checkPredictInto(cfg Config, x, out *Matrix, buf *InferenceBuffers) error {
	if x.Cols != cfg.In {
		return fmt.Errorf("nn: input width %d, want %d", x.Cols, cfg.In)
	}
	if out.Cols != cfg.Out || out.Rows != x.Rows {
		return fmt.Errorf("nn: output shape %dx%d, want %dx%d", out.Rows, out.Cols, x.Rows, cfg.Out)
	}
	if buf == nil || x.Rows > buf.maxRows {
		return fmt.Errorf("nn: inference buffers too small for %d rows", x.Rows)
	}
	if len(buf.acts) != len(cfg.Hidden)+1 {
		return fmt.Errorf("nn: inference buffers built for %d layers, want %d", len(buf.acts), len(cfg.Hidden)+1)
	}
	return nil
}

// denseForwardBlocked is the tiled affine+ReLU kernel: x is (rows × in)
// row-major, dst is (rows × nout) row-major. Rows are processed four at
// a time so each weight row streams from cache once per four samples
// (the layer weights are the large operand; inputs are a handful of
// floats per row). Accumulation order per (row, output) matches
// dense.forward exactly, keeping the fused path bit-identical to the
// row-at-a-time path.
func denseForwardBlocked(x []float64, rows, in int, w, b []float64, nout int, relu bool, dst []float64) {
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := x[(r+0)*in : (r+1)*in]
		x1 := x[(r+1)*in : (r+2)*in]
		x2 := x[(r+2)*in : (r+3)*in]
		x3 := x[(r+3)*in : (r+4)*in]
		d0 := dst[(r+0)*nout : (r+1)*nout]
		d1 := dst[(r+1)*nout : (r+2)*nout]
		d2 := dst[(r+2)*nout : (r+3)*nout]
		d3 := dst[(r+3)*nout : (r+4)*nout]
		for o := 0; o < nout; o++ {
			wo := w[o*in : (o+1)*in]
			bo := b[o]
			s0, s1, s2, s3 := bo, bo, bo, bo
			for i, wi := range wo {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			if relu {
				if s0 < 0 {
					s0 = 0
				}
				if s1 < 0 {
					s1 = 0
				}
				if s2 < 0 {
					s2 = 0
				}
				if s3 < 0 {
					s3 = 0
				}
			}
			d0[o], d1[o], d2[o], d3[o] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		xr := x[r*in : (r+1)*in]
		dr := dst[r*nout : (r+1)*nout]
		for o := 0; o < nout; o++ {
			wo := w[o*in : (o+1)*in]
			s := b[o]
			for i, wi := range wo {
				s += wi * xr[i]
			}
			if relu && s < 0 {
				s = 0
			}
			dr[o] = s
		}
	}
}
