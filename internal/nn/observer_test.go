package nn

import (
	"math"
	"testing"

	"fillvoid/internal/telemetry"
)

// fakeObserver records every epoch stat the training loop emits.
type fakeObserver struct {
	stats []telemetry.EpochStat
}

func (f *fakeObserver) ObserveEpoch(e telemetry.EpochStat) { f.stats = append(f.stats, e) }

func TestTrainEpochsObserver(t *testing.T) {
	x, y := makeRegression(600, 9, func(a, b float64) float64 { return a + b })
	net, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := &fakeObserver{}
	net.SetObserver(obs)
	if net.Observer() != obs {
		t.Fatal("Observer() did not return the installed observer")
	}

	const first = 10
	losses, err := net.TrainEpochs(x, y, first)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.stats) != first {
		t.Fatalf("observed %d epochs, want %d", len(obs.stats), first)
	}
	for i, e := range obs.stats {
		if e.Epoch != i {
			t.Fatalf("stat %d has epoch index %d (want monotone from 0)", i, e.Epoch)
		}
		if math.IsNaN(e.Loss) || math.IsInf(e.Loss, 0) {
			t.Fatalf("epoch %d: non-finite loss %g", i, e.Loss)
		}
		if e.Loss != losses[i] {
			t.Fatalf("epoch %d: observer loss %g != returned loss %g", i, e.Loss, losses[i])
		}
		if e.Examples != x.Rows {
			t.Fatalf("epoch %d: examples = %d, want %d", i, e.Examples, x.Rows)
		}
		if e.LearningRate <= 0 {
			t.Fatalf("epoch %d: lr = %g", i, e.LearningRate)
		}
		if e.TrainableParams != net.TrainableParamCount() {
			t.Fatalf("epoch %d: trainable params = %d, want %d", i, e.TrainableParams, net.TrainableParamCount())
		}
		if e.DurationNS < 0 || e.ExamplesPerSec < 0 {
			t.Fatalf("epoch %d: negative timing (%d ns, %g ex/s)", i, e.DurationNS, e.ExamplesPerSec)
		}
		if e.ValLossValid {
			t.Fatalf("epoch %d: validation flag set by plain TrainEpochs", i)
		}
	}

	// A second training round (the fine-tune path) must keep the epoch
	// index monotone rather than restarting at zero.
	const second = 5
	if _, err := net.TrainEpochs(x, y, second); err != nil {
		t.Fatal(err)
	}
	if len(obs.stats) != first+second {
		t.Fatalf("observed %d epochs total, want %d", len(obs.stats), first+second)
	}
	for i := 1; i < len(obs.stats); i++ {
		if obs.stats[i].Epoch != obs.stats[i-1].Epoch+1 {
			t.Fatalf("epoch indices not monotone at %d: %d then %d",
				i, obs.stats[i-1].Epoch, obs.stats[i].Epoch)
		}
	}
	if got := obs.stats[first].Epoch; got != first {
		t.Fatalf("second round started at epoch %d, want %d", got, first)
	}
}

func TestTrainWithValidationObserver(t *testing.T) {
	f := func(a, b float64) float64 { return a * b }
	x, y := makeRegression(600, 21, f)
	vx, vy := makeRegression(120, 22, f)
	net, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	obs := &fakeObserver{}
	net.SetObserver(obs)

	const epochs = 8
	tl, vl, err := net.TrainWithValidation(x, y, vx, vy, epochs, epochs)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one stat per completed epoch: the validation wrapper must
	// suppress the inner loop's emission, not double-report.
	if len(obs.stats) != len(tl) {
		t.Fatalf("observed %d stats for %d epochs", len(obs.stats), len(tl))
	}
	for i, e := range obs.stats {
		if e.Epoch != i {
			t.Fatalf("stat %d has epoch index %d", i, e.Epoch)
		}
		if !e.ValLossValid {
			t.Fatalf("epoch %d: missing validation loss", i)
		}
		if e.ValLoss != vl[i] {
			t.Fatalf("epoch %d: observer val loss %g != returned %g", i, e.ValLoss, vl[i])
		}
		if math.IsNaN(e.Loss) || math.IsNaN(e.ValLoss) {
			t.Fatalf("epoch %d: non-finite losses %g/%g", i, e.Loss, e.ValLoss)
		}
	}
	// The temporary suppression must not drop the installed observer.
	if net.Observer() != obs {
		t.Fatal("observer lost after TrainWithValidation")
	}
}

func TestTrainSeriesAsNetworkObserver(t *testing.T) {
	x, y := makeRegression(300, 31, func(a, b float64) float64 { return a - b })
	net, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	net.SetObserver(reg.Train("fit"))
	if _, err := net.TrainEpochs(x, y, 4); err != nil {
		t.Fatal(err)
	}
	eps := reg.Train("fit").Epochs()
	if len(eps) != 4 {
		t.Fatalf("series recorded %d epochs, want 4", len(eps))
	}
	snap := reg.Snapshot()
	if got := len(snap.Training["fit"]); got != 4 {
		t.Fatalf("snapshot training series has %d epochs", got)
	}
}
