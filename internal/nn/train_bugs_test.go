package nn

import (
	"math"
	"testing"

	"fillvoid/internal/telemetry"
)

// TestLRDecayAcrossTrainWithValidation pins the fix for the dead-decay
// bug: TrainWithValidation drives training through one-epoch TrainEpochs
// calls, and the decay schedule must fire on the lifetime epoch index,
// not the (always-zero) per-call index. With LRDecayEvery=2 the applied
// rate must halve at lifetime epochs 2 and 4, and the observer must
// report the actually-applied rate.
func TestLRDecayAcrossTrainWithValidation(t *testing.T) {
	f := func(a, b float64) float64 { return a + b }
	x, y := makeRegression(64, 7, f)
	vx, vy := makeRegression(32, 8, f)
	net, err := New(Config{
		In: 2, Out: 1, Hidden: []int{8}, Seed: 1, BatchSize: 16,
		LRDecayEvery: 2, LRDecayFactor: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rates []float64
	net.SetObserver(telemetry.ObserverFunc(func(e telemetry.EpochStat) {
		rates = append(rates, e.LearningRate)
	}))
	if _, _, err := net.TrainWithValidation(x, y, vx, vy, 6, 100); err != nil {
		t.Fatal(err)
	}
	base := 1e-3 // Adam default
	want := []float64{base, base, base / 2, base / 2, base / 4, base / 4}
	if len(rates) != len(want) {
		t.Fatalf("observed %d epochs, want %d", len(rates), len(want))
	}
	for i, w := range want {
		if math.Abs(rates[i]-w) > 1e-15 {
			t.Fatalf("epoch %d: reported lr %g, want %g (rates %v)", i, rates[i], w, rates)
		}
		if got := net.LearningRateAt(i); math.Abs(got-w) > 1e-15 {
			t.Fatalf("LearningRateAt(%d) = %g, want %g", i, got, w)
		}
	}
}

// TestLRDecayPersistsAcrossTrainEpochsCalls checks that slicing the same
// budget into several TrainEpochs calls (the fine-tuning pattern) walks
// the identical lifetime schedule instead of restarting at the base rate
// each call.
func TestLRDecayPersistsAcrossTrainEpochsCalls(t *testing.T) {
	x, y := makeRegression(48, 9, func(a, b float64) float64 { return a - b })
	net, err := New(Config{
		In: 2, Out: 1, Hidden: []int{8}, Seed: 2, BatchSize: 16,
		LRDecayEvery: 2, LRDecayFactor: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rates []float64
	net.SetObserver(telemetry.ObserverFunc(func(e telemetry.EpochStat) {
		rates = append(rates, e.LearningRate)
	}))
	for call := 0; call < 2; call++ {
		if _, err := net.TrainEpochs(x, y, 3); err != nil {
			t.Fatal(err)
		}
	}
	base := 1e-3
	want := []float64{base, base, base / 4, base / 4, base / 16, base / 16}
	if len(rates) != len(want) {
		t.Fatalf("observed %d epochs, want %d", len(rates), len(want))
	}
	for i, w := range want {
		if math.Abs(rates[i]-w) > 1e-18 {
			t.Fatalf("lifetime epoch %d: lr %g, want %g (rates %v)", i, rates[i], w, rates)
		}
	}
}

// TestEpochLossEqualsDatasetMSE pins the loss-accounting fix: with a
// partial final minibatch (rows % batch != 0), the recorded epoch loss
// must equal the true full-dataset MSE, which requires weighting each
// batch's mean by its row count. Freezing every layer keeps the weights
// constant so the per-batch losses and a post-hoc Predict/Loss pass see
// the same model.
func TestEpochLossEqualsDatasetMSE(t *testing.T) {
	x, y := makeRegression(100, 11, func(a, b float64) float64 { return 3*a - b })
	net, err := New(Config{In: 2, Out: 1, Hidden: []int{8}, Seed: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumLayers(); i++ {
		if err := net.SetTrainable(i, false); err != nil {
			t.Fatal(err)
		}
	}
	losses, err := net.TrainEpochs(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Loss(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(losses[0]-want) / want; rel > 1e-9 {
		t.Fatalf("epoch loss %g, dataset MSE %g (rel err %g)", losses[0], want, rel)
	}
}
