package nn

import (
	"fmt"
	"math"

	"fillvoid/internal/mathutil"
)

// Quantized inference: weights stored as IEEE 754 binary16 halves or as
// int8 with one scale per layer, expanded row-by-row into a small f64
// scratch inside the blocked GEMM. The dot products themselves always
// run in float64 — quantization only compresses the stored weights
// (4x for int8, 2x for f16) and trades a bounded amount of accuracy,
// which the golden-SNR harness pins per mode. Biases stay float64:
// they are O(width) per layer, too small to be worth compressing.

// QuantMode selects the weight storage of a Quantized network.
type QuantMode int

const (
	QuantNone QuantMode = iota // full float64 weights
	QuantF16                   // binary16 weights
	QuantInt8                  // int8 weights with a per-layer scale
)

// String returns the CLI spelling of the mode.
func (m QuantMode) String() string {
	switch m {
	case QuantF16:
		return "f16"
	case QuantInt8:
		return "int8"
	default:
		return "none"
	}
}

// ParseQuantMode parses the CLI/API spelling of a quantization mode.
// Empty, "none" and "f64" all mean full precision.
func ParseQuantMode(s string) (QuantMode, error) {
	switch s {
	case "", "none", "f64":
		return QuantNone, nil
	case "f16":
		return QuantF16, nil
	case "int8":
		return QuantInt8, nil
	default:
		return QuantNone, fmt.Errorf("nn: unknown quant mode %q (want f16, int8 or none)", s)
	}
}

// quantDense is one layer with compressed weights. Exactly one of f16
// or q8 is populated, matching the parent's mode.
type quantDense struct {
	in, out int
	relu    bool
	b       []float64
	f16     []uint16
	q8      []int8
	scale   float64 // int8 dequantization scale
}

// Quantized is an immutable compressed snapshot of a trained Network,
// usable only for inference via PredictInto. Snapshots are safe for
// concurrent use from any number of goroutines (each with its own
// InferenceBuffers).
type Quantized struct {
	cfg    Config
	mode   QuantMode
	layers []quantDense
}

// Quantize captures a compressed snapshot of the network's current
// weights. The snapshot is taken under the weight mutex, so it is
// consistent even while the network fine-tunes. mode must be QuantF16
// or QuantInt8.
func (n *Network) Quantize(mode QuantMode) (*Quantized, error) {
	if mode != QuantF16 && mode != QuantInt8 {
		return nil, fmt.Errorf("nn: cannot quantize to mode %v", mode)
	}
	q := &Quantized{cfg: n.cfg, mode: mode}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.layers {
		ql := quantDense{in: l.in, out: l.out, relu: l.relu, b: append([]float64(nil), l.b...)}
		switch mode {
		case QuantF16:
			ql.f16 = make([]uint16, len(l.w))
			for i, w := range l.w {
				ql.f16[i] = mathutil.F16Encode(w)
			}
		case QuantInt8:
			maxAbs := 0.0
			for _, w := range l.w {
				if a := math.Abs(w); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 {
				maxAbs = 1 // all-zero layer: any scale maps 0 -> 0
			}
			ql.scale = maxAbs / 127
			ql.q8 = make([]int8, len(l.w))
			for i, w := range l.w {
				v := math.RoundToEven(w / ql.scale)
				if v > 127 {
					v = 127
				} else if v < -127 {
					v = -127
				}
				ql.q8[i] = int8(v)
			}
		}
		q.layers = append(q.layers, ql)
	}
	return q, nil
}

// Config returns the architecture configuration of the snapshot.
func (q *Quantized) Config() Config { return q.cfg }

// Mode returns the weight storage mode.
func (q *Quantized) Mode() QuantMode { return q.mode }

// NewInferenceBuffers allocates activation buffers for PredictInto
// batches of up to maxRows rows.
func (q *Quantized) NewInferenceBuffers(maxRows int) *InferenceBuffers {
	return newInferenceBuffers(q.cfg.layerWidths(), maxRows)
}

// PredictInto runs the forward pass with on-the-fly weight expansion:
// each compressed weight row is dequantized once into buf.wrow and then
// reused across the row block, so the expansion cost is amortized over
// the batch. Zero heap allocations per call.
func (q *Quantized) PredictInto(x, out *Matrix, buf *InferenceBuffers) error {
	if err := checkPredictInto(q.cfg, x, out, buf); err != nil {
		return err
	}
	cur := x.Data
	for li := range q.layers {
		l := &q.layers[li]
		dst := out.Data
		if li < len(q.layers)-1 {
			dst = buf.acts[li][:x.Rows*l.out]
		}
		quantForwardBlocked(l, cur, x.Rows, buf.wrow[:l.in], dst)
		cur = dst
	}
	return nil
}

// quantForwardBlocked mirrors denseForwardBlocked with a dequantization
// step per weight row. The loop nest is inverted relative to the f64
// kernel — outputs outermost — so each weight row is expanded exactly
// once per batch, not once per row block.
func quantForwardBlocked(l *quantDense, x []float64, rows int, wrow, dst []float64) {
	in, nout := l.in, l.out
	for o := 0; o < nout; o++ {
		if l.f16 != nil {
			hw := l.f16[o*in : (o+1)*in]
			for i, h := range hw {
				wrow[i] = mathutil.F16Decode(h)
			}
		} else {
			qw := l.q8[o*in : (o+1)*in]
			for i, qv := range qw {
				wrow[i] = l.scale * float64(qv)
			}
		}
		bo := l.b[o]
		r := 0
		for ; r+4 <= rows; r += 4 {
			x0 := x[(r+0)*in : (r+1)*in]
			x1 := x[(r+1)*in : (r+2)*in]
			x2 := x[(r+2)*in : (r+3)*in]
			x3 := x[(r+3)*in : (r+4)*in]
			s0, s1, s2, s3 := bo, bo, bo, bo
			for i, wi := range wrow {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			if l.relu {
				if s0 < 0 {
					s0 = 0
				}
				if s1 < 0 {
					s1 = 0
				}
				if s2 < 0 {
					s2 = 0
				}
				if s3 < 0 {
					s3 = 0
				}
			}
			dst[(r+0)*nout+o] = s0
			dst[(r+1)*nout+o] = s1
			dst[(r+2)*nout+o] = s2
			dst[(r+3)*nout+o] = s3
		}
		for ; r < rows; r++ {
			xr := x[r*in : (r+1)*in]
			s := bo
			for i, wi := range wrow {
				s += wi * xr[i]
			}
			if l.relu && s < 0 {
				s = 0
			}
			dst[r*nout+o] = s
		}
	}
}
