package nn

import (
	"math"
	"testing"

	"fillvoid/internal/mathutil"
)

func testNetwork(t testing.TB) *Network {
	t.Helper()
	n, err := New(Config{In: 23, Out: 4, Hidden: []int{64, 32, 16}, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randomInput(rows, cols int, seed int64) *Matrix {
	rng := mathutil.NewRNG(seed)
	x := NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// TestPredictIntoBitIdentical pins the fused-kernel contract: the
// blocked forward pass produces exactly the bits of the row-at-a-time
// Predict path, across batch sizes that exercise every unroll remainder.
func TestPredictIntoBitIdentical(t *testing.T) {
	n := testNetwork(t)
	buf := n.NewInferenceBuffers(257)
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 64, 257} {
		x := randomInput(rows, 23, int64(rows))
		want, err := n.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		out := NewMatrix(rows, 4)
		if err := n.PredictInto(x, out, buf); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float64bits(out.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("rows=%d element %d: fused %x, reference %x", rows, i, out.Data[i], want.Data[i])
			}
		}
	}
}

func TestPredictIntoShapeErrors(t *testing.T) {
	n := testNetwork(t)
	buf := n.NewInferenceBuffers(8)
	if err := n.PredictInto(NewMatrix(4, 22), NewMatrix(4, 4), buf); err == nil {
		t.Error("wrong input width accepted")
	}
	if err := n.PredictInto(NewMatrix(4, 23), NewMatrix(4, 3), buf); err == nil {
		t.Error("wrong output width accepted")
	}
	if err := n.PredictInto(NewMatrix(9, 23), NewMatrix(9, 4), buf); err == nil {
		t.Error("overflow of buffer capacity accepted")
	}
	if err := n.PredictInto(NewMatrix(4, 23), NewMatrix(4, 4), nil); err == nil {
		t.Error("nil buffers accepted")
	}
}

// TestPredictIntoZeroAllocs pins the steady-state allocation contract of
// the fused path for both precision modes.
func TestPredictIntoZeroAllocs(t *testing.T) {
	n := testNetwork(t)
	x := randomInput(128, 23, 9)
	out := NewMatrix(128, 4)
	buf := n.NewInferenceBuffers(128)
	if a := testing.AllocsPerRun(50, func() {
		if err := n.PredictInto(x, out, buf); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("PredictInto: %v allocs/op, want 0", a)
	}
	q, err := n.Quantize(QuantF16)
	if err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := q.PredictInto(x, out, buf); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Quantized.PredictInto: %v allocs/op, want 0", a)
	}
}

// TestQuantizedClose bounds the quantized forward pass against the f64
// reference. The bound is loose (activations compound per layer) but
// catches any structural mistake in the dequantizing kernels.
func TestQuantizedClose(t *testing.T) {
	n := testNetwork(t)
	x := randomInput(200, 23, 11)
	want, err := n.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, v := range want.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for mode, tol := range map[QuantMode]float64{QuantF16: 1e-2, QuantInt8: 0.2} {
		q, err := n.Quantize(mode)
		if err != nil {
			t.Fatal(err)
		}
		out := NewMatrix(200, 4)
		if err := q.PredictInto(x, out, q.NewInferenceBuffers(200)); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if d := math.Abs(out.Data[i] - want.Data[i]); d > tol*scale {
				t.Fatalf("%v element %d: |%g - %g| = %g beyond %g", mode, i, out.Data[i], want.Data[i], d, tol*scale)
			}
		}
	}
}

func TestQuantModeParse(t *testing.T) {
	for s, want := range map[string]QuantMode{"": QuantNone, "none": QuantNone, "f64": QuantNone, "f16": QuantF16, "int8": QuantInt8} {
		got, err := ParseQuantMode(s)
		if err != nil || got != want {
			t.Errorf("ParseQuantMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseQuantMode("f32"); err == nil {
		t.Error("ParseQuantMode accepted f32")
	}
	if QuantF16.String() != "f16" || QuantInt8.String() != "int8" || QuantNone.String() != "none" {
		t.Error("QuantMode.String mismatch")
	}
}

func TestQuantizeRejectsNone(t *testing.T) {
	n := testNetwork(t)
	if _, err := n.Quantize(QuantNone); err == nil {
		t.Error("Quantize(QuantNone) succeeded")
	}
}

func BenchmarkPredictInto(b *testing.B) {
	n := testNetwork(b)
	x := randomInput(512, 23, 3)
	out := NewMatrix(512, 4)
	buf := n.NewInferenceBuffers(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.PredictInto(x, out, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictIntoF16(b *testing.B) {
	n := testNetwork(b)
	q, err := n.Quantize(QuantF16)
	if err != nil {
		b.Fatal(err)
	}
	x := randomInput(512, 23, 3)
	out := NewMatrix(512, 4)
	buf := q.NewInferenceBuffers(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.PredictInto(x, out, buf); err != nil {
			b.Fatal(err)
		}
	}
}
