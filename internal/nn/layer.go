package nn

import "math"

// dense is one fully connected layer: y = act(x W^T + b), with weights
// stored output-major (W[o*in+i]).
type dense struct {
	in, out int
	w       []float64
	b       []float64
	relu    bool // ReLU after affine; the final layer is linear
	frozen  bool // skip the optimizer update (Case 2 fine-tuning)
}

func newDense(in, out int, relu bool) *dense {
	return &dense{in: in, out: out, w: make([]float64, in*out), b: make([]float64, out), relu: relu}
}

// initHe applies He (Kaiming) initialization, the standard scheme for
// ReLU networks: w ~ N(0, sqrt(2/fan_in)).
func (l *dense) initHe(rnd interface{ NormFloat64() float64 }) {
	std := math.Sqrt(2 / float64(l.in))
	for i := range l.w {
		l.w[i] = rnd.NormFloat64() * std
	}
	for i := range l.b {
		l.b[i] = 0
	}
}

// forward computes the layer output for a batch shard, storing both the
// pre-activation (for backward) and the activation into the caches.
// x is (n × in); z and a are (n × out).
func (l *dense) forward(x, z, a *Matrix) {
	n := x.Rows
	for r := 0; r < n; r++ {
		xr := x.Row(r)
		zr := z.Row(r)
		ar := a.Row(r)
		for o := 0; o < l.out; o++ {
			w := l.w[o*l.in : (o+1)*l.in]
			s := l.b[o]
			for i, wi := range w {
				s += wi * xr[i]
			}
			zr[o] = s
			if l.relu && s < 0 {
				ar[o] = 0
			} else {
				ar[o] = s
			}
		}
	}
}

// backward consumes dA (gradient wrt this layer's activation), converts
// it through the ReLU to dZ in place, accumulates weight/bias gradients
// into gw/gb, and writes the gradient wrt the input into dX (when
// non-nil; the first layer skips it).
func (l *dense) backward(x, z, dA *Matrix, gw, gb []float64, dX *Matrix) {
	n := x.Rows
	for r := 0; r < n; r++ {
		xr := x.Row(r)
		zr := z.Row(r)
		dr := dA.Row(r)
		if l.relu {
			for o := 0; o < l.out; o++ {
				if zr[o] <= 0 {
					dr[o] = 0
				}
			}
		}
		for o := 0; o < l.out; o++ {
			d := dr[o]
			if d == 0 {
				continue
			}
			gb[o] += d
			gwRow := gw[o*l.in : (o+1)*l.in]
			for i, xi := range xr {
				gwRow[i] += d * xi
			}
		}
		if dX != nil {
			dxr := dX.Row(r)
			for i := range dxr {
				dxr[i] = 0
			}
			for o := 0; o < l.out; o++ {
				d := dr[o]
				if d == 0 {
					continue
				}
				w := l.w[o*l.in : (o+1)*l.in]
				for i, wi := range w {
					dxr[i] += d * wi
				}
			}
		}
	}
}

// paramCount returns the number of trainable scalars in the layer.
func (l *dense) paramCount() int { return len(l.w) + len(l.b) }
