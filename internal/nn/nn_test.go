package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"fillvoid/internal/mathutil"
)

func testConfig() Config {
	return Config{In: 2, Out: 1, Hidden: []int{16, 8}, Seed: 1, BatchSize: 32}
}

// makeRegression builds a simple smooth regression dataset y = f(x).
func makeRegression(n int, seed int64, f func(a, b float64) float64) (*Matrix, *Matrix) {
	rng := mathutil.NewRNG(seed)
	x := NewMatrix(n, 2)
	y := NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, f(a, b))
	}
	return x, y
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{In: 0, Out: 1}); err == nil {
		t.Fatal("accepted In=0")
	}
	if _, err := New(Config{In: 1, Out: 0}); err == nil {
		t.Fatal("accepted Out=0")
	}
	if _, err := New(Config{In: 1, Out: 1, Hidden: []int{0}}); err == nil {
		t.Fatal("accepted zero hidden width")
	}
}

func TestParamCount(t *testing.T) {
	n, err := New(Config{In: 3, Out: 2, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	// (3*4 + 4) + (4*2 + 2) = 16 + 10 = 26
	if got := n.ParamCount(); got != 26 {
		t.Fatalf("params=%d", got)
	}
	if n.NumLayers() != 2 {
		t.Fatalf("layers=%d", n.NumLayers())
	}
}

func TestTrainingLearnsLinearFunction(t *testing.T) {
	x, y := makeRegression(2000, 3, func(a, b float64) float64 { return 0.3*a - 0.7*b + 0.2 })
	net, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	losses, err := net.TrainEpochs(x, y, 60)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > losses[0]/10 {
		t.Fatalf("loss barely moved: %g -> %g", losses[0], losses[len(losses)-1])
	}
	pred, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := Loss(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-3 {
		t.Fatalf("final mse %g too high for a linear target", mse)
	}
}

func TestTrainingLearnsNonlinearFunction(t *testing.T) {
	f := func(a, b float64) float64 { return math.Sin(3*a) * math.Cos(2*b) }
	x, y := makeRegression(3000, 5, f)
	net, err := New(Config{In: 2, Out: 1, Hidden: []int{32, 16, 8}, Seed: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.TrainEpochs(x, y, 120); err != nil {
		t.Fatal(err)
	}
	// Evaluate on held-out points.
	xt, yt := makeRegression(500, 99, f)
	pred, err := net.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := Loss(pred, yt)
	if mse > 0.01 {
		t.Fatalf("held-out mse %g too high", mse)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	x, y := makeRegression(500, 7, func(a, b float64) float64 { return a * b })
	run := func() []float64 {
		net, err := New(Config{In: 2, Out: 1, Hidden: []int{8}, Seed: 11, BatchSize: 50, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		losses, err := net.TrainEpochs(x, y, 5)
		if err != nil {
			t.Fatal(err)
		}
		return losses
	}
	l1 := run()
	l2 := run()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("epoch %d: %g != %g", i, l1[i], l2[i])
		}
	}
}

func TestPredictShapeValidation(t *testing.T) {
	net, _ := New(testConfig())
	if _, err := net.Predict(NewMatrix(3, 5)); err == nil {
		t.Fatal("accepted wrong input width")
	}
}

func TestTrainValidation(t *testing.T) {
	net, _ := New(testConfig())
	if _, err := net.TrainEpochs(NewMatrix(3, 2), NewMatrix(4, 1), 1); err == nil {
		t.Fatal("accepted row mismatch")
	}
	if _, err := net.TrainEpochs(NewMatrix(0, 2), NewMatrix(0, 1), 1); err == nil {
		t.Fatal("accepted empty training set")
	}
	if _, err := net.TrainEpochs(NewMatrix(3, 1), NewMatrix(3, 1), 1); err == nil {
		t.Fatal("accepted wrong x width")
	}
}

func TestFreezingStopsUpdates(t *testing.T) {
	x, y := makeRegression(200, 9, func(a, b float64) float64 { return a + b })
	net, err := New(Config{In: 2, Out: 1, Hidden: []int{8, 4}, Seed: 3, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	net.FreezeAllButLast(2)
	frozen := append([]float64(nil), net.layers[0].w...)
	if _, err := net.TrainEpochs(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i, w := range net.layers[0].w {
		if w != frozen[i] {
			t.Fatal("frozen layer weights changed")
		}
	}
	// Unfrozen layers must have changed.
	changed := false
	pre := append([]float64(nil), net.layers[2].w...)
	if _, err := net.TrainEpochs(x, y, 1); err != nil {
		t.Fatal(err)
	}
	for i, w := range net.layers[2].w {
		if w != pre[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("trainable layer did not change")
	}
	net.UnfreezeAll()
	if net.TrainableParamCount() != net.ParamCount() {
		t.Fatal("UnfreezeAll did not restore trainability")
	}
}

func TestTrainableParamCount(t *testing.T) {
	net, _ := New(Config{In: 2, Out: 1, Hidden: []int{8, 4}})
	total := net.ParamCount()
	net.FreezeAllButLast(2)
	lastTwo := net.TrainableParamCount()
	// last two layers: (8*4+4) + (4*1+1) = 36 + 5 = 41
	if lastTwo != 41 {
		t.Fatalf("trainable=%d", lastTwo)
	}
	if lastTwo >= total {
		t.Fatal("freezing did not reduce trainable count")
	}
}

func TestSetTrainableBounds(t *testing.T) {
	net, _ := New(testConfig())
	if err := net.SetTrainable(-1, true); err == nil {
		t.Fatal("accepted negative index")
	}
	if err := net.SetTrainable(99, true); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if err := net.SetTrainable(0, false); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y := makeRegression(300, 13, func(a, b float64) float64 { return a - b })
	net, _ := New(testConfig())
	if _, err := net.TrainEpochs(x, y, 10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := net.Predict(x)
	p2, _ := loaded.Predict(x)
	for i := range p1.Data {
		if p1.Data[i] != p2.Data[i] {
			t.Fatal("reloaded model predicts differently")
		}
	}
	if len(loaded.Losses) != len(net.Losses) {
		t.Fatal("loss history not preserved")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestCloneIndependent(t *testing.T) {
	net, _ := New(testConfig())
	cp, err := net.Clone()
	if err != nil {
		t.Fatal(err)
	}
	x, y := makeRegression(100, 17, func(a, b float64) float64 { return a })
	if _, err := cp.TrainEpochs(x, y, 2); err != nil {
		t.Fatal(err)
	}
	// Original unchanged.
	p1, _ := net.Predict(x)
	orig, _ := New(testConfig())
	p2, _ := orig.Predict(x)
	for i := range p1.Data {
		if p1.Data[i] != p2.Data[i] {
			t.Fatal("clone training mutated the original")
		}
	}
}

func TestLossFunction(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	b.Data = []float64{1, 1, 1, 1}
	l, err := Loss(a, b)
	if err != nil || l != 1 {
		t.Fatalf("loss=%g err=%v", l, err)
	}
	if _, err := Loss(a, NewMatrix(3, 2)); err == nil {
		t.Fatal("accepted shape mismatch")
	}
	empty, err := Loss(NewMatrix(0, 0), NewMatrix(0, 0))
	if err != nil || empty != 0 {
		t.Fatalf("empty loss=%g err=%v", empty, err)
	}
}

func TestPyramidHidden(t *testing.T) {
	h := PyramidHidden(5, 512)
	if len(h) != 5 || h[0] != 512 {
		t.Fatalf("%v", h)
	}
	for i := 1; i < len(h); i++ {
		if h[i] > h[i-1] || h[i] < 4 {
			t.Fatalf("%v", h)
		}
	}
	if got := PyramidHidden(0, 64); len(got) != 1 {
		t.Fatalf("%v", got)
	}
	deep := PyramidHidden(9, 64)
	if deep[8] < 4 {
		t.Fatalf("%v", deep)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatal("At")
	}
	m.Set(1, 0, 9)
	if m.Row(1)[0] != 9 {
		t.Fatal("Set/Row")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone shares storage")
	}
	s := m.SliceRows(1, 2)
	if s.Rows != 1 || s.At(0, 0) != 9 {
		t.Fatal("SliceRows")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("accepted ragged rows")
	}
	if em, err := FromRows(nil); err != nil || em.Rows != 0 {
		t.Fatal("empty FromRows")
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	// Property: Adam steps reduce a simple quadratic loss f(p) = p^2
	// from any moderate starting point.
	f := func(start float64) bool {
		if math.IsNaN(start) || math.Abs(start) > 1e3 || math.Abs(start) < 1e-3 {
			return true
		}
		p := []float64{start}
		a := newAdam(1)
		cfg := AdamConfig{}.withDefaults()
		cfg.LearningRate = 0.05
		for i := 0; i < 500; i++ {
			g := []float64{2 * p[0]}
			a.step(p, g, cfg)
		}
		return math.Abs(p[0]) < math.Abs(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamReset(t *testing.T) {
	a := newAdam(2)
	a.step([]float64{1, 1}, []float64{1, 1}, AdamConfig{}.withDefaults())
	a.reset()
	if a.t != 0 || a.m[0] != 0 || a.v[0] != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestLRDecayApplied(t *testing.T) {
	// With aggressive decay, later epochs take much smaller steps; the
	// run must remain finite and the loss non-increasing overall.
	x, y := makeRegression(400, 21, func(a, b float64) float64 { return a - 2*b })
	net, err := New(Config{
		In: 2, Out: 1, Hidden: []int{8}, Seed: 4, BatchSize: 64,
		LRDecayEvery: 5, LRDecayFactor: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	losses, err := net.TrainEpochs(x, y, 30)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not improve: %g -> %g", losses[0], losses[len(losses)-1])
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("non-finite loss with decay")
		}
	}
}

func TestTrainWithValidationEarlyStops(t *testing.T) {
	// Tiny training set + big capacity = quick overfitting; early
	// stopping must halt before the epoch budget and restore the best
	// validation weights.
	f := func(a, b float64) float64 { return math.Sin(5*a) - b }
	x, y := makeRegression(40, 31, f)
	vx, vy := makeRegression(400, 32, f)
	net, err := New(Config{In: 2, Out: 1, Hidden: []int{64, 32}, Seed: 5, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	trainL, valL, err := net.TrainWithValidation(x, y, vx, vy, 400, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(trainL) != len(valL) {
		t.Fatal("loss slices diverge")
	}
	if len(trainL) == 400 {
		t.Log("warning: ran the full budget (no early stop triggered)")
	}
	// The final (restored) weights must achieve the best recorded
	// validation loss.
	best := valL[0]
	for _, v := range valL {
		if v < best {
			best = v
		}
	}
	pred, err := net.Predict(vx)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Loss(pred, vy)
	if got > best*1.0001 {
		t.Fatalf("restored weights give val loss %g, best seen %g", got, best)
	}
}

func TestTrainWithValidationRejectsEmpty(t *testing.T) {
	net, _ := New(testConfig())
	x, y := makeRegression(10, 1, func(a, b float64) float64 { return a })
	if _, _, err := net.TrainWithValidation(x, y, NewMatrix(0, 2), NewMatrix(0, 1), 5, 2); err == nil {
		t.Fatal("accepted empty validation set")
	}
}
