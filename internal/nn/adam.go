package nn

import "math"

// adam holds the Adam optimizer state (first and second moment
// estimates) for one parameter slice. The paper trains with Adam at
// learning rate 0.001 (Section III-C); the defaults here match.
type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam {
	return &adam{m: make([]float64, n), v: make([]float64, n)}
}

// AdamConfig are the optimizer hyperparameters.
type AdamConfig struct {
	LearningRate float64 // default 1e-3
	Beta1        float64 // default 0.9
	Beta2        float64 // default 0.999
	Epsilon      float64 // default 1e-8
}

// withDefaults fills zero fields with the standard values.
func (c AdamConfig) withDefaults() AdamConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 1e-3
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-8
	}
	return c
}

// step applies one bias-corrected Adam update to params given grads.
func (a *adam) step(params, grads []float64, cfg AdamConfig) {
	a.t++
	c1 := 1 - math.Pow(cfg.Beta1, float64(a.t))
	c2 := 1 - math.Pow(cfg.Beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = cfg.Beta1*a.m[i] + (1-cfg.Beta1)*g
		a.v[i] = cfg.Beta2*a.v[i] + (1-cfg.Beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= cfg.LearningRate * mHat / (math.Sqrt(vHat) + cfg.Epsilon)
	}
}

// reset clears the moment estimates (used when fine-tuning restarts
// optimization on new data).
func (a *adam) reset() {
	for i := range a.m {
		a.m[i] = 0
		a.v[i] = 0
	}
	a.t = 0
}
