package nn

import (
	"math"
	"testing"

	"fillvoid/internal/mathutil"
)

// TestBackpropMatchesFiniteDifferences verifies the analytic gradients
// of the full network (through ReLU nonlinearities and all layers)
// against central finite differences of the loss. This is the
// definitive correctness test for the training engine.
func TestBackpropMatchesFiniteDifferences(t *testing.T) {
	cfg := Config{In: 3, Out: 2, Hidden: []int{5, 4}, Seed: 9, BatchSize: 8}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathutil.NewRNG(3)
	const batch = 8
	x := NewMatrix(batch, cfg.In)
	y := NewMatrix(batch, cfg.Out)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}

	// Analytic gradient via the internal shard machinery.
	scratch := net.newTrainScratch(batch)
	net.shardGradient(x, y, scratch, batch)

	// Loss as a function of the parameters.
	loss := func() float64 {
		pred, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Loss(pred, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	const h = 1e-6
	checked := 0
	for li, l := range net.layers {
		// Check a subset of weights and every bias to keep runtime low
		// while covering all layers.
		for wi := 0; wi < len(l.w); wi += 3 {
			orig := l.w[wi]
			l.w[wi] = orig + h
			up := loss()
			l.w[wi] = orig - h
			down := loss()
			l.w[wi] = orig
			numeric := (up - down) / (2 * h)
			analytic := scratch.gw[li][wi]
			if math.Abs(numeric-analytic) > 1e-4*(math.Abs(numeric)+math.Abs(analytic)+1e-4) {
				t.Fatalf("layer %d w[%d]: analytic %.8g vs numeric %.8g", li, wi, analytic, numeric)
			}
			checked++
		}
		for bi := range l.b {
			orig := l.b[bi]
			l.b[bi] = orig + h
			up := loss()
			l.b[bi] = orig - h
			down := loss()
			l.b[bi] = orig
			numeric := (up - down) / (2 * h)
			analytic := scratch.gb[li][bi]
			if math.Abs(numeric-analytic) > 1e-4*(math.Abs(numeric)+math.Abs(analytic)+1e-4) {
				t.Fatalf("layer %d b[%d]: analytic %.8g vs numeric %.8g", li, bi, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// TestShardGradientSumsToBatchGradient verifies that splitting a batch
// into shards and summing the per-shard gradients reproduces the
// single-shard gradient — the invariant the data-parallel trainer
// relies on.
func TestShardGradientSumsToBatchGradient(t *testing.T) {
	cfg := Config{In: 4, Out: 1, Hidden: []int{6}, Seed: 2, BatchSize: 16}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathutil.NewRNG(8)
	const batch = 16
	x := NewMatrix(batch, cfg.In)
	y := NewMatrix(batch, cfg.Out)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}

	whole := net.newTrainScratch(batch)
	net.shardGradient(x, y, whole, batch)

	a := net.newTrainScratch(batch)
	b := net.newTrainScratch(batch)
	net.shardGradient(x.SliceRows(0, 7), y.SliceRows(0, 7), a, batch)
	net.shardGradient(x.SliceRows(7, batch), y.SliceRows(7, batch), b, batch)

	for li := range net.layers {
		for i := range whole.gw[li] {
			sum := a.gw[li][i] + b.gw[li][i]
			if math.Abs(sum-whole.gw[li][i]) > 1e-12*(math.Abs(sum)+1) {
				t.Fatalf("layer %d w[%d]: shards %.12g vs whole %.12g", li, i, sum, whole.gw[li][i])
			}
		}
		for i := range whole.gb[li] {
			sum := a.gb[li][i] + b.gb[li][i]
			if math.Abs(sum-whole.gb[li][i]) > 1e-12*(math.Abs(sum)+1) {
				t.Fatalf("layer %d b[%d]: shards %.12g vs whole %.12g", li, i, sum, whole.gb[li][i])
			}
		}
	}
}
