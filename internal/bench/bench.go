// Package bench defines the machine-readable run summary the
// experiments command emits with -bench-out, and the baseline
// comparison behind cmd/fillvoid-bench: load a committed baseline
// summary (BENCH_*.json), load a fresh run, and report per-metric
// regressions against configurable thresholds.
//
// Two metric families are compared. Wall time is machine-dependent, so
// it is gated on a ratio (current may be at most MaxWallRatio × the
// baseline). Reconstruction quality (the SNR column each experiment
// reports) is deterministic for a fixed seed and worker count, so it is
// gated on an absolute drop in dB.
package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"fillvoid/internal/telemetry"
)

// Experiment is one experiment's entry in a run summary.
type Experiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	WallMS  float64    `json:"wall_ms"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// SNRdB collects the parsed values of the first SNR column, when the
	// experiment reports one, so downstream tooling does not have to
	// re-locate it in Rows.
	SNRdB []float64 `json:"snr_db,omitempty"`
	// Allocs is the number of heap allocations the experiment performed
	// (runtime mallocs delta across the run). Zero in summaries written
	// before the field existed, so Compare skips the alloc gate when
	// either side reports zero.
	Allocs uint64   `json:"allocs,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

// Summary is the -bench-out JSON document: one run of the experiments
// command, with per-experiment wall time, result tables, and the full
// telemetry snapshot with per-stage span timings.
type Summary struct {
	GeneratedUnixNS int64  `json:"generated_unix_ns"`
	Scale           string `json:"scale"`
	Dataset         string `json:"dataset,omitempty"`
	Seed            int64  `json:"seed"`
	// Quant records the quantized-inference mode the run used ("f16",
	// "int8", or empty for full precision) so a quantized smoke summary
	// is never mistaken for the f64 baseline.
	Quant       string              `json:"quant,omitempty"`
	Experiments []Experiment        `json:"experiments"`
	Telemetry   *telemetry.Snapshot `json:"telemetry"`
}

// Load reads a run summary from path.
func Load(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading %s: %w", path, err)
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &s, nil
}

// WriteFile writes the summary as indented JSON to path.
func (s *Summary) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding summary: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// Thresholds configures how much a run may degrade before Compare
// flags it. The zero value of every field picks a sensible default.
type Thresholds struct {
	// MaxWallRatio is the worst allowed current/baseline wall-time ratio
	// per experiment (default 1.5 — wall time is machine-dependent, so
	// the gate is generous; tighten it on pinned CI hardware).
	MaxWallRatio float64
	// MaxWallRatioFor overrides MaxWallRatio per experiment ID. The
	// default tightens fig9 (the fcnn headline benchmark) to 1.35: the
	// fused inference pipeline makes its runtime far less allocation- and
	// GC-bound, so it jitters less than the rule-based sweeps.
	MaxWallRatioFor map[string]float64
	// MaxSNRDrop is the worst allowed per-entry SNR drop in dB (default
	// 1.0, matching the repo's golden-test tolerance for a fixed seed
	// and worker count).
	MaxSNRDrop float64
	// MaxAllocRatio is the worst allowed current/baseline heap-allocation
	// ratio per experiment (default 1.5). Allocation counts are
	// deterministic for a fixed seed and worker count, so this catches
	// accidental re-introductions of per-point allocation in the hot
	// path. Skipped when either side reports zero (pre-schema summary).
	MaxAllocRatio float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.MaxWallRatio <= 0 {
		t.MaxWallRatio = 1.5
	}
	if t.MaxWallRatioFor == nil {
		t.MaxWallRatioFor = map[string]float64{"fig9": 1.35}
	}
	if t.MaxSNRDrop <= 0 {
		t.MaxSNRDrop = 1.0
	}
	if t.MaxAllocRatio <= 0 {
		t.MaxAllocRatio = 1.5
	}
	return t
}

// wallRatioFor resolves the wall gate for one experiment.
func (t Thresholds) wallRatioFor(id string) float64 {
	if r, ok := t.MaxWallRatioFor[id]; ok && r > 0 {
		return r
	}
	return t.MaxWallRatio
}

// Regression is one metric that degraded past its threshold.
type Regression struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	Limit      float64 `json:"limit"`
	Detail     string  `json:"detail"`
}

// String renders the regression as one report line.
func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %s", r.Experiment, r.Metric, r.Detail)
}

// Compare checks current against baseline and returns every regression:
// experiments missing from the current run, wall time beyond
// MaxWallRatio, SNR entries more than MaxSNRDrop dB below baseline, and
// SNR series whose lengths no longer match (a silent change in what the
// experiment measures). Experiments present only in current are new
// coverage, not regressions. A nil slice means the run is clean.
func Compare(baseline, current *Summary, th Thresholds) []Regression {
	th = th.withDefaults()
	cur := make(map[string]*Experiment, len(current.Experiments))
	for i := range current.Experiments {
		cur[current.Experiments[i].ID] = &current.Experiments[i]
	}
	var regs []Regression
	for i := range baseline.Experiments {
		base := &baseline.Experiments[i]
		c, ok := cur[base.ID]
		if !ok {
			regs = append(regs, Regression{
				Experiment: base.ID,
				Metric:     "presence",
				Detail:     "experiment in baseline but missing from current run",
			})
			continue
		}
		if base.WallMS > 0 {
			limit := th.wallRatioFor(base.ID)
			ratio := c.WallMS / base.WallMS
			if ratio > limit {
				regs = append(regs, Regression{
					Experiment: base.ID,
					Metric:     "wall_ms",
					Baseline:   base.WallMS,
					Current:    c.WallMS,
					Limit:      limit,
					Detail: fmt.Sprintf("wall time %.1fms is %.2fx baseline %.1fms (limit %.2fx)",
						c.WallMS, ratio, base.WallMS, limit),
				})
			}
		}
		if base.Allocs > 0 && c.Allocs > 0 {
			ratio := float64(c.Allocs) / float64(base.Allocs)
			if ratio > th.MaxAllocRatio {
				regs = append(regs, Regression{
					Experiment: base.ID,
					Metric:     "allocs",
					Baseline:   float64(base.Allocs),
					Current:    float64(c.Allocs),
					Limit:      th.MaxAllocRatio,
					Detail: fmt.Sprintf("heap allocations %d are %.2fx baseline %d (limit %.2fx)",
						c.Allocs, ratio, base.Allocs, th.MaxAllocRatio),
				})
			}
		}
		if len(base.SNRdB) != len(c.SNRdB) {
			regs = append(regs, Regression{
				Experiment: base.ID,
				Metric:     "snr_count",
				Baseline:   float64(len(base.SNRdB)),
				Current:    float64(len(c.SNRdB)),
				Detail: fmt.Sprintf("baseline reports %d SNR entries, current reports %d",
					len(base.SNRdB), len(c.SNRdB)),
			})
			continue
		}
		for j := range base.SNRdB {
			drop := base.SNRdB[j] - c.SNRdB[j]
			if drop > th.MaxSNRDrop {
				regs = append(regs, Regression{
					Experiment: base.ID,
					Metric:     fmt.Sprintf("snr_db[%d]", j),
					Baseline:   base.SNRdB[j],
					Current:    c.SNRdB[j],
					Limit:      th.MaxSNRDrop,
					Detail: fmt.Sprintf("SNR %.2f dB dropped %.2f dB below baseline %.2f dB (limit %.2f dB)",
						c.SNRdB[j], drop, base.SNRdB[j], th.MaxSNRDrop),
				})
			}
		}
	}
	return regs
}
