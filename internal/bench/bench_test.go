package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func summary(exps ...Experiment) *Summary {
	return &Summary{Scale: "tiny", Seed: 42, Experiments: exps}
}

func exp(id string, wallMS float64, snr ...float64) Experiment {
	return Experiment{ID: id, Title: id, WallMS: wallMS, SNRdB: snr}
}

func metrics(regs []Regression) []string {
	var out []string
	for _, r := range regs {
		out = append(out, r.Experiment+"/"+r.Metric)
	}
	return out
}

func TestCompareClean(t *testing.T) {
	base := summary(exp("fig9", 1000, 10.0, 12.0))
	// Faster, slightly better quality, and a new experiment: all fine.
	cur := summary(exp("fig9", 800, 10.5, 12.0), exp("fig10", 50, 3.0))
	if regs := Compare(base, cur, Thresholds{}); regs != nil {
		t.Fatalf("clean run flagged: %v", metrics(regs))
	}
}

func TestCompareWallRatio(t *testing.T) {
	base := summary(exp("fig10", 1000, 10.0))
	within := summary(exp("fig10", 1400, 10.0))
	if regs := Compare(base, within, Thresholds{}); regs != nil {
		t.Fatalf("1.4x wall flagged under default 1.5x: %v", metrics(regs))
	}
	over := summary(exp("fig10", 1600, 10.0))
	regs := Compare(base, over, Thresholds{})
	if len(regs) != 1 || regs[0].Metric != "wall_ms" {
		t.Fatalf("1.6x wall not flagged: %v", metrics(regs))
	}
	if !strings.Contains(regs[0].String(), "1.60x") {
		t.Fatalf("report line lacks the ratio: %q", regs[0].String())
	}
	// Custom threshold admits it.
	if regs := Compare(base, over, Thresholds{MaxWallRatio: 2}); regs != nil {
		t.Fatalf("custom 2x threshold still flagged: %v", metrics(regs))
	}
}

func TestCompareWallRatioFig9Tightened(t *testing.T) {
	// fig9 (the fcnn headline benchmark) runs under a tighter default
	// gate of 1.35x; other experiments stay at 1.5x.
	base := summary(exp("fig9", 1000, 10.0), exp("fig10", 1000))
	cur := summary(exp("fig9", 1400, 10.0), exp("fig10", 1400))
	regs := Compare(base, cur, Thresholds{})
	if len(regs) != 1 || regs[0].Experiment != "fig9" || regs[0].Metric != "wall_ms" {
		t.Fatalf("regressions = %v, want only fig9/wall_ms", metrics(regs))
	}
	if !strings.Contains(regs[0].String(), "1.35x") {
		t.Fatalf("report line lacks the tightened limit: %q", regs[0].String())
	}
	// An explicit per-experiment override wins over the default map.
	if regs := Compare(base, cur, Thresholds{MaxWallRatioFor: map[string]float64{"fig9": 2}}); regs != nil {
		t.Fatalf("override 2x still flagged: %v", metrics(regs))
	}
}

func TestCompareAllocRatio(t *testing.T) {
	withAllocs := func(e Experiment, n uint64) Experiment {
		e.Allocs = n
		return e
	}
	base := summary(withAllocs(exp("fig10", 100, 10.0), 1000))
	within := summary(withAllocs(exp("fig10", 100, 10.0), 1400))
	if regs := Compare(base, within, Thresholds{}); regs != nil {
		t.Fatalf("1.4x allocs flagged under default 1.5x: %v", metrics(regs))
	}
	over := summary(withAllocs(exp("fig10", 100, 10.0), 1600))
	regs := Compare(base, over, Thresholds{})
	if len(regs) != 1 || regs[0].Metric != "allocs" {
		t.Fatalf("1.6x allocs not flagged: %v", metrics(regs))
	}
	if regs := Compare(base, over, Thresholds{MaxAllocRatio: 2}); regs != nil {
		t.Fatalf("custom 2x alloc threshold still flagged: %v", metrics(regs))
	}
	// A baseline predating the allocs field (zero) cannot gate a ratio.
	old := summary(exp("fig10", 100, 10.0))
	if regs := Compare(old, over, Thresholds{}); regs != nil {
		t.Fatalf("zero-alloc baseline produced %v", metrics(regs))
	}
}

func TestCompareSNRDrop(t *testing.T) {
	base := summary(exp("fig9", 100, 10.0, 12.0, 14.0))
	// Second entry drops 0.9 dB (within 1.0), third drops 1.5 dB (out).
	cur := summary(exp("fig9", 100, 10.0, 11.1, 12.5))
	regs := Compare(base, cur, Thresholds{})
	if len(regs) != 1 || regs[0].Metric != "snr_db[2]" {
		t.Fatalf("regressions = %v, want only snr_db[2]", metrics(regs))
	}
}

func TestCompareSNRCountMismatch(t *testing.T) {
	base := summary(exp("fig9", 100, 10.0, 12.0))
	cur := summary(exp("fig9", 100, 10.0))
	regs := Compare(base, cur, Thresholds{})
	// A length change reports once and skips per-entry comparison.
	if len(regs) != 1 || regs[0].Metric != "snr_count" {
		t.Fatalf("regressions = %v, want only snr_count", metrics(regs))
	}
}

func TestCompareMissingExperiment(t *testing.T) {
	base := summary(exp("fig9", 100, 10.0), exp("fig10", 100))
	cur := summary(exp("fig9", 100, 10.0))
	regs := Compare(base, cur, Thresholds{})
	if len(regs) != 1 || regs[0].Experiment != "fig10" || regs[0].Metric != "presence" {
		t.Fatalf("regressions = %v, want fig10/presence", metrics(regs))
	}
}

func TestCompareZeroWallBaselineIgnored(t *testing.T) {
	// A baseline without timing (wall 0) cannot gate a ratio.
	base := summary(exp("fig9", 0, 10.0))
	cur := summary(exp("fig9", 5000, 10.0))
	if regs := Compare(base, cur, Thresholds{}); regs != nil {
		t.Fatalf("zero-wall baseline produced %v", metrics(regs))
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	s := summary(Experiment{
		ID: "fig9", Title: "SNR vs sampling", WallMS: 123.4,
		Columns: []string{"pct", "snr"},
		Rows:    [][]string{{"1", "4.6"}},
		SNRdB:   []float64{4.6},
		Notes:   []string{"tiny scale"},
	})
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != "tiny" || got.Seed != 42 || len(got.Experiments) != 1 {
		t.Fatalf("round trip lost header: %+v", got)
	}
	e := got.Experiments[0]
	if e.ID != "fig9" || e.WallMS != 123.4 || len(e.SNRdB) != 1 || e.SNRdB[0] != 4.6 {
		t.Fatalf("round trip lost experiment: %+v", e)
	}
	if Compare(s, got, Thresholds{}) != nil {
		t.Fatal("summary regressed against itself")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := (&Summary{}).WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupt file loaded")
	}
}
