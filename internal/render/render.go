// Package render implements a small direct volume renderer — the other
// visualization task the paper motivates sampling with (Section I).
// Rays are cast orthographically along a principal axis, sampled with
// trilinear interpolation, mapped through a transfer function, and
// composited front to back. It produces the volume-rendered images used
// for Fig 2/3-style qualitative comparisons, and an image-space RMSE so
// rendering fidelity can be quantified, not just eyeballed.
package render

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
)

// TransferStop maps a normalized scalar position in [0, 1] to a color
// and opacity.
type TransferStop struct {
	Pos     float64
	R, G, B float64 // [0, 1]
	Alpha   float64 // opacity contribution per unit of normalized depth
}

// TransferFunc is a piecewise-linear transfer function over value
// stops sorted by Pos.
type TransferFunc struct {
	Stops []TransferStop
}

// DefaultTransfer returns a blue-white-red diverging transfer function
// with opacity concentrated at the value extremes — good for fields
// whose features live in the tails (hurricane eye, ionization shell).
func DefaultTransfer() TransferFunc {
	return TransferFunc{Stops: []TransferStop{
		{Pos: 0.0, R: 0.1, G: 0.2, B: 0.9, Alpha: 3.0},
		{Pos: 0.3, R: 0.5, G: 0.6, B: 1.0, Alpha: 0.4},
		{Pos: 0.5, R: 1.0, G: 1.0, B: 1.0, Alpha: 0.05},
		{Pos: 0.7, R: 1.0, G: 0.6, B: 0.4, Alpha: 0.4},
		{Pos: 1.0, R: 0.9, G: 0.1, B: 0.1, Alpha: 3.0},
	}}
}

// Eval interpolates the transfer function at normalized value t.
func (tf TransferFunc) Eval(t float64) (r, g, b, a float64) {
	s := tf.Stops
	if len(s) == 0 {
		return t, t, t, 1
	}
	t = mathutil.Clamp(t, 0, 1)
	if t <= s[0].Pos {
		return s[0].R, s[0].G, s[0].B, s[0].Alpha
	}
	for i := 1; i < len(s); i++ {
		if t <= s[i].Pos {
			span := s[i].Pos - s[i-1].Pos
			u := 0.0
			if span > 0 {
				u = (t - s[i-1].Pos) / span
			}
			return mathutil.Lerp(s[i-1].R, s[i].R, u),
				mathutil.Lerp(s[i-1].G, s[i].G, u),
				mathutil.Lerp(s[i-1].B, s[i].B, u),
				mathutil.Lerp(s[i-1].Alpha, s[i].Alpha, u)
		}
	}
	last := s[len(s)-1]
	return last.R, last.G, last.B, last.Alpha
}

// Axis selects the orthographic view direction.
type Axis int

// View axes: rays travel along the negative axis direction, so AxisZ
// looks down at the xy-plane. AxisZ is the zero value and therefore the
// default view.
const (
	AxisZ Axis = iota
	AxisX
	AxisY
)

// Options configures a render.
type Options struct {
	// Axis is the view direction (default AxisZ).
	Axis Axis
	// Width, Height are the output dimensions in pixels; 0 derives them
	// from the grid resolution of the image plane.
	Width, Height int
	// Samples is the number of ray samples through the volume depth
	// (default 2x the depth resolution).
	Samples int
	// Transfer is the transfer function (default DefaultTransfer).
	Transfer TransferFunc
	// Lo, Hi fix the value normalization range; Lo == Hi auto-scales
	// from the volume. Fixing the range is essential when comparing a
	// reconstruction to the original — both must use the same mapping.
	Lo, Hi float64
	// Workers bounds the parallelism (<= 0: all cores).
	Workers int
}

// Image is an 8-bit RGB raster.
type Image struct {
	Width, Height int
	Pix           []byte // 3 bytes per pixel, row-major, top row first
}

// Render raycasts the volume with the given options.
func Render(v *grid.Volume, opts Options) (*Image, error) {
	if len(opts.Transfer.Stops) == 0 {
		opts.Transfer = DefaultTransfer()
	}
	lo, hi := opts.Lo, opts.Hi
	//lint:allow floateq: unset-range sentinel; callers leave Lo==Hi (bit-identical zeros) to request auto-ranging
	if lo == hi {
		st := v.Stats()
		lo, hi = st.Min(), st.Max()
		//lint:allow floateq: degenerate-range guard; only a bit-identical min==max field needs widening
		if lo == hi {
			hi = lo + 1
		}
	}

	// Image-plane axes (u, w) and depth axis per view.
	var uAxis, wAxis, dAxis int
	switch opts.Axis {
	case AxisX:
		uAxis, wAxis, dAxis = 1, 2, 0
	case AxisY:
		uAxis, wAxis, dAxis = 0, 2, 1
	case AxisZ:
		uAxis, wAxis, dAxis = 0, 1, 2
	default:
		return nil, errors.New("render: invalid axis")
	}
	dims := [3]int{v.NX, v.NY, v.NZ}
	width := opts.Width
	if width <= 0 {
		width = dims[uAxis]
	}
	height := opts.Height
	if height <= 0 {
		height = dims[wAxis]
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = 2 * dims[dAxis]
	}
	if width < 1 || height < 1 || samples < 1 {
		return nil, fmt.Errorf("render: invalid raster %dx%d@%d", width, height, samples)
	}

	b := v.Bounds()
	size := b.Size()
	img := &Image{Width: width, Height: height, Pix: make([]byte, 3*width*height)}
	invRange := 1 / (hi - lo)
	// Opacity step so total opacity is resolution-independent.
	stepDepth := 1 / float64(samples)

	parallel.For(height, opts.Workers, func(row int) {
		for col := 0; col < width; col++ {
			// Normalized image-plane coordinates, y up.
			fu := (float64(col) + 0.5) / float64(width)
			fw := 1 - (float64(row)+0.5)/float64(height)
			var accR, accG, accB, accA float64
			for s := 0; s < samples && accA < 0.995; s++ {
				fd := 1 - (float64(s)+0.5)/float64(samples) // front = +axis side
				var p mathutil.Vec3
				p = p.WithComponent(uAxis, b.Min.Component(uAxis)+fu*size.Component(uAxis))
				p = p.WithComponent(wAxis, b.Min.Component(wAxis)+fw*size.Component(wAxis))
				p = p.WithComponent(dAxis, b.Min.Component(dAxis)+fd*size.Component(dAxis))
				t := (v.TrilinearAt(p) - lo) * invRange
				r, g, bb, alpha := opts.Transfer.Eval(t)
				a := 1 - math.Exp(-alpha*stepDepth)
				w := (1 - accA) * a
				accR += w * r
				accG += w * g
				accB += w * bb
				accA += w
			}
			// White background.
			accR += (1 - accA)
			accG += (1 - accA)
			accB += (1 - accA)
			o := 3 * (row*width + col)
			img.Pix[o] = byte(mathutil.Clamp(accR, 0, 1)*255 + 0.5)
			img.Pix[o+1] = byte(mathutil.Clamp(accG, 0, 1)*255 + 0.5)
			img.Pix[o+2] = byte(mathutil.Clamp(accB, 0, 1)*255 + 0.5)
		}
	})
	return img, nil
}

// WritePPM writes the image as a binary PPM.
func (img *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.Width, img.Height)
	if _, err := bw.Write(img.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePPMFile writes the image to path.
func (img *Image) WritePPMFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return img.WritePPM(f)
}

// RMSE returns the root-mean-square pixel difference between two
// renders in [0, 255] units — the image-space fidelity of a
// reconstruction's visualization against the original's.
func RMSE(a, b *Image) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, errors.New("render: image size mismatch")
	}
	sum := 0.0
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a.Pix))), nil
}
