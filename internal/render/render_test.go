package render

import (
	"bytes"
	"math"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
)

func testVolume() *grid.Volume {
	gen := datasets.NewIsabel(4)
	return datasets.Volume(gen, 24, 24, 8, 10)
}

func TestTransferFuncEval(t *testing.T) {
	tf := DefaultTransfer()
	r, g, b, a := tf.Eval(0)
	if r != 0.1 || g != 0.2 || b != 0.9 || a != 3.0 {
		t.Fatalf("t=0: %g %g %g %g", r, g, b, a)
	}
	r, g, b, _ = tf.Eval(0.5)
	if r != 1 || g != 1 || b != 1 {
		t.Fatalf("t=0.5: %g %g %g", r, g, b)
	}
	// Below/above range clamps to the end stops.
	r1, _, _, _ := tf.Eval(-5)
	r2, _, _, _ := tf.Eval(0)
	if r1 != r2 {
		t.Fatal("clamping below")
	}
	// Empty transfer: grayscale fallback.
	var empty TransferFunc
	r, g, b, a = empty.Eval(0.25)
	if r != 0.25 || g != 0.25 || b != 0.25 || a != 1 {
		t.Fatal("empty transfer fallback")
	}
}

func TestTransferMonotonicSegments(t *testing.T) {
	tf := DefaultTransfer()
	// Interpolation stays within the bracketing stops' value ranges.
	for i := 0; i <= 100; i++ {
		u := float64(i) / 100
		r, g, b, a := tf.Eval(u)
		for _, x := range []float64{r, g, b} {
			if x < 0 || x > 1 {
				t.Fatalf("color out of range at %g", u)
			}
		}
		if a < 0 {
			t.Fatalf("negative alpha at %g", u)
		}
	}
}

func TestRenderDimensions(t *testing.T) {
	v := testVolume()
	img, err := Render(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 24 || img.Height != 24 {
		t.Fatalf("default dims %dx%d", img.Width, img.Height)
	}
	img, err = Render(v, Options{Width: 37, Height: 19, Axis: AxisX})
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 37 || img.Height != 19 || len(img.Pix) != 37*19*3 {
		t.Fatalf("explicit dims %dx%d", img.Width, img.Height)
	}
	if _, err := Render(v, Options{Axis: Axis(9)}); err == nil {
		t.Fatal("accepted invalid axis")
	}
}

func TestRenderDeterministicAcrossWorkers(t *testing.T) {
	v := testVolume()
	a, err := Render(v, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(v, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("render differs across worker counts")
	}
}

func TestRenderSeesStructure(t *testing.T) {
	// A volume with an opaque feature yields a visibly different image
	// from a constant volume.
	flat := grid.New(16, 16, 8)
	feature := grid.New(16, 16, 8)
	feature.Fill(func(_, _, _ int, p mathutil.Vec3) float64 {
		return math.Exp(-p.Sub(mathutil.Vec3{X: 7.5, Y: 7.5, Z: 3.5}).Norm2() / 8)
	})
	lo, hi := 0.0, 1.0
	a, err := Render(flat, Options{Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(feature, Options{Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	d, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		t.Fatalf("feature invisible: image RMSE %.3f", d)
	}
}

func TestRenderFixedRangeConsistency(t *testing.T) {
	// Identical volumes with a fixed transfer range produce identical
	// images; that's what makes image RMSE meaningful.
	v := testVolume()
	st := v.Stats()
	a, _ := Render(v, Options{Lo: st.Min(), Hi: st.Max()})
	b, _ := Render(v.Clone(), Options{Lo: st.Min(), Hi: st.Max()})
	d, err := RMSE(a, b)
	if err != nil || d != 0 {
		t.Fatalf("d=%g err=%v", d, err)
	}
}

func TestRMSEValidation(t *testing.T) {
	a := &Image{Width: 2, Height: 2, Pix: make([]byte, 12)}
	b := &Image{Width: 3, Height: 2, Pix: make([]byte, 18)}
	if _, err := RMSE(a, b); err == nil {
		t.Fatal("accepted size mismatch")
	}
}

func TestWritePPM(t *testing.T) {
	v := testVolume()
	img, err := Render(v, Options{Width: 8, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := len("P6\n8 6\n255\n") + 8*6*3
	if buf.Len() != want {
		t.Fatalf("ppm size %d want %d", buf.Len(), want)
	}
}
