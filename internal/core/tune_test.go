package core

import (
	"os"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/interp"
	"fillvoid/internal/sampling"
)

// TestTuneScratch is a manual tuning harness: FILLVOID_TUNE=1 go test
// -run TestTuneScratch -v ./internal/core/. It sweeps a few training
// configurations and prints the SNR each achieves, to guide the default
// small-scale settings. Skipped in normal runs.
func TestTuneScratch(t *testing.T) {
	if os.Getenv("FILLVOID_TUNE") == "" {
		t.Skip("set FILLVOID_TUNE=1 to run")
	}
	truth := testVolume(t)
	cloud, _, err := (&sampling.Importance{Seed: 11}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(truth)
	near, _ := (&interp.Nearest{}).Reconstruct(cloud, spec)
	t.Logf("nearest: %.2f dB", snrOf(t, truth, near))
	lin, _ := (&interp.Linear{}).Reconstruct(cloud, spec)
	t.Logf("linear:  %.2f dB", snrOf(t, truth, lin))

	configs := []Options{
		{Hidden: []int{48, 32, 16}, Epochs: 40, TrainFractions: []float64{0.02, 0.05}, MaxTrainRows: 9000, BatchSize: 256, Seed: 1},
		{Hidden: []int{64, 48, 32, 16}, Epochs: 100, TrainFractions: []float64{0.02, 0.05}, MaxTrainRows: 12000, BatchSize: 256, Seed: 1},
		{Hidden: []int{96, 64, 32, 16}, Epochs: 200, TrainFractions: []float64{0.02, 0.05}, MaxTrainRows: 16000, BatchSize: 128, Seed: 1},
		{Hidden: []int{128, 64, 32, 16, 8}, Epochs: 300, TrainFractions: []float64{0.02, 0.05}, MaxTrainRows: 20000, BatchSize: 128, Seed: 1},
	}
	gen := datasets.NewIsabel(7)
	_ = gen
	for i, opts := range configs {
		r, err := Pretrain(truth, "pressure", &sampling.Importance{Seed: 3}, opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := r.Reconstruct(cloud, spec)
		if err != nil {
			t.Fatal(err)
		}
		losses := r.Losses()
		t.Logf("config %d (hidden=%v epochs=%d rows<=%d): SNR %.2f dB, loss %.5f -> %.5f",
			i, opts.Hidden, opts.Epochs, opts.MaxTrainRows,
			snrOf(t, truth, recon), losses[0], losses[len(losses)-1])
	}
}
