// Package core implements the paper's primary contribution: a fully
// connected neural network (FCNN) that reconstructs full-resolution
// regular-grid scalar fields from aggressively sampled, unstructured
// point clouds.
//
// The workflow matches Section III of the paper:
//
//  1. Pretrain: at one timestep where the full field is available in
//     situ, sample it at the training fractions (1% and 5% by default),
//     extract a [1×23] feature vector per void location (five nearest
//     sampled points + the void position) with a [1×4] target (value +
//     gradients), and train the FCNN with Adam/MSE.
//  2. Reconstruct: given any sampled cloud of any timestep at any
//     sampling percentage — and any output resolution or spatial domain
//     — predict every void location in one batched inference pass.
//     Reconstruction cost is constant in the sampling percentage.
//  3. Fine-tune: adapt the pretrained model to a new timestep or
//     resolution with a few epochs. Case 1 retrains all layers
//     (~10 epochs); Case 2 retrains only the last two layers (cheaper
//     to store per timestep, needs more epochs).
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"fillvoid/internal/features"
	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/nn"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// Options configures pretraining and reconstruction.
type Options struct {
	// Features controls the k-NN feature engineering (default: K = 5
	// with gradient targets).
	Features features.Config
	// Hidden lists hidden-layer widths (default: the paper's five
	// layers, 512–16).
	Hidden []int
	// Epochs is the full-training epoch count (the paper uses 500).
	Epochs int
	// FineTuneEpochs is the default Case 1 fine-tune epoch count (~10).
	FineTuneEpochs int
	// TrainFractions are the sampling percentages whose void features
	// form the training set; the paper concatenates 1% and 5%.
	TrainFractions []float64
	// MaxTrainRows caps the training set size by uniform subsampling
	// (0 = unlimited). Table II shows quality is insensitive to this.
	MaxTrainRows int
	// BatchSize is the minibatch size (default 256).
	BatchSize int
	// Workers bounds parallelism (<= 0: all cores).
	Workers int
	// Seed drives sampling, init, and shuffling.
	Seed int64
	// LearningRate for Adam (default 1e-3, the paper's setting).
	LearningRate float64
	// SubsampleSeed drives MaxTrainRows subsampling.
	SubsampleSeed int64
	// RowSelection picks how MaxTrainRows trims the training set:
	// uniform (the paper's Table II protocol) or gradient-weighted (the
	// paper's "intelligent training set creation" future work).
	RowSelection RowSelection
	// ReconBatch bounds how many void locations are featurized and
	// predicted at once during reconstruction (default 1<<18). At the
	// paper's ionization resolution the void set is ~37M points, whose
	// full feature matrix would need ~7 GB; batching keeps memory flat.
	ReconBatch int
	// ValidationFraction, when > 0, holds out that fraction of the
	// training rows for per-epoch validation with early stopping
	// (Patience epochs without improvement; best weights restored).
	// The paper trains a fixed 500 epochs; this is an optional
	// production refinement.
	ValidationFraction float64
	// Patience is the early-stopping patience (default 20) when
	// ValidationFraction > 0.
	Patience int
}

// RowSelection is the training-row trimming strategy.
type RowSelection int

const (
	// SelectUniform keeps a uniform random subset (paper Table II).
	SelectUniform RowSelection = iota
	// SelectGradient keeps rows with probability proportional to the
	// target gradient magnitude, concentrating the budget on
	// feature-rich regions.
	SelectGradient
)

// String implements fmt.Stringer.
func (s RowSelection) String() string {
	switch s {
	case SelectUniform:
		return "uniform"
	case SelectGradient:
		return "gradient"
	default:
		return fmt.Sprintf("RowSelection(%d)", int(s))
	}
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Features:       features.DefaultConfig(),
		Hidden:         nn.PaperHidden(),
		Epochs:         500,
		FineTuneEpochs: 10,
		TrainFractions: []float64{0.01, 0.05},
		LearningRate:   1e-3,
	}
}

func (o Options) withDefaults() Options {
	if o.Features.K == 0 {
		o.Features = features.DefaultConfig()
	}
	if o.Hidden == nil {
		o.Hidden = nn.PaperHidden()
	}
	if o.Epochs == 0 {
		o.Epochs = 500
	}
	if o.FineTuneEpochs == 0 {
		o.FineTuneEpochs = 10
	}
	if len(o.TrainFractions) == 0 {
		o.TrainFractions = []float64{0.01, 0.05}
	}
	if o.LearningRate == 0 {
		o.LearningRate = 1e-3
	}
	if o.BatchSize == 0 {
		o.BatchSize = 256
	}
	return o
}

// FineTuneMode selects the paper's two fine-tuning strategies.
type FineTuneMode int

const (
	// FineTuneAll retrains every layer (Case 1): converges in ~10
	// epochs but a full model must be stored per timestep if models are
	// kept.
	FineTuneAll FineTuneMode = iota
	// FineTuneLastTwo freezes all but the last two layers (Case 2):
	// only those layers change per timestep, shrinking storage, but
	// convergence needs ~300-500 epochs.
	FineTuneLastTwo
)

// String implements fmt.Stringer.
func (m FineTuneMode) String() string {
	switch m {
	case FineTuneAll:
		return "case1-all-layers"
	case FineTuneLastTwo:
		return "case2-last-two"
	default:
		return fmt.Sprintf("FineTuneMode(%d)", int(m))
	}
}

// FCNN is a trained (or in-training) neural reconstructor.
type FCNN struct {
	opts Options
	net  *nn.Network
	// norm carries the value scaling fitted at pretraining time;
	// position scaling is refit to each reconstruction grid so the
	// model transfers across resolutions and spatial domains (Fig 13).
	norm      *features.Normalizer
	fieldName string
	// tm records the most recent training and reconstruction wall
	// times; it is the single timing source consumers (stream.Pipeline,
	// experiments) read so their reports can never disagree with the
	// telemetry spans.
	tm *timings
	// quant, when non-nil, makes inference run on a compressed weight
	// snapshot (f16 or int8) built lazily from net on first use. It is
	// a pointer so the FCNN struct stays copyable (Clone, WithQuant);
	// nil means full f64 precision.
	quant *quantState
}

// quantState is the lazily-built quantized snapshot of the network.
type quantState struct {
	mode nn.QuantMode
	once sync.Once
	q    *nn.Quantized
	err  error
}

// timings holds an FCNN's most recent stage durations.
type timings struct {
	mu    sync.Mutex
	train time.Duration
	recon time.Duration
}

func (t *timings) setTrain(d time.Duration) {
	t.mu.Lock()
	t.train = d
	t.mu.Unlock()
}

func (t *timings) setRecon(d time.Duration) {
	t.mu.Lock()
	t.recon = d
	t.mu.Unlock()
}

// Timings returns the wall time of the model's most recent training
// run (Pretrain or FineTune, feature build included) and most recent
// Reconstruct call. These are the same measurements the telemetry
// spans record.
func (r *FCNN) Timings() (train, recon time.Duration) {
	r.tm.mu.Lock()
	defer r.tm.mu.Unlock()
	return r.tm.train, r.tm.recon
}

// Pretrain samples truth at each training fraction with the given
// sampler, builds the combined training set, and trains a fresh FCNN.
// It returns the trained reconstructor; per-epoch losses are available
// via Losses.
func Pretrain(truth *grid.Volume, fieldName string, sampler sampling.Sampler, opts Options) (*FCNN, error) {
	opts = opts.withDefaults()
	reg := telemetry.Default()
	sp := reg.StartSpan("pretrain")
	start := time.Now()
	ts, norm, err := buildTrainingSet(truth, fieldName, sampler, opts, nil, sp)
	if err != nil {
		return nil, err
	}
	net, err := nn.New(nn.Config{
		In:        opts.Features.InputWidth(),
		Out:       opts.Features.OutputWidth(),
		Hidden:    opts.Hidden,
		Seed:      opts.Seed,
		BatchSize: opts.BatchSize,
		Workers:   opts.Workers,
		Adam:      nn.AdamConfig{LearningRate: opts.LearningRate},
	})
	if err != nil {
		return nil, err
	}
	if reg.Enabled() {
		net.SetObserver(reg.Train("pretrain"))
	}
	reg.Counter("core.pretrain.rows").Add(int64(ts.Len()))
	r := &FCNN{opts: opts, net: net, norm: norm, fieldName: fieldName, tm: &timings{}}
	trainSp := sp.Child("train")
	if opts.ValidationFraction > 0 {
		train, val, err := ts.Split(opts.ValidationFraction, opts.Seed^0x5a11d)
		if err != nil {
			return nil, err
		}
		patience := opts.Patience
		if patience <= 0 {
			patience = 20
		}
		if _, _, err := net.TrainWithValidation(train.X, train.Y, val.X, val.Y, opts.Epochs, patience); err != nil {
			return nil, err
		}
	} else if _, err := net.TrainEpochs(ts.X, ts.Y, opts.Epochs); err != nil {
		return nil, err
	}
	trainSp.End()
	sp.End()
	elapsed := time.Since(start)
	r.tm.setTrain(elapsed)
	reg.Counter("core.pretrain.runs").Inc()
	telemetry.Infof("pretrain done",
		"field", fieldName, "rows", ts.Len(), "epochs", len(net.Losses),
		"params", net.ParamCount(), "dur", elapsed.Round(time.Millisecond))
	return r, nil
}

// buildTrainingSet assembles the concatenated multi-fraction training
// set. With baseNorm == nil (pretraining) the normalizer's value and
// gradient scaling are fitted here — value range from the densest
// sampled cloud, gradient balance so the gradient targets match the
// value targets in RMS. With a baseNorm (fine-tuning) the fitted value
// and gradient scaling are kept — the model's output semantics must not
// shift under it — and only the position scaling is refit to the new
// grid's bounds, which is what lets fine-tuning cross resolutions and
// spatial domains.
func buildTrainingSet(truth *grid.Volume, fieldName string, sampler sampling.Sampler, opts Options, baseNorm *features.Normalizer, parent *telemetry.Span) (*features.TrainingSet, *features.Normalizer, error) {
	if sampler == nil {
		sampler = &sampling.Importance{Seed: opts.Seed}
	}
	fbSp := parent.Child("feature-build")
	defer fbSp.End()
	type sampled struct {
		cloud *pointcloud.Cloud
		void  []int
		frac  float64
	}
	sampleSp := parent.Child("sample")
	var all []sampled
	for _, frac := range opts.TrainFractions {
		cloud, idxs, err := sampler.Sample(truth, fieldName, frac)
		if err != nil {
			return nil, nil, fmt.Errorf("core: sampling at %g: %w", frac, err)
		}
		all = append(all, sampled{cloud: cloud, void: sampling.VoidIndices(truth, idxs), frac: frac})
	}
	sampleSp.End()
	if len(all) == 0 {
		return nil, nil, errors.New("core: no training fractions")
	}

	var norm *features.Normalizer
	if baseNorm == nil {
		densest := all[0]
		for _, s := range all[1:] {
			if s.frac > densest.frac {
				densest = s
			}
		}
		norm = features.NormalizerFor(densest.cloud, truth.Bounds())
		if opts.Features.WithGradients {
			// Balance gradient targets against the value targets: fit
			// on a bounded sample of void locations for speed.
			fit := densest.void
			if len(fit) > 20000 {
				fit = fit[:20000]
			}
			norm.FitGradScale(truth, fit, gradTargetRMS)
		}
	} else {
		n := *baseNorm
		pos := features.NewNormalizer(truth.Bounds(), 0, 1)
		n.PosMin = pos.PosMin
		n.PosScale = pos.PosScale
		norm = &n
	}

	var combined *features.TrainingSet
	for _, s := range all {
		ts, err := features.Build(opts.Features, truth, s.cloud, s.void, norm)
		if err != nil {
			return nil, nil, err
		}
		if combined == nil {
			combined = ts
		} else if err := combined.Append(ts); err != nil {
			return nil, nil, err
		}
	}
	if combined == nil || combined.Len() == 0 {
		return nil, nil, errors.New("core: empty training set")
	}
	if opts.MaxTrainRows > 0 && combined.Len() > opts.MaxTrainRows {
		frac := float64(opts.MaxTrainRows) / float64(combined.Len())
		var sub *features.TrainingSet
		var err error
		if opts.RowSelection == SelectGradient {
			if w := combined.GradientWeights(0); w != nil {
				sub, err = combined.SubsampleWeighted(frac, w, opts.SubsampleSeed)
			} else {
				// No gradient targets to weight by: fall back to uniform.
				sub, err = combined.Subsample(frac, opts.SubsampleSeed)
			}
		} else {
			sub, err = combined.Subsample(frac, opts.SubsampleSeed)
		}
		if err != nil {
			return nil, nil, err
		}
		combined = sub
	}
	return combined, norm, nil
}

// gradTargetRMS is the RMS the gradient target components are scaled to
// — comparable to the spread of the min-max normalized value component,
// so the four-way MSE weights value and gradients evenly.
const gradTargetRMS = 0.2

// FineTune adapts the model to a new timestep (or resolution/domain)
// whose ground truth is available in situ, using epochs epochs of the
// given mode. Pass epochs <= 0 for the mode's default (FineTuneEpochs
// for Case 1, 30× that for Case 2). The model's freeze state is
// restored to fully-trainable afterwards.
func (r *FCNN) FineTune(truth *grid.Volume, sampler sampling.Sampler, mode FineTuneMode, epochs int) error {
	opts := r.opts
	if epochs <= 0 {
		epochs = opts.FineTuneEpochs
		if mode == FineTuneLastTwo {
			epochs = opts.FineTuneEpochs * 30
		}
	}
	reg := telemetry.Default()
	sp := reg.StartSpan("finetune")
	start := time.Now()
	ts, _, err := buildTrainingSet(truth, r.fieldName, sampler, opts, r.norm, sp)
	if err != nil {
		return err
	}
	switch mode {
	case FineTuneAll:
		r.net.UnfreezeAll()
	case FineTuneLastTwo:
		r.net.FreezeAllButLast(2)
	default:
		return fmt.Errorf("core: unknown fine-tune mode %v", mode)
	}
	if reg.Enabled() {
		r.net.SetObserver(reg.Train("finetune"))
	}
	trainSp := sp.Child("train")
	_, err = r.net.TrainEpochs(ts.X, ts.Y, epochs)
	trainSp.End()
	r.net.UnfreezeAll()
	sp.End()
	elapsed := time.Since(start)
	r.tm.setTrain(elapsed)
	reg.Counter("core.finetune.runs").Inc()
	telemetry.Infof("finetune done",
		"field", r.fieldName, "mode", mode, "rows", ts.Len(), "epochs", epochs,
		"dur", elapsed.Round(time.Millisecond))
	return err
}

// Name implements recon.Reconstructor: "fcnn" for the full-precision
// model, "fcnn-f16"/"fcnn-int8" for quantized views.
func (r *FCNN) Name() string {
	if r.quant != nil {
		return "fcnn-" + r.quant.mode.String()
	}
	return "fcnn"
}

// WithQuant returns a reconstructor view of r whose inference runs on
// weights compressed to the given mode ("f16" or "int8"; "", "none"
// and "f64" return r unchanged). The view shares the underlying
// network, normalizer and timings with r; the compressed snapshot is
// taken lazily on first reconstruction and reused afterwards, so
// fine-tune before taking the view, not after.
func (r *FCNN) WithQuant(mode string) (recon.Reconstructor, error) {
	m, err := nn.ParseQuantMode(mode)
	if err != nil {
		return nil, err
	}
	if m == nn.QuantNone {
		return r, nil
	}
	cp := *r
	cp.quant = &quantState{mode: m}
	return &cp, nil
}

// predictor resolves the inference engine: the network itself at full
// precision, or the (lazily built) quantized snapshot.
func (r *FCNN) predictor() (nn.Predictor, error) {
	if r.quant == nil {
		return r.net, nil
	}
	r.quant.once.Do(func() {
		r.quant.q, r.quant.err = r.net.Quantize(r.quant.mode)
	})
	return r.quant.q, r.quant.err
}

// Reconstruct implements recon.Reconstructor (legacy full-grid path): it
// fills the spec'd grid from the sampled cloud via a private query plan.
func (r *FCNN) Reconstruct(c *pointcloud.Cloud, spec recon.GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// fusedTile is the micro-batch size of the fused inference path: each
// worker featurizes and predicts fusedTile void locations at a time, so
// the feature block (fusedTile × 23 floats) and every activation block
// stay cache-resident while the layer weights stream over them.
const fusedTile = 512

// fusedScratch is one worker's reusable state for the fused path: the
// feature block, the prediction block, the per-layer activation
// buffers, and the query/neighbor scratch. Allocated once per
// ReconstructRegion call and reused across every macro-batch.
type fusedScratch struct {
	x, out  *nn.Matrix
	buf     *nn.InferenceBuffers
	queries []mathutil.Vec3
	nbBuf   []kdtree.Neighbor
}

func newFusedScratch(pred nn.Predictor, inW, outW, k int) *fusedScratch {
	return &fusedScratch{
		x:       nn.NewMatrix(fusedTile, inW),
		out:     nn.NewMatrix(fusedTile, outW),
		buf:     pred.NewInferenceBuffers(fusedTile),
		queries: make([]mathutil.Vec3, 0, fusedTile),
		nbBuf:   make([]kdtree.Neighbor, 0, k),
	}
}

// ReconstructRegion implements recon.Reconstructor. Region queries
// coinciding with samples keep their exact sampled value; every other
// query (the void locations) flows through the fused batch pipeline —
// per worker and per fusedTile micro-batch: batched k-NN featurization
// into a reusable feature block, a blocked GEMM forward pass into
// reusable activation buffers, and denormalization straight into dst.
// The context is checked between macro-batches (ReconBatch locations),
// preserving the pre-fusion cancellation granularity. The position
// normalization is refit to the plan's full grid bounds — not the
// region's — which is what lets a model trained on one
// resolution/domain reconstruct another, and makes a sub-box query
// bit-identical to the same box cut from a full-grid reconstruction.
func (r *FCNN) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	if c.Len() < r.opts.Features.K {
		return fmt.Errorf("core: cloud has %d points, need >= %d", c.Len(), r.opts.Features.K)
	}
	spec := p.Spec()
	reg := telemetry.Default()
	sp := reg.StartSpan("reconstruct")
	defer sp.End()
	start := time.Now()
	norm := r.reconNormalizer(spec)
	ex, err := features.NewExtractorWithTree(r.opts.Features, c, p.Tree(), norm)
	if err != nil {
		return err
	}
	pred, err := r.predictor()
	if err != nil {
		return err
	}

	// Split queries into exact sample hits and void locations.
	n := region.Len()
	eps2 := spec.MinSpacing2() * 1e-12
	knnSp := sp.Child("knn-query")
	nearIdx, nearD2, err := p.NearestFor(ctx, region, r.opts.Workers)
	knnSp.End()
	if err != nil {
		return err
	}
	voidIdx := make([]int, 0, n)
	for m := 0; m < n; m++ {
		if nearD2[m] <= eps2 {
			dst[m] = c.Values[nearIdx[m]]
		} else {
			voidIdx = append(voidIdx, m)
		}
	}

	batch := r.opts.ReconBatch
	if batch <= 0 {
		batch = 1 << 18
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	// One scratch set per worker, reused across macro-batches; slots
	// fill lazily because ForChunked may engage fewer workers.
	scratch := make([]*fusedScratch, workers)
	for bstart := 0; bstart < len(voidIdx); bstart += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := bstart + batch
		if end > len(voidIdx) {
			end = len(voidIdx)
		}
		fusedSp := sp.Child("fused-infer")
		err := r.fusedInfer(pred, ex, spec, region, voidIdx[bstart:end], dst, norm, workers, scratch)
		fusedSp.End()
		if err != nil {
			return err
		}
		reg.Counter("core.reconstruct.batches").Inc()
	}
	elapsed := time.Since(start)
	r.tm.setRecon(elapsed)
	reg.Counter("core.reconstruct.runs").Inc()
	reg.Counter("core.reconstruct.void_points").Add(int64(len(voidIdx)))
	reg.Counter("core.reconstruct.exact_points").Add(int64(n - len(voidIdx)))
	telemetry.Debugf("reconstruct done",
		"points", n, "void", len(voidIdx), "samples", c.Len(),
		"dur", elapsed.Round(time.Millisecond))
	return nil
}

// reconNormalizer builds the per-reconstruction normalizer: the fitted
// value scaling with position scaling refit to the target grid bounds.
func (r *FCNN) reconNormalizer(spec recon.GridSpec) *features.Normalizer {
	norm := &features.Normalizer{ValMin: r.norm.ValMin, ValScale: r.norm.ValScale}
	posNorm := features.NewNormalizer(spec.Bounds(), 0, 1)
	norm.PosMin = posNorm.PosMin
	norm.PosScale = posNorm.PosScale
	return norm
}

// fusedInfer runs one macro-batch of void locations through the fused
// pipeline: workers take contiguous sub-ranges of chunk and stream
// fusedTile micro-batches through their own scratch, so the whole
// macro-batch performs O(workers) allocations on first use and zero
// afterwards. Results are bit-identical to the row-at-a-time reference
// path (reconstructRegionScalar) — the kernels preserve accumulation
// order exactly.
func (r *FCNN) fusedInfer(pred nn.Predictor, ex *features.Extractor, spec recon.GridSpec, region recon.Region, chunk []int, dst []float64, norm *features.Normalizer, workers int, scratch []*fusedScratch) error {
	nw := workers
	if nw > len(chunk) {
		nw = len(chunk)
	}
	if nw < 1 {
		return nil
	}
	csz := (len(chunk) + nw - 1) / nw
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	parallel.ForChunked(len(chunk), nw, func(lo, hi int) {
		// ForChunked hands worker w the range starting at w*csz, so the
		// worker id — and its scratch slot — falls out of lo.
		w := lo / csz
		s := scratch[w]
		if s == nil {
			s = newFusedScratch(pred, ex.Config().InputWidth(), pred.Config().Out, ex.Config().K)
			scratch[w] = s
		}
		for t := lo; t < hi; t += fusedTile {
			te := t + fusedTile
			if te > hi {
				te = hi
			}
			tile := chunk[t:te]
			s.queries = s.queries[:0]
			for _, m := range tile {
				s.queries = append(s.queries, region.PointAt(spec, m))
			}
			rows := len(tile)
			s.x.Rows, s.out.Rows = rows, rows
			if err := ex.BuildBatch(s.queries, s.x, s.nbBuf); err != nil {
				fail(err)
				return
			}
			if err := pred.PredictInto(s.x, s.out, s.buf); err != nil {
				fail(err)
				return
			}
			for i, m := range tile {
				dst[m] = norm.Denorm(s.out.At(i, 0))
			}
		}
	})
	return firstErr
}

// reconstructRegionScalar is the pre-fusion row-at-a-time reference
// implementation: full feature matrix per macro-batch, the parallel
// sharded Predict, per-point denorm. Kept unexported for the
// bit-identity guard test, which asserts the fused path reproduces its
// output volumes byte for byte.
func (r *FCNN) reconstructRegionScalar(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	if c.Len() < r.opts.Features.K {
		return fmt.Errorf("core: cloud has %d points, need >= %d", c.Len(), r.opts.Features.K)
	}
	spec := p.Spec()
	norm := r.reconNormalizer(spec)
	ex, err := features.NewExtractorWithTree(r.opts.Features, c, p.Tree(), norm)
	if err != nil {
		return err
	}
	n := region.Len()
	eps2 := spec.MinSpacing2() * 1e-12
	nearIdx, nearD2, err := p.NearestFor(ctx, region, r.opts.Workers)
	if err != nil {
		return err
	}
	voidIdx := make([]int, 0, n)
	for m := 0; m < n; m++ {
		if nearD2[m] <= eps2 {
			dst[m] = c.Values[nearIdx[m]]
		} else {
			voidIdx = append(voidIdx, m)
		}
	}
	batch := r.opts.ReconBatch
	if batch <= 0 {
		batch = 1 << 18
	}
	var queries []mathutil.Vec3
	for bstart := 0; bstart < len(voidIdx); bstart += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := bstart + batch
		if end > len(voidIdx) {
			end = len(voidIdx)
		}
		chunk := voidIdx[bstart:end]
		queries = queries[:0]
		for _, m := range chunk {
			queries = append(queries, region.PointAt(spec, m))
		}
		x := ex.Matrix(queries)
		pred, err := r.net.Predict(x)
		if err != nil {
			return err
		}
		for i := range chunk {
			dst[chunk[i]] = norm.Denorm(pred.At(i, 0))
		}
	}
	return nil
}

// Losses returns the concatenated per-epoch training losses (full
// training followed by fine-tuning epochs); Fig 12 plots these.
func (r *FCNN) Losses() []float64 { return r.net.Losses }

// Network exposes the underlying model (parameter counts, freezing).
func (r *FCNN) Network() *nn.Network { return r.net }

// Options returns the reconstructor's configuration.
func (r *FCNN) Options() Options { return r.opts }

// FieldName returns the scalar attribute this model was trained on.
func (r *FCNN) FieldName() string { return r.fieldName }

// Clone deep-copies the reconstructor (model weights included) so a
// pretrained model can be fine-tuned per timestep without mutating the
// original — the Fig 11 experiment does exactly this.
func (r *FCNN) Clone() (*FCNN, error) {
	cp := *r
	net, err := r.net.Clone()
	if err != nil {
		return nil, err
	}
	cp.net = net
	n := *r.norm
	cp.norm = &n
	cp.tm = &timings{}
	if r.quant != nil {
		// Fresh lazy state: the clone's snapshot must come from the
		// clone's weights, not the original's.
		cp.quant = &quantState{mode: r.quant.mode}
	}
	return &cp, nil
}

// bundle is the gob wire format for a saved FCNN reconstructor.
type bundle struct {
	Version   int
	Opts      Options
	Norm      features.Normalizer
	FieldName string
	Model     []byte
}

const bundleVersion = 1

// Save writes the reconstructor (options, normalizer, weights) to w.
func (r *FCNN) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := r.net.Save(&buf); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&bundle{
		Version:   bundleVersion,
		Opts:      r.opts,
		Norm:      *r.norm,
		FieldName: r.fieldName,
		Model:     buf.Bytes(),
	})
}

// WriteStable writes the reconstructor's persistent state in a
// canonical byte form for content addressing: a length-prefixed JSON
// header (bundle version, options, normalizer, field name) followed by
// the network's stable dump (see nn.Network.WriteStable). Save's gob
// stream embeds process-global type ids that vary with encoding
// history, so equal models can serialize to different gob bytes in
// different processes; these bytes depend only on the model's values,
// which is what lets a model id minted by one process verify in
// another.
func (r *FCNN) WriteStable(w io.Writer) error {
	hdr, err := json.Marshal(struct {
		Version   int
		Opts      Options
		Norm      features.Normalizer
		FieldName string
	}{bundleVersion, r.opts, *r.norm, r.fieldName})
	if err != nil {
		return err
	}
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(hdr)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return r.net.WriteStable(w)
}

// Load reads a reconstructor previously written with Save.
func Load(rd io.Reader) (*FCNN, error) {
	var b bundle
	if err := gob.NewDecoder(rd).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding model bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d", b.Version)
	}
	net, err := nn.Load(bytes.NewReader(b.Model))
	if err != nil {
		return nil, err
	}
	norm := b.Norm
	return &FCNN{opts: b.Opts.withDefaults(), net: net, norm: &norm, fieldName: b.FieldName, tm: &timings{}}, nil
}

// SaveFile writes the reconstructor to path.
func (r *FCNN) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return r.Save(f)
}

// LoadFile reads a reconstructor from path.
func LoadFile(path string) (*FCNN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
