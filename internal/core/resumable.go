package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/features"
	"fillvoid/internal/grid"
	"fillvoid/internal/nn"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// ErrStopped is returned by the resumable training entry points when
// their context is cancelled: the run halted cleanly on an epoch
// boundary after writing a final checkpoint, and a later call with
// Checkpointing.Resume picks up exactly where it stopped.
var ErrStopped = nn.ErrStopped

// ErrCheckpoint wraps a failure to persist a periodic or final
// checkpoint. Callers that schedule training (the server's job layer)
// match on it to tell a storage hiccup — the run is resumable from the
// last intact checkpoint — apart from a genuine training error.
var ErrCheckpoint = errors.New("core: checkpoint write failed")

// Checkpointing configures crash-safe training for PretrainResumable
// and FineTuneResumable.
type Checkpointing struct {
	// Manager owns the checkpoint directory. Required.
	Manager *checkpoint.Manager
	// Every is the epoch period between periodic checkpoints (default
	// 25). A final checkpoint is always written on cancellation.
	Every int
	// Resume loads the newest intact checkpoint before training and
	// continues from it; without one (fresh directory) training starts
	// from scratch. The checkpointed configuration hash must match the
	// current run's — resuming under different options, field, or grid
	// geometry is refused rather than silently diverging.
	Resume bool
	// Observer, when non-nil, receives the run's per-epoch EpochStats in
	// addition to the telemetry registry's own train series. The server's
	// job layer uses it to surface live epoch/loss progress for a running
	// training job.
	Observer telemetry.TrainObserver
}

// observe wires the run's observers onto net: the caller-supplied one
// (job progress) plus the registry train series when telemetry is on.
func (ck Checkpointing) observe(net *nn.Network, reg *telemetry.Registry, series string) {
	var obs []telemetry.TrainObserver
	if ck.Observer != nil {
		obs = append(obs, ck.Observer)
	}
	if reg.Enabled() {
		obs = append(obs, reg.Train(series))
	}
	switch len(obs) {
	case 0:
	case 1:
		net.SetObserver(obs[0])
	default:
		net.SetObserver(telemetry.MultiObserver(obs))
	}
}

func (ck Checkpointing) every() int {
	if ck.Every <= 0 {
		return 25
	}
	return ck.Every
}

// trainPayload is the checkpoint payload for core-level training runs:
// the complete network training state plus the pieces of FCNN identity
// a restarted process cannot rebuild from flags alone.
type trainPayload struct {
	State     *nn.TrainState
	Norm      features.Normalizer
	FieldName string
	// StartEpochs is the network's lifetime epoch count when the run
	// began (0 for pretraining; the pretrained count for fine-tuning), so
	// a resume can compute how many of the run's budgeted epochs remain.
	StartEpochs int
}

// configHash fingerprints everything that must match between the
// checkpointed run and the resuming one for bit-identical replay:
// the training options, field name, grid geometry, and run kind. The
// epoch budgets are deliberately excluded — they only decide when to
// stop, not what any epoch computes, so a resumed run may extend or
// shrink the budget (e.g. "train 100 more epochs").
func configHash(kind, fieldName string, truth *grid.Volume, opts Options) uint64 {
	opts.Epochs = 0
	opts.FineTuneEpochs = 0
	// JSON, not gob: gob streams embed process-global type ids that
	// depend on what the process encoded earlier, so the same config
	// would hash differently in (say) a freshly restarted server that
	// decodes its job inputs before hashing. JSON bytes depend only on
	// the values (struct field order is fixed and float64 marshaling is
	// exact), which keeps the hash stable across processes — the whole
	// point of validating a checkpoint against it.
	//lint:allow errdrop: JSON-encoding this all-concrete struct cannot fail; a hypothetical collision is caught by the shape checks in nn.Resume
	b, _ := json.Marshal(struct {
		Kind  string
		Field string
		Dims  [3]int
		Opts  Options
	}{kind, fieldName, [3]int{truth.NX, truth.NY, truth.NZ}, opts})
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// loadResume fetches the newest intact checkpoint and validates it
// against the current configuration. A fresh directory (ErrNoCheckpoint)
// returns a nil payload and no error: start from scratch.
func loadResume(ck Checkpointing, hash uint64) (*trainPayload, error) {
	var p trainPayload
	meta, err := ck.Manager.LoadLatest(&p)
	if errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if meta.ConfigHash != hash {
		return nil, fmt.Errorf("core: checkpoint in %s was written by a different configuration (hash %#x, want %#x)",
			ck.Manager.Dir(), meta.ConfigHash, hash)
	}
	if p.State == nil {
		return nil, fmt.Errorf("core: checkpoint in %s has no training state", ck.Manager.Dir())
	}
	return &p, nil
}

// sink returns the RunOptions checkpoint callback: it wraps each
// captured training state in the run's identity payload and hands it to
// the manager for an atomic write.
func sink(ck Checkpointing, hash uint64, norm *features.Normalizer, fieldName string, startEpochs int) func(*nn.TrainState) error {
	return func(ts *nn.TrainState) error {
		_, err := ck.Manager.Save(checkpoint.Meta{
			Epoch:      ts.Epoch(),
			ConfigHash: hash,
			RNGState:   ts.Shuffle,
		}, trainPayload{State: ts, Norm: *norm, FieldName: fieldName, StartEpochs: startEpochs})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCheckpoint, err)
		}
		return nil
	}
}

// PretrainResumable is Pretrain with crash safety: periodic atomic
// checkpoints, a final checkpoint on context cancellation (returning
// ErrStopped), and — with ck.Resume — continuation from the newest
// intact checkpoint. Because the minibatch-shuffle generator state is
// checkpointed alongside the optimizer state, an interrupted-and-resumed
// run produces bit-identical weights and losses to an uninterrupted one
// (same data, seed, and worker count). The training set itself is not
// checkpointed; it is rebuilt deterministically from the seeds.
func PretrainResumable(ctx context.Context, truth *grid.Volume, fieldName string, sampler sampling.Sampler, opts Options, ck Checkpointing) (*FCNN, error) {
	if ck.Manager == nil {
		return nil, errors.New("core: Checkpointing.Manager is required")
	}
	opts = opts.withDefaults()
	hash := configHash("pretrain", fieldName, truth, opts)

	var resume *trainPayload
	if ck.Resume {
		p, err := loadResume(ck, hash)
		if err != nil {
			return nil, err
		}
		resume = p
	}

	reg := telemetry.Default()
	sp := reg.StartSpan("pretrain")
	start := time.Now()
	ts, norm, err := buildTrainingSet(truth, fieldName, sampler, opts, nil, sp)
	if err != nil {
		return nil, err
	}

	var net *nn.Network
	epochsLeft := opts.Epochs
	var resumeVal *nn.ValState
	if resume != nil {
		net, err = nn.Resume(resume.State)
		if err != nil {
			return nil, err
		}
		done := resume.State.Epoch() - resume.StartEpochs
		epochsLeft = opts.Epochs - done
		resumeVal = resume.State.Val
		norm = &resume.Norm
		telemetry.Infof("pretrain resuming from checkpoint",
			"field", fieldName, "epochs_done", done, "epochs_left", epochsLeft)
	} else {
		net, err = nn.New(nn.Config{
			In:        opts.Features.InputWidth(),
			Out:       opts.Features.OutputWidth(),
			Hidden:    opts.Hidden,
			Seed:      opts.Seed,
			BatchSize: opts.BatchSize,
			Workers:   opts.Workers,
			Adam:      nn.AdamConfig{LearningRate: opts.LearningRate},
		})
		if err != nil {
			return nil, err
		}
	}
	ck.observe(net, reg, "pretrain")
	reg.Counter("core.pretrain.rows").Add(int64(ts.Len()))
	r := &FCNN{opts: opts, net: net, norm: norm, fieldName: fieldName, tm: &timings{}}
	run := nn.RunOptions{
		Ctx:             ctx,
		Checkpoint:      sink(ck, hash, norm, fieldName, 0),
		CheckpointEvery: ck.every(),
		ResumeVal:       resumeVal,
	}

	trainSp := sp.Child("train")
	var trainErr error
	if epochsLeft <= 0 {
		// The checkpoint already covers the full budget (e.g. the crash
		// hit after the last epoch's checkpoint): nothing left to run.
	} else if opts.ValidationFraction > 0 {
		train, val, err := ts.Split(opts.ValidationFraction, opts.Seed^0x5a11d)
		if err != nil {
			return nil, err
		}
		patience := opts.Patience
		if patience <= 0 {
			patience = 20
		}
		_, _, trainErr = net.TrainWithValidationOpts(train.X, train.Y, val.X, val.Y, epochsLeft, patience, run)
	} else {
		_, trainErr = net.TrainEpochsOpts(ts.X, ts.Y, epochsLeft, run)
	}
	trainSp.End()
	sp.End()
	elapsed := time.Since(start)
	r.tm.setTrain(elapsed)
	if trainErr != nil {
		if errors.Is(trainErr, ErrStopped) {
			// The final checkpoint is on disk; surface the partial model
			// too so a caller may keep using it in-process.
			return r, trainErr
		}
		return nil, trainErr
	}
	reg.Counter("core.pretrain.runs").Inc()
	telemetry.Infof("pretrain done",
		"field", fieldName, "rows", ts.Len(), "epochs", len(net.Losses),
		"params", net.ParamCount(), "dur", elapsed.Round(time.Millisecond))
	return r, nil
}

// FineTuneResumable is FineTune with the same crash safety as
// PretrainResumable. The checkpoint directory must be distinct per
// fine-tuning run (e.g. one per timestep); with ck.Resume the run
// continues from the newest checkpoint in it, counting only this run's
// epochs against the budget.
func (r *FCNN) FineTuneResumable(ctx context.Context, truth *grid.Volume, sampler sampling.Sampler, mode FineTuneMode, epochs int, ck Checkpointing) error {
	if ck.Manager == nil {
		return errors.New("core: Checkpointing.Manager is required")
	}
	opts := r.opts
	if epochs <= 0 {
		epochs = opts.FineTuneEpochs
		if mode == FineTuneLastTwo {
			epochs = opts.FineTuneEpochs * 30
		}
	}
	hash := configHash(fmt.Sprintf("finetune-%s", mode), r.fieldName, truth, opts)

	startEpochs := len(r.net.Losses)
	epochsLeft := epochs
	if ck.Resume {
		p, err := loadResume(ck, hash)
		if err != nil {
			return err
		}
		if p != nil {
			net, err := nn.Resume(p.State)
			if err != nil {
				return err
			}
			r.net = net
			startEpochs = p.StartEpochs
			done := p.State.Epoch() - p.StartEpochs
			epochsLeft = epochs - done
			telemetry.Infof("finetune resuming from checkpoint",
				"field", r.fieldName, "epochs_done", done, "epochs_left", epochsLeft)
		}
	}

	reg := telemetry.Default()
	sp := reg.StartSpan("finetune")
	start := time.Now()
	ts, _, err := buildTrainingSet(truth, r.fieldName, sampler, opts, r.norm, sp)
	if err != nil {
		return err
	}
	switch mode {
	case FineTuneAll:
		r.net.UnfreezeAll()
	case FineTuneLastTwo:
		r.net.FreezeAllButLast(2)
	default:
		return fmt.Errorf("core: unknown fine-tune mode %v", mode)
	}
	ck.observe(r.net, reg, "finetune")
	run := nn.RunOptions{
		Ctx:             ctx,
		Checkpoint:      sink(ck, hash, r.norm, r.fieldName, startEpochs),
		CheckpointEvery: ck.every(),
	}
	trainSp := sp.Child("train")
	var trainErr error
	if epochsLeft > 0 {
		_, trainErr = r.net.TrainEpochsOpts(ts.X, ts.Y, epochsLeft, run)
	}
	trainSp.End()
	if !errors.Is(trainErr, ErrStopped) {
		// Leave the freeze state checkpoint-accurate on interruption so a
		// resumed Case 2 run still trains only the last two layers.
		r.net.UnfreezeAll()
	}
	sp.End()
	elapsed := time.Since(start)
	r.tm.setTrain(elapsed)
	if trainErr != nil {
		return trainErr
	}
	reg.Counter("core.finetune.runs").Inc()
	telemetry.Infof("finetune done",
		"field", r.fieldName, "mode", mode, "rows", ts.Len(), "epochs", epochs,
		"dur", elapsed.Round(time.Millisecond))
	return nil
}
