package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/sampling"
)

// Robustness and failure-injection tests: malformed model files,
// degenerate fields, and hostile option values must fail loudly (or
// degrade gracefully), never panic or silently corrupt output.

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a bundle")); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestLoadRejectsTruncatedBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := testVolume(t)
	opts := testOptions()
	opts.Epochs = 2
	opts.MaxTrainRows = 500
	r, err := Pretrain(truth, "pressure", &sampling.Importance{Seed: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("accepted bundle truncated to %d bytes", cut)
		}
	}
}

func TestPretrainConstantField(t *testing.T) {
	// A constant field has a degenerate value range and zero gradients
	// everywhere; pretraining must not blow up (SNR is meaningless on
	// constants, but the pipeline must stay finite).
	v := grid.New(12, 12, 6)
	for i := range v.Data {
		v.Data[i] = 7
	}
	opts := Options{
		Hidden:         []int{8},
		Epochs:         3,
		TrainFractions: []float64{0.05},
		MaxTrainRows:   500,
		BatchSize:      128,
		Seed:           1,
	}
	r, err := Pretrain(v, "f", &sampling.Importance{Seed: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cloud, _, err := (&sampling.Importance{Seed: 2}).Sample(v, "f", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Reconstruct(cloud, interp.SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range recon.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("non-finite reconstruction at %d: %g", i, x)
		}
	}
}

func TestPretrainRejectsNoFractions(t *testing.T) {
	v := grid.New(8, 8, 4)
	opts := Options{Hidden: []int{4}, Epochs: 1, TrainFractions: []float64{-1}}
	if _, err := Pretrain(v, "f", &sampling.Importance{Seed: 1}, opts); err == nil {
		t.Fatal("accepted a negative training fraction")
	}
}

func TestFineTuneUnknownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	r, truth := pretrained(t)
	tuned, err := r.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.FineTune(truth, &sampling.Importance{Seed: 1}, FineTuneMode(99), 1); err == nil {
		t.Fatal("accepted unknown fine-tune mode")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opts := DefaultOptions()
	if opts.Epochs != 500 {
		t.Fatalf("epochs %d, paper uses 500", opts.Epochs)
	}
	if opts.LearningRate != 1e-3 {
		t.Fatalf("lr %g, paper uses 1e-3", opts.LearningRate)
	}
	if len(opts.Hidden) != 5 {
		t.Fatalf("%d hidden layers, paper uses 5", len(opts.Hidden))
	}
	if opts.Features.K != 5 || !opts.Features.WithGradients {
		t.Fatalf("features %+v, paper uses K=5 with gradients", opts.Features)
	}
	if len(opts.TrainFractions) != 2 || opts.TrainFractions[0] != 0.01 || opts.TrainFractions[1] != 0.05 {
		t.Fatalf("train fractions %v, paper uses 1%%+5%%", opts.TrainFractions)
	}
}

func TestPretrainWithValidationEarlyStopping(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := testVolume(t)
	opts := testOptions()
	opts.Epochs = 60
	opts.MaxTrainRows = 4000
	opts.ValidationFraction = 0.2
	opts.Patience = 5
	r, err := Pretrain(truth, "pressure", &sampling.Importance{Seed: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cloud, _, err := (&sampling.Importance{Seed: 8}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Reconstruct(cloud, interp.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	if s := snrOf(t, truth, recon); s < 3 {
		t.Fatalf("validation-trained model SNR %.2f dB too low", s)
	}
}
