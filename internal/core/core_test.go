package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/metrics"
	"fillvoid/internal/sampling"
)

// testOptions returns a configuration small enough for unit tests but
// structurally identical to the paper's (multi-fraction training set,
// several hidden layers, gradient targets).
func testOptions() Options {
	return Options{
		Hidden:         []int{96, 64, 32, 16},
		Epochs:         150,
		FineTuneEpochs: 8,
		TrainFractions: []float64{0.02, 0.05},
		MaxTrainRows:   14000,
		BatchSize:      128,
		Seed:           1,
	}
}

func testVolume(t *testing.T) *grid.Volume {
	t.Helper()
	gen := datasets.NewIsabel(7)
	return datasets.Volume(gen, 40, 40, 12, 10)
}

// Pretraining is the expensive step, so all tests share one pretrained
// model; anything that mutates it works on a Clone.
var (
	pretrainOnce sync.Once
	pretrainR    *FCNN
	pretrainErr  error
)

func pretrained(t *testing.T) (*FCNN, *grid.Volume) {
	t.Helper()
	if testing.Short() {
		t.Skip("pretraining is too slow for -short")
	}
	truth := testVolume(t)
	pretrainOnce.Do(func() {
		pretrainR, pretrainErr = Pretrain(truth, "pressure", &sampling.Importance{Seed: 3}, testOptions())
	})
	if pretrainErr != nil {
		t.Fatal(pretrainErr)
	}
	return pretrainR, truth
}

func snrOf(t *testing.T, truth, recon *grid.Volume) float64 {
	t.Helper()
	s, err := metrics.SNR(truth, recon)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPretrainAndReconstructBeatsNearest(t *testing.T) {
	r, truth := pretrained(t)

	cloud, _, err := (&sampling.Importance{Seed: 11}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(truth)

	recon, err := r.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	fcnnSNR := snrOf(t, truth, recon)

	nnRecon, err := (&interp.Nearest{}).Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	nearSNR := snrOf(t, truth, nnRecon)

	t.Logf("SNR: fcnn=%.2f dB nearest=%.2f dB", fcnnSNR, nearSNR)
	if fcnnSNR < 12 {
		t.Fatalf("FCNN SNR %.2f dB is implausibly low", fcnnSNR)
	}
	if fcnnSNR <= nearSNR {
		t.Fatalf("FCNN (%.2f dB) should beat nearest neighbor (%.2f dB)", fcnnSNR, nearSNR)
	}
}

func TestLossDecreasesDuringTraining(t *testing.T) {
	r, _ := pretrained(t)
	losses := r.Losses()
	if len(losses) == 0 {
		t.Fatal("no loss history")
	}
	first, last := losses[0], losses[len(losses)-1]
	if !(last < first*0.5) {
		t.Fatalf("loss did not decrease enough: first=%g last=%g", first, last)
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss in history: %v", losses)
		}
	}
}

func TestReconstructionConstantAcrossSamplingPercents(t *testing.T) {
	// The same pretrained model must work at multiple sampling
	// percentages (the paper's key flexibility finding).
	r, truth := pretrained(t)
	spec := interp.SpecOf(truth)
	for _, frac := range []float64{0.01, 0.03, 0.05} {
		cloud, _, err := (&sampling.Importance{Seed: 23}).Sample(truth, "pressure", frac)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := r.Reconstruct(cloud, spec)
		if err != nil {
			t.Fatalf("fraction %g: %v", frac, err)
		}
		s := snrOf(t, truth, recon)
		t.Logf("fraction %.3f: SNR %.2f dB", frac, s)
		if s < 5 {
			t.Fatalf("fraction %g: SNR %.2f dB too low", frac, s)
		}
	}
}

func TestSampledNodesKeptExact(t *testing.T) {
	r, truth := pretrained(t)
	cloud, idxs, err := (&sampling.Importance{Seed: 5}).Sample(truth, "pressure", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Reconstruct(cloud, interp.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs {
		if recon.Data[idx] != truth.Data[idx] {
			t.Fatalf("sampled node %d: got %g want exact %g", idx, recon.Data[idx], truth.Data[idx])
		}
	}
}

func TestFineTuneImprovesLaterTimestep(t *testing.T) {
	r, _ := pretrained(t)
	gen := datasets.NewIsabel(7)
	later := datasets.Volume(gen, 40, 40, 12, 40) // far from training t=10

	cloud, _, err := (&sampling.Importance{Seed: 31}).Sample(later, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(later)

	before, err := r.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	beforeSNR := snrOf(t, later, before)

	tuned, err := r.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.FineTune(later, &sampling.Importance{Seed: 31}, FineTuneAll, 8); err != nil {
		t.Fatal(err)
	}
	after, err := tuned.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	afterSNR := snrOf(t, later, after)

	t.Logf("SNR on t=40: pretrained=%.2f dB fine-tuned=%.2f dB", beforeSNR, afterSNR)
	if afterSNR <= beforeSNR {
		t.Fatalf("fine-tuning should improve SNR (%.2f -> %.2f)", beforeSNR, afterSNR)
	}
}

func TestFineTuneLastTwoOnlyChangesLastTwoLayers(t *testing.T) {
	r, truth := pretrained(t)
	tuned, err := r.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.FineTune(truth, &sampling.Importance{Seed: 3}, FineTuneLastTwo, 5); err != nil {
		t.Fatal(err)
	}
	// Under Case 2, the trainable parameter count during tuning is that
	// of the last two layers only.
	tuned.Network().FreezeAllButLast(2)
	frozenTrainable := tuned.Network().TrainableParamCount()
	tuned.Network().UnfreezeAll()
	total := tuned.Network().ParamCount()
	if frozenTrainable >= total {
		t.Fatalf("case 2 trainable params (%d) should be < total (%d)", frozenTrainable, total)
	}
}

func TestCrossResolutionReconstruction(t *testing.T) {
	// Train at 40x40x12, reconstruct a 2x-upscaled grid (Fig 13).
	r, _ := pretrained(t)
	gen := datasets.NewIsabel(7)
	hi := datasets.Volume(gen, 80, 80, 24, 10)
	cloud, _, err := (&sampling.Importance{Seed: 13}).Sample(hi, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Reconstruct(cloud, interp.SpecOf(hi))
	if err != nil {
		t.Fatal(err)
	}
	s := snrOf(t, hi, recon)
	t.Logf("cross-resolution SNR: %.2f dB", s)
	if s < 5 {
		t.Fatalf("cross-resolution SNR %.2f dB too low", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r, truth := pretrained(t)
	cloud, _, err := (&sampling.Importance{Seed: 17}).Sample(truth, "pressure", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(truth)
	want, err := r.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FieldName() != "pressure" {
		t.Fatalf("field name %q", loaded.FieldName())
	}
	got, err := loaded.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, got); d > 1e-12 {
		t.Fatalf("reloaded model diverges: max abs diff %g", d)
	}
}

func TestPretrainRejectsTinyCloud(t *testing.T) {
	r, _ := pretrained(t)
	small := testVolume(t)
	cloud, _, err := (&sampling.Random{Seed: 1}).Sample(small, "pressure", 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Len() >= r.Options().Features.K {
		t.Skip("cloud unexpectedly large")
	}
	if _, err := r.Reconstruct(cloud, interp.SpecOf(small)); err == nil {
		t.Fatal("expected error for cloud smaller than K")
	}
}

func TestFineTuneModeString(t *testing.T) {
	if FineTuneAll.String() != "case1-all-layers" {
		t.Fatal(FineTuneAll.String())
	}
	if FineTuneLastTwo.String() != "case2-last-two" {
		t.Fatal(FineTuneLastTwo.String())
	}
	if FineTuneMode(9).String() == "" {
		t.Fatal("unknown mode should still stringify")
	}
}

func TestReconstructBatchSizeInvariant(t *testing.T) {
	// Chunked reconstruction (small ReconBatch) must produce exactly
	// the same volume as one big batch.
	r, truth := pretrained(t)
	cloud, _, err := (&sampling.Importance{Seed: 41}).Sample(truth, "pressure", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(truth)
	want, err := r.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	tiny := *r
	tinyOpts := r.Options()
	tinyOpts.ReconBatch = 777
	tiny.opts = tinyOpts
	got, err := tiny.Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("batched reconstruction deviates by %g", d)
	}
}

func TestPretrainGradientRowSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := testVolume(t)
	opts := testOptions()
	opts.Epochs = 20
	opts.MaxTrainRows = 3000
	opts.RowSelection = SelectGradient
	r, err := Pretrain(truth, "pressure", &sampling.Importance{Seed: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cloud, _, err := (&sampling.Importance{Seed: 11}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := r.Reconstruct(cloud, interp.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	if s := snrOf(t, truth, recon); s < 2 {
		t.Fatalf("gradient-selected training collapsed: %.2f dB", s)
	}
}

func TestRowSelectionString(t *testing.T) {
	if SelectUniform.String() != "uniform" || SelectGradient.String() != "gradient" {
		t.Fatal("RowSelection strings")
	}
	if RowSelection(7).String() == "" {
		t.Fatal("unknown selection should stringify")
	}
}
