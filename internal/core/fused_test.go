package core

import (
	"context"
	"math"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/features"
	"fillvoid/internal/nn"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
)

// untrainedFCNN builds a reconstructor around a freshly initialized
// (untrained) network: bit-identity of the inference path does not
// depend on weight quality, so the guard tests skip the training cost.
func untrainedFCNN(t *testing.T, workers, reconBatch int) *FCNN {
	t.Helper()
	cfg := features.DefaultConfig()
	net, err := nn.New(nn.Config{
		In: cfg.InputWidth(), Out: cfg.OutputWidth(),
		Hidden: []int{48, 24, 16}, Seed: 9, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Features: cfg, Workers: workers, ReconBatch: reconBatch, Seed: 9}.withDefaults()
	return &FCNN{
		opts: opts, net: net, fieldName: "pressure", tm: &timings{},
		norm: &features.Normalizer{ValScale: 1},
	}
}

// TestFusedBitIdenticalToScalar is the tentpole guard: on the golden
// 32×32×10 Isabel fixture the fused batch pipeline must produce output
// volumes byte-identical to the row-at-a-time reference path, across
// worker counts, macro-batch sizes, and region shapes.
func TestFusedBitIdenticalToScalar(t *testing.T) {
	gen := datasets.NewIsabel(3)
	truth := datasets.Volume(gen, 32, 32, 10, 10)
	cloud, _, err := (&sampling.Importance{Seed: 3}).Sample(truth, "pressure", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec := recon.SpecOf(truth)
	ctx := context.Background()
	cases := []struct {
		name       string
		workers    int
		reconBatch int
		region     recon.Region
	}{
		{"serial-full", 1, 0, recon.Full(spec)},
		{"parallel-full", 3, 0, recon.Full(spec)},
		{"small-macro-batches", 4, 1000, recon.Full(spec)},
		{"tile-remainder", 2, 777, recon.Full(spec)},
		{"sub-box", 3, 0, recon.Box(4, 5, 1, 29, 27, 9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := untrainedFCNN(t, tc.workers, tc.reconBatch)
			p, err := recon.NewPlan(cloud, spec)
			if err != nil {
				t.Fatal(err)
			}
			n := tc.region.Len()
			fused := make([]float64, n)
			scalar := make([]float64, n)
			if err := r.ReconstructRegion(ctx, p, tc.region, fused); err != nil {
				t.Fatal(err)
			}
			if err := r.reconstructRegionScalar(ctx, p, tc.region, scalar); err != nil {
				t.Fatal(err)
			}
			for i := range fused {
				if math.Float64bits(fused[i]) != math.Float64bits(scalar[i]) {
					t.Fatalf("point %d: fused %x (%g), scalar %x (%g)",
						i, math.Float64bits(fused[i]), fused[i], math.Float64bits(scalar[i]), scalar[i])
				}
			}
		})
	}
}

func TestWithQuantNamesAndModes(t *testing.T) {
	r := untrainedFCNN(t, 1, 0)
	if r.Name() != "fcnn" {
		t.Fatalf("base name %q", r.Name())
	}
	same, err := r.WithQuant("")
	if err != nil || same != recon.Reconstructor(r) {
		t.Fatalf("WithQuant(\"\") = %v, %v; want the receiver", same, err)
	}
	for mode, want := range map[string]string{"f16": "fcnn-f16", "int8": "fcnn-int8"} {
		q, err := r.WithQuant(mode)
		if err != nil {
			t.Fatal(err)
		}
		if q.Name() != want {
			t.Fatalf("WithQuant(%q).Name() = %q, want %q", mode, q.Name(), want)
		}
	}
	if _, err := r.WithQuant("f32"); err == nil {
		t.Error("WithQuant accepted f32")
	}
	if r.Name() != "fcnn" {
		t.Error("WithQuant mutated the receiver's name")
	}
}

// TestQuantizedReconstructClose checks the quantized views end-to-end:
// the reconstruction runs, stays finite, keeps exact sample hits exact,
// and the f16 volume stays close to the f64 volume (the golden-SNR
// harness pins the quality delta on a trained model; this guards the
// plumbing).
func TestQuantizedReconstructClose(t *testing.T) {
	gen := datasets.NewIsabel(3)
	truth := datasets.Volume(gen, 32, 32, 10, 10)
	cloud, idxs, err := (&sampling.Importance{Seed: 3}).Sample(truth, "pressure", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec := recon.SpecOf(truth)
	r := untrainedFCNN(t, 2, 0)
	p, err := recon.NewPlan(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, spec.Len())
	if err := r.ReconstructRegion(context.Background(), p, recon.Full(spec), base); err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, v := range base {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, mode := range []string{"f16", "int8"} {
		qr, err := r.WithQuant(mode)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, spec.Len())
		if err := qr.ReconstructRegion(context.Background(), p, recon.Full(spec), out); err != nil {
			t.Fatal(err)
		}
		tol := 0.05
		if mode == "int8" {
			tol = 0.5
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite value at %d", mode, i)
			}
			if d := math.Abs(v - base[i]); d > tol*scale {
				t.Fatalf("%s point %d: |%g - %g| = %g beyond %g", mode, i, v, base[i], d, tol*scale)
			}
		}
		// Exact sample hits bypass the network entirely, so they stay
		// exact in every quant mode.
		for _, idx := range idxs[:10] {
			if out[idx] != truth.Data[idx] {
				t.Fatalf("%s: sampled node %d not exact: %g != %g", mode, idx, out[idx], truth.Data[idx])
			}
		}
	}
}
