package core

import (
	"context"
	"errors"
	"testing"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// resumableOptions: a configuration small enough that a full pretrain
// takes well under a second, with Workers pinned for determinism.
func resumableOptions() Options {
	return Options{
		Hidden:         []int{24, 12},
		Epochs:         12,
		TrainFractions: []float64{0.03},
		MaxTrainRows:   1500,
		BatchSize:      64,
		Seed:           5,
		Workers:        2,
	}
}

func resumableVolume() *grid.Volume {
	gen := datasets.NewIsabel(3)
	return datasets.Volume(gen, 16, 16, 8, 4)
}

func resumableManager(t *testing.T, dir string) *checkpoint.Manager {
	t.Helper()
	m, err := checkpoint.NewManager(checkpoint.Config{Dir: dir, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func equalWeights(t *testing.T, a, b *FCNN) {
	t.Helper()
	sa, sb := a.net.CaptureTrainState(), b.net.CaptureTrainState()
	if len(sa.Losses) != len(sb.Losses) {
		t.Fatalf("loss histories differ in length: %d vs %d", len(sa.Losses), len(sb.Losses))
	}
	for i := range sa.Losses {
		if sa.Losses[i] != sb.Losses[i] {
			t.Fatalf("loss[%d] differs: %v vs %v", i, sa.Losses[i], sb.Losses[i])
		}
	}
	for i := range sa.Weights {
		for j := range sa.Weights[i] {
			if sa.Weights[i][j] != sb.Weights[i][j] {
				t.Fatalf("weights[%d][%d] differ: %v vs %v (not bit-identical)", i, j, sa.Weights[i][j], sb.Weights[i][j])
			}
		}
	}
}

// TestPretrainResumableMatchesUninterrupted interrupts a pretraining
// run after 8 of 12 epochs (by truncating the budget — on disk the
// state is exactly what a crash right after the epoch-8 checkpoint
// leaves), then resumes from the checkpoint in a "new process" (fresh
// manager, fresh FCNN) and checks the final model is bit-identical to
// an uninterrupted 12-epoch run.
func TestPretrainResumableMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := resumableVolume()
	opts := resumableOptions()
	sampler := &sampling.Importance{Seed: 9}

	full, err := Pretrain(truth, "pressure", sampler, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Phase 1: "crash" after the epoch-8 checkpoint.
	short := opts
	short.Epochs = 8
	m1 := resumableManager(t, dir)
	if _, err := PretrainResumable(context.Background(), truth, "pressure", sampler, short,
		Checkpointing{Manager: m1, Every: 4}); err != nil {
		t.Fatal(err)
	}
	metas, err := m1.List()
	if err != nil || len(metas) == 0 {
		t.Fatalf("no checkpoints after phase 1 (err=%v)", err)
	}
	if last := metas[len(metas)-1]; last.Epoch != 8 {
		t.Fatalf("latest checkpoint at epoch %d, want 8", last.Epoch)
	}

	// Phase 2: a new process resumes and finishes the full budget.
	m2 := resumableManager(t, dir)
	resumed, err := PretrainResumable(context.Background(), truth, "pressure", sampler, opts,
		Checkpointing{Manager: m2, Every: 4, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	equalWeights(t, resumed, full)
}

// TestPretrainResumableCancellation: a cancelled context stops the run
// with ErrStopped after writing a final checkpoint, and still returns
// the partial model.
func TestPretrainResumableCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := resumableVolume()
	opts := resumableOptions()
	sampler := &sampling.Importance{Seed: 9}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: training stops at the first boundary
	m := resumableManager(t, t.TempDir())
	partial, err := PretrainResumable(ctx, truth, "pressure", sampler, opts,
		Checkpointing{Manager: m, Every: 4})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("cancelled pretrain returned %v, want ErrStopped", err)
	}
	if partial == nil {
		t.Fatal("interrupted run should still return the partial model")
	}
	metas, err := m.List()
	if err != nil || len(metas) == 0 {
		t.Fatalf("cancellation should leave a final checkpoint (err=%v, n=%d)", err, len(metas))
	}
}

// TestPretrainResumableConfigMismatch: resuming under different options
// is refused, not silently diverged.
func TestPretrainResumableConfigMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := resumableVolume()
	opts := resumableOptions()
	opts.Epochs = 4
	sampler := &sampling.Importance{Seed: 9}
	dir := t.TempDir()

	if _, err := PretrainResumable(context.Background(), truth, "pressure", sampler, opts,
		Checkpointing{Manager: resumableManager(t, dir), Every: 2}); err != nil {
		t.Fatal(err)
	}
	other := opts
	other.Seed = 6
	_, err := PretrainResumable(context.Background(), truth, "pressure", sampler, other,
		Checkpointing{Manager: resumableManager(t, dir), Every: 2, Resume: true})
	if err == nil {
		t.Fatal("resume with a different configuration should be refused")
	}
}

// TestPretrainResumableFreshDirTrainsFromScratch: Resume with no
// checkpoint present is a normal cold start, equal to plain Pretrain.
func TestPretrainResumableFreshDirTrainsFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := resumableVolume()
	opts := resumableOptions()
	opts.Epochs = 5
	sampler := &sampling.Importance{Seed: 9}

	full, err := Pretrain(truth, "pressure", sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := PretrainResumable(context.Background(), truth, "pressure", sampler, opts,
		Checkpointing{Manager: resumableManager(t, t.TempDir()), Every: 2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	equalWeights(t, r, full)
}

// TestFineTuneResumableMatchesUninterrupted: fine-tuning a pretrained
// model with checkpointing resumes bit-identically too.
func TestFineTuneResumableMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	truth := resumableVolume()
	opts := resumableOptions()
	opts.Epochs = 4
	sampler := &sampling.Importance{Seed: 9}

	base, err := Pretrain(truth, "pressure", sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := datasets.NewIsabel(3)
	truth2 := datasets.Volume(gen, 16, 16, 8, 6)

	// Uninterrupted fine-tune.
	full, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := full.FineTune(truth2, sampler, FineTuneAll, 6); err != nil {
		t.Fatal(err)
	}

	// Checkpointed fine-tune "crashed" after 2 of 6 epochs (truncated
	// budget — same on-disk state), then resumed against the same
	// directory for the remaining 4.
	dir := t.TempDir()
	interrupted, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	m1 := resumableManager(t, dir)
	if err := interrupted.FineTuneResumable(context.Background(), truth2, sampler, FineTuneAll, 2,
		Checkpointing{Manager: m1, Every: 2}); err != nil {
		t.Fatal(err)
	}
	metas, err := m1.List()
	if err != nil || len(metas) == 0 {
		t.Fatalf("no checkpoints after interrupted fine-tune (err=%v)", err)
	}
	// The fine-tune checkpoint epoch counts from the pretrained count.
	if last := metas[len(metas)-1]; last.Epoch != opts.Epochs+2 {
		t.Fatalf("latest checkpoint at epoch %d, want %d", last.Epoch, opts.Epochs+2)
	}

	resumed, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.FineTuneResumable(context.Background(), truth2, sampler, FineTuneAll, 6,
		Checkpointing{Manager: resumableManager(t, dir), Every: 2, Resume: true}); err != nil {
		t.Fatal(err)
	}
	equalWeights(t, resumed, full)
}
