package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/checkpoint/faultfs"
	"fillvoid/internal/telemetry"
)

// payload is a representative checkpoint payload: nested slices, like
// the real nn.TrainState.
type payload struct {
	Epoch   int
	Weights [][]float64
	Note    string
}

func testPayload(epoch int) payload {
	return payload{
		Epoch:   epoch,
		Weights: [][]float64{{1.5, -2.25, float64(epoch)}, {0.125}},
		Note:    "checkpoint test",
	}
}

func newManager(t *testing.T, dir string, cfg checkpoint.Config) *checkpoint.Manager {
	t.Helper()
	cfg.Dir = dir
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	m, err := checkpoint.NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func save(t *testing.T, m *checkpoint.Manager, epoch int) string {
	t.Helper()
	path, err := m.Save(checkpoint.Meta{Epoch: epoch, ConfigHash: 0xabc, RNGState: uint64(epoch)}, testPayload(epoch))
	if err != nil {
		t.Fatalf("Save(epoch=%d): %v", epoch, err)
	}
	return path
}

func loadLatest(t *testing.T, m *checkpoint.Manager) (checkpoint.Meta, payload) {
	t.Helper()
	var p payload
	meta, err := m.LoadLatest(&p)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	return meta, p
}

func checkPayload(t *testing.T, p payload, epoch int) {
	t.Helper()
	want := testPayload(epoch)
	if p.Epoch != want.Epoch || p.Note != want.Note ||
		len(p.Weights) != len(want.Weights) {
		t.Fatalf("payload mismatch: got %+v want %+v", p, want)
	}
	for i := range want.Weights {
		for j := range want.Weights[i] {
			if p.Weights[i][j] != want.Weights[i][j] {
				t.Fatalf("payload weights[%d][%d] = %v want %v", i, j, p.Weights[i][j], want.Weights[i][j])
			}
		}
	}
}

func published(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tel := telemetry.NewRegistry()
	m := newManager(t, t.TempDir(), checkpoint.Config{Telemetry: tel, Now: func() int64 { return 42 }})

	path := save(t, m, 7)
	if filepath.Base(path) != "ckpt-0000000007.fvcp" {
		t.Fatalf("unexpected checkpoint name %q", filepath.Base(path))
	}
	meta, p := loadLatest(t, m)
	if meta.Epoch != 7 || meta.ConfigHash != 0xabc || meta.RNGState != 7 || meta.Unix != 42 {
		t.Fatalf("meta mismatch: %+v", meta)
	}
	if meta.FormatVersion != 1 {
		t.Fatalf("format version = %d, want 1", meta.FormatVersion)
	}
	checkPayload(t, p, 7)
	if got := tel.Counter("checkpoint.saves").Value(); got != 1 {
		t.Errorf("checkpoint.saves = %d, want 1", got)
	}
	if got := tel.Counter("checkpoint.loads").Value(); got != 1 {
		t.Errorf("checkpoint.loads = %d, want 1", got)
	}
	if got := tel.Counter("checkpoint.fallbacks").Value(); got != 0 {
		t.Errorf("checkpoint.fallbacks = %d, want 0", got)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	m := newManager(t, t.TempDir(), checkpoint.Config{})
	var p payload
	if _, err := m.LoadLatest(&p); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("LoadLatest on empty dir = %v, want ErrNoCheckpoint", err)
	}
}

func TestRetentionKeepsNewestN(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, checkpoint.Config{Keep: 3})
	for epoch := 1; epoch <= 6; epoch++ {
		save(t, m, epoch)
	}
	names := published(t, dir)
	want := []string{"ckpt-0000000004.fvcp", "ckpt-0000000005.fvcp", "ckpt-0000000006.fvcp"}
	if len(names) != len(want) {
		t.Fatalf("dir holds %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("dir holds %v, want %v", names, want)
		}
	}
	meta, p := loadLatest(t, m)
	if meta.Epoch != 6 {
		t.Fatalf("latest epoch = %d, want 6", meta.Epoch)
	}
	checkPayload(t, p, 6)
}

func TestListReportsIntactOldestFirst(t *testing.T) {
	m := newManager(t, t.TempDir(), checkpoint.Config{Keep: 10})
	for _, epoch := range []int{5, 1, 9} {
		save(t, m, epoch)
	}
	metas, err := m.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(metas) != 3 || metas[0].Epoch != 1 || metas[1].Epoch != 5 || metas[2].Epoch != 9 {
		t.Fatalf("List = %+v, want epochs 1,5,9", metas)
	}
}

// corrupt overwrites one byte mid-file, simulating bit rot.
func corrupt(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

func TestCorruptedLatestFallsBack(t *testing.T) {
	tel := telemetry.NewRegistry()
	m := newManager(t, t.TempDir(), checkpoint.Config{Telemetry: tel})
	save(t, m, 1)
	latest := save(t, m, 2)
	corrupt(t, latest)

	meta, p := loadLatest(t, m)
	if meta.Epoch != 1 {
		t.Fatalf("fell back to epoch %d, want 1", meta.Epoch)
	}
	checkPayload(t, p, 1)
	if got := tel.Counter("checkpoint.fallbacks").Value(); got != 1 {
		t.Errorf("checkpoint.fallbacks = %d, want 1", got)
	}

	// List skips the corrupt file rather than erroring.
	metas, err := m.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(metas) != 1 || metas[0].Epoch != 1 {
		t.Fatalf("List = %+v, want only epoch 1", metas)
	}
	if got := tel.Counter("checkpoint.corrupt_skipped").Value(); got != 1 {
		t.Errorf("checkpoint.corrupt_skipped = %d, want 1", got)
	}
}

func TestTruncatedLatestFallsBack(t *testing.T) {
	m := newManager(t, t.TempDir(), checkpoint.Config{})
	save(t, m, 1)
	latest := save(t, m, 2)

	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for _, keep := range []int{len(data) - 1, len(data) / 2, 13, 5, 0} {
		if err := os.WriteFile(latest, data[:keep], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		meta, p := loadLatest(t, m)
		if meta.Epoch != 1 {
			t.Fatalf("truncation to %d bytes: fell back to epoch %d, want 1", keep, meta.Epoch)
		}
		checkPayload(t, p, 1)
	}
}

func TestAllCheckpointsCorruptIsErrNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir, checkpoint.Config{})
	corrupt(t, save(t, m, 1))
	corrupt(t, save(t, m, 2))
	var p payload
	if _, err := m.LoadLatest(&p); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("LoadLatest with all corrupt = %v, want ErrNoCheckpoint", err)
	}
}

func TestWriteFailureLeavesPublishedIntact(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	m := newManager(t, dir, checkpoint.Config{FS: ffs})
	save(t, m, 1)

	// The writer issues 3 writes per save (header, body, CRC); fail each
	// in turn and verify the published state never regresses.
	for step := 1; step <= 3; step++ {
		ffs.Arm(faultfs.OpWrite, step, faultfs.Fail)
		if _, err := m.Save(checkpoint.Meta{Epoch: 100 + step}, testPayload(100+step)); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("Save with write fault at step %d = %v, want ErrInjected", step, err)
		}
		ffs.Disarm()
		meta, p := loadLatest(t, m)
		if meta.Epoch != 1 {
			t.Fatalf("after write fault at step %d, latest epoch = %d, want 1", step, meta.Epoch)
		}
		checkPayload(t, p, 1)
		names := published(t, dir)
		if len(names) != 1 || names[0] != "ckpt-0000000001.fvcp" {
			t.Fatalf("after write fault at step %d, dir holds %v (temp not cleaned?)", step, names)
		}
	}

	// And the manager recovers: the next save succeeds normally.
	save(t, m, 2)
	meta, p := loadLatest(t, m)
	if meta.Epoch != 2 {
		t.Fatalf("post-recovery latest epoch = %d, want 2", meta.Epoch)
	}
	checkPayload(t, p, 2)
}

func TestTornWriteFallsBack(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	tel := telemetry.NewRegistry()
	m := newManager(t, dir, checkpoint.Config{FS: ffs, Telemetry: tel})
	save(t, m, 1)

	// Tear the body write (write 2 of header/body/CRC): half the bytes
	// land, then the injected error aborts the save. In a real crash the
	// torn file would be the temp; here we additionally force the rename
	// through to model a torn *published* file and prove the integrity
	// check catches it.
	ffs.Arm(faultfs.OpWrite, 2, faultfs.Torn)
	if _, err := m.Save(checkpoint.Meta{Epoch: 2}, testPayload(2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save with torn write = %v, want ErrInjected", err)
	}
	ffs.Disarm()
	meta, p := loadLatest(t, m)
	if meta.Epoch != 1 {
		t.Fatalf("after torn write, latest epoch = %d, want 1", meta.Epoch)
	}
	checkPayload(t, p, 1)
}

func TestSyncFailureAbortsSave(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	m := newManager(t, dir, checkpoint.Config{FS: ffs})
	save(t, m, 1)

	ffs.Arm(faultfs.OpSync, 1, faultfs.Fail)
	if _, err := m.Save(checkpoint.Meta{Epoch: 2}, testPayload(2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save with sync fault = %v, want ErrInjected", err)
	}
	ffs.Disarm()
	meta, _ := loadLatest(t, m)
	if meta.Epoch != 1 {
		t.Fatalf("after sync fault, latest epoch = %d, want 1", meta.Epoch)
	}
}

func TestCrashAfterTemp(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	m := newManager(t, dir, checkpoint.Config{FS: ffs})
	save(t, m, 1)

	// Crash between temp write and rename: the rename never executes
	// (Drop) and the "dead process" cannot clean up its temp either
	// (Remove dropped too), so a fully written temp file is left behind.
	ffs.Arm(faultfs.OpRename, 1, faultfs.Drop)
	ffs.Arm(faultfs.OpRemove, 1, faultfs.Drop)
	if _, err := m.Save(checkpoint.Meta{Epoch: 2}, testPayload(2)); err != nil {
		// Drop reports rename success, so Save returns nil; tolerate
		// either shape as long as state below is right.
		t.Logf("Save with dropped rename: %v", err)
	}
	ffs.Disarm()

	tempLeft := false
	for _, name := range published(t, dir) {
		if name != "ckpt-0000000001.fvcp" {
			tempLeft = true
		}
	}
	if !tempLeft {
		t.Fatal("expected a stale temp file after crash-after-temp")
	}

	// The "restarted process": a fresh manager over the same dir. Loads
	// ignore the temp, and the sweep removes it.
	tel := telemetry.NewRegistry()
	m2 := newManager(t, dir, checkpoint.Config{Telemetry: tel})
	meta, p := loadLatest(t, m2)
	if meta.Epoch != 1 {
		t.Fatalf("after crash-after-temp, latest epoch = %d, want 1", meta.Epoch)
	}
	checkPayload(t, p, 1)
	if got := tel.Counter("checkpoint.temps_swept").Value(); got != 1 {
		t.Errorf("checkpoint.temps_swept = %d, want 1", got)
	}
	names := published(t, dir)
	if len(names) != 1 || names[0] != "ckpt-0000000001.fvcp" {
		t.Fatalf("after sweep, dir holds %v", names)
	}
}

func TestRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	m := newManager(t, dir, checkpoint.Config{FS: ffs})
	save(t, m, 1)

	ffs.Arm(faultfs.OpRename, 1, faultfs.Fail)
	if _, err := m.Save(checkpoint.Meta{Epoch: 2}, testPayload(2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save with rename fault = %v, want ErrInjected", err)
	}
	ffs.Disarm()
	names := published(t, dir)
	if len(names) != 1 || names[0] != "ckpt-0000000001.fvcp" {
		t.Fatalf("after rename fault, dir holds %v (temp not cleaned)", names)
	}
}

func TestCreateTempFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	m := newManager(t, dir, checkpoint.Config{FS: ffs})
	save(t, m, 1)

	ffs.Arm(faultfs.OpCreateTemp, 1, faultfs.Fail)
	if _, err := m.Save(checkpoint.Meta{Epoch: 2}, testPayload(2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save with createtemp fault = %v, want ErrInjected", err)
	}
	ffs.Disarm()
	meta, _ := loadLatest(t, m)
	if meta.Epoch != 1 {
		t.Fatalf("after createtemp fault, latest epoch = %d, want 1", meta.Epoch)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := checkpoint.NewManager(checkpoint.Config{}); err == nil {
		t.Fatal("NewManager without Dir should fail")
	}
	ffs := faultfs.New(nil)
	ffs.Arm(faultfs.OpMkdirAll, 1, faultfs.Fail)
	if _, err := checkpoint.NewManager(checkpoint.Config{Dir: t.TempDir(), FS: ffs}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("NewManager with mkdir fault = %v, want ErrInjected", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "ckpt-.fvcp", "ckpt-12x4.fvcp", "model.gob"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := newManager(t, dir, checkpoint.Config{})
	var p payload
	if _, err := m.LoadLatest(&p); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("LoadLatest with only foreign files = %v, want ErrNoCheckpoint", err)
	}
	save(t, m, 3)
	meta, got := loadLatest(t, m)
	if meta.Epoch != 3 {
		t.Fatalf("latest epoch = %d, want 3", meta.Epoch)
	}
	checkPayload(t, got, 3)
}
