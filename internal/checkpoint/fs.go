package checkpoint

import (
	"io"
	"os"
)

// File is the writable-file surface the checkpoint writer needs. The
// Sync before Close is what makes the temp-file + rename pattern
// crash-safe: the payload is on stable storage before the rename
// publishes it.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam every checkpoint operation goes through.
// Production uses OS(); the fault-injection harness in
// internal/checkpoint/faultfs wraps any FS and fails, tears, or drops
// specific operations to prove the recovery paths.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	ReadDir(dir string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs a directory so a completed rename survives power
	// loss (directory entries are metadata with their own durability).
	SyncDir(dir string) error
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Sync can fail on filesystems that do not support fsync on
	// directories; surface the error — callers treat it as a failed
	// save, which is the conservative reading.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
