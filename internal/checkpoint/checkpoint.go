// Package checkpoint implements crash-safe, versioned training
// checkpoints: atomic writes (temp file + fsync + rename + directory
// fsync), keep-last-N retention, and corruption detection on load with
// automatic fallback to the newest intact checkpoint. Together with the
// resumable training state in internal/nn (optimizer moments plus the
// serialized minibatch-shuffle generator), a preempted or crashed
// trainer resumes bit-identically instead of losing hundreds of epochs
// — the failure mode the paper's in-situ deployment (training shares a
// node with the simulation) makes routine.
//
// On-disk format of one checkpoint file (ckpt-<epoch>.fvcp):
//
//	magic "FVCP" | version byte | uint64 LE body length | gob(envelope) | CRC-32C of body
//
// where the envelope is {Meta, payload bytes}. Any truncation, bit rot,
// or torn write fails the length or checksum test and LoadLatest falls
// back to the previous file; a crash between temp-file creation and
// rename leaves only a stale temp file, which is ignored by loads and
// swept by the next manager.
//
// A directory is owned by a single training run; concurrent writers are
// not supported (the retention sweep would race).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fillvoid/internal/telemetry"
)

var (
	magic = [4]byte{'F', 'V', 'C', 'P'}
	// castagnoli is hardware-accelerated on amd64/arm64.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const (
	formatVersion = 1
	tmpPattern    = ".tmp-ckpt-*"
	suffix        = ".fvcp"
	prefix        = "ckpt-"
)

// ErrNoCheckpoint is returned by LoadLatest when the directory holds no
// intact checkpoint.
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint found")

// unixNow is the default Config.Now.
func unixNow() int64 { return time.Now().Unix() }

// Meta is the checkpoint header: enough to decide resumability without
// decoding the payload.
type Meta struct {
	// FormatVersion is the file format version (set by Save).
	FormatVersion int
	// Epoch is the number of lifetime training epochs completed at save
	// time; it orders checkpoints and names the file.
	Epoch int
	// ConfigHash fingerprints the training configuration (options, field,
	// grid geometry, seed). A resume against a different configuration is
	// detected and refused by the caller.
	ConfigHash uint64
	// RNGState is the minibatch-shuffle generator state at save time,
	// recorded in the header for inspectability; the authoritative copy
	// rides in the payload's TrainState.
	RNGState uint64
	// Unix is the save wall-clock time in seconds (informational).
	Unix int64
}

// envelope is the gob body of a checkpoint file.
type envelope struct {
	Meta    Meta
	Payload []byte
}

// Config configures a Manager.
type Config struct {
	// Dir is the checkpoint directory (created if missing). Required.
	Dir string
	// Keep is the retention depth: after each successful save, only the
	// Keep newest checkpoints remain (default 3, minimum 1). Keeping
	// more than one is what makes corrupted-latest fallback possible.
	Keep int
	// FS overrides the filesystem (default OS()); tests inject faults
	// through it.
	FS FS
	// Telemetry receives save/load/fallback counters and spans
	// (default: the process-global registry).
	Telemetry *telemetry.Registry
	// Now supplies save timestamps (default time.Now); tests pin it.
	Now func() int64
}

// Manager reads and writes checkpoints in one directory.
type Manager struct {
	dir  string
	keep int
	fs   FS
	tel  *telemetry.Registry
	now  func() int64
}

// NewManager validates cfg, creates the directory, and sweeps stale
// temp files left by a previous crash-after-temp.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("checkpoint: Config.Dir is required")
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if cfg.FS == nil {
		cfg.FS = OS()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.Default()
	}
	if cfg.Now == nil {
		cfg.Now = unixNow
	}
	m := &Manager{dir: cfg.Dir, keep: cfg.Keep, fs: cfg.FS, tel: cfg.Telemetry, now: cfg.Now}
	if err := m.fs.MkdirAll(m.dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", m.dir, err)
	}
	m.sweepTemps()
	return m, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// sweepTemps removes temp files abandoned by a crash between temp-file
// write and rename. Best effort: a failure here never blocks a run.
func (m *Manager) sweepTemps() {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-ckpt-") {
			if m.fs.Remove(filepath.Join(m.dir, e.Name())) == nil {
				m.tel.Counter("checkpoint.temps_swept").Inc()
			}
		}
	}
}

// fileName returns the published name for an epoch.
func fileName(epoch int) string { return fmt.Sprintf("%s%010d%s", prefix, epoch, suffix) }

// parseEpoch extracts the epoch from a published checkpoint file name,
// or -1 when the name is not a checkpoint.
func parseEpoch(name string) int {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return -1
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if digits == "" {
		return -1
	}
	epoch := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return -1
		}
		epoch = epoch*10 + int(c-'0')
	}
	return epoch
}

// Save atomically writes a checkpoint for meta.Epoch: encode to a temp
// file, fsync it, rename it into place, fsync the directory, then prune
// beyond the retention depth. A failure at any step leaves previously
// published checkpoints untouched — the temp file is removed (best
// effort) and the error returned.
func (m *Manager) Save(meta Meta, payload any) (path string, err error) {
	sp := m.tel.StartSpan("checkpoint/save")
	defer sp.End()
	defer func() {
		if err != nil {
			m.tel.Counter("checkpoint.save_errors").Inc()
		}
	}()

	meta.FormatVersion = formatVersion
	if meta.Unix == 0 {
		meta.Unix = m.now()
	}
	var pbuf bytes.Buffer
	if err := gob.NewEncoder(&pbuf).Encode(payload); err != nil {
		return "", fmt.Errorf("checkpoint: encoding payload: %w", err)
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(envelope{Meta: meta, Payload: pbuf.Bytes()}); err != nil {
		return "", fmt.Errorf("checkpoint: encoding envelope: %w", err)
	}

	f, err := m.fs.CreateTemp(m.dir, tmpPattern)
	if err != nil {
		return "", fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmp := f.Name()
	//lint:allow errdrop: cleanup is best-effort; the save error already being returned is the one that matters
	cleanup := func() { m.fs.Remove(tmp) }

	var hdr [13]byte
	copy(hdr[:4], magic[:])
	hdr[4] = formatVersion
	binary.LittleEndian.PutUint64(hdr[5:], uint64(body.Len()))
	sum := crc32.Checksum(body.Bytes(), castagnoli)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)

	for _, chunk := range [][]byte{hdr[:], body.Bytes(), crc[:]} {
		if _, err := f.Write(chunk); err != nil {
			//lint:allow errdrop: the write error is being returned and the temp file removed; Close only releases the fd
			f.Close()
			cleanup()
			return "", fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
		}
	}
	if err := f.Sync(); err != nil {
		//lint:allow errdrop: the sync error is being returned and the temp file removed; Close only releases the fd
		f.Close()
		cleanup()
		return "", fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return "", fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	final := filepath.Join(m.dir, fileName(meta.Epoch))
	if err := m.fs.Rename(tmp, final); err != nil {
		cleanup()
		return "", fmt.Errorf("checkpoint: publishing %s: %w", final, err)
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		return "", fmt.Errorf("checkpoint: syncing dir %s: %w", m.dir, err)
	}
	m.tel.Counter("checkpoint.saves").Inc()
	m.tel.Counter("checkpoint.save_bytes").Add(int64(13 + body.Len() + 4))
	m.prune()
	telemetry.Debugf("checkpoint saved", "path", final, "epoch", meta.Epoch)
	return final, nil
}

// prune removes published checkpoints beyond the retention depth.
func (m *Manager) prune() {
	epochs, err := m.epochs()
	if err != nil || len(epochs) <= m.keep {
		return
	}
	for _, epoch := range epochs[:len(epochs)-m.keep] {
		if m.fs.Remove(filepath.Join(m.dir, fileName(epoch))) == nil {
			m.tel.Counter("checkpoint.pruned").Inc()
		}
	}
}

// epochs lists published checkpoint epochs, ascending.
func (m *Manager) epochs() ([]int, error) {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if epoch := parseEpoch(e.Name()); epoch >= 0 {
			out = append(out, epoch)
		}
	}
	sort.Ints(out)
	return out, nil
}

// List returns the metadata of every intact checkpoint, oldest first.
// Corrupt files are skipped (counted, not removed).
func (m *Manager) List() ([]Meta, error) {
	epochs, err := m.epochs()
	if err != nil {
		return nil, err
	}
	var out []Meta
	for _, epoch := range epochs {
		meta, _, err := m.read(epoch)
		if err != nil {
			m.tel.Counter("checkpoint.corrupt_skipped").Inc()
			continue
		}
		out = append(out, meta)
	}
	return out, nil
}

// LoadLatest decodes the newest intact checkpoint into payload (a
// non-nil pointer) and returns its metadata. A corrupt or torn newest
// file is skipped — with a telemetry fallback count and a warning log —
// and the next-newest tried, which is the crash-recovery guarantee: a
// write interrupted at any byte can cost at most the epochs since the
// previous checkpoint. ErrNoCheckpoint means a fresh start.
func (m *Manager) LoadLatest(payload any) (Meta, error) {
	sp := m.tel.StartSpan("checkpoint/load")
	defer sp.End()
	epochs, err := m.epochs()
	if err != nil {
		return Meta{}, fmt.Errorf("checkpoint: listing %s: %w", m.dir, err)
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		meta, body, rerr := m.read(epochs[i])
		if rerr == nil {
			rerr = gob.NewDecoder(bytes.NewReader(body)).Decode(payload)
		}
		if rerr != nil {
			m.tel.Counter("checkpoint.fallbacks").Inc()
			telemetry.Warnf("checkpoint unreadable, falling back",
				"path", filepath.Join(m.dir, fileName(epochs[i])), "err", rerr)
			continue
		}
		m.tel.Counter("checkpoint.loads").Inc()
		telemetry.Infof("checkpoint loaded", "dir", m.dir, "epoch", meta.Epoch)
		return meta, nil
	}
	return Meta{}, ErrNoCheckpoint
}

// read loads and integrity-checks one checkpoint file, returning its
// meta and payload bytes.
func (m *Manager) read(epoch int) (Meta, []byte, error) {
	path := filepath.Join(m.dir, fileName(epoch))
	data, err := m.fs.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	if len(data) < 13+4 {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s truncated (%d bytes)", path, len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s has bad magic", path)
	}
	if data[4] != formatVersion {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s has unsupported version %d", path, data[4])
	}
	bodyLen := binary.LittleEndian.Uint64(data[5:13])
	if bodyLen != uint64(len(data)-13-4) {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s length mismatch (header %d, actual %d)",
			path, bodyLen, len(data)-13-4)
	}
	body := data[13 : 13+bodyLen]
	want := binary.LittleEndian.Uint32(data[13+bodyLen:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s checksum mismatch", path)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s decoding envelope: %w", path, err)
	}
	if env.Meta.Epoch != epoch {
		return Meta{}, nil, fmt.Errorf("checkpoint: %s epoch mismatch (header %d, name %d)",
			path, env.Meta.Epoch, epoch)
	}
	return env.Meta, env.Payload, nil
}
