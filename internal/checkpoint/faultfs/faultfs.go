// Package faultfs is the fault-injection filesystem behind the
// checkpoint crash-recovery tests. It wraps any checkpoint.FS and, per
// scripted rule, fails the K-th occurrence of an operation, tears a
// write (half the bytes reach the base file, then the "process dies"),
// or drops an operation silently — enough to reproduce every failure
// mode the atomic-write protocol must survive: write errors, torn temp
// files, crash-after-temp (rename never happens), sync failures, and
// unreadable directories.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"fillvoid/internal/checkpoint"
)

// ErrInjected is the error every injected fault returns; tests assert
// on it to distinguish injected failures from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names an interceptable filesystem operation.
type Op string

// The interceptable operations.
const (
	OpMkdirAll   Op = "mkdirall"
	OpCreateTemp Op = "createtemp"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
	OpClose      Op = "close"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpReadDir    Op = "readdir"
	OpReadFile   Op = "readfile"
	OpSyncDir    Op = "syncdir"
)

// Mode is what happens when an armed rule fires.
type Mode int

const (
	// Fail returns ErrInjected without performing the operation.
	Fail Mode = iota
	// Torn (OpWrite only) writes the first half of the buffer to the
	// base file and then returns ErrInjected — the on-disk state a crash
	// mid-write leaves behind.
	Torn
	// Drop reports success without performing the operation — e.g. a
	// rename the process never got to issue, observed from a restarted
	// process's point of view.
	Drop
)

// FS wraps a base filesystem with scripted faults. Arm rules, run the
// code under test, then inspect Count to assert the op actually fired.
// Safe for concurrent use.
type FS struct {
	base checkpoint.FS

	mu     sync.Mutex
	counts map[Op]int
	rules  map[Op]map[int]Mode // op -> 1-based occurrence -> mode
}

// New wraps base (checkpoint.OS() when nil).
func New(base checkpoint.FS) *FS {
	if base == nil {
		base = checkpoint.OS()
	}
	return &FS{base: base, counts: map[Op]int{}, rules: map[Op]map[int]Mode{}}
}

// Arm schedules mode for the n-th (1-based) future occurrence of op,
// counted from now.
func (f *FS) Arm(op Op, n int, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rules[op] == nil {
		f.rules[op] = map[int]Mode{}
	}
	f.rules[op][f.counts[op]+n] = mode
}

// Disarm clears every pending rule (counts are kept).
func (f *FS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = map[Op]map[int]Mode{}
}

// Count returns how many times op has been attempted.
func (f *FS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check advances op's counter and returns the armed mode, if any.
func (f *FS) check(op Op) (Mode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	mode, ok := f.rules[op][f.counts[op]]
	return mode, ok
}

// act runs perform under op's current rule. ok distinguishes a Drop
// (return nil without performing) from the no-rule case.
func (f *FS) act(op Op, perform func() error) error {
	mode, armed := f.check(op)
	if !armed {
		return perform()
	}
	switch mode {
	case Fail:
		return fmt.Errorf("%s: %w", op, ErrInjected)
	case Drop:
		return nil
	default:
		return perform()
	}
}

// MkdirAll implements checkpoint.FS.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	return f.act(OpMkdirAll, func() error { return f.base.MkdirAll(dir, perm) })
}

// CreateTemp implements checkpoint.FS.
func (f *FS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	if mode, armed := f.check(OpCreateTemp); armed && mode == Fail {
		return nil, fmt.Errorf("createtemp: %w", ErrInjected)
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, base: file}, nil
}

// Rename implements checkpoint.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	return f.act(OpRename, func() error { return f.base.Rename(oldPath, newPath) })
}

// Remove implements checkpoint.FS.
func (f *FS) Remove(path string) error {
	return f.act(OpRemove, func() error { return f.base.Remove(path) })
}

// ReadDir implements checkpoint.FS.
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) {
	if mode, armed := f.check(OpReadDir); armed && mode == Fail {
		return nil, fmt.Errorf("readdir: %w", ErrInjected)
	}
	return f.base.ReadDir(dir)
}

// ReadFile implements checkpoint.FS.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if mode, armed := f.check(OpReadFile); armed && mode == Fail {
		return nil, fmt.Errorf("readfile: %w", ErrInjected)
	}
	return f.base.ReadFile(path)
}

// SyncDir implements checkpoint.FS.
func (f *FS) SyncDir(dir string) error {
	return f.act(OpSyncDir, func() error { return f.base.SyncDir(dir) })
}

// faultFile intercepts the write-side file operations.
type faultFile struct {
	fs   *FS
	base checkpoint.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	mode, armed := f.fs.check(OpWrite)
	if !armed {
		return f.base.Write(p)
	}
	switch mode {
	case Fail:
		return 0, fmt.Errorf("write: %w", ErrInjected)
	case Torn:
		n, err := f.base.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write (torn at %d/%d bytes): %w", n, len(p), ErrInjected)
	default:
		return f.base.Write(p)
	}
}

func (f *faultFile) Sync() error {
	return f.fs.act(OpSync, f.base.Sync)
}

func (f *faultFile) Close() error {
	return f.fs.act(OpClose, f.base.Close)
}

func (f *faultFile) Name() string { return f.base.Name() }
