package features

import (
	"math"
	"testing"
	"testing/quick"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/nn"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/sampling"
)

func testVolume() *grid.Volume {
	gen := datasets.NewIsabel(3)
	return datasets.Volume(gen, 16, 16, 8, 4)
}

func TestConfigWidths(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.K != 5 || !cfg.WithGradients {
		t.Fatalf("%+v", cfg)
	}
	if cfg.InputWidth() != 23 {
		t.Fatalf("input width %d, want the paper's 23", cfg.InputWidth())
	}
	if cfg.OutputWidth() != 4 {
		t.Fatalf("output width %d, want 4", cfg.OutputWidth())
	}
	noGrad := Config{K: 5}
	if noGrad.OutputWidth() != 1 {
		t.Fatal("without gradients the target is the scalar alone")
	}
	if (Config{K: 3}).InputWidth() != 15 {
		t.Fatal("InputWidth formula")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	b := mathutil.AABB{Min: mathutil.Vec3{X: -2, Y: 0, Z: 10}, Max: mathutil.Vec3{X: 2, Y: 8, Z: 11}}
	n := NewNormalizer(b, -50, 150)
	if got := n.Point(b.Min); got != (mathutil.Vec3{}) {
		t.Fatalf("min -> %+v", got)
	}
	if got := n.Point(b.Max); got != (mathutil.Vec3{X: 1, Y: 1, Z: 1}) {
		t.Fatalf("max -> %+v", got)
	}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.Abs(v) > 1e9 {
			return true
		}
		return math.Abs(n.Denorm(n.Value(v))-v) < 1e-9*(math.Abs(v)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizerDegenerateRanges(t *testing.T) {
	n := NewNormalizer(mathutil.AABB{}, 5, 5)
	if n.ValScale != 1 {
		t.Fatal("degenerate value range should get scale 1")
	}
	if n.PosScale != (mathutil.Vec3{X: 1, Y: 1, Z: 1}) {
		t.Fatal("degenerate box should get scale 1")
	}
}

func TestGradientScaling(t *testing.T) {
	b := mathutil.AABB{Max: mathutil.Vec3{X: 2, Y: 2, Z: 2}}
	n := NewNormalizer(b, 0, 10)
	g := n.Gradient(mathutil.Vec3{X: 5, Y: 0, Z: 0})
	// dval/dx = 5 per world unit = 10 per normalized unit = 1.0 after
	// value scaling (/10).
	if math.Abs(g.X-1) > 1e-12 {
		t.Fatalf("gx=%g", g.X)
	}
	n.GradScale = 0.5
	g = n.Gradient(mathutil.Vec3{X: 5, Y: 0, Z: 0})
	if math.Abs(g.X-0.5) > 1e-12 {
		t.Fatalf("scaled gx=%g", g.X)
	}
}

func TestFitGradScale(t *testing.T) {
	v := testVolume()
	norm := NewNormalizer(v.Bounds(), v.Stats().Min(), v.Stats().Max())
	idxs := make([]int, v.Len())
	for i := range idxs {
		idxs[i] = i
	}
	norm.FitGradScale(v, idxs, 0.2)
	// After fitting, the RMS of normalized gradients should be ~0.2.
	sum := 0.0
	for _, idx := range idxs {
		i, j, k := v.Coords(idx)
		g := norm.Gradient(v.GradientAt(i, j, k))
		sum += g.Norm2()
	}
	rms := math.Sqrt(sum / float64(3*len(idxs)))
	if math.Abs(rms-0.2) > 1e-9 {
		t.Fatalf("fitted gradient RMS %g, want 0.2", rms)
	}
}

func TestFitGradScaleZeroField(t *testing.T) {
	v := grid.New(4, 4, 4)
	norm := NewNormalizer(v.Bounds(), 0, 1)
	norm.FitGradScale(v, []int{0, 1, 2}, 0.2)
	if norm.GradScale != 1 {
		t.Fatalf("zero-gradient field: GradScale %g, want 1", norm.GradScale)
	}
}

func TestExtractorValidation(t *testing.T) {
	v := testVolume()
	norm := NormalizerFor(pointcloud.New("f", 0), v.Bounds())
	small := pointcloud.New("f", 0)
	small.Add(mathutil.Vec3{}, 1)
	if _, err := NewExtractor(Config{K: 5}, small, norm); err == nil {
		t.Fatal("accepted cloud smaller than K")
	}
	if _, err := NewExtractor(Config{K: 0}, small, norm); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := NewExtractor(Config{K: 1}, small, nil); err == nil {
		t.Fatal("accepted nil normalizer")
	}
}

func TestFeatureVectorLayout(t *testing.T) {
	// A cloud with one very close point: that point must occupy the
	// first 4 slots, and the last 3 slots must be the normalized query.
	v := grid.New(11, 11, 11)
	cloud := pointcloud.New("f", 0)
	cloud.Add(mathutil.Vec3{X: 5, Y: 5, Z: 5}, 42)
	cloud.Add(mathutil.Vec3{X: 0, Y: 0, Z: 0}, 1)
	cloud.Add(mathutil.Vec3{X: 10, Y: 10, Z: 10}, 2)
	norm := NewNormalizer(v.Bounds(), 0, 100)
	ex, err := NewExtractor(Config{K: 2}, cloud, norm)
	if err != nil {
		t.Fatal(err)
	}
	q := mathutil.Vec3{X: 5, Y: 5, Z: 6}
	dst := make([]float64, ex.Config().InputWidth())
	ex.FeaturesInto(q, dst, nil)
	// Nearest sample is (5,5,5) -> normalized (0.5, 0.5, 0.5), value 0.42.
	if dst[0] != 0.5 || dst[1] != 0.5 || dst[2] != 0.5 {
		t.Fatalf("nearest coords: %v", dst[:4])
	}
	if math.Abs(dst[3]-0.42) > 1e-12 {
		t.Fatalf("nearest value: %g", dst[3])
	}
	// Query coords in the last three slots.
	w := 4 * 2
	if dst[w] != 0.5 || dst[w+1] != 0.5 || math.Abs(dst[w+2]-0.6) > 1e-12 {
		t.Fatalf("query coords: %v", dst[w:])
	}
}

func TestBuildBatchMatchesMatrix(t *testing.T) {
	v := testVolume()
	cloud, _, err := (&sampling.Importance{Seed: 2}).Sample(v, "f", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	norm := NormalizerFor(cloud, v.Bounds())
	ex, err := NewExtractor(DefaultConfig(), cloud, norm)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]mathutil.Vec3, 0, 60)
	for i := 0; i < 60; i++ {
		queries = append(queries, v.PointAt(i*7%v.Len()))
	}
	want := ex.Matrix(queries)
	x := nn.NewMatrix(len(queries), ex.Config().InputWidth())
	nbBuf := make([]kdtree.Neighbor, 0, ex.Config().K)
	if err := ex.BuildBatch(queries, x, nbBuf); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d: batch %g, reference %g", i, x.Data[i], want.Data[i])
		}
	}
	// Shape misuse is rejected.
	if err := ex.BuildBatch(queries, nn.NewMatrix(len(queries), 5), nbBuf); err == nil {
		t.Error("wrong column count accepted")
	}
	if err := ex.BuildBatch(queries, nn.NewMatrix(3, ex.Config().InputWidth()), nbBuf); err == nil {
		t.Error("too few rows accepted")
	}
	// Steady-state zero allocations, the fused-path contract.
	if a := testing.AllocsPerRun(50, func() {
		if err := ex.BuildBatch(queries, x, nbBuf); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("BuildBatch: %v allocs/op, want 0", a)
	}
}

func TestBuildShapes(t *testing.T) {
	v := testVolume()
	cloud, idxs, err := (&sampling.Importance{Seed: 2}).Sample(v, "f", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	void := sampling.VoidIndices(v, idxs)
	norm := NormalizerFor(cloud, v.Bounds())
	cfg := DefaultConfig()
	ts, err := Build(cfg, v, cloud, void, norm)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != len(void) {
		t.Fatalf("rows=%d want %d", ts.Len(), len(void))
	}
	if ts.X.Cols != 23 || ts.Y.Cols != 4 {
		t.Fatalf("shapes %dx%d", ts.X.Cols, ts.Y.Cols)
	}
	// Targets must be the normalized truth values.
	for r := 0; r < 10; r++ {
		want := norm.Value(v.Data[void[r]])
		if math.Abs(ts.Y.At(r, 0)-want) > 1e-12 {
			t.Fatalf("row %d: target %g want %g", r, ts.Y.At(r, 0), want)
		}
	}
	// All features finite and coordinates within [0, 1].
	for i, x := range ts.X.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("non-finite feature at %d", i)
		}
	}
}

func TestAppendAndSubsample(t *testing.T) {
	v := testVolume()
	cloud, idxs, err := (&sampling.Importance{Seed: 2}).Sample(v, "f", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	void := sampling.VoidIndices(v, idxs)
	norm := NormalizerFor(cloud, v.Bounds())
	ts, err := Build(DefaultConfig(), v, cloud, void, norm)
	if err != nil {
		t.Fatal(err)
	}
	n0 := ts.Len()
	ts2, _ := Build(DefaultConfig(), v, cloud, void[:100], norm)
	if err := ts.Append(ts2); err != nil {
		t.Fatal(err)
	}
	if ts.Len() != n0+100 {
		t.Fatalf("append: %d", ts.Len())
	}

	half, err := ts.Subsample(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(float64(half.Len()) - 0.5*float64(ts.Len())); d > 1 {
		t.Fatalf("subsample size %d of %d", half.Len(), ts.Len())
	}
	if _, err := ts.Subsample(0, 1); err == nil {
		t.Fatal("accepted fraction 0")
	}
	full, err := ts.Subsample(1, 1)
	if err != nil || full.Len() != ts.Len() {
		t.Fatal("fraction 1 should keep everything")
	}
	// Deterministic.
	h2, _ := ts.Subsample(0.5, 3)
	for i := range half.X.Data {
		if half.X.Data[i] != h2.X.Data[i] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestAppendIncompatible(t *testing.T) {
	a := &TrainingSet{X: nn.NewMatrix(1, 3), Y: nn.NewMatrix(1, 1)}
	b := &TrainingSet{X: nn.NewMatrix(1, 4), Y: nn.NewMatrix(1, 1)}
	if err := a.Append(b); err == nil {
		t.Fatal("accepted incompatible widths")
	}
}

func TestSubsampleWeightedProperties(t *testing.T) {
	v := testVolume()
	cloud, idxs, err := (&sampling.Importance{Seed: 2}).Sample(v, "f", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	void := sampling.VoidIndices(v, idxs)
	norm := NormalizerFor(cloud, v.Bounds())
	ts, err := Build(DefaultConfig(), v, cloud, void, norm)
	if err != nil {
		t.Fatal(err)
	}
	w := ts.GradientWeights(0)
	if w == nil || len(w) != ts.Len() {
		t.Fatalf("weights: %d for %d rows", len(w), ts.Len())
	}
	for _, wi := range w {
		if wi <= 0 {
			t.Fatalf("non-positive weight %g", wi)
		}
	}
	sub, err := ts.SubsampleWeighted(0.25, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.25*float64(ts.Len()) + 0.5)
	if sub.Len() != want {
		t.Fatalf("kept %d rows, want %d", sub.Len(), want)
	}
	// The kept rows should have higher average gradient magnitude than
	// the full set (that's the point of weighting).
	avg := func(s *TrainingSet) float64 {
		total := 0.0
		for r := 0; r < s.Len(); r++ {
			row := s.Y.Row(r)
			total += math.Sqrt(row[1]*row[1] + row[2]*row[2] + row[3]*row[3])
		}
		return total / float64(s.Len())
	}
	if avg(sub) <= avg(ts) {
		t.Fatalf("weighted subset avg gradient %.4f not above full set %.4f", avg(sub), avg(ts))
	}
}

func TestSubsampleWeightedValidation(t *testing.T) {
	ts := &TrainingSet{X: nn.NewMatrix(4, 2), Y: nn.NewMatrix(4, 1)}
	if _, err := ts.SubsampleWeighted(0, []float64{1, 1, 1, 1}, 1); err == nil {
		t.Fatal("accepted fraction 0")
	}
	if _, err := ts.SubsampleWeighted(0.5, []float64{1}, 1); err == nil {
		t.Fatal("accepted weight/row mismatch")
	}
	full, err := ts.SubsampleWeighted(1, []float64{1, 1, 1, 1}, 1)
	if err != nil || full.Len() != 4 {
		t.Fatal("fraction 1 should keep everything")
	}
}

func TestGradientWeightsNoGradients(t *testing.T) {
	ts := &TrainingSet{X: nn.NewMatrix(4, 23), Y: nn.NewMatrix(4, 1)}
	if w := ts.GradientWeights(0); w != nil {
		t.Fatal("value-only targets should yield nil weights")
	}
}

func TestSplit(t *testing.T) {
	ts := &TrainingSet{X: nn.NewMatrix(100, 3), Y: nn.NewMatrix(100, 1)}
	for i := 0; i < 100; i++ {
		ts.X.Set(i, 0, float64(i))
		ts.Y.Set(i, 0, float64(i))
	}
	train, val, err := ts.Split(0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+val.Len() != 100 {
		t.Fatalf("split sizes %d + %d", train.Len(), val.Len())
	}
	if val.Len() != 20 {
		t.Fatalf("val size %d", val.Len())
	}
	// Disjoint row sets covering everything.
	seen := map[float64]bool{}
	for _, s := range []*TrainingSet{train, val} {
		for r := 0; r < s.Len(); r++ {
			id := s.X.At(r, 0)
			if seen[id] {
				t.Fatalf("row %g in both splits", id)
			}
			seen[id] = true
			if s.Y.At(r, 0) != id {
				t.Fatal("X/Y rows desynced by split")
			}
		}
	}
	if len(seen) != 100 {
		t.Fatal("split lost rows")
	}
	// Bad fractions rejected.
	if _, _, err := ts.Split(0, 1); err == nil {
		t.Fatal("accepted 0")
	}
	if _, _, err := ts.Split(1, 1); err == nil {
		t.Fatal("accepted 1")
	}
}
