// Package features implements the paper's feature engineering (Section
// III-D): for each void location, the input is a [1×23] vector — the
// x, y, z coordinates and scalar values of the five nearest sampled
// points (20 numbers) plus the void location's own x, y, z — and the
// training target is a [1×4] vector holding the scalar value and its
// x/y/z gradients. Coordinates and values are min-max normalized so the
// network trains on O(1) quantities regardless of the dataset's units;
// the Normalizer is part of the trained model and must be reused at
// inference and fine-tuning time.
package features

import (
	"errors"
	"fmt"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/nn"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// Config controls feature extraction.
type Config struct {
	// K is the number of nearest sampled points per feature vector; the
	// paper uses 5.
	K int
	// WithGradients includes the three gradient components in the
	// target (the paper's default; Fig 8 ablates it off).
	WithGradients bool
}

// DefaultConfig returns the paper's configuration: K = 5, gradients on.
func DefaultConfig() Config { return Config{K: 5, WithGradients: true} }

// InputWidth returns the feature-vector length: 4K + 3 (23 for K = 5).
func (c Config) InputWidth() int { return 4*c.K + 3 }

// OutputWidth returns the target length: 4 with gradients, 1 without.
func (c Config) OutputWidth() int {
	if c.WithGradients {
		return 4
	}
	return 1
}

// Normalizer min-max scales world coordinates and scalar values into
// [0, 1] (gradients are scaled consistently: value units per unit of
// normalized coordinate, times a fitted balance factor).
type Normalizer struct {
	PosMin   mathutil.Vec3
	PosScale mathutil.Vec3 // multiplicative: norm = (p - PosMin) * PosScale
	ValMin   float64
	ValScale float64 // multiplicative: norm = (v - ValMin) * ValScale
	// GradScale balances the gradient components of the target against
	// the value component so neither dominates the MSE (sharp fields
	// have normalized gradients orders of magnitude above 1, which
	// would otherwise drown out the value loss). 0 means unfitted and
	// is treated as 1. Fitted once at pretraining and kept for all
	// fine-tuning so the target semantics never shift under the model.
	GradScale float64
}

// NewNormalizer fits a normalizer to the given spatial bounds and value
// range. Degenerate ranges get scale 1 so normalization stays finite.
func NewNormalizer(bounds mathutil.AABB, valMin, valMax float64) *Normalizer {
	inv := func(d float64) float64 {
		if d <= 0 {
			return 1
		}
		return 1 / d
	}
	size := bounds.Size()
	return &Normalizer{
		PosMin: bounds.Min,
		PosScale: mathutil.Vec3{
			X: inv(size.X), Y: inv(size.Y), Z: inv(size.Z),
		},
		ValMin:   valMin,
		ValScale: inv(valMax - valMin),
	}
}

// NormalizerFor fits a normalizer from a sampled cloud and the grid it
// will be reconstructed onto: spatial bounds from the grid (so sampled
// and void coordinates share one frame), value range from the samples
// (the only values available in situ).
func NormalizerFor(c *pointcloud.Cloud, bounds mathutil.AABB) *Normalizer {
	lo, hi := c.ValueRange()
	return NewNormalizer(bounds, lo, hi)
}

// Point maps a world position into normalized coordinates.
func (n *Normalizer) Point(p mathutil.Vec3) mathutil.Vec3 {
	return mathutil.Vec3{
		X: (p.X - n.PosMin.X) * n.PosScale.X,
		Y: (p.Y - n.PosMin.Y) * n.PosScale.Y,
		Z: (p.Z - n.PosMin.Z) * n.PosScale.Z,
	}
}

// Value maps a scalar into [0, 1] (samples outside the fitted range map
// slightly outside, which is fine for regression).
func (n *Normalizer) Value(v float64) float64 { return (v - n.ValMin) * n.ValScale }

// Denorm maps a normalized prediction back to data units.
func (n *Normalizer) Denorm(v float64) float64 { return v/n.ValScale + n.ValMin }

// Gradient maps a world-units gradient into normalized units
// (normalized value per normalized coordinate, times GradScale).
func (n *Normalizer) Gradient(g mathutil.Vec3) mathutil.Vec3 {
	gs := n.GradScale
	if gs == 0 {
		gs = 1
	}
	return mathutil.Vec3{
		X: g.X * gs * n.ValScale / n.PosScale.X,
		Y: g.Y * gs * n.ValScale / n.PosScale.Y,
		Z: g.Z * gs * n.ValScale / n.PosScale.Z,
	}
}

// FitGradScale sets GradScale so the RMS of the normalized gradient
// components matches targetRMS (the typical spread of the value
// component). It samples the gradients of truth at the given indices.
// A field with zero gradient everywhere leaves GradScale at 1.
func (n *Normalizer) FitGradScale(truth *grid.Volume, idxs []int, targetRMS float64) {
	n.GradScale = 1
	if len(idxs) == 0 || targetRMS <= 0 {
		return
	}
	sum := 0.0
	for _, idx := range idxs {
		i, j, k := truth.Coords(idx)
		g := n.Gradient(truth.GradientAt(i, j, k))
		sum += g.Norm2()
	}
	rms := math.Sqrt(sum / float64(3*len(idxs)))
	if rms > 0 {
		n.GradScale = targetRMS / rms
	}
}

// Extractor computes feature vectors against one sampled cloud. Build
// it once per cloud; extraction methods are safe for concurrent use.
type Extractor struct {
	cfg   Config
	cloud *pointcloud.Cloud
	tree  *kdtree.Tree
	norm  *Normalizer
}

// NewExtractor indexes the cloud. The cloud must contain at least K
// points.
func NewExtractor(cfg Config, c *pointcloud.Cloud, norm *Normalizer) (*Extractor, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("features: K must be >= 1, got %d", cfg.K)
	}
	if c.Len() < cfg.K {
		return nil, fmt.Errorf("features: cloud has %d points, need >= K = %d", c.Len(), cfg.K)
	}
	if norm == nil {
		return nil, errors.New("features: nil normalizer")
	}
	reg := telemetry.Default()
	sp := reg.StartSpan("features/knn-build")
	tree := kdtree.Build(c.Points)
	sp.End()
	reg.Counter("features.knn_tables_built").Inc()
	reg.Counter("features.knn_indexed_points").Add(int64(c.Len()))
	return &Extractor{cfg: cfg, cloud: c, tree: tree, norm: norm}, nil
}

// NewExtractorWithTree is NewExtractor over a pre-built k-d tree on the
// same cloud's points — used by the recon engine so every method sharing
// a query plan shares one spatial index instead of each extractor
// rebuilding its own.
func NewExtractorWithTree(cfg Config, c *pointcloud.Cloud, tree *kdtree.Tree, norm *Normalizer) (*Extractor, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("features: K must be >= 1, got %d", cfg.K)
	}
	if c.Len() < cfg.K {
		return nil, fmt.Errorf("features: cloud has %d points, need >= K = %d", c.Len(), cfg.K)
	}
	if norm == nil {
		return nil, errors.New("features: nil normalizer")
	}
	if tree == nil {
		return nil, errors.New("features: nil tree")
	}
	return &Extractor{cfg: cfg, cloud: c, tree: tree, norm: norm}, nil
}

// Config returns the extractor's configuration.
func (e *Extractor) Config() Config { return e.cfg }

// Normalizer returns the fitted normalizer.
func (e *Extractor) Normalizer() *Normalizer { return e.norm }

// FeaturesInto writes the feature vector for query point q into dst
// (len InputWidth) using nbBuf as k-NN scratch.
func (e *Extractor) FeaturesInto(q mathutil.Vec3, dst []float64, nbBuf []kdtree.Neighbor) {
	nbs := e.tree.KNearestInto(q, e.cfg.K, nbBuf)
	w := 0
	for _, nb := range nbs {
		p := e.norm.Point(e.cloud.Points[nb.Index])
		dst[w] = p.X
		dst[w+1] = p.Y
		dst[w+2] = p.Z
		dst[w+3] = e.norm.Value(e.cloud.Values[nb.Index])
		w += 4
	}
	// Fewer than K neighbors can only happen if the cloud shrank below
	// K, which NewExtractor guards against; keep zeros defensively.
	w = 4 * e.cfg.K
	qn := e.norm.Point(q)
	dst[w] = qn.X
	dst[w+1] = qn.Y
	dst[w+2] = qn.Z
}

// BuildBatch fills the first len(queries) rows of x with one feature
// vector per query on the calling goroutine, reusing nbBuf
// (cap >= K) as k-NN scratch: zero heap allocations per call. It is
// the per-chunk primitive of the fused inference path — each
// reconstruction worker owns one x and one nbBuf and streams its
// chunks through them. x must have InputWidth columns and at least
// len(queries) rows.
func (e *Extractor) BuildBatch(queries []mathutil.Vec3, x *nn.Matrix, nbBuf []kdtree.Neighbor) error {
	if x.Cols != e.cfg.InputWidth() {
		return fmt.Errorf("features: batch matrix has %d cols, want %d", x.Cols, e.cfg.InputWidth())
	}
	if x.Rows < len(queries) {
		return fmt.Errorf("features: batch matrix has %d rows for %d queries", x.Rows, len(queries))
	}
	for i, q := range queries {
		e.FeaturesInto(q, x.Row(i), nbBuf[:0])
	}
	return nil
}

// Matrix builds the feature matrix for a set of query points in
// parallel: one row per query, InputWidth columns.
func (e *Extractor) Matrix(queries []mathutil.Vec3) *nn.Matrix {
	x := nn.NewMatrix(len(queries), e.cfg.InputWidth())
	sp := telemetry.Default().StartSpan("features/extract")
	parallel.ForChunked(len(queries), 0, func(lo, hi int) {
		nbBuf := make([]kdtree.Neighbor, 0, e.cfg.K)
		for i := lo; i < hi; i++ {
			e.FeaturesInto(queries[i], x.Row(i), nbBuf)
		}
	})
	sp.End()
	telemetry.Default().Counter("features.rows_built").Add(int64(len(queries)))
	return x
}

// GridMatrix builds the feature matrix for the flat grid indices idxs
// of volume geometry v (values of v are not read — only positions).
func (e *Extractor) GridMatrix(v *grid.Volume, idxs []int) *nn.Matrix {
	x := nn.NewMatrix(len(idxs), e.cfg.InputWidth())
	sp := telemetry.Default().StartSpan("features/extract")
	parallel.ForChunked(len(idxs), 0, func(lo, hi int) {
		nbBuf := make([]kdtree.Neighbor, 0, e.cfg.K)
		for i := lo; i < hi; i++ {
			e.FeaturesInto(v.PointAt(idxs[i]), x.Row(i), nbBuf)
		}
	})
	sp.End()
	telemetry.Default().Counter("features.rows_built").Add(int64(len(idxs)))
	return x
}

// Targets builds the training-target matrix for the flat grid indices
// idxs of the ground-truth volume: normalized value plus (when
// configured) normalized gradients.
func Targets(cfg Config, norm *Normalizer, truth *grid.Volume, idxs []int) *nn.Matrix {
	y := nn.NewMatrix(len(idxs), cfg.OutputWidth())
	parallel.For(len(idxs), 0, func(r int) {
		idx := idxs[r]
		row := y.Row(r)
		row[0] = norm.Value(truth.Data[idx])
		if cfg.WithGradients {
			i, j, k := truth.Coords(idx)
			g := norm.Gradient(truth.GradientAt(i, j, k))
			row[1] = g.X
			row[2] = g.Y
			row[3] = g.Z
		}
	})
	return y
}

// TrainingSet is a paired feature/target matrix set.
type TrainingSet struct {
	X, Y *nn.Matrix
}

// Append concatenates another training set row-wise (used to build the
// paper's combined 1%+5% training data, Fig 7).
func (t *TrainingSet) Append(o *TrainingSet) error {
	if t.X.Cols != o.X.Cols || t.Y.Cols != o.Y.Cols {
		return errors.New("features: appending incompatible training sets")
	}
	t.X.Data = append(t.X.Data, o.X.Data...)
	t.Y.Data = append(t.Y.Data, o.Y.Data...)
	t.X.Rows += o.X.Rows
	t.Y.Rows += o.Y.Rows
	return nil
}

// Len returns the number of training rows.
func (t *TrainingSet) Len() int { return t.X.Rows }

// Subsample returns a training set holding a uniformly chosen fraction
// of the rows (without replacement, deterministic for a seed). The
// paper's Table II / Fig 14 train on 100%, 50% and 25% subsets.
func (t *TrainingSet) Subsample(fraction float64, seed int64) (*TrainingSet, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("features: subsample fraction %g outside (0, 1]", fraction)
	}
	n := t.Len()
	keep := int(fraction*float64(n) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep >= n {
		return &TrainingSet{X: t.X.Clone(), Y: t.Y.Clone()}, nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := mathutil.NewRNG(seed)
	for i := 0; i < keep; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	x := nn.NewMatrix(keep, t.X.Cols)
	y := nn.NewMatrix(keep, t.Y.Cols)
	for i := 0; i < keep; i++ {
		copy(x.Row(i), t.X.Row(perm[i]))
		copy(y.Row(i), t.Y.Row(perm[i]))
	}
	return &TrainingSet{X: x, Y: y}, nil
}

// Split partitions the training set into a training part and a held-out
// validation part of ~valFraction of the rows, chosen uniformly at
// random (deterministic for a seed). Used for early stopping.
func (t *TrainingSet) Split(valFraction float64, seed int64) (train, val *TrainingSet, err error) {
	if valFraction <= 0 || valFraction >= 1 {
		return nil, nil, fmt.Errorf("features: validation fraction %g outside (0, 1)", valFraction)
	}
	n := t.Len()
	nVal := int(valFraction*float64(n) + 0.5)
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= n {
		return nil, nil, fmt.Errorf("features: validation split leaves no training rows (n=%d)", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := mathutil.NewRNG(seed)
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	build := func(rows []int) *TrainingSet {
		x := nn.NewMatrix(len(rows), t.X.Cols)
		y := nn.NewMatrix(len(rows), t.Y.Cols)
		for i, r := range rows {
			copy(x.Row(i), t.X.Row(r))
			copy(y.Row(i), t.Y.Row(r))
		}
		return &TrainingSet{X: x, Y: y}
	}
	return build(perm[nVal:]), build(perm[:nVal]), nil
}

// SubsampleWeighted returns a training set holding ~fraction of the
// rows drawn without replacement with probability proportional to
// weights (len(weights) == Len()). This implements the paper's
// "intelligent training set creation" future-work direction: rather
// than discarding training rows uniformly, keep the feature-rich ones.
func (t *TrainingSet) SubsampleWeighted(fraction float64, weights []float64, seed int64) (*TrainingSet, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("features: subsample fraction %g outside (0, 1]", fraction)
	}
	n := t.Len()
	if len(weights) != n {
		return nil, fmt.Errorf("features: %d weights for %d rows", len(weights), n)
	}
	keep := int(fraction*float64(n) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep >= n {
		return &TrainingSet{X: t.X.Clone(), Y: t.Y.Clone()}, nil
	}
	idxs := sampling.WeightedTopK(weights, keep, seed)
	x := nn.NewMatrix(keep, t.X.Cols)
	y := nn.NewMatrix(keep, t.Y.Cols)
	for i, r := range idxs {
		copy(x.Row(i), t.X.Row(r))
		copy(y.Row(i), t.Y.Row(r))
	}
	return &TrainingSet{X: x, Y: y}, nil
}

// GradientWeights derives per-row selection weights from the gradient
// components of the targets (columns 1-3): rows in high-gradient
// regions — near the features the sampler tried to preserve — get
// proportionally more weight. A small floor keeps smooth regions
// represented. It returns nil when the targets carry no gradients.
func (t *TrainingSet) GradientWeights(floor float64) []float64 {
	if t.Y.Cols < 4 {
		return nil
	}
	if floor <= 0 {
		floor = 0.05
	}
	n := t.Len()
	w := make([]float64, n)
	maxG := 0.0
	for r := 0; r < n; r++ {
		row := t.Y.Row(r)
		g := math.Sqrt(row[1]*row[1] + row[2]*row[2] + row[3]*row[3])
		w[r] = g
		if g > maxG {
			maxG = g
		}
	}
	if maxG == 0 {
		maxG = 1
	}
	for r := range w {
		w[r] = floor + w[r]/maxG
	}
	return w
}

// Build assembles the full training set for one sampled copy of a
// timestep: features from the cloud's k-NN structure at every void
// location, targets from the ground-truth volume (available in situ at
// training time).
func Build(cfg Config, truth *grid.Volume, cloud *pointcloud.Cloud, voidIdxs []int, norm *Normalizer) (*TrainingSet, error) {
	reg := telemetry.Default()
	sp := reg.StartSpan("features/build")
	defer sp.End()
	ex, err := NewExtractor(cfg, cloud, norm)
	if err != nil {
		return nil, err
	}
	x := ex.GridMatrix(truth, voidIdxs)
	y := Targets(cfg, norm, truth, voidIdxs)
	reg.Counter("features.training_rows").Add(int64(len(voidIdxs)))
	return &TrainingSet{X: x, Y: y}, nil
}
