package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TaintAlloc reports request-derived integers reaching allocation-size
// positions without an intervening bounds check: the PR 4 codec bug
// class (a wire-encoded count fed straight into make) generalized to
// every serving-path package. A value is tainted when it originates
// from decoding external input — a JSON/gob body, a binary header
// varint, a URL or form parameter — and the taint propagates through
// assignments, arithmetic, conversions, and module-local calls (via
// function summaries), until a comparison mentioning the value kills
// it. Sinks are make's size/cap arguments, strings.Repeat and
// bytes.Repeat counts, and bufio.NewReaderSize/NewWriterSize sizes.
//
// Two deliberate non-taints keep the noise down: len() and cap() of a
// decoded slice are bounded by the bytes actually received (the server
// wraps bodies in MaxBytesReader), and any value a module-local callee
// bounds-checks (its summary marks the parameter sanitized) comes back
// clean.
func TaintAlloc(scope []string) *Analyzer {
	return &Analyzer{
		Name: "taintalloc",
		Doc:  "no request-derived value reaches an allocation size without a bounds check",
		Run: func(pass *Pass) {
			if !inScope(scope, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					r := &taintRun{prog: pass.Prog, pkg: pass.Pkg, derived: map[types.Object][]types.Object{}}
					reported := map[token.Pos]bool{}
					r.report = func(pos token.Pos, msg string) {
						if !reported[pos] {
							reported[pos] = true
							pass.Reportf(pos, "%s in %s; compare it against a limit first", msg, name)
						}
					}
					r.analyze(body, nil)
				})
			}
		},
	}
}

// taintSrc marks "derived from decoded external input". The low bits
// are per-parameter origin markers used only while computing a
// function summary.
const taintSrc uint64 = 1 << 63

func paramBit(i int) uint64 {
	if i >= 62 {
		return 0
	}
	return 1 << uint(i)
}

// taintSourceSpec describes one stdlib decoding call: which results
// carry taint and which pointer arguments are filled with decoded
// data.
type taintSourceSpec struct {
	results []int
	ptrArgs []int
}

var taintSources = map[string]taintSourceSpec{
	"encoding/json.Decoder.Decode":   {ptrArgs: []int{0}},
	"encoding/json.Unmarshal":        {ptrArgs: []int{1}},
	"encoding/gob.Decoder.Decode":    {ptrArgs: []int{0}},
	"encoding/binary.Read":           {ptrArgs: []int{2}},
	"encoding/binary.ReadUvarint":    {results: []int{0}},
	"encoding/binary.ReadVarint":     {results: []int{0}},
	"bufio.Reader.ReadByte":          {results: []int{0}},
	"net/url.Values.Get":             {results: []int{0}},
	"net/http.Request.FormValue":     {results: []int{0}},
	"net/http.Request.PathValue":     {results: []int{0}},
	"net/http.Request.PostFormValue": {results: []int{0}},
}

// taintSinks maps stdlib calls with a size/count argument position
// that allocates proportionally to its value.
var taintSinks = map[string]struct {
	arg  int
	what string
}{
	"strings.Repeat":      {1, "strings.Repeat count"},
	"bytes.Repeat":        {1, "bytes.Repeat count"},
	"bufio.NewReaderSize": {1, "bufio reader size"},
	"bufio.NewWriterSize": {1, "bufio writer size"},
}

// taintSummary is a function's interprocedural taint behaviour:
// results[j] holds taintSrc when result j returns decoded input, and
// paramBit(i) when parameter i flows to it unchecked; sink[i] names
// the allocation a raw parameter i reaches ("" = none); sanitize[i]
// records that the body bounds-checks parameter i, so callers' taint
// dies through the call.
type taintSummary struct {
	results  []uint64
	sink     []string
	sanitize []bool
}

// taintSummaryOf computes (and caches) the summary of a module-local
// function by running the same dataflow over its body with parameters
// seeded as origin bits. Recursion answers optimistically.
func (p *Program) taintSummaryOf(fn *types.Func) *taintSummary {
	if s, ok := p.taintSums[fn]; ok {
		return s
	}
	empty := &taintSummary{}
	d, ok := p.declOf(fn)
	if !ok || p.taintActive[fn] {
		return empty
	}
	p.taintActive[fn] = true
	defer delete(p.taintActive, fn)

	var params []types.Object
	for _, field := range d.decl.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, d.pkg.Info.ObjectOf(name))
		}
		if len(field.Names) == 0 {
			params = append(params, nil) // unnamed param cannot carry facts
		}
	}
	nresults := 0
	if sig, ok := fn.Type().(*types.Signature); ok {
		nresults = sig.Results().Len()
	}
	b := &taintSummary{
		results:  make([]uint64, nresults),
		sink:     make([]string, len(params)),
		sanitize: make([]bool, len(params)),
	}

	init := make(facts)
	for i, obj := range params {
		if obj != nil && paramBit(i) != 0 {
			init[obj] = paramBit(i)
		}
	}
	r := &taintRun{
		prog:    p,
		pkg:     d.pkg,
		derived: map[types.Object][]types.Object{},
		summary: b,
		fname:   fn.Name(),
	}
	r.analyze(d.decl.Body, init)
	p.taintSums[fn] = b
	return b
}

// taintRun is one dataflow execution over one function body — either
// the main check (report != nil) or a summary computation
// (summary != nil).
type taintRun struct {
	prog    *Program
	pkg     *Package
	derived map[types.Object][]types.Object
	report  func(pos token.Pos, msg string)
	summary *taintSummary
	fname   string
}

func (r *taintRun) info() *types.Info { return r.pkg.Info }

func (r *taintRun) analyze(body *ast.BlockStmt, init facts) {
	g := buildCFG(body)
	g.forward(init, r.transfer, r.visit)
}

// ---- transfer -----------------------------------------------------

func (r *taintRun) transfer(n ast.Node, f facts) {
	switch x := n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return
	case *ast.AssignStmt:
		r.assign(x, f)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					r.valueSpec(vs, f)
				}
			}
		}
	case *ast.RangeStmt:
		// Key is an index/position (bounded by real data); Value carries
		// the container's taint.
		if x.Value != nil {
			r.setMask(f, x.Value, r.exprMask(f, x.X))
		}
		if x.Key != nil {
			r.setMask(f, x.Key, 0)
		}
	case ast.Expr:
		// Condition instructions: comparisons are the bounds checks.
		r.killComparisons(x, f)
		r.sideEffects(x, f)
		return
	}
	// Comparisons and source calls buried inside any statement.
	if stmt, ok := n.(ast.Stmt); ok {
		r.killComparisons(stmt, f)
		r.sideEffects(stmt, f)
	}
}

// assign applies one assignment's gen/kill.
func (r *taintRun) assign(x *ast.AssignStmt, f facts) {
	switch x.Tok {
	case token.AND_ASSIGN, token.REM_ASSIGN, token.AND_NOT_ASSIGN:
		// x &= mask / x %= n bound the value.
		for _, lhs := range x.Lhs {
			if obj := rootObj(r.info(), lhs); obj != nil {
				r.killWithRoots(f, obj)
			}
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		// Other compound assigns (+=, *=, <<=...) widen: OR rhs in.
		for i, lhs := range x.Lhs {
			if i < len(x.Rhs) {
				if obj := rootObj(r.info(), lhs); obj != nil {
					f[obj] |= r.exprMask(f, x.Rhs[i])
				}
			}
		}
		return
	}

	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		masks := r.tupleMasks(f, x.Rhs[0], len(x.Lhs))
		for i, lhs := range x.Lhs {
			r.setMaskRecord(f, lhs, masks[i], x.Rhs[0])
		}
		return
	}
	for i, lhs := range x.Lhs {
		if i >= len(x.Rhs) {
			break
		}
		r.setMaskRecord(f, lhs, r.exprMask(f, x.Rhs[i]), x.Rhs[i])
	}
}

func (r *taintRun) valueSpec(vs *ast.ValueSpec, f facts) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		masks := r.tupleMasks(f, vs.Values[0], len(vs.Names))
		for i, name := range vs.Names {
			r.setMaskRecord(f, name, masks[i], vs.Values[0])
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			r.setMaskRecord(f, name, r.exprMask(f, vs.Values[i]), vs.Values[i])
		}
	}
}

// setMask strongly updates the fact for an assignable expression:
// plain identifiers get exact masks (including kill on 0); fields and
// elements get weak |= updates (another alias may retain taint).
func (r *taintRun) setMask(f facts, lhs ast.Expr, mask uint64) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := r.info().ObjectOf(id)
		if obj == nil {
			return
		}
		if mask == 0 {
			delete(f, obj)
		} else {
			f[obj] = mask
		}
		return
	}
	if obj := rootObj(r.info(), lhs); obj != nil && mask != 0 {
		f[obj] |= mask
	}
}

// setMaskRecord is setMask plus derivation tracking: when a tainted
// rhs produces lhs, remember which tainted roots it came from, so a
// later bounds check on lhs also clears them.
func (r *taintRun) setMaskRecord(f facts, lhs ast.Expr, mask uint64, rhs ast.Expr) {
	r.setMask(f, lhs, mask)
	if mask == 0 {
		return
	}
	obj := rootObj(r.info(), lhs)
	if obj == nil {
		return
	}
	var roots []types.Object
	identsIn(r.info(), rhs, func(o types.Object) {
		if o != obj && f[o] != 0 {
			roots = append(roots, o)
		}
	})
	if len(roots) > 0 {
		r.derived[obj] = roots
	}
}

// killComparisons deletes the facts of every variable mentioned in a
// comparison within n — the "bounds check" kill — along with the
// roots it was derived from. For summary runs it also marks compared
// parameters sanitized.
func (r *taintRun) killComparisons(n ast.Node, f facts) {
	walkInstr(n, func(sub ast.Node) {
		be, ok := sub.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return
		}
		identsIn(r.info(), be, func(obj types.Object) {
			if f[obj] == 0 {
				return
			}
			r.markSanitized(f[obj])
			r.killWithRoots(f, obj)
		})
	})
}

func (r *taintRun) killWithRoots(f facts, obj types.Object) {
	delete(f, obj)
	for _, root := range r.derived[obj] {
		delete(f, root)
	}
}

// markSanitized records, during summary computation, that a value
// carrying parameter-origin bits was bounds-checked.
func (r *taintRun) markSanitized(mask uint64) {
	if r.summary == nil {
		return
	}
	for i := range r.summary.sanitize {
		if mask&paramBit(i) != 0 {
			r.summary.sanitize[i] = true
		}
	}
}

// sideEffects applies the non-assignment effects of calls inside n:
// pointer-argument decode sources taint their target, and calls to
// module functions that bounds-check a parameter kill the argument.
func (r *taintRun) sideEffects(n ast.Node, f facts) {
	walkInstr(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(r.info(), call)
		if fn == nil {
			return
		}
		if spec, ok := taintSources[funcKey(fn)]; ok {
			for _, i := range spec.ptrArgs {
				if i < len(call.Args) {
					if obj := rootObj(r.info(), call.Args[i]); obj != nil {
						f[obj] |= taintSrc
					}
				}
			}
			return
		}
		if r.prog.moduleFunc(fn) {
			sum := r.prog.taintSummaryOf(fn)
			for i, s := range sum.sanitize {
				if s && i < len(call.Args) {
					if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok {
						if obj := r.info().ObjectOf(id); obj != nil {
							r.markSanitized(f[obj])
							r.killWithRoots(f, obj)
						}
					}
				}
			}
		}
	})
}

// ---- expression masks ---------------------------------------------

// exprMask computes the taint mask of evaluating e under facts f.
func (r *taintRun) exprMask(f facts, e ast.Expr) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		return f[r.info().ObjectOf(x)]
	case *ast.SelectorExpr:
		return f[r.info().ObjectOf(x.Sel)] | r.exprMask(f, x.X)
	case *ast.ParenExpr:
		return r.exprMask(f, x.X)
	case *ast.StarExpr:
		return r.exprMask(f, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return 0
		}
		return r.exprMask(f, x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return 0 // boolean result
		case token.AND, token.REM, token.AND_NOT:
			// Masking or modulo by an untainted bound caps the value.
			if r.exprMask(f, x.X) == 0 || r.exprMask(f, x.Y) == 0 {
				return 0
			}
		}
		return r.exprMask(f, x.X) | r.exprMask(f, x.Y)
	case *ast.CallExpr:
		return r.tupleMasks(f, x, 1)[0]
	case *ast.IndexExpr:
		return r.exprMask(f, x.X)
	case *ast.SliceExpr:
		return r.exprMask(f, x.X)
	case *ast.TypeAssertExpr:
		return r.exprMask(f, x.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			m |= r.exprMask(f, el)
		}
		return m
	case *ast.KeyValueExpr:
		return r.exprMask(f, x.Value)
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	}
	// Fallback: OR over mentioned identifiers.
	var m uint64
	identsIn(r.info(), e, func(obj types.Object) { m |= f[obj] })
	return m
}

// tupleMasks returns one mask per value produced by e (a call, type
// assertion, or map index in tuple position).
func (r *taintRun) tupleMasks(f facts, e ast.Expr, n int) []uint64 {
	out := make([]uint64, n)
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		r.callMasks(f, x, out)
	case *ast.TypeAssertExpr:
		out[0] = r.exprMask(f, x.X)
	case *ast.IndexExpr:
		out[0] = r.exprMask(f, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW { // v, ok := <-ch
			out[0] = r.exprMask(f, x.X)
		}
	default:
		out[0] = r.exprMask(f, e)
	}
	return out
}

// callMasks fills out with the per-result taint of a call.
func (r *taintRun) callMasks(f facts, call *ast.CallExpr, out []uint64) {
	info := r.info()
	// Type conversion: int(x) carries x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			out[0] = r.exprMask(f, call.Args[0])
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				// Bounded by data actually received: not tainted.
				return
			case "min", "max":
				// Bounded as soon as one operand is untainted.
				var m uint64
				bounded := false
				for _, a := range call.Args {
					am := r.exprMask(f, a)
					if am == 0 {
						bounded = true
					}
					m |= am
				}
				if !bounded {
					out[0] = m
				}
				return
			case "make", "new":
				return // the allocation's size was the sink, not its value
			default:
				var m uint64
				for _, a := range call.Args {
					m |= r.exprMask(f, a)
				}
				out[0] = m
				return
			}
		}
	}

	fn := calleeFunc(info, call)
	if fn != nil {
		if spec, ok := taintSources[funcKey(fn)]; ok {
			for _, i := range spec.results {
				if i < len(out) {
					out[i] |= taintSrc
				}
			}
			return
		}
		if r.prog.moduleFunc(fn) {
			sum := r.prog.taintSummaryOf(fn)
			for j := range out {
				if j >= len(sum.results) {
					break
				}
				m := sum.results[j]
				if m&taintSrc != 0 {
					out[j] |= taintSrc
				}
				for i := range sum.sink { // sink has len(params)
					if m&paramBit(i) != 0 && !sum.sanitize[i] && i < len(call.Args) {
						out[j] |= r.exprMask(f, call.Args[i])
					}
				}
				// Params beyond sink's length cannot occur: bits were
				// seeded only for declared params.
			}
			return
		}
	}
	// Unknown call (stdlib, function value): every result inherits the
	// union of argument taint — this is what carries taint through
	// strconv.Atoi / ParseUint.
	var m uint64
	for _, a := range call.Args {
		m |= r.exprMask(f, a)
	}
	for j := range out {
		out[j] = m
	}
}

// ---- sinks (visit) ------------------------------------------------

func (r *taintRun) visit(n ast.Node, f facts) {
	if _, ok := n.(*ast.GoStmt); ok {
		return
	}
	walkInstr(n, func(sub ast.Node) {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return
		}
		r.checkSink(call, f)
	})
	if r.summary != nil {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for j, res := range ret.Results {
				if j < len(r.summary.results) {
					r.summary.results[j] |= r.exprMask(f, res)
				}
			}
		}
	}
}

// checkSink flags tainted values in allocation-size positions, and in
// summary runs records parameter-origin bits reaching them.
func (r *taintRun) checkSink(call *ast.CallExpr, f facts) {
	info := r.info()
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, sizeArg := range call.Args[1:] {
				r.sinkArg(call.Pos(), sizeArg, "make size", f)
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if sink, ok := taintSinks[funcKey(fn)]; ok {
		if sink.arg < len(call.Args) {
			r.sinkArg(call.Pos(), call.Args[sink.arg], sink.what, f)
		}
		return
	}
	// Interprocedural sink: a module callee that feeds parameter i into
	// an allocation unchecked.
	if r.prog.moduleFunc(fn) {
		sum := r.prog.taintSummaryOf(fn)
		for i, what := range sum.sink {
			if what == "" || i >= len(call.Args) {
				continue
			}
			r.sinkArg(call.Pos(), call.Args[i], what, f)
		}
	}
}

func (r *taintRun) sinkArg(pos token.Pos, arg ast.Expr, what string, f facts) {
	mask := r.exprMask(f, arg)
	if mask&taintSrc != 0 && r.report != nil {
		r.report(pos, fmt.Sprintf("request-derived value reaches %s without a bounds check", what))
	}
	if r.summary != nil {
		for i := range r.summary.sink {
			if mask&paramBit(i) != 0 && r.summary.sink[i] == "" {
				r.summary.sink[i] = what + " in " + r.fname
			}
		}
	}
}
