package analysis

import (
	"go/ast"
	"go/types"
)

// inScope reports whether pkgPath is one of the listed paths. An entry
// ending in "/" matches the whole subtree under it.
func inScope(scope []string, pkgPath string) bool {
	for _, s := range scope {
		if s == pkgPath {
			return true
		}
		if n := len(s); n > 0 && s[n-1] == '/' && len(pkgPath) > n && pkgPath[:n] == s {
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, for
// both package-level functions and methods. It returns nil for calls
// through function-typed variables, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function or method
// pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedOf unwraps pointers and aliases down to a named type, returning
// its package path and name ("", "" for unnamed types and types from
// the universe scope).
func namedOf(t types.Type) (pkgPath, name string) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(u)
			continue
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == nil {
				return "", obj.Name()
			}
			return obj.Pkg().Path(), obj.Name()
		default:
			return "", ""
		}
	}
}

// isNamedType reports whether t (possibly behind a pointer or alias)
// is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	p, n := namedOf(t)
	return p == pkgPath && n == name
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isFloat reports whether t's underlying or default type is a
// floating-point basic kind (covering typed floats, named float types
// and untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Default(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// isSliceOrArray reports whether t's underlying type is a slice or
// array.
func isSliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// funcBodies visits every function body in the file exactly once,
// calling visit with the enclosing declaration's name (for messages).
// Function literals are visited as part of their enclosing declaration
// body, not separately.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Body)
	}
	// Function literals outside any FuncDecl (package-level var
	// initializers) still need coverage.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		ast.Inspect(gd, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
				visit("package-level func literal", fl.Body)
				return false
			}
			return true
		})
	}
}
