package analysis

import (
	"go/ast"
)

// CtxFirst returns the analyzer enforcing the repo's context
// conventions: a function that takes a context.Context takes it as its
// first parameter, and code lexically inside a function that already
// has a context in scope does not mint a fresh context.Background /
// context.TODO — that silently detaches the work from engine
// cancellation (the exact bug class the recon engine's per-request
// contexts exist to prevent).
func CtxFirst() *Analyzer {
	return &Analyzer{
		Name: "ctxfirst",
		Doc:  "context.Context parameters come first and are threaded through, not replaced with context.Background",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				checkCtxPosition(pass, f)
				checkCtxDropped(pass, f)
			}
		},
	}
}

// checkCtxPosition flags context parameters that are not first.
func checkCtxPosition(pass *Pass, f *ast.File) {
	check := func(ft *ast.FuncType, where string) {
		if ft.Params == nil {
			return
		}
		pos := 0 // flattened parameter index
		for _, field := range ft.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(pass.TypeOf(field.Type)) && pos > 0 {
				pass.Reportf(field.Pos(), "context.Context is parameter %d of %s; it must come first", pos+1, where)
			}
			pos += n
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			check(node.Type, node.Name.Name)
		case *ast.FuncLit:
			check(node.Type, "func literal")
		}
		return true
	})
}

// checkCtxDropped flags context.Background()/context.TODO() calls made
// lexically inside a function (or closure) that already has a
// context.Context parameter in scope.
func checkCtxDropped(pass *Pass, f *ast.File) {
	// ctxDepth > 0 while the walk is inside at least one function
	// whose parameters include a context.
	var stack []bool
	hasCtxParam := func(ft *ast.FuncType) bool {
		if ft.Params == nil {
			return false
		}
		for _, field := range ft.Params.List {
			if isContextType(pass.TypeOf(field.Type)) {
				return true
			}
		}
		return false
	}
	inCtx := func() bool {
		for _, b := range stack {
			if b {
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			if node.Body == nil {
				return false
			}
			stack = append(stack, hasCtxParam(node.Type))
			ast.Inspect(node.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			stack = append(stack, hasCtxParam(node.Type))
			ast.Inspect(node.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.Pkg.Info, node)
			if inCtx() && (isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO")) {
				pass.Reportf(node.Pos(), "context.%s() inside a function that already receives a context; pass the caller's ctx down so cancellation propagates", fn.Name())
			}
		}
		return true
	}
	ast.Inspect(f, walk)
}
