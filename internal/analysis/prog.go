package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Program is the whole-module interprocedural context the dataflow
// checks share: an index from *types.Func to its declaration (the call
// graph's edges are resolved lazily through it), method-set resolution
// for calls through interfaces (Predictor, Reconstructor, ...), and
// per-function summary caches so facts propagate across calls without
// re-analyzing a callee at every call site.
//
// Summaries are deliberately small: a function is reduced to "may it
// block, and on what" (lockheld), "which params flow to results, sinks,
// or bounds checks" (taintalloc), and "which channel params does it
// park on" (goroleak). That keeps whole-module analysis linear in
// practice — each function body is visited once per summary kind — at
// the cost of path-insensitivity across calls, which the checks accept.
type Program struct {
	pkgs  []*Package
	decls map[*types.Func]*funcDecl

	ifaceImpls map[*types.Func][]*types.Func

	// Summary caches, keyed by the declared function. The *Active maps
	// break recursion cycles: a query for a function already on the
	// stack answers optimistically (no facts), which under-approximates
	// mutually recursive blocking but terminates.
	blockInfo   map[*types.Func]*blockSummary
	blockActive map[*types.Func]bool
	taintSums   map[*types.Func]*taintSummary
	taintActive map[*types.Func]bool
	parkSums    map[*types.Func]*parkSummary
	parkActive  map[*types.Func]bool
}

// funcDecl pairs a declaration with the package whose type info
// resolves its body.
type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// NewProgram indexes every function declaration in the packages.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		pkgs:        pkgs,
		decls:       make(map[*types.Func]*funcDecl),
		ifaceImpls:  make(map[*types.Func][]*types.Func),
		blockInfo:   make(map[*types.Func]*blockSummary),
		blockActive: make(map[*types.Func]bool),
		taintSums:   make(map[*types.Func]*taintSummary),
		taintActive: make(map[*types.Func]bool),
		parkSums:    make(map[*types.Func]*parkSummary),
		parkActive:  make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = &funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return p
}

// declOf returns the analyzed declaration of fn, if fn is declared in
// one of the program's packages.
func (p *Program) declOf(fn *types.Func) (*funcDecl, bool) {
	d, ok := p.decls[fn]
	return d, ok
}

// isInterfaceMethod reports whether fn is declared on an interface
// (a dynamic call site).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implementationsOf resolves an interface method to the concrete
// methods of every named type in the analyzed packages whose method
// set satisfies the interface — the static approximation of dynamic
// dispatch through recon.Reconstructor, nn.Predictor, and friends.
func (p *Program) implementationsOf(fn *types.Func) []*types.Func {
	if impls, ok := p.ifaceImpls[fn]; ok {
		return impls
	}
	var impls []*types.Func
	sig := fn.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if ok {
		for _, pkg := range p.pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(named) {
					continue
				}
				var recv types.Type = named
				if !types.Implements(recv, iface) {
					recv = types.NewPointer(named)
					if !types.Implements(recv, iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
				if m, ok := obj.(*types.Func); ok {
					impls = append(impls, m)
				}
			}
		}
	}
	p.ifaceImpls[fn] = impls
	return impls
}

// moduleFunc reports whether fn belongs to one of the analyzed
// packages (by package path prefix match against the loaded set).
func (p *Program) moduleFunc(fn *types.Func) bool {
	_, ok := p.decls[fn]
	if ok {
		return true
	}
	if fn.Pkg() == nil {
		return false
	}
	for _, pkg := range p.pkgs {
		if pkg.Path == fn.Pkg().Path() {
			return true
		}
	}
	return false
}

// funcKey renders fn as "pkgpath.Recv.Name" or "pkgpath.Name" for the
// blocking-call and taint-source tables.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(fn.Pkg().Path())
	b.WriteByte('.')
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, name := namedOf(sig.Recv().Type()); name != "" {
			b.WriteString(name)
			b.WriteByte('.')
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// ---- blocking summaries (lockheld) --------------------------------

// blockSummary records whether calling a function may block the
// calling goroutine, and a human-readable chain of why.
type blockSummary struct {
	blocks bool
	// via is a "f → g → (*os.File).Sync"-style chain naming the path to
	// the primitive blocking operation, for finding messages.
	via string
}

// blockingStdlib maps stdlib calls that park or perform I/O waits the
// caller cannot bound: network round-trips, channel-shaped waits, and
// fsyncs. Keys are funcKey() strings.
var blockingStdlib = map[string]string{
	"net/http.Client.Do":         "an HTTP round-trip",
	"net/http.Client.Get":        "an HTTP round-trip",
	"net/http.Client.Post":       "an HTTP round-trip",
	"net/http.Client.PostForm":   "an HTTP round-trip",
	"net/http.Client.Head":       "an HTTP round-trip",
	"net/http.Get":               "an HTTP round-trip",
	"net/http.Post":              "an HTTP round-trip",
	"net/http.PostForm":          "an HTTP round-trip",
	"net/http.Head":              "an HTTP round-trip",
	"net.Dial":                   "a network dial",
	"net.DialTimeout":            "a network dial",
	"net.Dialer.Dial":            "a network dial",
	"net.Dialer.DialContext":     "a network dial",
	"sync.WaitGroup.Wait":        "a WaitGroup wait",
	"sync.Cond.Wait":             "a condition wait",
	"time.Sleep":                 "a sleep",
	"os/exec.Cmd.Run":            "a subprocess wait",
	"os/exec.Cmd.Wait":           "a subprocess wait",
	"os/exec.Cmd.Output":         "a subprocess wait",
	"os/exec.Cmd.CombinedOutput": "a subprocess wait",
	"os.File.Sync":               "an fsync",
}

// callBlocks reports whether the resolved callee of call may block,
// with a reason chain. Calls through function values and builtins are
// assumed non-blocking (the analysis is a lint, not a verifier).
func (p *Program) callBlocks(info *types.Info, call *ast.CallExpr) (bool, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false, ""
	}
	return p.funcBlocks(fn)
}

// funcBlocks answers the may-block query for one function, resolving
// interface methods through the program's method sets and memoizing.
func (p *Program) funcBlocks(fn *types.Func) (bool, string) {
	if desc, ok := blockingStdlib[funcKey(fn)]; ok {
		return true, desc
	}
	if s, ok := p.blockInfo[fn]; ok {
		return s.blocks, s.via
	}
	if p.blockActive[fn] {
		return false, "" // recursion: optimistic
	}
	p.blockActive[fn] = true
	defer delete(p.blockActive, fn)

	s := &blockSummary{}
	if isInterfaceMethod(fn) {
		for _, impl := range p.implementationsOf(fn) {
			if b, via := p.funcBlocks(impl); b {
				s.blocks = true
				s.via = impl.Name() + " (via interface " + fn.Name() + ") → " + via
				break
			}
		}
	} else if d, ok := p.declOf(fn); ok {
		s.blocks, s.via = p.bodyBlocks(d)
		if s.blocks {
			s.via = fn.Name() + " → " + s.via
		}
	}
	p.blockInfo[fn] = s
	return s.blocks, s.via
}

// bodyBlocks scans one declaration body for blocking operations:
// channel sends/receives (outside a select with a default), blocking
// selects, ranges over channels, and blocking calls (stdlib table or
// nested summaries). Goroutine and closure bodies are skipped — the
// spawn itself does not block, and an uninvoked literal never runs.
func (p *Program) bodyBlocks(d *funcDecl) (bool, string) {
	info := d.pkg.Info
	blocks := false
	via := ""
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks, via = true, "a channel send"
			return false
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				blocks, via = true, "a channel receive"
				return false
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				blocks, via = true, "a blocking select"
				return false
			}
			// Non-blocking select: classify nothing inside the comm
			// clauses, but keep walking clause bodies.
			for _, clause := range node.Body.List {
				cc := clause.(*ast.CommClause)
				for _, s := range cc.Body {
					if b, v := p.stmtBlocks(info, s); b {
						blocks, via = true, v
						return false
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blocks, via = true, "a range over a channel"
					return false
				}
			}
		case *ast.CallExpr:
			if b, v := p.callBlocks(info, node); b {
				blocks, via = true, v
				return false
			}
		}
		return true
	})
	return blocks, via
}

// stmtBlocks applies bodyBlocks' classification to a single statement
// subtree (used for select clause bodies).
func (p *Program) stmtBlocks(info *types.Info, s ast.Stmt) (bool, string) {
	blocks := false
	via := ""
	ast.Inspect(s, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks, via = true, "a channel send"
			return false
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				blocks, via = true, "a channel receive"
				return false
			}
		case *ast.CallExpr:
			if b, v := p.callBlocks(info, node); b {
				blocks, via = true, v
				return false
			}
		}
		return true
	})
	return blocks, via
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
