package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop returns the analyzer forbidding silently discarded error
// returns outside tests. Three shapes are flagged:
//
//  1. a call used as a bare statement whose results include an error
//     ("f.Close()", "enc.Encode(v)") — the author may not even know
//     the call can fail;
//  2. an error result assigned to _ ("_ = f()", "n, _ := w.Write(p)")
//     — visible but unaudited; the annotation records the why;
//  3. "defer f.Close()" on a file opened for writing in the same
//     function — the kernel reports write-back failures at Close, and
//     checkpoint atomicity depends on that error being checked. Use a
//     named-return close (defer func(){ if cerr := f.Close(); err ==
//     nil { err = cerr } }()) instead.
//
// Writers whose errors are sticky or impossible are exempt so the
// check stays high-signal: *bufio.Writer (Flush returns the sticky
// error and must itself be checked), *bytes.Buffer, *strings.Builder
// and hash.Hash never fail, and fmt printing to os.Stdout/os.Stderr
// is the conventional best-effort CLI output path.
//
// exclude lists package-path prefixes (use a trailing slash for
// subtrees) skipped entirely — the runnable examples prioritize
// readability over error plumbing.
func ErrDrop(exclude []string) *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no silently discarded error returns; checked Close on writable files",
		Run: func(pass *Pass) {
			if inScope(exclude, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					checkErrDropInBody(pass, name, body)
				})
			}
		},
	}
}

func checkErrDropInBody(pass *Pass, funcName string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Files opened for writing in this body (os.Create / os.OpenFile).
	writable := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if !isPkgFunc(fn, "os", "Create") && !isPkgFunc(fn, "os", "OpenFile") {
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				writable[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				writable[obj] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(node.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if discardsError(pass, call) && !exemptSink(pass, call) {
				pass.Reportf(call.Pos(), "error result of %s discarded in %s; handle it, or annotate: //lint:allow errdrop: <why ignoring is safe>", calleeLabel(info, call), funcName)
			}
		case *ast.AssignStmt:
			checkBlankError(pass, funcName, node)
		case *ast.DeferStmt:
			sel, ok := ast.Unparen(node.Call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj != nil && writable[obj] && isNamedType(obj.Type(), "os", "File") {
				pass.Reportf(node.Pos(), "defer %s.Close() drops the close error on a file opened for writing in %s; write-back failures surface at Close — use a named-return close check", id.Name, funcName)
			}
		}
		return true
	})
}

// checkBlankError flags blank-identifier assignment of an error result
// produced by a call.
func checkBlankError(pass *Pass, funcName string, assign *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Multi-value call: v, _ := f().
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := callResults(pass, call)
		if results == nil {
			return
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if ok && id.Name == "_" && i < results.Len() && isErrorType(results.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error from %s assigned to _ in %s; handle it, or annotate: //lint:allow errdrop: <why ignoring is safe>", calleeLabel(info, call), funcName)
			}
		}
		return
	}
	// Parallel form: _ = f() (only the call-RHS case matters).
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if isErrorType(pass.TypeOf(call)) && !exemptSink(pass, call) {
			pass.Reportf(lhs.Pos(), "error from %s assigned to _ in %s; handle it, or annotate: //lint:allow errdrop: <why ignoring is safe>", calleeLabel(info, call), funcName)
		}
	}
}

// discardsError reports whether the bare call statement produces at
// least one error among its results.
func discardsError(pass *Pass, call *ast.CallExpr) bool {
	results := callResults(pass, call)
	if results == nil {
		return false
	}
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

// callResults returns the result tuple of a call, or nil when the
// callee is a builtin, a conversion, or single-result non-tuple call
// whose type is reconstructed below.
func callResults(pass *Pass, call *ast.CallExpr) *types.Tuple {
	t := pass.TypeOf(call)
	switch rt := t.(type) {
	case *types.Tuple:
		return rt
	case nil:
		return nil
	default:
		// Single result: synthesize a one-element tuple.
		return types.NewTuple(types.NewVar(call.Pos(), nil, "", rt))
	}
}

// exemptSink reports whether the discarded error comes from a writer
// that cannot meaningfully fail here: in-memory buffers, hash state,
// sticky bufio writers (their Flush is checked separately), and fmt
// printing to the standard streams.
func exemptSink(pass *Pass, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	// fmt.Print/Printf/Println go to stdout by definition.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return exemptWriterExpr(pass, call.Args[0])
			}
		}
		return false
	}
	// Methods on never-fail or sticky-error receivers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recvSel, ok := info.Selections[sel]; ok {
			return exemptWriterType(recvSel.Recv())
		}
	}
	// Fprint-shaped stdlib helpers (writer first): exempt with an
	// exempt writer, like fmt.Fprint*.
	if (isPkgFunc(fn, "io", "WriteString") || isPkgFunc(fn, "encoding/xml", "EscapeText")) && len(call.Args) > 0 {
		return exemptWriterExpr(pass, call.Args[0])
	}
	return false
}

// exemptWriterExpr reports whether expr denotes an exempt write sink:
// os.Stdout / os.Stderr, or a value of an exempt writer type.
func exemptWriterExpr(pass *Pass, expr ast.Expr) bool {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	return exemptWriterType(pass.TypeOf(expr))
}

// exemptWriterType reports whether t is one of the never-fail /
// sticky-error writer types.
func exemptWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	return isNamedType(t, "strings", "Builder") ||
		isNamedType(t, "bytes", "Buffer") ||
		isNamedType(t, "bufio", "Writer") ||
		isNamedType(t, "hash", "Hash") ||
		isNamedType(t, "hash", "Hash32") ||
		isNamedType(t, "hash", "Hash64")
}

// calleeLabel renders a short human name for the called function.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if _, name := namedOf(recv.Type()); name != "" {
				return name + "." + fn.Name()
			}
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
