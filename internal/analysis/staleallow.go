package analysis

// StaleAllow reports //lint:allow annotations that suppress nothing:
// the finding the annotation was written for has been fixed (or the
// comment drifted away from its line), so the annotation is now a
// blind spot that would swallow the next real regression at that site.
//
// The analyzer itself is a no-op per package; the actual detection
// runs at suite level in Suite.Run, after suppression has marked every
// directive that matched a finding, because staleness is a property of
// the whole run: a directive is stale only when its check actually ran
// over its package and still found nothing to suppress. Partial runs
// (-checks a,b) therefore never call an unselected check's directive
// stale. The lint CLI extends the same idea to the baseline: with
// staleallow selected, baseline entries that no longer match any
// finding are reported as staleallow findings too.
//
// Stale-allow findings cannot themselves be //lint:allow'd (an allow
// for a dead allow is two layers of rot); the baseline can grandfather
// them during cleanup.
func StaleAllow() *Analyzer {
	return &Analyzer{
		Name: "staleallow",
		Doc:  "no committed //lint:allow annotation or baseline entry that no longer suppresses anything",
		Run:  func(*Pass) {}, // suite-level: see Suite.staleAllows
	}
}
