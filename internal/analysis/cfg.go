package analysis

import (
	"go/ast"
)

// This file builds per-function control-flow graphs directly from the
// AST — no SSA. A block's instruction list interleaves statements with
// the condition expressions evaluated on entry to branches, so a
// forward transfer function sees `if n > max` as an instruction and
// can kill taint facts at the comparison. Function literals are not
// descended into: a closure body runs at an unknown time on an unknown
// goroutine, so its facts do not belong in the enclosing flow.

// cfgBlock is one basic block: straight-line instructions plus edges
// to every possible successor.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	// selectComms maps each comm-clause statement (the SendStmt or the
	// receive in `case v := <-ch:`) to its enclosing select. Checks
	// that classify blocking operations consult it so a comm op is
	// attributed to the select (which may have a default clause and
	// therefore not block), not misread as a bare send/receive.
	selectComms map[ast.Node]*ast.SelectStmt
}

// branchTarget is one entry of the break/continue resolution stacks.
type branchTarget struct {
	label  string
	target *cfgBlock
}

type cfgBuilder struct {
	g            *funcCFG
	cur          *cfgBlock
	breaks       []branchTarget
	continues    []branchTarget
	pendingLabel string
}

// buildCFG constructs the CFG for a function body. The graph
// over-approximates: loops always have an exit edge, gotos terminate
// their block, and unreachable code keeps empty-fact blocks — all safe
// directions for may-analyses.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{selectComms: make(map[ast.Node]*ast.SelectStmt)}}
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends an instruction to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label recorded by the enclosing LabeledStmt,
// so it attaches to exactly the loop or switch it names.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = b.newBlock() // dead block for anything following
	default:
		// Straight-line statements (assignments, calls, sends, go,
		// defer, declarations) are single instructions.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	b.cur = b.newBlock()
	link(cond, b.cur)
	b.stmt(s.Body)
	link(b.cur, after)

	if s.Else != nil {
		b.cur = b.newBlock()
		link(cond, b.cur)
		b.stmt(s.Else)
		link(b.cur, after)
	} else {
		link(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	link(head, after)

	post := head
	if s.Post != nil {
		post = b.newBlock()
	}

	b.cur = b.newBlock()
	link(head, b.cur)
	b.pushTargets(label, after, post)
	b.stmt(s.Body)
	b.popTargets()
	link(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		link(b.cur, head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	link(b.cur, head)
	b.cur = head
	b.add(s) // the range header: X evaluation + key/value binding
	after := b.newBlock()
	link(head, after)

	b.cur = b.newBlock()
	link(head, b.cur)
	b.pushTargets(label, after, head)
	b.stmt(s.Body)
	b.popTargets()
	link(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	tag := b.cur
	after := b.newBlock()
	b.buildClauses(label, tag, after, s.Body.List, func(clause ast.Stmt) []ast.Stmt {
		cc := clause.(*ast.CaseClause)
		return cc.Body
	})
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	tag := b.cur
	after := b.newBlock()
	b.buildClauses(label, tag, after, s.Body.List, func(clause ast.Stmt) []ast.Stmt {
		cc := clause.(*ast.CaseClause)
		return cc.Body
	})
	b.cur = after
}

// buildClauses builds one block per case clause, all branching from
// tag and joining at after, with fallthrough edges between adjacent
// clause blocks. A switch with no default also has a tag→after edge.
func (b *cfgBuilder) buildClauses(label string, tag, after *cfgBlock, clauses []ast.Stmt, bodyOf func(ast.Stmt) []ast.Stmt) {
	hasDefault := false
	var clauseBlocks []*cfgBlock
	var clauseEnds []*cfgBlock
	for _, clause := range clauses {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		link(tag, blk)
		b.cur = blk
		b.pushTargets(label, after, nil)
		b.stmtList(bodyOf(clause))
		b.popTargets()
		link(b.cur, after)
		clauseBlocks = append(clauseBlocks, blk)
		clauseEnds = append(clauseEnds, b.cur)
	}
	// Fallthrough over-approximation: link each clause end to the next
	// clause head. Precise fallthrough tracking buys nothing for
	// may-analyses, and the spurious edge only widens facts.
	for i := 0; i+1 < len(clauseEnds); i++ {
		link(clauseEnds[i], clauseBlocks[i+1])
	}
	if !hasDefault {
		link(tag, after)
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.add(s) // the select itself is the (possibly) blocking instruction
	head := b.cur
	after := b.newBlock()
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		blk := b.newBlock()
		link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.g.selectComms[cc.Comm] = s
			b.add(cc.Comm)
		}
		b.pushTargets(label, after, nil)
		b.stmtList(cc.Body)
		b.popTargets()
		link(b.cur, after)
	}
	if len(s.Body.List) == 0 {
		link(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := resolve(b.breaks, label); t != nil {
			link(b.cur, t)
		}
	case "continue":
		if t := resolve(b.continues, label); t != nil {
			link(b.cur, t)
		}
	case "fallthrough":
		return // edge added by buildClauses; block continues below
	case "goto":
		// No label-resolution pass; the block just ends. Facts flowing
		// through a goto are lost, which under-approximates — accepted,
		// the repo has no gotos in analyzed code.
	}
	b.cur = b.newBlock() // code after an unconditional branch is dead
}

// pushTargets enters a breakable construct. cont is nil for switches
// and selects (continue passes through to the enclosing loop).
func (b *cfgBuilder) pushTargets(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, branchTarget{label: label, target: brk})
	if cont != nil {
		b.continues = append(b.continues, branchTarget{label: label, target: cont})
	} else {
		b.continues = append(b.continues, branchTarget{label: "\x00none", target: nil})
	}
}

func (b *cfgBuilder) popTargets() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// resolve finds the innermost matching branch target: the nearest one
// for an unlabeled branch, the one with the matching label otherwise.
func resolve(stack []branchTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.target == nil {
			continue // switch/select placeholder on the continue stack
		}
		if label == "" || t.label == label {
			return t.target
		}
	}
	return nil
}
