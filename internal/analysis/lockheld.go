package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld reports sync.Mutex/RWMutex critical sections that span a
// blocking operation: a channel send/receive, a blocking select, a
// range over a channel, or a call that may park the goroutine (HTTP
// round-trips, WaitGroup/Cond waits, fsyncs, subprocess waits — either
// directly or through a chain of module-local calls resolved via the
// program's blocking summaries, including calls dispatched through
// interfaces). Holding a lock across such an operation serializes
// every other user of the lock behind an unbounded wait; the
// coordinator's PR 8 self-query deadlock was exactly this shape.
//
// The analysis is flow-sensitive per function: a lock fact is
// generated at mu.Lock()/RLock() and killed at mu.Unlock()/RUnlock(),
// except a deferred unlock, which keeps the lock held for the rest of
// the body (that is what defer means). Locks are keyed on the variable
// or field holding them, so two instances' `mu` fields conflate —
// acceptable imprecision for a lint.
func LockHeld(scope []string) *Analyzer {
	return &Analyzer{
		Name: "lockheld",
		Doc:  "no mutex held across a blocking operation (network, channel, Wait, fsync) in serving-path packages",
		Run: func(pass *Pass) {
			if !inScope(scope, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					checkLockHeld(pass, name, body)
				})
			}
		},
	}
}

const lockBit = 1 // the single fact bit: "this lock is held"

func checkLockHeld(pass *Pass, fname string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := buildCFG(body)

	transfer := func(n ast.Node, f facts) {
		if _, ok := n.(*ast.GoStmt); ok {
			return // the spawned goroutine's lock ops are not this flow's
		}
		inDefer := false
		if d, ok := n.(*ast.DeferStmt); ok {
			inDefer = true
			n = d.Call
		}
		walkInstr(n, func(sub ast.Node) {
			call, ok := sub.(*ast.CallExpr)
			if !ok {
				return
			}
			obj, op := lockOp(info, call)
			if obj == nil {
				return
			}
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if !inDefer {
					f[obj] |= lockBit
				}
			case "Unlock", "RUnlock":
				// A deferred unlock runs at return: the lock stays held
				// for the remainder of the body, so no kill.
				if !inDefer {
					delete(f, obj)
				}
			}
		})
	}

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, f facts, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		held := ""
		for obj := range f {
			if held == "" || obj.Name() < held {
				held = obj.Name()
			}
		}
		pass.Reportf(pos, "%s held across %s in %s; narrow the critical section so the lock is released first", held, what, fname)
	}

	visit := func(n ast.Node, f facts) {
		if len(f) == 0 {
			return
		}
		switch node := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return // runs later / elsewhere; the spawn itself does not block
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				report(node.Pos(), f, "a blocking select")
			}
			return
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(node.Pos(), f, "a range over a channel")
				}
			}
			return
		}
		if g.selectComms[n] != nil {
			// A comm op belongs to its select, which was classified as a
			// unit (a select with default never blocks).
			return
		}
		walkInstr(n, func(sub ast.Node) {
			switch x := sub.(type) {
			case *ast.SendStmt:
				report(x.Arrow, f, "a channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.OpPos, f, "a channel receive")
				}
			case *ast.CallExpr:
				if obj, _ := lockOp(info, x); obj != nil {
					return // lock/unlock calls are the facts, not blocking ops
				}
				if blocks, via := pass.Prog.callBlocks(info, x); blocks {
					report(x.Pos(), f, via)
				}
			}
		})
	}

	g.forward(nil, transfer, visit)
}

// lockOp matches a call of the form <expr>.Lock / Unlock / RLock /
// RUnlock / TryLock / TryRLock on a sync.Mutex or sync.RWMutex
// (directly or embedded) and returns the lock's root object and the
// method name.
func lockOp(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	key := funcKey(fn)
	switch key {
	case "sync.Mutex.Lock", "sync.Mutex.Unlock", "sync.Mutex.TryLock",
		"sync.RWMutex.Lock", "sync.RWMutex.Unlock", "sync.RWMutex.TryLock",
		"sync.RWMutex.RLock", "sync.RWMutex.RUnlock", "sync.RWMutex.TryRLock":
	default:
		return nil, ""
	}
	return rootObj(info, sel.X), fn.Name()
}

// walkInstr visits every node of one CFG instruction without crossing
// into function-literal bodies (a closure's operations happen when the
// closure runs, not here).
func walkInstr(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		if sub != nil {
			visit(sub)
		}
		return true
	})
}
