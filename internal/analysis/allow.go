package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
)

// allowPrefix is the audited-suppression directive. Full form:
//
//	//lint:allow <check>: <reason>
//
// The directive suppresses findings of <check> reported on the same
// line or on the line directly below the comment, so both trailing
// comments and own-line comments above the offending statement work.
// The reason is mandatory: an annotation without one is itself a
// finding (check "lint"), because the whole point is an audit trail.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	check  string
	reason string
	file   string // absolute filename
	line   int
	used   bool
}

// allowIndex maps absolute filename -> line -> directives on that line.
type allowIndex map[string]map[int][]*allowDirective

// collectAllows parses every //lint:allow directive in the packages'
// comments. Malformed directives (missing check, missing reason, or a
// check name the suite does not know) are returned as findings under
// the reserved "lint" check; their File field holds the absolute path
// and is relocated by the caller.
func collectAllows(fset *token.FileSet, pkgs []*Package, known []string) (allowIndex, []Finding) {
	knownSet := make(map[string]bool, len(known))
	for _, k := range known {
		knownSet[k] = true
	}
	idx := make(allowIndex)
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					pos := fset.Position(c.Slash)
					d, problem := parseAllow(text)
					if problem == "" && !knownSet[d.check] {
						problem = "unknown check " + d.check
					}
					if problem != "" {
						bad = append(bad, Finding{
							Check:   "lint",
							File:    pos.Filename,
							Line:    pos.Line,
							Col:     pos.Column,
							Message: "malformed " + allowPrefix + " annotation (" + problem + "); format: " + allowPrefix + " <check>: <reason>",
						})
						continue
					}
					d.file = pos.Filename
					d.line = pos.Line
					if idx[d.file] == nil {
						idx[d.file] = make(map[int][]*allowDirective)
					}
					idx[d.file][d.line] = append(idx[d.file][d.line], d)
				}
			}
		}
	}
	return idx, bad
}

// parseAllow splits "//lint:allow check: reason" into its parts,
// returning a problem description when the directive is malformed.
func parseAllow(text string) (*allowDirective, string) {
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "missing space after " + allowPrefix
	}
	rest = strings.TrimSpace(rest)
	check, reason, ok := strings.Cut(rest, ":")
	check = strings.TrimSpace(check)
	reason = strings.TrimSpace(reason)
	if check == "" {
		return nil, "missing check name"
	}
	if strings.ContainsAny(check, " \t") {
		return nil, "check name contains spaces"
	}
	if !ok || reason == "" {
		return nil, "missing reason"
	}
	return &allowDirective{check: check, reason: reason}, ""
}

// suppress filters out findings covered by an allow directive on the
// finding's line or the line above it. Findings arrive with File
// already relative to relRoot; directives carry absolute paths, so the
// lookup translates through relRoot.
func suppress(findings []Finding, idx allowIndex, fset *token.FileSet, relRoot string) []Finding {
	if len(idx) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		abs := f.File
		if relRoot != "" && !filepath.IsAbs(abs) {
			abs = filepath.Join(relRoot, filepath.FromSlash(f.File))
		}
		if allowedAt(idx, abs, f.Line, f.Check) || allowedAt(idx, abs, f.Line-1, f.Check) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func allowedAt(idx allowIndex, file string, line int, check string) bool {
	for _, d := range idx[file][line] {
		if d.check == check {
			d.used = true
			return true
		}
	}
	return false
}
