package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden fixture tests: each check has a package under testdata/src
// whose flagged lines carry `// want "substring"` comments. Every want
// must be matched by a finding on its line, and every finding must be
// matched by a want — so both false negatives and false positives in
// the analyzers fail the test.

var (
	wantRe   = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// wantsIn parses the want expectations of every fixture file in dir:
// file base name -> line -> expected message substrings.
func wantsIn(t *testing.T, dir string) map[string]map[int][]string {
	t.Helper()
	out := make(map[string]map[int][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		perLine := make(map[int][]string)
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
				perLine[i+1] = append(perLine[i+1], q[1])
			}
		}
		out[e.Name()] = perLine
	}
	return out
}

// checkGolden runs the suite over the fixture package in dir and
// diffs findings against the want comments.
func checkGolden(t *testing.T, l *Loader, dir, asPath string, suite *Suite) {
	t.Helper()
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings := suite.Run(l.Fset, []*Package{pkg}, l.ModuleRoot)

	wants := wantsIn(t, dir)
	matched := make(map[string]map[int]bool) // file -> want line satisfied
	for file := range wants {
		matched[file] = make(map[int]bool)
	}
	for _, f := range findings {
		base := filepath.Base(f.File)
		lineWants := wants[base][f.Line]
		ok := false
		for _, sub := range lineWants {
			if strings.Contains(f.Message, sub) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		matched[base][f.Line] = true
	}
	for file, perLine := range wants {
		for line, subs := range perLine {
			if !matched[file][line] {
				t.Errorf("%s:%d: want %q matched no finding", file, line, subs)
			}
		}
	}
}

func fixtureLoader(t *testing.T) (*Loader, string) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l, filepath.Join(root, "internal", "analysis", "testdata", "src")
}

func TestGoldenFixtures(t *testing.T) {
	l, src := fixtureLoader(t)
	cases := []struct {
		name string
		mk   func(fixturePath string) *Analyzer
	}{
		{"nondeterminism", func(p string) *Analyzer { return Nondeterminism([]string{p}) }},
		{"rawgoroutine", func(string) *Analyzer { return RawGoroutine(nil) }},
		{"spanpair", func(string) *Analyzer { return SpanPair(telemetryPkg, tracePkg) }},
		{"ctxfirst", func(string) *Analyzer { return CtxFirst() }},
		{"floateq", func(p string) *Analyzer { return FloatEq([]string{p}) }},
		{"errdrop", func(string) *Analyzer { return ErrDrop(nil) }},
		{"taintalloc", func(p string) *Analyzer { return TaintAlloc([]string{p}) }},
		{"lockheld", func(p string) *Analyzer { return LockHeld([]string{p}) }},
		{"goroleak", func(p string) *Analyzer { return GoroLeak([]string{p}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			asPath := "fixture/" + tc.name
			suite := &Suite{Analyzers: []*Analyzer{tc.mk(asPath)}}
			checkGolden(t, l, filepath.Join(src, tc.name), asPath, suite)
		})
	}
}

// TestAllowSuppression proves the annotation path end to end: audited
// annotations silence their findings, a malformed directive is itself
// reported under "lint", and the finding it failed to suppress
// survives.
func TestAllowSuppression(t *testing.T) {
	l, src := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join(src, "allow"), "fixture/allow")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Analyzers: []*Analyzer{ErrDrop(nil)}}
	findings := suite.Run(l.Fset, []*Package{pkg}, l.ModuleRoot)

	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d", f.Check, f.Line))
	}
	// Line 19 holds the malformed directive, line 20 the os.Remove it
	// therefore fails to suppress; the two audited sites are silent.
	want := []string{"lint:19", "errdrop:20"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("findings = %v, want %v\nfull: %v", got, want, findings)
	}
	for _, f := range findings {
		if f.Check == "lint" && !strings.Contains(f.Message, "reason") {
			t.Errorf("lint finding should demand a reason: %s", f.Message)
		}
	}
}

// TestStaleAllowGolden drives the suite-level staleallow detection.
// The fixture needs a multi-check suite (a directive is stale only
// relative to a check that ran) and a registry wider than the
// selection (a known-but-unselected check's directive must survive),
// so it cannot ride the single-analyzer golden table.
func TestStaleAllowGolden(t *testing.T) {
	l, src := fixtureLoader(t)
	suite := &Suite{
		Analyzers: []*Analyzer{ErrDrop(nil), StaleAllow()},
		registry:  []string{"errdrop", "floateq", "staleallow"},
	}
	checkGolden(t, l, filepath.Join(src, "staleallow"), "fixture/staleallow", suite)
}

// TestStaleAllowUnselected proves partial runs never call a directive
// stale: the same fixture with staleallow NOT selected yields no
// findings at all.
func TestStaleAllowUnselected(t *testing.T) {
	l, src := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join(src, "staleallow"), "fixture/staleallow")
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{
		Analyzers: []*Analyzer{ErrDrop(nil)},
		registry:  []string{"errdrop", "floateq", "staleallow"},
	}
	findings := suite.Run(l.Fset, []*Package{pkg}, l.ModuleRoot)
	for _, f := range findings {
		t.Errorf("unexpected finding without staleallow selected: %s", f)
	}
}

// TestRepoCleanModuloBaseline runs the full default suite over the
// real repository and requires zero findings beyond the committed
// baseline — the same gate `make lint` enforces, expressed as a test.
func TestRepoCleanModuloBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := DefaultSuite().Run(l.Fset, pkgs, root)
	bl, err := LoadBaseline(filepath.Join(root, "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, stale := bl.Filter(findings)
	for _, f := range fresh {
		t.Errorf("new finding: %s", f)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (fixed? shrink the baseline): %s %s: %s", e.Check, e.File, e.Message)
	}
}
