package analysis

import (
	"encoding/json"
	"io"
)

// SARIF output (Static Analysis Results Interchange Format, v2.1.0):
// the subset of the schema code-review UIs consume — one run, one rule
// per registered check, one result per finding with a physical
// location. Everything else in the (large) spec is optional and
// omitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the suite's findings as a SARIF 2.1.0 log. The
// suite provides the rule metadata (every registered check appears as
// a rule even when it found nothing, so viewers can show the full
// gate); findings become warning-level results. File paths are emitted
// as-is — relative to the module root, the form upload UIs expect.
func WriteSARIF(w io.Writer, suite *Suite, findings []Finding) error {
	driver := sarifDriver{Name: "fillvoid-lint"}
	for _, a := range suite.Analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Findings from the reserved "lint" check (malformed annotations)
	// have no registered analyzer; give them a rule so the log is
	// self-consistent.
	seen := make(map[string]bool, len(driver.Rules))
	for _, r := range driver.Rules {
		seen[r.ID] = true
	}
	for _, f := range findings {
		if !seen[f.Check] {
			seen[f.Check] = true
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               f.Check,
				ShortDescription: sarifMessage{Text: "fillvoid-lint driver diagnostic"},
			})
		}
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line := f.Line
		if line < 1 {
			line = 1 // SARIF requires startLine >= 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
