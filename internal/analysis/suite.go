package analysis

// Repo policy: which packages each check scopes to. These lists are
// the machine-readable form of conventions documented in DESIGN.md
// ("Static analysis" inventory row) — change them deliberately, in
// review, not to silence a finding.
var (
	// deterministicPkgs are the packages covered by the checkpoint
	// config hash: bit-identical resume depends on every source of
	// randomness in them being serializable and replayable.
	deterministicPkgs = []string{
		"fillvoid/internal/nn",
		"fillvoid/internal/core",
		"fillvoid/internal/features",
	}

	// goroutinePkgs may use bare `go` statements: parallel implements
	// the sanctioned fan-out primitives, and server owns HTTP listener
	// lifecycle.
	goroutinePkgs = []string{
		"fillvoid/internal/parallel",
		"fillvoid/internal/server",
	}

	// numericPkgs hold floating-point math where ==/!= is a latent
	// reproducibility bug rather than a style issue.
	numericPkgs = []string{
		"fillvoid/internal/mathutil",
		"fillvoid/internal/grid",
		"fillvoid/internal/metrics",
		"fillvoid/internal/kdtree",
		"fillvoid/internal/delaunay",
		"fillvoid/internal/sampling",
		"fillvoid/internal/interp",
		"fillvoid/internal/recon",
		"fillvoid/internal/nn",
		"fillvoid/internal/features",
		"fillvoid/internal/core",
		"fillvoid/internal/ensemble",
		"fillvoid/internal/stream",
		"fillvoid/internal/iso",
		"fillvoid/internal/sim",
		"fillvoid/internal/render",
		"fillvoid/internal/datasets",
	}

	// errDropExclude subtrees skip the errdrop check: the runnable
	// examples are documentation-grade code where full error plumbing
	// would bury the API being demonstrated.
	errDropExclude = []string{
		"fillvoid/examples/",
	}

	// taintPkgs decode external input (HTTP bodies, URL params, wire
	// headers) and must bounds-check every decoded value before it
	// reaches an allocation size.
	taintPkgs = []string{
		"fillvoid/internal/server",
		"fillvoid/internal/cluster",
		"fillvoid/internal/jobs",
		"fillvoid/internal/codec",
	}

	// lockHeldPkgs are the serving-path packages where a mutex held
	// across a blocking operation stalls every request behind one slow
	// peer or fsync.
	lockHeldPkgs = []string{
		"fillvoid/internal/cluster",
		"fillvoid/internal/jobs",
		"fillvoid/internal/server",
	}

	// goroLeakPkgs spawn goroutines that talk over channels; the leak
	// check covers the serving path plus the smoke-test drivers (which
	// historically leaked scanner goroutines on deadline abandonment).
	goroLeakPkgs = []string{
		"fillvoid/internal/server",
		"fillvoid/internal/cluster",
		"fillvoid/internal/jobs",
		"fillvoid/internal/parallel",
		"fillvoid/scripts/",
		"fillvoid/cmd/",
	}

	telemetryPkg = "fillvoid/internal/telemetry"
	tracePkg     = "fillvoid/internal/trace"
)

// DefaultSuite returns the full fillvoid-lint suite configured with
// the repo policy above.
func DefaultSuite() *Suite {
	s := &Suite{Analyzers: []*Analyzer{
		Nondeterminism(deterministicPkgs),
		RawGoroutine(goroutinePkgs),
		SpanPair(telemetryPkg, tracePkg),
		CtxFirst(),
		FloatEq(numericPkgs),
		ErrDrop(errDropExclude),
		TaintAlloc(taintPkgs),
		LockHeld(lockHeldPkgs),
		GoroLeak(goroLeakPkgs),
		StaleAllow(),
	}}
	s.registry = s.Names()
	return s
}
