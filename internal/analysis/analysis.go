// Package analysis is fillvoid's project-specific static-analysis
// suite: a small analyzer driver built on the standard library's
// go/parser and go/types (no external dependencies) plus a set of
// typed checks that turn the repo's code-review conventions into
// machine-checked gates.
//
// The invariants it guards are the ones resumable training (PR 4), the
// reconstruction engine, and the serving path silently depend on:
//
//   - all randomness in the checkpoint-hashed packages flows through
//     internal/mathutil's serializable generators (nondeterminism)
//   - goroutine fan-out goes through internal/parallel so engine
//     cancellation and worker accounting apply (rawgoroutine)
//   - every telemetry span that is started is ended (spanpair)
//   - context.Context parameters come first and are threaded through
//     rather than replaced with context.Background (ctxfirst)
//   - float64 values are never compared with ==/!= in numeric
//     packages outside declared bit-exactness sites (floateq)
//   - error returns are never silently dropped, in particular Close on
//     writable files — checkpoint atomicity depends on checked
//     fsync/Close (errdrop)
//
// Findings can be suppressed at the site with an audited annotation:
//
//	//lint:allow <check>: <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a bare //lint:allow is itself reported. Legacy
// findings can be grandfathered in a committed baseline file (see
// Baseline) so the gate can be adopted without a flag day.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Check is the analyzer name ("rawgoroutine", "errdrop", ...).
	Check string `json:"check"`
	// File is the path of the offending file, relative to the module
	// root when the file lives under it (stable across machines, and
	// what the baseline keys on).
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violated invariant and the fix.
	Message string `json:"message"`
}

// String formats the finding in the canonical file:line:col: [check]
// message form used by the text reporter.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Pass carries one (analyzer, package) run: the type-checked package
// under inspection and the sink findings are reported into.
type Pass struct {
	Check string
	Fset  *token.FileSet
	Pkg   *Package
	// Prog is the whole-run interprocedural context (call graph and
	// function-summary caches) shared by every pass of a Suite.Run. The
	// dataflow checks resolve cross-function facts through it.
	Prog *Program

	findings *[]Finding
	relRoot  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.relRoot != "" {
		if rel, err := filepath.Rel(p.relRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	*p.findings = append(*p.findings, Finding{
		Check:   p.Check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr in the pass's package (nil when the
// expression was not type-checked, e.g. dead code).
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the check in output, -checks filters, baselines
	// and //lint:allow annotations. Lower-case, no spaces.
	Name string
	// Doc is a one-line description of the invariant the check guards.
	Doc string
	// Run inspects pass.Pkg and calls pass.Reportf for each violation.
	Run func(*Pass)
}

// Suite is an ordered set of analyzers run together over a set of
// packages.
type Suite struct {
	Analyzers []*Analyzer
	// registry lists every check name the full suite knows, even when
	// this is a Select sub-suite. //lint:allow directives are validated
	// against the registry, not the selected subset, so a partial run
	// (-checks a,b) never misreads an annotation for an unselected
	// check as unknown.
	registry []string
}

// Names returns the analyzer names in registration order.
func (s *Suite) Names() []string {
	names := make([]string, len(s.Analyzers))
	for i, a := range s.Analyzers {
		names[i] = a.Name
	}
	return names
}

// Select returns a sub-suite containing exactly the named analyzers,
// or an error naming the first unknown check.
func (s *Suite) Select(names []string) (*Suite, error) {
	byName := make(map[string]*Analyzer, len(s.Analyzers))
	for _, a := range s.Analyzers {
		byName[a.Name] = a
	}
	out := &Suite{registry: s.knownChecks()}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", n, strings.Join(s.Names(), ", "))
		}
		out.Analyzers = append(out.Analyzers, a)
	}
	if len(out.Analyzers) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}

// Run executes every analyzer over every package, applies
// //lint:allow suppression, and returns the surviving findings sorted
// by file, line, column, and check. relRoot, when non-empty, is the
// directory finding paths are reported relative to (the module root).
// Malformed allow annotations are reported under the reserved check
// name "lint".
func (s *Suite) Run(fset *token.FileSet, pkgs []*Package, relRoot string) []Finding {
	var findings []Finding
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			pass := &Pass{
				Check:    a.Name,
				Fset:     fset,
				Pkg:      pkg,
				Prog:     prog,
				findings: &findings,
				relRoot:  relRoot,
			}
			a.Run(pass)
		}
	}

	allows, bad := collectAllows(fset, pkgs, s.knownChecks())
	findings = append(findings, relocate(bad, relRoot)...)
	findings = suppress(findings, allows, fset, relRoot)
	findings = append(findings, s.staleAllows(allows, relRoot)...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings
}

// knownChecks returns the names //lint:allow directives may reference:
// the full registry when this is a Select sub-suite, the analyzer
// names otherwise.
func (s *Suite) knownChecks() []string {
	if len(s.registry) > 0 {
		return s.registry
	}
	return s.Names()
}

// staleAllows implements the suite-level half of the staleallow check:
// after suppression has marked every directive that matched a finding,
// any directive for a check that actually ran in this suite and still
// suppressed nothing is dead weight — the finding it was written for
// has been fixed (or the annotation drifted off its line), and keeping
// it would silently swallow a future regression. Only runs when the
// "staleallow" analyzer is selected, and only judges directives for
// selected checks, so partial runs (-checks a,b) never call a live
// directive stale. Stale-allow findings are themselves not
// //lint:allow-suppressible — an allow for a dead allow is two layers
// of rot — but the baseline can grandfather them.
func (s *Suite) staleAllows(allows allowIndex, relRoot string) []Finding {
	selected := false
	ran := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		ran[a.Name] = true
		if a.Name == "staleallow" {
			selected = true
		}
	}
	if !selected {
		return nil
	}
	var out []Finding
	for _, byLine := range allows {
		for _, ds := range byLine {
			for _, d := range ds {
				if d.used || !ran[d.check] {
					continue
				}
				out = append(out, Finding{
					Check:   "staleallow",
					File:    d.file,
					Line:    d.line,
					Col:     1,
					Message: fmt.Sprintf("//lint:allow %s directive suppresses nothing — the finding it was written for is gone; delete the annotation", d.check),
				})
			}
		}
	}
	return relocate(out, relRoot)
}

// relocate rewrites absolute finding paths relative to root.
func relocate(fs []Finding, root string) []Finding {
	if root == "" {
		return fs
	}
	for i := range fs {
		if rel, err := filepath.Rel(root, fs[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].File = filepath.ToSlash(rel)
		}
	}
	return fs
}
