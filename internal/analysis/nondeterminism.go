package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Nondeterminism returns the analyzer guarding bit-identical resume:
// inside the scoped packages (the ones the checkpoint config hash
// covers) all randomness must flow through internal/mathutil's
// serializable generators, seeds must not come from the wall clock,
// and ordered output must not be built while ranging over a map.
//
// Scoped packages may not import math/rand at all: *rand.Rand carries
// hidden state a checkpoint cannot capture, so even a locally seeded
// generator breaks resume(k)+(N−k) == N replay; mathutil.SplitMix is
// the serializable substitute.
func Nondeterminism(scope []string) *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "checkpoint-hashed packages must use serializable mathutil randomness, no wall-clock seeds, no map-order-dependent slice construction",
		Run: func(pass *Pass) {
			if !inScope(scope, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(imp.Pos(), "package %s imports %s; resumable training requires serializable randomness — use mathutil.SplitMix (or mathutil.NewRNG outside the checkpointed state)", pass.Pkg.Path, path)
					}
				}
				checkClockSeeds(pass, f)
				checkMapRangeOrderedWrites(pass, f)
			}
		},
	}
}

// checkClockSeeds flags RNG constructors seeded from time.Now: the
// seed becomes part of the checkpoint config hash, so it must be a
// reproducible input, never the wall clock.
func checkClockSeeds(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg.Info, call)
		if fn == nil {
			return true
		}
		seeding := isPkgFunc(fn, "fillvoid/internal/mathutil", "NewRNG") ||
			isPkgFunc(fn, "fillvoid/internal/mathutil", "NewSplitMix") ||
			isPkgFunc(fn, "math/rand", "New") ||
			isPkgFunc(fn, "math/rand", "NewSource") ||
			isPkgFunc(fn, "math/rand", "Seed") ||
			strings.Contains(fn.Name(), "Seed")
		if !seeding {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(calleeFunc(pass.Pkg.Info, inner), "time", "Now") {
					pass.Reportf(inner.Pos(), "%s seeded from time.Now: wall-clock seeds make training non-replayable; derive the seed from config", fn.Name())
					return false
				}
				return true
			})
		}
		return true
	})
}

// checkMapRangeOrderedWrites flags building ordered output (slice
// append or slice index assignment) inside a range over a map: Go's
// map iteration order is randomized per run, so the produced slice
// ordering — and anything hashed or trained from it — differs between
// runs. Collect the keys, sort, then build.
func checkMapRangeOrderedWrites(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if ok && isSliceOrArray(pass.TypeOf(ix.X)) {
						pass.Reportf(stmt.Pos(), "slice written in map-iteration order; map range order is randomized — collect and sort keys first")
					}
				}
				for _, rhs := range stmt.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(call) {
						pass.Reportf(stmt.Pos(), "append inside range over map builds a randomly ordered slice; collect and sort keys first")
					}
				}
			}
			return true
		})
		return true
	})
}
