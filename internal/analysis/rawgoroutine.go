package analysis

import "go/ast"

// RawGoroutine returns the analyzer that forbids bare `go` statements
// outside the allowed packages (internal/parallel, which implements
// the sanctioned fan-out primitives, and internal/server, whose
// listener lifecycle is inherently goroutine-shaped). A raw goroutine
// bypasses engine cancellation, worker-utilization accounting and the
// deterministic reduction order internal/parallel fixes; fan-out
// elsewhere must go through parallel.For/ForCtx/ForChunkedCtx/Fork or
// carry an audited //lint:allow rawgoroutine annotation.
func RawGoroutine(allowed []string) *Analyzer {
	return &Analyzer{
		Name: "rawgoroutine",
		Doc:  "bare `go` statements only inside internal/parallel and internal/server; everything else uses parallel.* or an audited annotation",
		Run: func(pass *Pass) {
			if inScope(allowed, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						pass.Reportf(g.Pos(), "bare goroutine bypasses engine cancellation and worker accounting; use parallel.For/ForCtx/Fork, or annotate: //lint:allow rawgoroutine: <why this fan-out is exempt>")
					}
					return true
				})
			}
		},
	}
}
