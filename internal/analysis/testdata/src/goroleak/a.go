// Package fixture exercises the goroleak check.
package fixture

import (
	"bufio"
	"time"
)

func compute() int { return 42 }

// The classic leak: the timeout branch abandons the scanner goroutine
// mid-send, parking it until process exit.
func scanWithTimeout(sc *bufio.Scanner, d time.Duration) string {
	lines := make(chan string)
	go func() { // want "parks forever on unbuffered channel"
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	select {
	case s := <-lines:
		return s
	case <-time.After(d):
		return ""
	}
}

// The fix: the goroutine's send has a quit escape, so abandonment
// unblocks it.
func scanWithQuit(sc *bufio.Scanner, d time.Duration) string {
	lines := make(chan string)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-quit:
				return
			}
		}
	}()
	select {
	case s := <-lines:
		return s
	case <-time.After(d):
		return ""
	}
}

// The parent commits to a bare receive: the send always pairs up.
func waitForResult() int {
	done := make(chan int)
	go func() {
		done <- compute()
	}()
	return <-done
}

// A buffered channel lets the send complete even when abandoned.
func bufferedResult(d time.Duration) int {
	done := make(chan int, 1)
	go func() { done <- compute() }()
	select {
	case v := <-done:
		return v
	case <-time.After(d):
		return 0
	}
}

// Interprocedural: the goroutine body is a declared function; its park
// on the channel parameter comes from the park summary.
func feed(ch chan int) {
	ch <- compute()
}

func spawnDeclared(d time.Duration) int {
	results := make(chan int)
	go feed(results) // want "parks forever on unbuffered channel"
	select {
	case v := <-results:
		return v
	case <-time.After(d):
		return 0
	}
}

// The channel escapes to another function: the other side is out of
// view, so no claim is made.
func handoff(ch chan int) {}

func escapesElsewhere(d time.Duration) int {
	results := make(chan int)
	go func() { results <- compute() }()
	handoff(results)
	select {
	case v := <-results:
		return v
	case <-time.After(d):
		return 0
	}
}

// Audited suppression silences the finding.
func allowedScan(sc *bufio.Scanner, d time.Duration) string {
	lines := make(chan string)
	//lint:allow goroleak: process-lifetime scanner; bounded at one goroutine
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	select {
	case s := <-lines:
		return s
	case <-time.After(d):
		return ""
	}
}
