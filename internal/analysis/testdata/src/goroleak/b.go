// Parent-side usage shapes: committed consumers and escaping channels
// are exempt; only abandonable goroutines are flagged.
package fixture

import "time"

// The parent ranges over the channel: a committed consumer.
func rangeConsumer() int {
	vals := make(chan int)
	go func() {
		vals <- compute()
		close(vals)
	}()
	total := 0
	for v := range vals {
		total += v
	}
	return total
}

// Aliasing the channel loses track of the other side: exempt.
func aliased(d time.Duration) int {
	ch := make(chan int)
	go func() { ch <- compute() }()
	alias := ch
	select {
	case v := <-alias:
		return v
	case <-time.After(d):
		return 0
	}
}

// Storing the channel in a struct field ships it out of view: exempt.
type holder struct{ ch chan int }

func stored(d time.Duration) *holder {
	ch := make(chan int)
	go func() { ch <- compute() }()
	h := &holder{ch: ch}
	select {
	case <-h.ch:
	case <-time.After(d):
	}
	return h
}
