// Package fixture exercises the floateq check.
package fixture

import "math"

func exactEqual(a, b float64) bool {
	return a == b // want "compares bit patterns"
}

func exactDiff(xs []float64, v float64) int {
	for i, x := range xs {
		if x != v { // want "compares bit patterns"
			return i
		}
	}
	return -1
}

// Zero sentinels are bit-exact by construction.
func zeroSentinel(w float64) bool {
	return w == 0
}

// The portable NaN test.
func isNaN(x float64) bool {
	return x != x
}

// Tolerance comparisons are the sanctioned form.
func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}
