// Package fixture exercises the ctxfirst check.
package fixture

import "context"

func ctxSecond(name string, ctx context.Context) error { // want "must come first"
	_ = name
	return ctx.Err()
}

func detached(ctx context.Context) error {
	return work(context.Background()) // want "pass the caller's ctx down"
}

func work(ctx context.Context) error {
	return ctx.Err()
}

// ctx first and threaded through: fine.
func proper(ctx context.Context, name string) error {
	_ = name
	return work(ctx)
}

// A root entry point with no inherited context may mint one.
func root() error {
	return work(context.Background())
}
