// Package fixture exercises the errdrop check.
package fixture

import (
	"bytes"
	"fmt"
	"os"
)

func bareStatement(path string) {
	f, _ := os.Open(path) // want "assigned to _"
	f.Close()             // want "discarded"
}

func deferOnWritable(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "drops the close error on a file opened for writing"
	_, err = f.Write(data)
	return err
}

// Read-only handles may defer Close: nothing is lost at close time.
func deferOnReadOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	_, err = f.Read(b[:])
	return err
}

func blankParallel() {
	_ = os.Remove("x") // want "assigned to _"
}

// Never-fail sinks and best-effort stdout printing are exempt.
func exemptSinks() string {
	var b bytes.Buffer
	b.WriteString("hello")
	fmt.Println("done")
	return b.String()
}
