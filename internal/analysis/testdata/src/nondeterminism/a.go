// Package fixture exercises the nondeterminism check.
package fixture

import (
	"math/rand" // want "imports math/rand"
	"time"
)

// Seeding an RNG from the wall clock breaks replay.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from time.Now"
}

// Ordered output built in map-iteration order differs between runs.
func mapOrdered(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	idx := make([]float64, len(m))
	i := 0
	for _, v := range m {
		out = append(out, v) // want "append inside range over map"
		idx[i] = v           // want "map-iteration order"
		i++
	}
	return append(out, idx...)
}

// Writing into another map inside a map range is order-independent.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
