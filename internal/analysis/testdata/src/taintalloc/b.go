// Propagation shapes: taint must follow Go's expression forms — and
// die at every bounding construct — exactly as documented.
package fixture

import (
	"encoding/json"
	"net/http"
	"strconv"
)

type header struct {
	Sizes []int `json:"sizes"`
}

// Compound assignment widens; a masking assignment kills.
func compound(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	total := 0
	total += n
	out := make([]byte, total) // want "make size"
	total &= 0xff
	pad := make([]byte, total)
	return append(out, pad...)
}

// Modulo by a constant bounds the value.
func modAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	n %= 64
	return make([]byte, n)
}

// min against an untainted cap bounds the value; the var-decl tuple
// carries the taint in.
func declTuple(r *http.Request) []int {
	var n, err = strconv.Atoi(r.FormValue("n"))
	if err != nil {
		return nil
	}
	bounded := min(n, 1024)
	return make([]int, bounded)
}

// Taint follows range values out of a decoded container.
func rangeAlloc(r *http.Request) [][]byte {
	var h header
	_ = json.NewDecoder(r.Body).Decode(&h)
	var out [][]byte
	for _, sz := range h.Sizes {
		out = append(out, make([]byte, sz)) // want "make size"
	}
	return out
}

// Indexing, slicing, composite literals, unary ops, type assertions
// and map lookups all carry taint.
func exprShapes(r *http.Request) []byte {
	var h header
	_ = json.NewDecoder(r.Body).Decode(&h)
	first := h.Sizes[0]
	tail := h.Sizes[1:]
	byName := map[string]int{"first": first, "rest": len(tail)}
	got, ok := byName["first"]
	if !ok {
		return nil
	}
	var boxed any = -got
	back, _ := boxed.(int)
	return make([]byte, back) // want "make size"
}

// A bounds check on a derived value also clears the root it came
// from: checking padded proves n small too.
func derivedKill(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	padded := n + 8
	if padded > 4096 {
		return nil
	}
	return make([]byte, n)
}

// Switch arms are branches: the checked arm allocates, the unchecked
// one is flagged.
func switchAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	switch r.Method {
	case http.MethodGet:
		if n > 1<<16 {
			return nil
		}
		return make([]byte, n)
	default:
		return make([]byte, n) // want "make size"
	}
}
