// Package fixture exercises the taintalloc check.
package fixture

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
)

var errBad = errors.New("bad size")

type request struct {
	Count int       `json:"count"`
	Vals  []float64 `json:"vals"`
}

// A decoded count straight into make.
func decodeAlloc(r *http.Request) []float64 {
	var req request
	_ = json.NewDecoder(r.Body).Decode(&req)
	return make([]float64, req.Count) // want "make size"
}

// Taint survives strconv.Atoi (unknown stdlib calls propagate).
func formAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	return make([]byte, n) // want "make size"
}

func repeatAlloc(r *http.Request) string {
	n, _ := strconv.Atoi(r.PathValue("n"))
	return strings.Repeat("x", n) // want "strings.Repeat count"
}

func headerAlloc(br *bufio.Reader) []uint64 {
	count, _ := binary.ReadUvarint(br)
	return make([]uint64, count) // want "make size"
}

// A comparison is the bounds check: the taint dies at the if.
func boundedAlloc(r *http.Request) ([]byte, error) {
	n, err := strconv.Atoi(r.FormValue("n"))
	if err != nil || n < 0 || n > 1<<20 {
		return nil, errBad
	}
	return make([]byte, n), nil
}

// len() of decoded data is bounded by the bytes actually received.
func echoAlloc(r *http.Request) []float64 {
	var req request
	_ = json.NewDecoder(r.Body).Decode(&req)
	out := make([]float64, len(req.Vals))
	copy(out, req.Vals)
	return out
}

// Masking by an untainted bound caps the value.
func maskedAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	return make([]byte, n&0xfff)
}

// Interprocedural source: the decode happens one call away and comes
// back through the callee's summary.
func readCount(br *bufio.Reader) int {
	v, _ := binary.ReadUvarint(br)
	return int(v)
}

func chainAlloc(br *bufio.Reader) []byte {
	n := readCount(br)
	return make([]byte, n) // want "make size"
}

// Interprocedural sink: the make lives in the callee; the raw
// parameter reaches it unchecked.
func alloc(n int) []float64 {
	return make([]float64, n)
}

func sinkInCallee(r *http.Request) []float64 {
	n, _ := strconv.Atoi(r.FormValue("n"))
	return alloc(n) // want "make size in alloc"
}

// A callee that bounds-checks its parameter sanitizes the caller's
// value.
func clamp(n int) int {
	if n < 0 {
		return 0
	}
	if n > 4096 {
		return 4096
	}
	return n
}

func clampedAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	return make([]byte, clamp(n))
}

// Audited suppression silences the finding.
func allowedAlloc(r *http.Request) []byte {
	n, _ := strconv.Atoi(r.FormValue("n"))
	//lint:allow taintalloc: scratch size is capped by MaxBytesReader upstream
	return make([]byte, n)
}
