// Package fixture exercises the lockheld check.
package fixture

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "mu held across a sleep"
	s.mu.Unlock()
}

func (s *store) sendUnderDeferredUnlock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock() // defer means held for the whole body
	ch <- 1             // want "mu held across a channel send"
}

func (s *store) recvUnderRLock(ch chan int) int {
	s.rw.RLock()
	v := <-ch // want "rw held across a channel receive"
	s.rw.RUnlock()
	return v
}

func (s *store) selectUnderLock(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "mu held across a blocking select"
	case <-a:
	case <-b:
	}
}

// Narrowed critical section: the lock is released before the send.
func (s *store) narrow(ch chan int) {
	s.mu.Lock()
	s.data["k"]++
	s.mu.Unlock()
	ch <- 1
}

// A select with a default never blocks.
func (s *store) tryDrain(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ch:
		s.data["k"]++
	default:
	}
}

// The spawn itself does not block; the goroutine's ops are not this
// flow's.
func (s *store) spawnUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go send(ch)
}

func send(ch chan int) { ch <- 1 }

// Interprocedural: the fsync is two module-local calls away, resolved
// through blocking summaries.
func (s *store) persist(f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return atomicWrite(f) // want "mu held across atomicWrite → flush → an fsync"
}

func atomicWrite(f *os.File) error { return flush(f) }

func flush(f *os.File) error { return f.Sync() }

// Dynamic dispatch: the concrete Flush fsyncs, found via the method
// set of the syncer interface.
type syncer interface{ Flush() error }

type fileSyncer struct{ f *os.File }

func (fs *fileSyncer) Flush() error { return fs.f.Sync() }

func (s *store) flushVia(sy syncer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sy.Flush() // want "via interface Flush"
}

// Audited suppression silences the finding.
func (s *store) allowedSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockheld: startup-only path; nothing contends for mu yet
	time.Sleep(time.Millisecond)
}
