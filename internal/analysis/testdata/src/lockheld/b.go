// Control-flow shapes: lock facts must survive loops, switches,
// selects and labeled branches exactly as the code executes them.
package fixture

import (
	"sync"
	"time"
)

type looper struct {
	mu sync.Mutex
}

// Lock and unlock each iteration: no fact crosses the send.
func (l *looper) perIteration(keys []string, ch chan int) {
	for i := 0; i < len(keys); i++ {
		l.mu.Lock()
		l.mu.Unlock()
		ch <- i
	}
}

// The lock is held on the loop's back edge and over the body.
func (l *looper) heldAcrossLoop(n int) {
	l.mu.Lock()
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond) // want "mu held across a sleep"
	}
	l.mu.Unlock()
}

// Labeled break and continue leave the lock released on every path.
func (l *looper) labeledBranches(keys []string, ch chan int) {
outer:
	for _, k := range keys {
		switch k {
		case "stop":
			break outer
		case "skip":
			continue outer
		default:
			l.mu.Lock()
			l.mu.Unlock()
		}
	}
	ch <- 1
}

// Type switches are branches like any other.
func (l *looper) typeSwitch(v any, ch chan int) {
	switch v.(type) {
	case int:
		l.mu.Lock()
		l.mu.Unlock()
	case string:
		return
	}
	ch <- 1
}

// Fallthrough between clauses (facts empty: the spurious clause-end →
// after edge the builder adds is harmless here).
func (l *looper) fallthroughCase(k int, ch chan int) {
	switch k {
	case 0:
		k++
		fallthrough
	case 1:
		k--
	}
	ch <- k
}

// A goto ends its block; the retry loop never holds the lock.
func (l *looper) gotoRetry(ch chan int) {
	l.mu.Lock()
	l.mu.Unlock()
retry:
	select {
	case ch <- 1:
	default:
		goto retry
	}
}
