// Package fixture exercises the spanpair check against the real
// telemetry Span type.
package fixture

import "fillvoid/internal/telemetry"

func discarded(reg *telemetry.Registry) {
	reg.StartSpan("stage") // want "span result discarded"
}

func blank(reg *telemetry.Registry) {
	_ = reg.StartSpan("stage") // want "span assigned to _"
}

func leaked(reg *telemetry.Registry) string {
	sp := reg.StartSpan("stage") // want "never ended"
	return sp.Path()
}

// Ended spans are fine, deferred or direct.
func ended(reg *telemetry.Registry) {
	sp := reg.StartSpan("stage")
	defer sp.End()
}

// A span that escapes is the receiver's responsibility.
func escapes(reg *telemetry.Registry) *telemetry.Span {
	return reg.StartSpan("stage")
}
