// Package fixture exercises the spanpair check against the real
// telemetry and trace Span types.
package fixture

import (
	"context"

	"fillvoid/internal/telemetry"
	"fillvoid/internal/trace"
)

func discarded(reg *telemetry.Registry) {
	reg.StartSpan("stage") // want "span result discarded"
}

func blank(reg *telemetry.Registry) {
	_ = reg.StartSpan("stage") // want "span assigned to _"
}

func leaked(reg *telemetry.Registry) string {
	sp := reg.StartSpan("stage") // want "never ended"
	return sp.Path()
}

// Ended spans are fine, deferred or direct.
func ended(reg *telemetry.Registry) {
	sp := reg.StartSpan("stage")
	defer sp.End()
}

// A span that escapes is the receiver's responsibility.
func escapes(reg *telemetry.Registry) *telemetry.Span {
	return reg.StartSpan("stage")
}

// trace.Start returns (ctx, span): the span element of the tuple must
// be ended even though the call's direct result is not a span.
func traceLeaked(ctx context.Context) {
	_, sp := trace.Start(ctx, "stage") // want "never ended"
	sp.SetAttr("k", "v")
}

func traceBlank(ctx context.Context) {
	_, _ = trace.Start(ctx, "stage") // want "span assigned to _"
}

func traceEnded(ctx context.Context) context.Context {
	ctx, sp := trace.Start(ctx, "stage")
	defer sp.End()
	return ctx
}

func traceChildLeaked(parent *trace.Span) {
	child := parent.StartChild("stage") // want "never ended"
	child.SetError("boom")
}

func traceChildEnded(parent *trace.Span) {
	child := parent.StartChild("stage")
	child.End()
}

func traceDiscarded(parent *trace.Span) {
	parent.StartChild("stage") // want "span result discarded"
}

// Borrow accessors return a span someone else owns; no End required.
func traceBorrowed(ctx context.Context) string {
	sp := trace.FromContext(ctx)
	amb := trace.Ambient(ctx)
	return sp.Name() + amb.Name()
}
