// Package fixture exercises //lint:allow suppression: two audited
// annotations (trailing and own-line) that must silence their
// findings, one malformed directive that must itself be reported, and
// the unsuppressed finding left behind by it.
package fixture

import "os"

func trailing() {
	os.Remove("x") //lint:allow errdrop: best-effort cleanup of a scratch file
}

func ownLine() {
	//lint:allow errdrop: best-effort cleanup of a scratch file
	os.Remove("x")
}

func malformed() {
	//lint:allow errdrop
	os.Remove("x")
}
