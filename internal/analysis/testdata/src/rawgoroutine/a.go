// Package fixture exercises the rawgoroutine check.
package fixture

func fanOut(work []func()) {
	done := make(chan struct{})
	for _, w := range work {
		w := w
		go func() { // want "bare goroutine"
			defer func() { done <- struct{}{} }()
			w()
		}()
	}
	for range work {
		<-done
	}
}

// Plain sequential code is fine.
func sequential(work []func()) {
	for _, w := range work {
		w()
	}
}
