// Package fixture exercises the staleallow check. The test suite runs
// errdrop + staleallow with a registry that also knows floateq, so all
// three directive fates appear: used, stale, and not-judged.
package fixture

import "os"

// Live: the errdrop finding on the next line is real, so the directive
// suppresses it and is not stale.
func liveAllow() {
	//lint:allow errdrop: fixture: result deliberately ignored
	os.Remove("x")
}

// Stale: the returned error means errdrop finds nothing here; the
// directive is dead weight.
func staleDirective() error {
	//lint:allow errdrop: fixed long ago // want "suppresses nothing"
	return os.Remove("x")
}

// Known to the full suite but not selected in this run: never judged
// stale, because floateq did not get a chance to match it.
func unranAllow() bool {
	//lint:allow floateq: fixture: check not selected in this run
	return 1.0 == 2.0
}
