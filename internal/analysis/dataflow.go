package analysis

import (
	"go/ast"
	"go/types"
)

// facts is the lattice element of the forward dataflow engine: a map
// from a variable to a bitmask of per-check facts (taint origin bits,
// lock-held bits). Join is pointwise OR — the may-union — so every
// transfer function built from gen (set bits) and kill (delete keys)
// is monotone and the fixpoint terminates.
type facts map[types.Object]uint64

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// joinInto ORs src into dst, reporting whether dst changed.
func (f facts) joinInto(src facts) bool {
	changed := false
	for k, v := range src {
		if old, ok := f[k]; !ok || old|v != old {
			f[k] = old | v
			changed = true
		}
	}
	return changed
}

// transferFunc mutates f in place with the effect of executing n.
type transferFunc func(n ast.Node, f facts)

// visitFunc observes the facts holding immediately BEFORE n executes.
type visitFunc func(n ast.Node, f facts)

// maxDataflowPasses bounds worklist iterations per CFG as a backstop
// against a non-monotone transfer bug; ordinary fixpoints converge in
// a handful of passes.
const maxDataflowPasses = 4096

// forward runs transfer to fixpoint over the CFG and then replays each
// block once, calling visit with the facts in force at every
// instruction. Entry starts with init (may be nil = no facts).
func (g *funcCFG) forward(init facts, transfer transferFunc, visit visitFunc) {
	in := make(map[*cfgBlock]facts, len(g.blocks))
	for _, blk := range g.blocks {
		in[blk] = make(facts)
	}
	if init != nil {
		in[g.entry].joinInto(init)
	}

	// Every block is seeded into the worklist (not just the entry):
	// a block whose out-facts happen to equal its successors' current
	// in-facts still has to run once so its own gens propagate.
	work := make([]*cfgBlock, len(g.blocks))
	copy(work, g.blocks)
	queued := make(map[*cfgBlock]bool, len(g.blocks))
	for _, blk := range g.blocks {
		queued[blk] = true
	}
	for passes := 0; len(work) > 0 && passes < maxDataflowPasses; passes++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := in[blk].clone()
		for _, n := range blk.nodes {
			transfer(n, out)
		}
		for _, succ := range blk.succs {
			if in[succ].joinInto(out) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}

	if visit == nil {
		return
	}
	for _, blk := range g.blocks {
		f := in[blk].clone()
		for _, n := range blk.nodes {
			visit(n, f)
			transfer(n, f)
		}
	}
}

// rootObj resolves the variable a fact should attach to: the object of
// a plain identifier, or of the RIGHTMOST selector field for
// `m.mu`-style expressions (facts key on the field, so two receivers'
// locks of the same field conflate — acceptable for a lint, methods
// rarely juggle two instances' locks). Index/star/paren expressions
// unwrap to their base.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(x); obj != nil {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			if obj := info.ObjectOf(x.Sel); obj != nil {
				return obj
			}
			return nil
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identsIn collects the object of every identifier mentioned in expr
// (including through selectors), for gen/kill sets that need "any
// variable this expression reads".
func identsIn(info *types.Info, expr ast.Expr, visit func(types.Object)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				visit(obj)
			}
		}
		return true
	})
}
