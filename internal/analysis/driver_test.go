package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{Check: "errdrop", File: "internal/x/x.go", Line: 12, Col: 3, Message: "dropped"}
	want := "internal/x/x.go:12:3: [errdrop] dropped"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestSuiteSelect(t *testing.T) {
	full := DefaultSuite()

	sub, err := full.Select([]string{"errdrop", "lockheld"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sub.Names(), ","); got != "errdrop,lockheld" {
		t.Fatalf("selected %q", got)
	}
	// The sub-suite keeps the full registry, so //lint:allow directives
	// for unselected checks stay valid in partial runs.
	if got, want := len(sub.knownChecks()), len(full.Names()); got != want {
		t.Fatalf("registry has %d checks, want %d", got, want)
	}

	if _, err := full.Select([]string{"nosuchcheck"}); err == nil {
		t.Fatal("unknown check did not error")
	}
	if _, err := full.Select([]string{" ", ""}); err == nil {
		t.Fatal("empty selection did not error")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []Finding{
		{Check: "errdrop", File: "a.go", Line: 3, Col: 1, Message: "dropped"},
		{Check: "errdrop", File: "a.go", Line: 9, Col: 1, Message: "dropped"},
		{Check: "floateq", File: "b.go", Line: 5, Col: 2, Message: "compared"},
	}
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (duplicates merged)", len(bl.Entries))
	}

	// The two a.go findings are grandfathered; the b.go entry matches
	// nothing (stale); a new finding passes through.
	current := []Finding{
		findings[0], findings[1],
		{Check: "ctxfirst", File: "c.go", Line: 1, Col: 1, Message: "ctx last"},
	}
	fresh, grandfathered, stale := bl.Filter(current)
	if len(fresh) != 1 || fresh[0].Check != "ctxfirst" {
		t.Fatalf("fresh = %v", fresh)
	}
	if grandfathered != 2 {
		t.Fatalf("grandfathered = %d, want 2", grandfathered)
	}
	if len(stale) != 1 || stale[0].File != "b.go" {
		t.Fatalf("stale = %v", stale)
	}

	// A missing file is an empty baseline, not an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(empty.Entries) != 0 {
		t.Fatalf("missing baseline: %v, %v", empty, err)
	}
}

func TestWriteSARIF(t *testing.T) {
	suite := DefaultSuite()
	findings := []Finding{
		{Check: "lockheld", File: "internal/jobs/jobs.go", Line: 42, Col: 7, Message: "mu held across an fsync"},
		{Check: "lint", File: "internal/x/x.go", Line: 0, Col: 0, Message: "malformed annotation"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, suite, findings); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, runs %d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "fillvoid-lint" {
		t.Fatalf("driver name %q", run.Tool.Driver.Name)
	}
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, want := range append(suite.Names(), "lint") {
		if !rules[want] {
			t.Errorf("rule %q missing from driver", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "lockheld" ||
		first.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/jobs/jobs.go" ||
		first.Locations[0].PhysicalLocation.Region.StartLine != 42 {
		t.Fatalf("first result mangled: %+v", first)
	}
	// Line 0 findings are clamped to SARIF's 1-based minimum.
	if got := run.Results[1].Locations[0].PhysicalLocation.Region.StartLine; got != 1 {
		t.Fatalf("line-0 finding emitted startLine %d, want 1", got)
	}
}
