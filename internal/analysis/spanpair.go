package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair returns the analyzer that pairs telemetry span begins with
// ends: every call producing a *telemetry.Span (StartSpan, Child, and
// anything added later with that result type) must either have its
// End called — directly or deferred — somewhere in the enclosing
// declaration, or visibly escape (returned, passed to another
// function, stored in a struct), in which case the receiver owns the
// End. A span whose result is discarded on the spot can never be
// ended and always leaks an open stage timer.
//
// spanPkg is the package path defining the Span type
// (fillvoid/internal/telemetry for the real suite; fixtures substitute
// their own).
func SpanPair(spanPkg string) *Analyzer {
	return &Analyzer{
		Name: "spanpair",
		Doc:  "every telemetry span begin has a matching End (or visibly escapes to an owner)",
		Run: func(pass *Pass) {
			// The defining package itself constructs spans internally.
			if pass.Pkg.Path == spanPkg {
				return
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					checkSpansInBody(pass, spanPkg, name, body)
				})
			}
		},
	}
}

// checkSpansInBody inspects one declaration body (closures included)
// for span-producing calls and verifies each is ended or escapes.
func checkSpansInBody(pass *Pass, spanPkg, funcName string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	isSpanCall := func(call *ast.CallExpr) bool {
		t := pass.TypeOf(call)
		return t != nil && isNamedType(t, spanPkg, "Span")
	}

	// First pass: collect objects that have End called on them and
	// objects that escape (used outside a start/End/Child position).
	ended := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(node.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !isNamedType(obj.Type(), spanPkg, "Span") {
				return true
			}
			switch node.Sel.Name {
			case "End":
				ended[obj] = true
			case "Child", "Path":
				// Reading from the span keeps it open; neither ends
				// nor transfers ownership.
			default:
				escaped[obj] = true
			}
		case *ast.Ident:
			// A bare (non-selector) use of a span variable — argument,
			// return value, composite literal, assignment RHS — hands
			// it to someone else; that owner is responsible for End.
			obj := info.Uses[node]
			if obj != nil && isNamedType(obj.Type(), spanPkg, "Span") {
				if !partOfSelector(body, node) {
					escaped[obj] = true
				}
			}
		}
		return true
	})

	// Second pass: every span-producing call must land in an ended or
	// escaped variable, or be ended/consumed directly.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok && isSpanCall(call) {
				pass.Reportf(call.Pos(), "span result discarded in %s; it can never be ended — assign it and call End (or defer it)", funcName)
				return false // the call itself needs no further inspection
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanCall(call) {
					continue
				}
				if len(node.Lhs) != len(node.Rhs) {
					continue // multi-value form cannot produce a span
				}
				id, ok := ast.Unparen(node.Lhs[i]).(*ast.Ident)
				if !ok {
					continue // stored into a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span assigned to _ in %s; it can never be ended", funcName)
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !ended[obj] && !escaped[obj] {
					pass.Reportf(call.Pos(), "span %s started in %s but never ended; call %s.End() on every path (defer works)", id.Name, funcName, id.Name)
				}
			}
		}
		return true
	})
}

// partOfSelector reports whether id occurs as the X of a selector
// expression somewhere in body (sp.End, sp.Child, ...), in which case
// the selector case above already classified the use.
func partOfSelector(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if inner, ok := ast.Unparen(sel.X).(*ast.Ident); ok && inner == id {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
