package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair returns the analyzer that pairs span begins with ends:
// every call producing a Span from one of the given packages
// (telemetry.StartSpan/Child, trace.Start/StartChild, and anything
// added later with that result type) must either have its End called —
// directly or deferred — somewhere in the enclosing declaration, or
// visibly escape (returned, passed to another function, stored in a
// struct), in which case the receiver owns the End. A span whose
// result is discarded on the spot can never be ended and always leaks
// an open stage timer. Calls returning a span inside a tuple, like
// trace.Start's (ctx, span), are checked on the span element.
//
// Accessors that borrow an already-open span rather than starting one
// (trace.FromContext, trace.Ambient) are exempt: their caller observes
// a span someone else owns and must NOT end it.
//
// spanPkgs are the package paths defining a Span type
// (fillvoid/internal/telemetry and fillvoid/internal/trace for the
// real suite; fixtures substitute their own).
func SpanPair(spanPkgs ...string) *Analyzer {
	return &Analyzer{
		Name: "spanpair",
		Doc:  "every span begin has a matching End (or visibly escapes to an owner)",
		Run: func(pass *Pass) {
			// The defining packages themselves construct spans internally.
			for _, p := range spanPkgs {
				if pass.Pkg.Path == p {
					return
				}
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					checkSpansInBody(pass, spanPkgs, name, body)
				})
			}
		},
	}
}

// checkSpansInBody inspects one declaration body (closures included)
// for span-producing calls and verifies each is ended or escapes.
func checkSpansInBody(pass *Pass, spanPkgs []string, funcName string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	isSpanType := func(t types.Type) bool {
		for _, p := range spanPkgs {
			if isNamedType(t, p, "Span") {
				return true
			}
		}
		return false
	}

	// borrowsSpan reports whether the call merely retrieves an existing
	// span (owned and ended elsewhere) instead of starting a new one.
	borrowsSpan := func(call *ast.CallExpr) bool {
		var name string
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		return name == "FromContext" || name == "Ambient"
	}

	// spanResultIndex locates the span element in a call's results:
	// (index, result count), index -1 when the call produces no span.
	spanResultIndex := func(call *ast.CallExpr) (idx, nres int) {
		if borrowsSpan(call) {
			return -1, 0
		}
		t := pass.TypeOf(call)
		if t == nil {
			return -1, 0
		}
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				if isSpanType(tup.At(i).Type()) {
					return i, tup.Len()
				}
			}
			return -1, tup.Len()
		}
		if isSpanType(t) {
			return 0, 1
		}
		return -1, 1
	}

	// First pass: collect objects that have End called on them and
	// objects that escape (used outside a start/End/Child position).
	ended := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(node.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !isSpanType(obj.Type()) {
				return true
			}
			switch node.Sel.Name {
			case "End":
				ended[obj] = true
			case "Child", "Path", "StartChild", "SetAttr", "SetError", "TraceID", "ID", "Name":
				// Reading from or annotating the span keeps it open;
				// neither ends nor transfers ownership. (StartChild's
				// result is itself a span the second pass checks.)
			default:
				escaped[obj] = true
			}
		case *ast.Ident:
			// A bare (non-selector) use of a span variable — argument,
			// return value, composite literal, assignment RHS — hands
			// it to someone else; that owner is responsible for End.
			obj := info.Uses[node]
			if obj != nil && isSpanType(obj.Type()) {
				if !partOfSelector(body, node) {
					escaped[obj] = true
				}
			}
		}
		return true
	})

	// Second pass: every span-producing call must land in an ended or
	// escaped variable, or be ended/consumed directly.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok {
				if idx, _ := spanResultIndex(call); idx >= 0 {
					pass.Reportf(call.Pos(), "span result discarded in %s; it can never be ended — assign it and call End (or defer it)", funcName)
					return false // the call itself needs no further inspection
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				idx, nres := spanResultIndex(call)
				if idx < 0 {
					continue
				}
				// Resolve which LHS expression receives the span: 1:1
				// assignment, or the span element of a tuple-returning
				// call like trace.Start's (ctx, span).
				var lhs ast.Expr
				switch {
				case len(node.Lhs) == len(node.Rhs):
					if nres != 1 {
						continue
					}
					lhs = node.Lhs[i]
				case len(node.Rhs) == 1 && len(node.Lhs) == nres:
					lhs = node.Lhs[idx]
				default:
					continue
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue // stored into a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span assigned to _ in %s; it can never be ended", funcName)
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !ended[obj] && !escaped[obj] {
					pass.Reportf(call.Pos(), "span %s started in %s but never ended; call %s.End() on every path (defer works)", id.Name, funcName, id.Name)
				}
			}
		}
		return true
	})
}

// partOfSelector reports whether id occurs as the X of a selector
// expression somewhere in body (sp.End, sp.Child, ...), in which case
// the selector case above already classified the use.
func partOfSelector(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if inner, ok := ast.Unparen(sel.X).(*ast.Ident); ok && inner == id {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
