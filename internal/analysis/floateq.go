package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq returns the analyzer forbidding ==/!= between floating-point
// values in the scoped numeric packages. Accumulated rounding makes
// float equality order- and optimization-dependent, which is exactly
// what the engine's fixed reduction order exists to control; quality
// comparisons belong behind a tolerance.
//
// Two comparisons stay legal without annotation because they are
// bit-exact by construction:
//
//   - comparison against a constant zero (the pervasive "was this
//     distance/weight ever set" sentinel — ±0 is exactly
//     representable and never the result of rounding drift in the
//     guarded uses)
//   - x != x / x == x on a single identifier (the portable NaN test)
//
// Everything else needs a tolerance or an audited
// //lint:allow floateq annotation naming the bit-exactness invariant.
func FloatEq(scope []string) *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "no ==/!= on floats in numeric packages, except zero sentinels and x!=x NaN tests",
		Run: func(pass *Pass) {
			if !inScope(scope, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					bin, ok := n.(*ast.BinaryExpr)
					if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
						return true
					}
					if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
						return true
					}
					if isConstZero(pass, bin.X) || isConstZero(pass, bin.Y) {
						return true
					}
					if isSameIdent(bin.X, bin.Y) {
						return true // NaN test
					}
					pass.Reportf(bin.OpPos, "%s on floating point compares bit patterns, not values; use a tolerance (math.Abs(a-b) <= eps) or annotate the bit-exactness invariant", bin.Op)
					return true
				})
			}
		},
	}
}

// isConstZero reports whether expr is a compile-time constant equal to
// zero.
func isConstZero(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isSameIdent reports whether both expressions are the same single
// identifier (the x != x NaN idiom).
func isSameIdent(a, b ast.Expr) bool {
	ia, ok1 := ast.Unparen(a).(*ast.Ident)
	ib, ok2 := ast.Unparen(b).(*ast.Ident)
	return ok1 && ok2 && ia.Name == ib.Name
}
