package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak reports goroutines that can park forever on an unbuffered
// channel: the goroutine's only exit is a bare send or receive on a
// channel made in the spawning function, and the spawning side either
// never touches the channel or only touches it inside a select that
// can abandon it (a deadline/ctx.Done branch). The classic shape is a
// scanner goroutine feeding `lines <- sc.Text()` while the parent
// selects between the line and a timeout — once the timeout fires the
// goroutine is parked until process exit.
//
// A goroutine is exempt when its channel op sits in a select with a
// second case or a default (it has an escape), when the parent's use
// is an unconditional bare send/receive or a range (a committed
// counterpart), or when the channel escapes to another function, since
// then the other side is out of view. Bodies spawned via `go f(ch)`
// resolve through a per-function park summary, so the two-hop spawn of
// a declared worker is seen too. parallel.Fork's closure arguments are
// goroutine bodies.
func GoroLeak(scope []string) *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "no goroutine whose only exit is a bare unbuffered-channel op the spawner can abandon",
		Run: func(pass *Pass) {
			if !inScope(scope, pass.Pkg.Path) {
				return
			}
			for _, f := range pass.Pkg.Files {
				funcBodies(f, func(name string, body *ast.BlockStmt) {
					checkGoroLeak(pass, name, body)
				})
			}
		},
	}
}

// parkSummary marks which channel-typed parameters a function
// bare-sends or bare-receives on (its goroutine-exit channels when
// spawned via `go f(ch)`).
type parkSummary struct {
	parks []bool
}

// parkSummaryOf computes (and caches) the park summary of a
// module-local function.
func (p *Program) parkSummaryOf(fn *types.Func) *parkSummary {
	if s, ok := p.parkSums[fn]; ok {
		return s
	}
	empty := &parkSummary{}
	d, ok := p.declOf(fn)
	if !ok || p.parkActive[fn] {
		return empty
	}
	p.parkActive[fn] = true
	defer delete(p.parkActive, fn)

	var params []types.Object
	for _, field := range d.decl.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, d.pkg.Info.ObjectOf(name))
		}
		if len(field.Names) == 0 {
			params = append(params, nil)
		}
	}
	s := &parkSummary{parks: make([]bool, len(params))}
	sel := selectOps(d.decl.Body)
	for i, obj := range params {
		if obj == nil {
			continue
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			continue
		}
		if pos := parkSiteOn(d.pkg.Info, d.decl.Body, obj, sel); pos != token.NoPos {
			s.parks[i] = true
		}
	}
	p.parkSums[fn] = s
	return s
}

// selectUse describes the select a channel op sits in.
type selectUse struct {
	cases      int
	hasDefault bool
}

// selectOps maps every send/receive that is a select comm operation to
// its select's shape.
func selectOps(body ast.Node) map[ast.Node]selectUse {
	out := make(map[ast.Node]selectUse)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		use := selectUse{}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				use.hasDefault = true
			} else {
				use.cases++
			}
		}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.SendStmt:
					out[x] = use
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						out[x] = use
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// parkSiteOn returns the position of a bare send/receive on ch inside
// body — an op outside any select, or inside a single-case select with
// no default (same thing: no escape). Nested function literals and
// go statements are someone else's goroutine.
func parkSiteOn(info *types.Info, body ast.Node, ch types.Object, sel map[ast.Node]selectUse) token.Pos {
	pos := token.NoPos
	bare := func(n ast.Node) bool {
		u, ok := sel[n]
		return !ok || (u.cases == 1 && !u.hasDefault)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			if n != body {
				return false
			}
		case *ast.SendStmt:
			if rootObj(info, x.Chan) == ch && bare(x) {
				pos = x.Arrow
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && rootObj(info, x.X) == ch && bare(x) {
				pos = x.OpPos
			}
		}
		return true
	})
	return pos
}

// chanUsage aggregates how the spawning function treats one channel.
type chanUsage struct {
	parentSafe bool // unconditional bare send/recv or range: a committed counterpart
	escapes    bool // passed/stored/returned beyond this function's view
}

func checkGoroLeak(pass *Pass, fname string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Unbuffered channels made directly in this function.
	unbuffered := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isUnbufferedMake(info, rhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					unbuffered[obj] = true
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}

	// Goroutine bodies spawned here: `go func(){...}()`, parallel.Fork
	// closures, and (via park summaries) `go f(ch)`.
	type spawn struct {
		pos  token.Pos
		lit  *ast.FuncLit // nil when resolved through a summary
		fn   *types.Func
		call *ast.CallExpr
	}
	var spawns []spawn
	goroLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				spawns = append(spawns, spawn{pos: x.Pos(), lit: lit})
				goroLits[lit] = true
			} else if fn := calleeFunc(info, x.Call); fn != nil {
				spawns = append(spawns, spawn{pos: x.Pos(), fn: fn, call: x.Call})
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); isPkgFunc(fn, "fillvoid/internal/parallel", "Fork") {
				for _, arg := range x.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						spawns = append(spawns, spawn{pos: x.Pos(), lit: lit})
						goroLits[lit] = true
					}
				}
			}
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}

	sel := selectOps(body)
	usage := classifyParentUses(info, body, unbuffered, goroLits, sel)

	for ch := range unbuffered {
		u := usage[ch]
		if u.parentSafe || u.escapes {
			continue
		}
		for _, sp := range spawns {
			parked := token.NoPos
			if sp.lit != nil {
				parked = parkSiteOn(info, sp.lit.Body, ch, sel)
			} else if sp.fn != nil && pass.Prog.moduleFunc(sp.fn) {
				sum := pass.Prog.parkSummaryOf(sp.fn)
				for i, parks := range sum.parks {
					if parks && i < len(sp.call.Args) && rootObj(info, sp.call.Args[i]) == ch {
						parked = sp.pos
						break
					}
				}
			}
			if parked != token.NoPos {
				pass.Reportf(sp.pos, "goroutine in %s parks forever on unbuffered channel %q if the spawner abandons it; give the channel op a select escape (quit/ctx.Done) or buffer the channel", fname, ch.Name())
				break
			}
		}
	}
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if t := info.TypeOf(call.Args[0]); t == nil {
		return false
	} else if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv, ok := info.Types[call.Args[1]]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

// classifyParentUses walks the spawning function (goroutine bodies
// excluded) and records, per channel, whether the parent commits to a
// bare op / range (safe) or lets the channel escape. Select uses with
// an alternative branch count as neither: they are the abandonment
// risk the check exists for.
func classifyParentUses(info *types.Info, body *ast.BlockStmt, chans map[types.Object]bool, goroLits map[*ast.FuncLit]bool, sel map[ast.Node]selectUse) map[types.Object]*chanUsage {
	usage := make(map[types.Object]*chanUsage, len(chans))
	for ch := range chans {
		usage[ch] = &chanUsage{}
	}
	chanOf := func(e ast.Expr) *chanUsage {
		if obj := rootObj(info, e); obj != nil && chans[obj] {
			return usage[obj]
		}
		return nil
	}
	bare := func(n ast.Node) bool {
		u, ok := sel[n]
		return !ok || (u.cases == 1 && !u.hasDefault)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if goroLits[x] {
				return false
			}
		case *ast.GoStmt:
			// `go f(ch)` args are the spawn, not an escape; handled via
			// park summaries.
			return false
		case *ast.SendStmt:
			if u := chanOf(x.Chan); u != nil && bare(x) {
				u.parentSafe = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if u := chanOf(x.X); u != nil && bare(x) {
					u.parentSafe = true
				}
			}
		case *ast.RangeStmt:
			if u := chanOf(x.X); u != nil {
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						u.parentSafe = true
					}
				}
			}
		case *ast.CallExpr:
			// Passing the channel anywhere except close/len/cap loses
			// track of the other side.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			for _, arg := range x.Args {
				if u := chanOf(arg); u != nil {
					u.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if u := chanOf(res); u != nil {
					u.escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if u := chanOf(id); u != nil {
						u.escapes = true // aliased: the alias's uses are not tracked
					}
				}
			}
			for _, lhs := range x.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					if u := chanOf(lhs); u != nil {
						u.escapes = true // stored into a field/element
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if u := chanOf(id); u != nil {
						u.escapes = true
					}
				}
			}
		}
		return true
	})
	return usage
}
