package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package import path ("fillvoid/internal/nn"), or a
	// synthetic path for fixture packages loaded with LoadDir.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks the module's packages using
// only the standard library: module-local imports are resolved against
// the loader's own package set, everything else (the standard library)
// falls back to go/importer's source importer, which type-checks
// dependencies from GOROOT source. No `go list` subprocess, no
// external packages.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod ("fillvoid").
	ModulePath string
	Fset       *token.FileSet

	pkgs     map[string]*Package
	loading  map[string]bool
	fallback types.ImporterFrom
}

// NewLoader returns a loader rooted at moduleRoot (the directory that
// holds go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	fb, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		fallback:   fb,
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadAll discovers every package directory under the module root
// (skipping testdata, hidden and underscore directories) and loads each
// one, returning the packages sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoSources(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory under the
// synthetic import path asPath. Module-local imports inside it resolve
// against the loader's module. Used by the golden fixture tests.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(asPath, abs)
}

// hasGoSources reports whether dir directly contains at least one
// non-test .go file.
func hasGoSources(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if isAnalyzableFile(e) {
			return true, nil
		}
	}
	return false, nil
}

// isAnalyzableFile reports whether a directory entry is a non-test Go
// source file. Test files are excluded from analysis by design: the
// checks guard production invariants, and tests legitimately spawn raw
// goroutines, compare floats bit-exactly and drop errors on fixtures.
func isAnalyzableFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() &&
		strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks the package in dir under import path
// path, memoized by path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !isAnalyzableFile(e) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", full, err)
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: &loaderImporter{l: l}}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ignoredByBuildTag reports whether a file opts out of ordinary builds
// with a `//go:build ignore`-style constraint (helper scripts).
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// loaderImporter resolves module-local import paths to the loader's
// own packages and delegates everything else to the source importer.
type loaderImporter struct {
	l *Loader
}

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, i.l.ModuleRoot, 0)
}

func (i *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	mp := i.l.ModulePath
	if path == mp || strings.HasPrefix(path, mp+"/") {
		sub := filepath.Join(i.l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, mp), "/")))
		pkg, err := i.l.load(path, sub)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return i.l.fallback.ImportFrom(path, dir, mode)
}
