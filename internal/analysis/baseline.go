package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry grandfathers Count findings matching (Check, File,
// Message). Line numbers are deliberately not part of the key so that
// unrelated edits shifting a file do not invalidate the baseline;
// moving a grandfathered violation to a new file or changing what it
// does resurfaces it.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// Baseline is the committed set of grandfathered findings.
type Baseline struct {
	// Comment documents the file's purpose for people opening it.
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is not an error:
// it returns an empty baseline, so a repo without grandfathered
// findings needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(b, &bl); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &bl, nil
}

// WriteBaseline writes the findings as a baseline file, merging
// duplicates into counts and sorting for a stable diff.
func WriteBaseline(path string, findings []Finding) error {
	counts := make(map[[3]string]int)
	for _, f := range findings {
		counts[[3]string{f.Check, f.File, f.Message}]++
	}
	bl := Baseline{
		Comment: "grandfathered fillvoid-lint findings; fix and shrink, never grow (see README \"Static analysis\")",
	}
	for k, n := range counts {
		bl.Entries = append(bl.Entries, BaselineEntry{Check: k[0], File: k[1], Message: k[2], Count: n})
	}
	sort.Slice(bl.Entries, func(i, j int) bool {
		a, b := bl.Entries[i], bl.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	out, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Filter splits findings into new ones and grandfathered ones, and
// also returns baseline entries that matched nothing (stale — the
// grandfathered finding was fixed and the entry should be deleted).
func (bl *Baseline) Filter(findings []Finding) (fresh []Finding, grandfathered int, stale []BaselineEntry) {
	remaining := make(map[[3]string]int, len(bl.Entries))
	for _, e := range bl.Entries {
		remaining[[3]string{e.Check, e.File, e.Message}] += e.Count
	}
	for _, f := range findings {
		k := [3]string{f.Check, f.File, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			grandfathered++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range bl.Entries {
		k := [3]string{e.Check, e.File, e.Message}
		if remaining[k] > 0 {
			e.Count = remaining[k]
			remaining[k] = 0
			stale = append(stale, e)
		}
	}
	return fresh, grandfathered, stale
}
