package vtk

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
)

func testVolume() *grid.Volume {
	gen := datasets.NewIsabel(4)
	return datasets.Volume(gen, 8, 6, 4, 2)
}

func TestVTIRoundTrip(t *testing.T) {
	v := testVolume()
	var buf bytes.Buffer
	if err := WriteVTI(&buf, v, "pressure"); err != nil {
		t.Fatal(err)
	}
	got, name, err := ReadVTI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "pressure" {
		t.Fatalf("name %q", name)
	}
	if !got.SameGeometry(v) {
		t.Fatalf("geometry: %+v vs %+v", got, v)
	}
	for i := range v.Data {
		if v.Data[i] != got.Data[i] {
			t.Fatalf("data mismatch at %d: %g vs %g", i, v.Data[i], got.Data[i])
		}
	}
}

func TestVTIFileRoundTrip(t *testing.T) {
	v := testVolume()
	path := filepath.Join(t.TempDir(), "vol.vti")
	if err := WriteVTIFile(path, v, "p"); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadVTIFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if grid.MaxAbsDiff(v, got) != 0 {
		t.Fatal("file round trip lost data")
	}
}

func TestVTIRejectsGarbage(t *testing.T) {
	if _, _, err := ReadVTI(strings.NewReader("<xml>nope</xml>")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, _, err := ReadVTI(strings.NewReader(`<VTKFile type="PolyData"></VTKFile>`)); err == nil {
		t.Fatal("accepted wrong type")
	}
}

func TestVTIXMLEscaping(t *testing.T) {
	v := grid.New(2, 2, 2)
	var buf bytes.Buffer
	if err := WriteVTI(&buf, v, `weird "<name>" & stuff`); err != nil {
		t.Fatal(err)
	}
	_, name, err := ReadVTI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != `weird "<name>" & stuff` {
		t.Fatalf("name %q", name)
	}
}

func TestVTPRoundTrip(t *testing.T) {
	c := pointcloud.New("density", 3)
	c.Add(mathutil.Vec3{X: 1.5, Y: -2, Z: 0.25}, 42)
	c.Add(mathutil.Vec3{X: 0, Y: 0, Z: 0}, -1e-9)
	c.Add(mathutil.Vec3{X: 1e6, Y: 2e-7, Z: 3}, math.Pi)
	var buf bytes.Buffer
	if err := WriteVTP(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "density" || got.Len() != 3 {
		t.Fatalf("meta: %q %d", got.Name, got.Len())
	}
	for i := range c.Points {
		if c.Points[i] != got.Points[i] || c.Values[i] != got.Values[i] {
			t.Fatalf("point %d mismatch", i)
		}
	}
}

func TestVTPFileRoundTrip(t *testing.T) {
	c := pointcloud.New("f", 1)
	c.Add(mathutil.Vec3{X: 1, Y: 2, Z: 3}, 9)
	path := filepath.Join(t.TempDir(), "pts.vtp")
	if err := WriteVTPFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVTPFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Values[0] != 9 {
		t.Fatal("file round trip lost data")
	}
}

func TestVTPRejectsGarbage(t *testing.T) {
	if _, err := ReadVTP(strings.NewReader("junk")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadVTP(strings.NewReader(`<VTKFile type="ImageData"></VTKFile>`)); err == nil {
		t.Fatal("accepted wrong type")
	}
}

func TestRenderPGM(t *testing.T) {
	v := testVolume()
	var buf bytes.Buffer
	if err := RenderSlicePGM(&buf, v, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n8 6\n255\n")) {
		t.Fatalf("header: %q", b[:16])
	}
	want := len("P5\n8 6\n255\n") + 8*6
	if len(b) != want {
		t.Fatalf("size %d want %d", len(b), want)
	}
}

func TestRenderPPM(t *testing.T) {
	v := testVolume()
	var buf bytes.Buffer
	if err := RenderSlicePPM(&buf, v, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P6\n8 6\n255\n")) {
		t.Fatalf("header: %q", b[:16])
	}
	want := len("P6\n8 6\n255\n") + 8*6*3
	if len(b) != want {
		t.Fatalf("size %d want %d", len(b), want)
	}
}

func TestRenderPPMFile(t *testing.T) {
	v := testVolume()
	path := filepath.Join(t.TempDir(), "slice.ppm")
	if err := RenderSlicePPMFile(path, v, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRenderConstantSlice(t *testing.T) {
	v := grid.New(4, 4, 1) // all zeros: lo == hi auto-range
	var buf bytes.Buffer
	if err := RenderSlicePGM(&buf, v, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDivergingColormapEndpoints(t *testing.T) {
	r, g, b := divergingColor(0)
	if r != 0 || g != 0 || b != 255 {
		t.Fatalf("t=0: %d %d %d", r, g, b)
	}
	r, g, b = divergingColor(1)
	if r != 255 || g != 0 || b != 0 {
		t.Fatalf("t=1: %d %d %d", r, g, b)
	}
	r, g, b = divergingColor(0.5)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("t=0.5: %d %d %d", r, g, b)
	}
}

func TestVTIRejectsWrongValueCount(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">
  <ImageData WholeExtent="0 1 0 1 0 0" Origin="0 0 0" Spacing="1 1 1">
    <Piece Extent="0 1 0 1 0 0">
      <PointData Scalars="f">
        <DataArray type="Float64" Name="f" format="ascii">
1 2 3
        </DataArray>
      </PointData>
    </Piece>
  </ImageData>
</VTKFile>`
	if _, _, err := ReadVTI(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted 3 values for a 4-point grid")
	}
}

func TestVTIRejectsBinaryFormat(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">
  <ImageData WholeExtent="0 1 0 0 0 0" Origin="0 0 0" Spacing="1 1 1">
    <Piece Extent="0 1 0 0 0 0">
      <PointData Scalars="f">
        <DataArray type="Float64" Name="f" format="binary">AAAA</DataArray>
      </PointData>
    </Piece>
  </ImageData>
</VTKFile>`
	if _, _, err := ReadVTI(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted unsupported binary format")
	}
}

func TestVTIRejectsMalformedExtent(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">
  <ImageData WholeExtent="0 1 0 1" Origin="0 0 0" Spacing="1 1 1">
    <Piece Extent="0 1 0 1"><PointData><DataArray format="ascii">1</DataArray></PointData></Piece>
  </ImageData>
</VTKFile>`
	if _, _, err := ReadVTI(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted 4-field extent")
	}
}

func TestVTPRejectsRaggedCoordinates(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<VTKFile type="PolyData" version="0.1" byte_order="LittleEndian">
  <PolyData>
    <Piece NumberOfPoints="2">
      <PointData Scalars="f">
        <DataArray type="Float64" Name="f" format="ascii">1 2</DataArray>
      </PointData>
      <Points>
        <DataArray type="Float64" Name="Points" NumberOfComponents="3" format="ascii">
0 0 0 1 1
        </DataArray>
      </Points>
    </Piece>
  </PolyData>
</VTKFile>`
	if _, err := ReadVTP(strings.NewReader(doc)); err == nil {
		t.Fatal("accepted coordinate count not divisible by 3")
	}
}

func TestReadForeignVTI(t *testing.T) {
	// A hand-authored file with Float32 type and irregular whitespace
	// still parses (the reader is tolerant of value types).
	const doc = `<?xml version="1.0"?>
<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">
  <ImageData WholeExtent="0 1 0 1 0 1" Origin="1 2 3" Spacing="0.5 0.5 2">
    <Piece Extent="0 1 0 1 0 1">
      <PointData Scalars="density">
        <DataArray type="Float32" Name="density" format="ascii">
   1.5 2.5
 3.5   4.5
5.5 6.5 7.5 8.5
        </DataArray>
      </PointData>
    </Piece>
  </ImageData>
</VTKFile>`
	v, name, err := ReadVTI(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if name != "density" || v.NX != 2 || v.NY != 2 || v.NZ != 2 {
		t.Fatalf("parsed %q %dx%dx%d", name, v.NX, v.NY, v.NZ)
	}
	if v.Origin.X != 1 || v.Spacing.Z != 2 {
		t.Fatalf("geometry %+v %+v", v.Origin, v.Spacing)
	}
	if v.Data[7] != 8.5 {
		t.Fatalf("data %v", v.Data)
	}
}
