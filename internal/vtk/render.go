package vtk

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
)

func decodeXML(r io.Reader, v any) error {
	return xml.NewDecoder(r).Decode(v)
}

// RenderSlicePGM writes the k-th z-plane of a volume as an 8-bit binary
// PGM image, mapping [lo, hi] linearly to [0, 255]. Pass lo == hi to
// auto-scale to the slice's own range. This is how the Fig 2/3-style
// qualitative comparisons are produced without any imaging dependency.
func RenderSlicePGM(w io.Writer, v *grid.Volume, k int, lo, hi float64) error {
	slice := v.SliceZ(k)
	if lo == hi {
		lo, hi = sliceRange(slice)
	}
	if hi == lo {
		hi = lo + 1
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", v.NX, v.NY)
	for j := v.NY - 1; j >= 0; j-- { // image rows top-down = +y up
		for i := 0; i < v.NX; i++ {
			t := mathutil.Clamp((slice[j][i]-lo)/(hi-lo), 0, 1)
			if err := bw.WriteByte(byte(t*255 + 0.5)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RenderSlicePPM writes the k-th z-plane as a binary PPM using a
// blue-white-red diverging colormap centred on the middle of [lo, hi];
// high-gradient features (hurricane eye, flame sheet, ionization shell)
// read much better in color.
func RenderSlicePPM(w io.Writer, v *grid.Volume, k int, lo, hi float64) error {
	slice := v.SliceZ(k)
	if lo == hi {
		lo, hi = sliceRange(slice)
	}
	if hi == lo {
		hi = lo + 1
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", v.NX, v.NY)
	for j := v.NY - 1; j >= 0; j-- {
		for i := 0; i < v.NX; i++ {
			t := mathutil.Clamp((slice[j][i]-lo)/(hi-lo), 0, 1)
			r, g, b := divergingColor(t)
			if _, err := bw.Write([]byte{r, g, b}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RenderSlicePPMFile writes the colored slice to path.
func RenderSlicePPMFile(path string, v *grid.Volume, k int, lo, hi float64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return RenderSlicePPM(f, v, k, lo, hi)
}

func sliceRange(slice [][]float64) (lo, hi float64) {
	lo, hi = slice[0][0], slice[0][0]
	for _, row := range slice {
		for _, x := range row {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	return lo, hi
}

// divergingColor maps t in [0,1] through a blue(0) - white(0.5) - red(1)
// ramp, the conventional diverging map for signed scientific scalars.
func divergingColor(t float64) (r, g, b byte) {
	if t < 0.5 {
		u := t * 2
		return byte(255*u + 0.5), byte(255*u + 0.5), 255
	}
	u := (t - 0.5) * 2
	return 255, byte(255*(1-u) + 0.5), byte(255*(1-u) + 0.5)
}
