package vtk

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
)

// WriteVTP serializes a point cloud as a VTK XML PolyData file with a
// Points array and one point-data scalar array.
func WriteVTP(w io.Writer, c *pointcloud.Cloud) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "<?xml version=\"1.0\"?>\n")
	fmt.Fprintf(bw, "<VTKFile type=\"PolyData\" version=\"0.1\" byte_order=\"LittleEndian\">\n")
	fmt.Fprintf(bw, "  <PolyData>\n")
	fmt.Fprintf(bw, "    <Piece NumberOfPoints=\"%d\">\n", c.Len())
	fmt.Fprintf(bw, "      <PointData Scalars=\"%s\">\n", xmlEscape(c.Name))
	fmt.Fprintf(bw, "        <DataArray type=\"Float64\" Name=\"%s\" format=\"ascii\">\n", xmlEscape(c.Name))
	if err := writeFloats(bw, c.Values); err != nil {
		return err
	}
	fmt.Fprintf(bw, "        </DataArray>\n")
	fmt.Fprintf(bw, "      </PointData>\n")
	fmt.Fprintf(bw, "      <Points>\n")
	fmt.Fprintf(bw, "        <DataArray type=\"Float64\" Name=\"Points\" NumberOfComponents=\"3\" format=\"ascii\">\n")
	flat := make([]float64, 0, 3*c.Len())
	for _, p := range c.Points {
		flat = append(flat, p.X, p.Y, p.Z)
	}
	if err := writeFloats(bw, flat); err != nil {
		return err
	}
	fmt.Fprintf(bw, "        </DataArray>\n")
	fmt.Fprintf(bw, "      </Points>\n")
	fmt.Fprintf(bw, "    </Piece>\n")
	fmt.Fprintf(bw, "  </PolyData>\n")
	fmt.Fprintf(bw, "</VTKFile>\n")
	return bw.Flush()
}

// ReadVTP parses a VTK XML PolyData file written by WriteVTP (or any
// single-piece ascii .vtp with 3-component points and one scalar array).
func ReadVTP(r io.Reader) (*pointcloud.Cloud, error) {
	var f xmlVTKFile
	if err := decodeXML(r, &f); err != nil {
		return nil, fmt.Errorf("vtk: parsing vtp: %w", err)
	}
	if f.PolyData == nil {
		return nil, fmt.Errorf("vtk: file type %q is not PolyData", f.Type)
	}
	if len(f.PolyData.Pieces) != 1 {
		return nil, fmt.Errorf("vtk: expected one PolyData piece, found %d", len(f.PolyData.Pieces))
	}
	piece := f.PolyData.Pieces[0]
	if piece.Points == nil || len(piece.Points.Arrays) == 0 {
		return nil, fmt.Errorf("vtk: PolyData piece has no Points array")
	}
	coords, err := parseFloats(piece.Points.Arrays[0].Body, -1)
	if err != nil {
		return nil, err
	}
	if len(coords)%3 != 0 {
		return nil, fmt.Errorf("vtk: point coordinate count %d is not a multiple of 3", len(coords))
	}
	n := len(coords) / 3
	name := "scalar"
	var values []float64
	if piece.PointData != nil && len(piece.PointData.Arrays) > 0 {
		arr := piece.PointData.Arrays[0]
		name = arr.Name
		values, err = parseFloats(arr.Body, n)
		if err != nil {
			return nil, err
		}
	} else {
		values = make([]float64, n)
	}
	c := pointcloud.New(name, n)
	for i := 0; i < n; i++ {
		c.Add(mathutil.Vec3{X: coords[3*i], Y: coords[3*i+1], Z: coords[3*i+2]}, values[i])
	}
	return c, nil
}

// WriteVTPFile writes the cloud to path.
func WriteVTPFile(path string, c *pointcloud.Cloud) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteVTP(f, c)
}

// ReadVTPFile reads a cloud from path.
func ReadVTPFile(path string) (*pointcloud.Cloud, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadVTP(f)
}
