// Package vtk implements the minimal subset of the VTK XML file formats
// the paper's workflow uses: ImageData (.vti) for regular-grid volumes
// and PolyData (.vtp) for sampled point clouds, plus a PPM/PGM slice
// renderer for the qualitative figures. Data arrays are written in the
// VTK "ascii" format so the files are valid for ParaView/VisIt while
// needing only the standard library.
package vtk

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
)

// xml scaffolding shared by the .vti and .vtp readers.

type xmlVTKFile struct {
	XMLName   xml.Name     `xml:"VTKFile"`
	Type      string       `xml:"type,attr"`
	Version   string       `xml:"version,attr"`
	ByteOrder string       `xml:"byte_order,attr"`
	ImageData *xmlImage    `xml:"ImageData"`
	PolyData  *xmlPolyData `xml:"PolyData"`
}

type xmlImage struct {
	WholeExtent string     `xml:"WholeExtent,attr"`
	Origin      string     `xml:"Origin,attr"`
	Spacing     string     `xml:"Spacing,attr"`
	Pieces      []xmlPiece `xml:"Piece"`
}

type xmlPiece struct {
	Extent         string         `xml:"Extent,attr"`
	NumberOfPoints string         `xml:"NumberOfPoints,attr"`
	PointData      *xmlPointData  `xml:"PointData"`
	Points         *xmlPointsNode `xml:"Points"`
}

type xmlPointData struct {
	Scalars string         `xml:"Scalars,attr"`
	Arrays  []xmlDataArray `xml:"DataArray"`
}

type xmlPointsNode struct {
	Arrays []xmlDataArray `xml:"DataArray"`
}

type xmlDataArray struct {
	Type               string `xml:"type,attr"`
	Name               string `xml:"Name,attr"`
	NumberOfComponents string `xml:"NumberOfComponents,attr"`
	Format             string `xml:"format,attr"`
	Body               string `xml:",chardata"`
}

type xmlPolyData struct {
	Pieces []xmlPiece `xml:"Piece"`
}

// WriteVTI serializes a volume as a VTK XML ImageData file with a single
// point-data scalar array called name.
func WriteVTI(w io.Writer, v *grid.Volume, name string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	ex := fmt.Sprintf("0 %d 0 %d 0 %d", v.NX-1, v.NY-1, v.NZ-1)
	fmt.Fprintf(bw, "<?xml version=\"1.0\"?>\n")
	fmt.Fprintf(bw, "<VTKFile type=\"ImageData\" version=\"0.1\" byte_order=\"LittleEndian\">\n")
	fmt.Fprintf(bw, "  <ImageData WholeExtent=\"%s\" Origin=\"%g %g %g\" Spacing=\"%g %g %g\">\n",
		ex, v.Origin.X, v.Origin.Y, v.Origin.Z, v.Spacing.X, v.Spacing.Y, v.Spacing.Z)
	fmt.Fprintf(bw, "    <Piece Extent=\"%s\">\n", ex)
	fmt.Fprintf(bw, "      <PointData Scalars=\"%s\">\n", xmlEscape(name))
	fmt.Fprintf(bw, "        <DataArray type=\"Float64\" Name=\"%s\" format=\"ascii\">\n", xmlEscape(name))
	if err := writeFloats(bw, v.Data); err != nil {
		return err
	}
	fmt.Fprintf(bw, "        </DataArray>\n")
	fmt.Fprintf(bw, "      </PointData>\n")
	fmt.Fprintf(bw, "    </Piece>\n")
	fmt.Fprintf(bw, "  </ImageData>\n")
	fmt.Fprintf(bw, "</VTKFile>\n")
	return bw.Flush()
}

// ReadVTI parses a VTK XML ImageData file written by WriteVTI (or any
// single-piece ascii-format .vti with one Float32/Float64 scalar array).
// It returns the volume and the scalar array name.
func ReadVTI(r io.Reader) (*grid.Volume, string, error) {
	var f xmlVTKFile
	if err := xml.NewDecoder(r).Decode(&f); err != nil {
		return nil, "", fmt.Errorf("vtk: parsing vti: %w", err)
	}
	if f.ImageData == nil {
		return nil, "", fmt.Errorf("vtk: file type %q is not ImageData", f.Type)
	}
	img := f.ImageData
	nx, ny, nz, err := parseExtent(img.WholeExtent)
	if err != nil {
		return nil, "", err
	}
	origin, err := parseVec3(img.Origin)
	if err != nil {
		return nil, "", fmt.Errorf("vtk: Origin: %w", err)
	}
	spacing, err := parseVec3(img.Spacing)
	if err != nil {
		return nil, "", fmt.Errorf("vtk: Spacing: %w", err)
	}
	if len(img.Pieces) != 1 || img.Pieces[0].PointData == nil || len(img.Pieces[0].PointData.Arrays) == 0 {
		return nil, "", fmt.Errorf("vtk: expected one piece with point data")
	}
	arr := img.Pieces[0].PointData.Arrays[0]
	if arr.Format != "ascii" {
		return nil, "", fmt.Errorf("vtk: unsupported DataArray format %q", arr.Format)
	}
	data, err := parseFloats(arr.Body, nx*ny*nz)
	if err != nil {
		return nil, "", err
	}
	v := grid.NewWithGeometry(nx, ny, nz, origin, spacing)
	copy(v.Data, data)
	return v, arr.Name, nil
}

// WriteVTIFile writes the volume to path.
func WriteVTIFile(path string, v *grid.Volume, name string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteVTI(f, v, name)
}

// ReadVTIFile reads a volume from path.
func ReadVTIFile(path string) (*grid.Volume, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return ReadVTI(f)
}

func parseExtent(s string) (nx, ny, nz int, err error) {
	fs := strings.Fields(s)
	if len(fs) != 6 {
		return 0, 0, 0, fmt.Errorf("vtk: extent %q must have 6 fields", s)
	}
	var v [6]int
	for i, f := range fs {
		v[i], err = strconv.Atoi(f)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("vtk: extent %q: %w", s, err)
		}
	}
	return v[1] - v[0] + 1, v[3] - v[2] + 1, v[5] - v[4] + 1, nil
}

func parseVec3(s string) (mathutil.Vec3, error) {
	fs := strings.Fields(s)
	if len(fs) != 3 {
		return mathutil.Vec3{}, fmt.Errorf("vtk: vec3 %q must have 3 fields", s)
	}
	var out [3]float64
	for i, f := range fs {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return mathutil.Vec3{}, err
		}
		out[i] = v
	}
	return mathutil.Vec3{X: out[0], Y: out[1], Z: out[2]}, nil
}

func parseFloats(body string, want int) ([]float64, error) {
	capHint := want
	if capHint < 0 {
		capHint = 0
	}
	out := make([]float64, 0, capHint)
	for _, f := range strings.Fields(body) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("vtk: bad float %q: %w", f, err)
		}
		out = append(out, v)
	}
	if want >= 0 && len(out) != want {
		return nil, fmt.Errorf("vtk: expected %d values, found %d", want, len(out))
	}
	return out, nil
}

// writeFloats emits values 6 per line in compact scientific notation.
func writeFloats(w *bufio.Writer, xs []float64) error {
	for i, x := range xs {
		if i > 0 {
			if i%6 == 0 {
				if err := w.WriteByte('\n'); err != nil {
					return err
				}
			} else {
				if err := w.WriteByte(' '); err != nil {
					return err
				}
			}
		}
		if _, err := w.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return w.WriteByte('\n')
}

func xmlEscape(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}
