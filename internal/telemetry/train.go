package telemetry

import "sync"

// EpochStat is one training epoch's worth of progress data, delivered
// to TrainObservers by the nn epoch loop.
type EpochStat struct {
	// Epoch is the 0-based epoch index within the network's lifetime
	// (full training followed by fine-tuning epochs keeps counting up).
	Epoch int `json:"epoch"`
	// Loss is the epoch's mean training loss.
	Loss float64 `json:"loss"`
	// ValLoss is the held-out validation loss when validation is
	// running, else 0 with ValLossValid false.
	ValLoss      float64 `json:"val_loss,omitempty"`
	ValLossValid bool    `json:"val_loss_valid,omitempty"`
	// LearningRate is the optimizer learning rate in effect this epoch
	// (after any scheduled decay).
	LearningRate float64 `json:"lr"`
	// Examples is the number of training rows seen this epoch.
	Examples int `json:"examples"`
	// ExamplesPerSec is the epoch's training throughput.
	ExamplesPerSec float64 `json:"examples_per_sec"`
	// TrainableParams counts the parameters of unfrozen layers (shrinks
	// under Case 2 fine-tuning).
	TrainableParams int `json:"trainable_params"`
	// DurationNS is the epoch wall time in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// TrainObserver receives per-epoch training statistics. Implementations
// must be safe for use from the training goroutine; they are called
// synchronously between epochs, so they should be cheap.
type TrainObserver interface {
	ObserveEpoch(EpochStat)
}

// TrainSeries is a named, append-only record of epoch statistics; it
// implements TrainObserver and is what Registry.Train hands to the
// training loop.
type TrainSeries struct {
	name string
	mu   sync.Mutex
	eps  []EpochStat
}

// Name returns the series label ("pretrain", "finetune", ...).
func (t *TrainSeries) Name() string { return t.name }

// ObserveEpoch implements TrainObserver. Safe on a nil receiver so a
// disabled registry's series can be wired unconditionally.
func (t *TrainSeries) ObserveEpoch(e EpochStat) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.eps = append(t.eps, e)
	t.mu.Unlock()
}

// Epochs returns a copy of the recorded epoch stats in arrival order.
func (t *TrainSeries) Epochs() []EpochStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EpochStat(nil), t.eps...)
}

// Train returns the named training series, creating it on first use
// (nil when the registry is disabled — still a valid TrainObserver).
func (r *Registry) Train(name string) *TrainSeries {
	if !r.enabled.Load() {
		return nil
	}
	r.mu.RLock()
	t := r.series[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.series[name]; t == nil {
		t = &TrainSeries{name: name}
		r.series[name] = t
	}
	return t
}

// MultiObserver fans one epoch stream out to several observers,
// skipping nils.
type MultiObserver []TrainObserver

// ObserveEpoch implements TrainObserver.
func (m MultiObserver) ObserveEpoch(e EpochStat) {
	for _, o := range m {
		if o != nil {
			o.ObserveEpoch(e)
		}
	}
}

// ObserverFunc adapts a function to the TrainObserver interface.
type ObserverFunc func(EpochStat)

// ObserveEpoch implements TrainObserver.
func (f ObserverFunc) ObserveEpoch(e EpochStat) { f(e) }
