package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server exposes a registry over HTTP for live inspection:
//
//	/metrics        JSON snapshot of the registry
//	/debug/vars     expvar (includes the fillvoid.telemetry var)
//	/debug/pprof/   the full net/http/pprof index (profile, heap, ...)
//
// Construct with Serve; Close releases the listener.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// publishOnce guards the process-global expvar registration (expvar
// panics on duplicate Publish).
var publishOnce sync.Once

// MetricsHandler returns an http.Handler serving reg's JSON snapshot —
// the /metrics payload. Embedders (the reconstruction server, custom
// admin muxes) mount it wherever they like; Serve uses it for its own
// /metrics route. A nil reg serves the process-global default registry.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r := reg
		if r == nil {
			r = Default()
		}
		w.Header().Set("Content-Type", "application/json")
		//lint:allow errdrop: best-effort metrics response; there is no recovery for a failed client write
		r.Snapshot().WriteJSON(w)
	})
}

// debugExtra holds handlers other packages contribute to every debug
// mux (see RegisterDebugHandler).
var (
	debugExtraMu sync.Mutex
	debugExtra   = map[string]http.Handler{}
)

// RegisterDebugHandler adds an extra endpoint that every subsequent
// RegisterDebug call mounts alongside the standard debug routes. It is
// the hook packages layered above telemetry (internal/trace's
// /debug/traces) use to appear on every debug mux — the -pprof server
// and the reconstruction service alike — without telemetry importing
// them. Registering the same pattern again replaces the handler; muxes
// built before the call are unaffected.
func RegisterDebugHandler(pattern string, h http.Handler) {
	debugExtraMu.Lock()
	defer debugExtraMu.Unlock()
	debugExtra[pattern] = h
}

// RegisterDebug mounts the standard debug endpoints on mux —
// /debug/vars (expvar, including the fillvoid.telemetry var) and the
// full /debug/pprof/ index — publishing the expvar exactly once per
// process no matter how many servers register. Endpoints contributed
// via RegisterDebugHandler are mounted too.
func RegisterDebug(mux *http.ServeMux) {
	publishOnce.Do(func() {
		expvar.Publish("fillvoid.telemetry", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	debugExtraMu.Lock()
	defer debugExtraMu.Unlock()
	for pattern, h := range debugExtra {
		mux.Handle(pattern, h)
	}
}

// Serve starts an HTTP server on addr (use "127.0.0.1:0" for an
// ephemeral port) exposing the registry. It returns once the listener
// is bound; requests are served on a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	RegisterDebug(mux)
	s := &Server{reg: reg, ln: ln, srv: &http.Server{Handler: mux}}
	//lint:allow rawgoroutine: telemetry cannot import parallel (cycle); the acceptor exits when Close closes ln
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
