package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanQuantiles(t *testing.T) {
	r := NewRegistry()
	// 100 spans with known durations 1ms..100ms, recorded directly.
	for i := 1; i <= 100; i++ {
		r.spanStat("stage").record(time.Duration(i) * time.Millisecond)
	}
	st := r.spanStat("stage")
	p50 := st.Quantile(0.50)
	p95 := st.Quantile(0.95)
	p99 := st.Quantile(0.99)
	if p50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", p50)
	}
	if p95 != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", p95)
	}
	if p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", p99)
	}

	snap := r.Snapshot()
	ss, ok := snap.Spans["stage"]
	if !ok {
		t.Fatal("span missing from snapshot")
	}
	if ss.P50NS != int64(50*time.Millisecond) || ss.P95NS != int64(95*time.Millisecond) || ss.P99NS != int64(99*time.Millisecond) {
		t.Fatalf("snapshot percentiles p50=%d p95=%d p99=%d", ss.P50NS, ss.P95NS, ss.P99NS)
	}
}

func TestSpanQuantileReservoirBounded(t *testing.T) {
	r := NewRegistry()
	// Far more observations than the reservoir holds: quantiles stay
	// plausible (within the observed range) and memory stays bounded.
	for i := 0; i < 10*spanReservoirSize; i++ {
		r.spanStat("hot").record(time.Millisecond)
	}
	st := r.spanStat("hot")
	st.mu.Lock()
	n := len(st.samples)
	st.mu.Unlock()
	if n > spanReservoirSize {
		t.Fatalf("reservoir grew to %d, cap %d", n, spanReservoirSize)
	}
	if q := st.Quantile(0.99); q != time.Millisecond {
		t.Fatalf("uniform input p99 = %v, want 1ms", q)
	}
	if q := st.Quantile(0.5); q != time.Millisecond {
		t.Fatalf("uniform input p50 = %v, want 1ms", q)
	}
}

// recordingObserver captures SpanStarted/SpanEnded callbacks.
type recordingObserver struct {
	mu      sync.Mutex
	started []string
	ended   []string
	durs    []time.Duration
}

func (o *recordingObserver) SpanStarted(path string) any {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, path)
	return path + "-token"
}

func (o *recordingObserver) SpanEnded(token any, path string, start time.Time, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if token != path+"-token" {
		o.ended = append(o.ended, "BAD TOKEN "+path)
		return
	}
	o.ended = append(o.ended, path)
	o.durs = append(o.durs, d)
}

func TestSpanObserverHook(t *testing.T) {
	r := NewRegistry()
	obs := &recordingObserver{}
	r.SetSpanObserver(obs)

	sp := r.StartSpan("outer")
	child := sp.Child("inner")
	child.End()
	sp.End()

	obs.mu.Lock()
	started, ended := append([]string(nil), obs.started...), append([]string(nil), obs.ended...)
	obs.mu.Unlock()
	if len(started) != 2 || started[0] != "outer" || started[1] != "outer/inner" {
		t.Fatalf("started = %v", started)
	}
	if len(ended) != 2 || ended[0] != "outer/inner" || ended[1] != "outer" {
		t.Fatalf("ended = %v (tokens must round-trip)", ended)
	}

	// Clearing the observer stops callbacks; spans still record.
	r.SetSpanObserver(nil)
	sp2 := r.StartSpan("quiet")
	sp2.End()
	obs.mu.Lock()
	n := len(obs.started)
	obs.mu.Unlock()
	if n != 2 {
		t.Fatal("cleared observer still invoked")
	}
	if r.Snapshot().Spans["quiet"].Count != 1 {
		t.Fatal("span not recorded after observer cleared")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["requests"] != 3 {
		t.Fatalf("counters = %v", s.Counters)
	}
}

func TestRegisterDebugHandler(t *testing.T) {
	called := false
	RegisterDebugHandler("/debug/test-extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		called = true
		w.WriteHeader(http.StatusTeapot)
	}))
	mux := http.NewServeMux()
	RegisterDebug(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/test-extra", nil))
	if !called || rec.Code != http.StatusTeapot {
		t.Fatalf("extra debug handler not mounted: called=%v code=%d", called, rec.Code)
	}
	// pprof stays mounted alongside.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof route lost: %d", rec.Code)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 10*time.Millisecond)
	// The constructor samples synchronously, so gauges exist before any
	// tick; then let at least one tick land for sched latency coverage.
	time.Sleep(30 * time.Millisecond)
	s.Stop()

	snap := r.Snapshot()
	for _, g := range []string{
		"runtime.goroutines", "runtime.heap_alloc_bytes", "runtime.heap_sys_bytes",
		"runtime.heap_objects", "runtime.stack_inuse_bytes", "runtime.next_gc_bytes",
		"runtime.gc_cpu_fraction", "runtime.num_gc",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %s missing after sampling", g)
		}
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %v", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("heap gauge = %v", snap.Gauges["runtime.heap_alloc_bytes"])
	}
	// Stop is idempotent in effect: the goroutine exited, values remain.
	after := r.Snapshot().Gauges["runtime.goroutines"]
	if after != snap.Gauges["runtime.goroutines"] {
		t.Fatal("sampler kept running after Stop")
	}
}

func TestRuntimeSamplerDefaults(t *testing.T) {
	// nil registry falls back to Default, <=0 interval to 1s; the
	// sampler must still start and stop cleanly.
	s := StartRuntimeSampler(nil, 0)
	if s.reg != Default() {
		t.Fatal("nil registry did not fall back to Default")
	}
	if s.every != time.Second {
		t.Fatalf("interval = %v, want 1s", s.every)
	}
	s.Stop()
}
