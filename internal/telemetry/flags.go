package telemetry

import (
	"flag"
	"fmt"
	"time"
)

// Flags bundles the standard observability CLI flags shared by the
// fillvoid and experiments commands:
//
//	-log-level <debug|info|warn|error|off>   structured stderr logging
//	-metrics-out <file.json>                 write a telemetry snapshot on exit
//	-pprof <addr>                            serve /metrics, expvar and pprof
//
// Register with RegisterFlags before fs.Parse, then call Start after;
// the returned stop function flushes the snapshot and shuts the server
// down.
type Flags struct {
	LogLevel   string
	MetricsOut string
	PprofAddr  string
}

// RegisterFlags installs the telemetry flags on a FlagSet.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.LogLevel, "log-level", "warn", "log level: debug, info, warn, error, off")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a telemetry JSON snapshot to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	return f
}

// Start applies the parsed flags: sets the log level, enables the
// default registry when any output is requested (plus a 1s runtime
// sampler feeding heap/GC/goroutine/sched-latency metrics into it),
// and starts the HTTP server when -pprof is given. The returned stop
// function writes the -metrics-out snapshot (if any), stops the
// sampler and closes the server; call it once, after the command's
// work is done.
func (f *Flags) Start() (stop func() error, err error) {
	level, err := ParseLevel(f.LogLevel)
	if err != nil {
		return nil, err
	}
	SetLogLevel(level)
	var srv *Server
	var sampler *RuntimeSampler
	if f.MetricsOut != "" || f.PprofAddr != "" {
		Enable()
		sampler = StartRuntimeSampler(Default(), time.Second)
	}
	if f.PprofAddr != "" {
		srv, err = Serve(f.PprofAddr, Default())
		if err != nil {
			return nil, fmt.Errorf("telemetry: starting -pprof server: %w", err)
		}
		Infof("telemetry server listening", "addr", srv.Addr())
	}
	return func() error {
		var firstErr error
		if sampler != nil {
			sampler.Stop()
		}
		if f.MetricsOut != "" {
			if err := Default().WriteSnapshotFile(f.MetricsOut); err != nil {
				firstErr = err
			} else {
				Infof("wrote telemetry snapshot", "path", f.MetricsOut)
			}
		}
		if srv != nil {
			if err := srv.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
