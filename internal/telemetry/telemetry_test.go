package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := r.Gauge("load")
			for i := 0; i < perWorker; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	want := float64(workers*perWorker) * 0.5
	if got := r.Gauge("load").Value(); got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
	r.Gauge("load").Set(-3)
	if got := r.Gauge("load").Value(); got != -3 {
		t.Fatalf("gauge after Set = %g", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 10, 100}
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("lat", bounds)
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%4) * 40) // 0, 40, 80, 120
			}
		}(w)
	}
	wg.Wait()
	h := r.Histogram("lat", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var sum int64
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket counts sum to %d, want %d", sum, workers*perWorker)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	// <=1: {0.5, 1}; <=10: {5, 10}; <=100: {50, 100}; +Inf: {1000}
	want := []int64{2, 2, 2, 1}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	if got, want := h.Sum(), 0.5+1+5+10+50+100+1000; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestDisabledRegistryHandsOutNoOps(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	if c := r.Counter("c"); c != nil {
		t.Fatal("disabled registry returned a live counter")
	}
	if g := r.Gauge("g"); g != nil {
		t.Fatal("disabled registry returned a live gauge")
	}
	if h := r.Histogram("h", nil); h != nil {
		t.Fatal("disabled registry returned a live histogram")
	}
	if sp := r.StartSpan("s"); sp != nil {
		t.Fatal("disabled registry returned a live span")
	}
	if tr := r.Train("t"); tr != nil {
		t.Fatal("disabled registry returned a live train series")
	}
	// All nil handles must be usable without branching.
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		sp *Span
		tr *TrainSeries
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	sp.Child("x").End()
	tr.ObserveEpoch(EpochStat{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.End() != 0 || tr.Epochs() != nil {
		t.Fatal("nil handles reported non-zero state")
	}
	// Nothing may have been registered.
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Spans)+len(s.Training) != 0 {
		t.Fatalf("disabled registry accumulated state: %+v", s)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("pretrain")
	child := root.Child("feature-build")
	grand := child.Child("knn")
	if got := grand.Path(); got != "pretrain/feature-build/knn" {
		t.Fatalf("path = %q", got)
	}
	grand.End()
	child.End()
	if d := root.End(); d <= 0 {
		t.Fatalf("root duration = %v", d)
	}
	for _, path := range []string{"pretrain", "pretrain/feature-build", "pretrain/feature-build/knn"} {
		st := r.SpanStatFor(path)
		if st == nil {
			t.Fatalf("no stats recorded for %q", path)
		}
		if st.Count() != 1 {
			t.Fatalf("%q count = %d", path, st.Count())
		}
		if st.Total() <= 0 || st.Last() != st.Total() {
			t.Fatalf("%q total=%v last=%v", path, st.Total(), st.Last())
		}
	}
	// A second completion under the same path aggregates.
	r.StartSpan("pretrain").End()
	if got := r.SpanStatFor("pretrain").Count(); got != 2 {
		t.Fatalf("aggregated count = %d", got)
	}
}

func TestSpanConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.StartSpan("stage").Child("inner").End()
			}
		}()
	}
	wg.Wait()
	if got := r.SpanStatFor("stage/inner").Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

func TestTimeHelper(t *testing.T) {
	r := NewRegistry()
	ran := false
	d := r.Time("work", func() { ran = true })
	if !ran {
		t.Fatal("fn not called")
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	if r.SpanStatFor("work") == nil {
		t.Fatal("span not recorded")
	}
	// Disabled: fn still runs, nothing recorded.
	r.SetEnabled(false)
	ran = false
	r.Time("work2", func() { ran = true })
	if !ran {
		t.Fatal("fn skipped when disabled")
	}
}

func TestTrainSeries(t *testing.T) {
	r := NewRegistry()
	tr := r.Train("pretrain")
	for e := 0; e < 5; e++ {
		tr.ObserveEpoch(EpochStat{Epoch: e, Loss: 1 / float64(e+1)})
	}
	eps := tr.Epochs()
	if len(eps) != 5 {
		t.Fatalf("epochs = %d", len(eps))
	}
	for i, e := range eps {
		if e.Epoch != i {
			t.Fatalf("epoch %d has index %d", i, e.Epoch)
		}
	}
	if r.Train("pretrain") != tr {
		t.Fatal("same name returned a different series")
	}
	if tr.Name() != "pretrain" {
		t.Fatalf("name = %q", tr.Name())
	}
}

func TestMultiObserverAndObserverFunc(t *testing.T) {
	var a, b []int
	m := MultiObserver{
		ObserverFunc(func(e EpochStat) { a = append(a, e.Epoch) }),
		nil, // nils must be skipped
		ObserverFunc(func(e EpochStat) { b = append(b, e.Epoch) }),
	}
	m.ObserveEpoch(EpochStat{Epoch: 7})
	if len(a) != 1 || len(b) != 1 || a[0] != 7 || b[0] != 7 {
		t.Fatalf("fan-out failed: a=%v b=%v", a, b)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(42)
	r.Gauge("util").Set(0.75)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	r.StartSpan("stage").End()
	r.Train("fit").ObserveEpoch(EpochStat{Epoch: 0, Loss: 0.5, LearningRate: 1e-3, Examples: 100, TrainableParams: 10, DurationNS: 5})

	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n  out: %+v\n  in:  %+v", s, back)
	}
	if back.Counters["reqs"] != 42 {
		t.Fatalf("counter = %d", back.Counters["reqs"])
	}
	if back.Gauges["util"] != 0.75 {
		t.Fatalf("gauge = %g", back.Gauges["util"])
	}
	if hs := back.Histograms["lat"]; hs.Count != 3 || hs.Sum != 55.5 {
		t.Fatalf("histogram = %+v", hs)
	}
	if got := back.SpanPaths(); !reflect.DeepEqual(got, []string{"stage"}) {
		t.Fatalf("span paths = %v", got)
	}
	if eps := back.Training["fit"]; len(eps) != 1 || eps[0].Loss != 0.5 {
		t.Fatalf("training = %+v", back.Training)
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	if s.Counters["c"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
}

func TestResetKeepsEnabledState(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Reset()
	if !r.Enabled() {
		t.Fatal("Reset flipped enabled off")
	}
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("counter survived Reset: %d", got)
	}
}

func TestSetDefaultSwap(t *testing.T) {
	old := Default()
	mine := NewRegistry()
	if prev := SetDefault(mine); prev != old {
		t.Fatal("SetDefault returned wrong previous registry")
	}
	defer SetDefault(old)
	if Default() != mine {
		t.Fatal("Default not swapped")
	}
	if prev := SetDefault(nil); prev != mine {
		t.Fatal("SetDefault(nil) must be a no-op returning the current registry")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "off": LevelOff,
		"none": LevelOff, " silent ": LevelOff,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("accepted bogus level")
	}
}

func TestLoggerFormatAndThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("hidden")
	l.Infof("pretrain done", "rows", 42, "note", "two words")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked through info threshold: %q", out)
	}
	line := strings.TrimSpace(out)
	for _, want := range []string{"level=info", `msg="pretrain done"`, "rows=42", `note="two words"`, "t="} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line %q missing %q", line, want)
		}
	}
	l.SetLevel(LevelOff)
	buf.Reset()
	l.Errorf("also hidden")
	if buf.Len() != 0 {
		t.Fatalf("LevelOff still logged: %q", buf.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var s Snapshot
	if err := json.Unmarshal(get("/metrics"), &s); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if s.Counters["hits"] != 9 {
		t.Fatalf("/metrics counters = %v", s.Counters)
	}
	var vars map[string]any
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["fillvoid.telemetry"]; !ok {
		t.Fatal("/debug/vars missing fillvoid.telemetry")
	}
	if len(get("/debug/pprof/cmdline")) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestFlagsStartWritesSnapshot(t *testing.T) {
	old := SetDefault(NewRegistry())
	defer SetDefault(old)
	Default().SetEnabled(false)

	path := filepath.Join(t.TempDir(), "metrics.json")
	f := &Flags{LogLevel: "error", MetricsOut: path}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("-metrics-out did not enable the default registry")
	}
	Default().Counter("work").Add(3)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["work"] != 3 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
}

func TestFlagsRejectBadLevel(t *testing.T) {
	f := &Flags{LogLevel: "shout"}
	if _, err := f.Start(); err == nil {
		t.Fatal("accepted bogus log level")
	}
}

func TestSnapshotWhileHammered(t *testing.T) {
	r := NewRegistry()
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d", w%2)).Inc()
				r.Histogram("h", nil).Observe(float64(i % 7))
				r.StartSpan("s").End()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		if s.Histograms["h"].Count < 0 {
			t.Fatal("negative count")
		}
	}
	close(stopCh)
	wg.Wait()
	s := r.Snapshot()
	var bucketSum int64
	for _, c := range s.Histograms["h"].Counts {
		bucketSum += c
	}
	if bucketSum != s.Histograms["h"].Count {
		t.Fatalf("final buckets %d != count %d", bucketSum, s.Histograms["h"].Count)
	}
	if math.IsNaN(s.Histograms["h"].Sum) {
		t.Fatal("NaN sum")
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("hot").Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("hot").End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("hot").End()
	}
}

// Keep package-level log lines out of test output.
func TestMain(m *testing.M) {
	SetLogOutput(io.Discard)
	os.Exit(m.Run())
}

type failWriter struct{ fails int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.fails > 0 {
		w.fails--
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestLoggerCountsDroppedWrites(t *testing.T) {
	w := &failWriter{fails: 2}
	l := NewLogger(w, LevelInfo)
	l.Infof("one")
	l.Infof("two")
	l.Infof("three")
	if got := l.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
}
