package telemetry

import (
	"sync"
	"time"
)

// SpanStat aggregates every completed span with one label path.
type SpanStat struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
	last  time.Duration
}

func (s *SpanStat) record(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.total += d
	s.last = d
}

// Count returns how many spans completed under this label.
func (s *SpanStat) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Total returns the summed duration of all completed spans.
func (s *SpanStat) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the duration of the most recently completed span.
func (s *SpanStat) Last() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Span is one in-flight timed stage. Spans carry a hierarchical label
// path ("pretrain/feature-build"); children created with Child extend
// the path. A nil Span (what a disabled registry hands out) is a valid
// no-op, so instrumentation sites never branch.
type Span struct {
	r     *Registry
	path  string
	start time.Time
}

// StartSpan begins a named stage timer. When the registry is disabled
// it returns nil, whose methods are all no-ops.
func (r *Registry) StartSpan(path string) *Span {
	if !r.enabled.Load() {
		return nil
	}
	return &Span{r: r, path: path, start: time.Now()}
}

// Child begins a nested span labelled parent-path/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, path: s.path + "/" + name, start: time.Now()}
}

// Path returns the span's full label path ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End stops the span, records its duration under the label path, and
// returns the elapsed time (0 for nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.spanStat(s.path).record(d)
	return d
}

// spanStat returns (creating on first use) the aggregate for a path.
func (r *Registry) spanStat(path string) *SpanStat {
	r.mu.RLock()
	st := r.spans[path]
	r.mu.RUnlock()
	if st != nil {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st = r.spans[path]; st == nil {
		st = &SpanStat{}
		r.spans[path] = st
	}
	return st
}

// SpanStatFor returns the aggregate stats recorded under a label path,
// or nil if no span with that path has completed.
func (r *Registry) SpanStatFor(path string) *SpanStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.spans[path]
}

// Time runs fn under a span with the given path and returns fn's
// duration; sugar for the Start/End pair when the stage is a closure.
func (r *Registry) Time(path string, fn func()) time.Duration {
	sp := r.StartSpan(path)
	fn()
	return sp.End()
}
