package telemetry

import (
	"sort"
	"sync"
	"time"
)

// spanReservoirSize is the per-path sample cap for quantile tracking:
// a fixed reservoir bounds memory at 2 KiB per span path no matter how
// many spans complete, while keeping a uniform sample of the full
// duration history for p50/p95/p99.
const spanReservoirSize = 256

// SpanStat aggregates every completed span with one label path.
type SpanStat struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
	last  time.Duration
	// samples is a uniform reservoir (algorithm R) of completed span
	// durations in ns; rng drives replacement once the reservoir is
	// full. The xorshift state is seeded with a fixed constant so runs
	// are reproducible — statistical uniformity is all the reservoir
	// needs, not unpredictability.
	samples []int64
	rng     uint64
}

func (s *SpanStat) record(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.total += d
	s.last = d
	if len(s.samples) < spanReservoirSize {
		if s.samples == nil {
			s.samples = make([]int64, 0, 8)
			s.rng = 0x9E3779B97F4A7C15
		}
		s.samples = append(s.samples, int64(d))
		return
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	if j := s.rng % uint64(s.count); j < spanReservoirSize {
		s.samples[j] = int64(d)
	}
}

// Quantile returns the q-quantile (0 < q <= 1, nearest-rank) of the
// reservoir-sampled duration history, or 0 when no span has completed.
// The estimate is exact until the path's count exceeds the reservoir
// size, then converges as a uniform subsample.
func (s *SpanStat) Quantile(q float64) time.Duration {
	s.mu.Lock()
	cp := append([]int64(nil), s.samples...)
	s.mu.Unlock()
	return quantileNS(cp, q)
}

// quantileNS computes the nearest-rank q-quantile of ns samples,
// sorting in place.
func quantileNS(ns []int64, q float64) time.Duration {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := int(q*float64(len(ns))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ns) {
		idx = len(ns) - 1
	}
	return time.Duration(ns[idx])
}

// Count returns how many spans completed under this label.
func (s *SpanStat) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Total returns the summed duration of all completed spans.
func (s *SpanStat) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the duration of the most recently completed span.
func (s *SpanStat) Last() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// SpanObserver receives begin/end events for every span recorded in a
// registry. It is the seam the distributed tracer (internal/trace)
// hangs off: installing an observer upgrades every existing StartSpan
// call site into a per-request trace event source without touching the
// instrumented code. The token returned by SpanStarted is handed back
// verbatim to SpanEnded, so an observer can correlate the pair without
// its own bookkeeping; implementations must tolerate a nil token (a
// span started before the observer was installed).
type SpanObserver interface {
	SpanStarted(path string) (token any)
	SpanEnded(token any, path string, start time.Time, d time.Duration)
}

// spanObsBox wraps the observer so the registry can swap it atomically
// (atomic.Pointer needs a concrete element type).
type spanObsBox struct{ obs SpanObserver }

// SetSpanObserver installs (or, with nil, removes) the registry's span
// observer. At most one observer is active; installing replaces the
// previous one. Spans already in flight keep their original token (nil
// if none), so a mid-flight swap never mismatches begin/end pairs.
func (r *Registry) SetSpanObserver(obs SpanObserver) {
	if obs == nil {
		r.spanObs.Store(nil)
		return
	}
	r.spanObs.Store(&spanObsBox{obs: obs})
}

// Span is one in-flight timed stage. Spans carry a hierarchical label
// path ("pretrain/feature-build"); children created with Child extend
// the path. A nil Span (what a disabled registry hands out) is a valid
// no-op, so instrumentation sites never branch.
type Span struct {
	r     *Registry
	path  string
	start time.Time
	token any
}

// StartSpan begins a named stage timer. When the registry is disabled
// it returns nil, whose methods are all no-ops.
func (r *Registry) StartSpan(path string) *Span {
	if !r.enabled.Load() {
		return nil
	}
	s := &Span{r: r, path: path, start: time.Now()}
	if box := r.spanObs.Load(); box != nil {
		s.token = box.obs.SpanStarted(path)
	}
	return s
}

// Child begins a nested span labelled parent-path/name.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{r: s.r, path: s.path + "/" + name, start: time.Now()}
	if box := s.r.spanObs.Load(); box != nil {
		c.token = box.obs.SpanStarted(c.path)
	}
	return c
}

// Path returns the span's full label path ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End stops the span, records its duration under the label path, and
// returns the elapsed time (0 for nil).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.spanStat(s.path).record(d)
	if box := s.r.spanObs.Load(); box != nil {
		box.obs.SpanEnded(s.token, s.path, s.start, d)
	}
	return d
}

// spanStat returns (creating on first use) the aggregate for a path.
func (r *Registry) spanStat(path string) *SpanStat {
	r.mu.RLock()
	st := r.spans[path]
	r.mu.RUnlock()
	if st != nil {
		return st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st = r.spans[path]; st == nil {
		st = &SpanStat{}
		r.spans[path] = st
	}
	return st
}

// SpanStatFor returns the aggregate stats recorded under a label path,
// or nil if no span with that path has completed.
func (r *Registry) SpanStatFor(path string) *SpanStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.spans[path]
}

// Time runs fn under a span with the given path and returns fn's
// duration; sugar for the Start/End pair when the stage is a closure.
func (r *Registry) Time(path string, fn func()) time.Duration {
	sp := r.StartSpan(path)
	fn()
	return sp.End()
}
