package telemetry

import (
	"runtime"
	"time"
)

// RuntimeSampler periodically folds Go runtime health into a registry:
//
//	gauges      runtime.goroutines, runtime.heap_alloc_bytes,
//	            runtime.heap_sys_bytes, runtime.heap_objects,
//	            runtime.stack_inuse_bytes, runtime.next_gc_bytes,
//	            runtime.gc_cpu_fraction, runtime.num_gc
//	histograms  runtime.gc_pause_seconds (every individual GC pause
//	            since the previous sample, from MemStats.PauseNs)
//	            runtime.sched_latency_seconds (how late the sampler's
//	            own timer fired — a cheap proxy for scheduler delay
//	            under load)
//
// A reconstruction server saturating every core shows up here before
// it shows up as user-visible tail latency: climbing sched latency and
// GC pause tails explain slow traces that no per-stage span accounts
// for. Construct with StartRuntimeSampler; Stop halts the goroutine.
type RuntimeSampler struct {
	reg   *Registry
	every time.Duration
	stop  chan struct{}
	done  chan struct{}
}

// runtimeBuckets resolve microsecond-scale pauses and delays (1µs ..
// 1s), much finer than the second-denominated request buckets.
func runtimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1}
}

// StartRuntimeSampler begins sampling reg (nil: the process default)
// every interval (<=0: 1s). It takes one sample synchronously before
// returning so short-lived commands still export a reading.
func StartRuntimeSampler(reg *Registry, every time.Duration) *RuntimeSampler {
	if reg == nil {
		reg = Default()
	}
	if every <= 0 {
		every = time.Second
	}
	s := &RuntimeSampler{
		reg:   reg,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	var ms runtime.MemStats
	lastGC := s.sample(&ms, 0, true)
	//lint:allow rawgoroutine: telemetry cannot import parallel (cycle); the loop exits when Stop closes s.stop
	go s.loop(&ms, lastGC)
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to
// call once; the registry keeps the last sampled values.
func (s *RuntimeSampler) Stop() {
	close(s.stop)
	<-s.done
}

func (s *RuntimeSampler) loop(ms *runtime.MemStats, lastGC uint32) {
	defer close(s.done)
	timer := time.NewTimer(s.every)
	defer timer.Stop()
	target := time.Now().Add(s.every)
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C:
			// The timer's overshoot is scheduler-induced delay: the
			// runtime had a ready timer and took this long to run us.
			if late := time.Since(target); late > 0 {
				s.reg.Histogram("runtime.sched_latency_seconds", runtimeBuckets()).Observe(late.Seconds())
			}
			lastGC = s.sample(ms, lastGC, false)
			timer.Reset(s.every)
			target = time.Now().Add(s.every)
		}
	}
}

// sample reads the runtime stats into the registry and returns the GC
// count high-water mark. When first is set, pauses that predate the
// sampler are skipped so startup GCs are not misattributed.
func (s *RuntimeSampler) sample(ms *runtime.MemStats, lastGC uint32, first bool) uint32 {
	runtime.ReadMemStats(ms)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
	s.reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("runtime.stack_inuse_bytes").Set(float64(ms.StackInuse))
	s.reg.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
	s.reg.Gauge("runtime.gc_cpu_fraction").Set(ms.GCCPUFraction)
	s.reg.Gauge("runtime.num_gc").Set(float64(ms.NumGC))
	if !first {
		// MemStats.PauseNs is a 256-entry circular buffer indexed by
		// (NumGC+255)%256; replay only the pauses new since last sample.
		n := ms.NumGC
		if n > lastGC {
			newGCs := n - lastGC
			if newGCs > 256 {
				newGCs = 256
			}
			h := s.reg.Histogram("runtime.gc_pause_seconds", runtimeBuckets())
			for i := n - newGCs + 1; i <= n; i++ {
				h.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
			}
		}
	}
	return ms.NumGC
}
