// Package telemetry is the observability layer for the fillvoid
// pipeline: a dependency-free (stdlib-only) metrics registry with
// atomic counters, gauges and bucketed histograms; a Span/Timer API for
// named stage timing with hierarchical labels ("pretrain/feature-build",
// "reconstruct/knn-table", ...); a TrainObserver hook delivering
// per-epoch training statistics; JSON snapshot export; and an optional
// HTTP server exposing /metrics (JSON + expvar) and net/http/pprof.
//
// The package is designed to be opt-in-cheap: the global default
// registry starts disabled, and every instrumentation site in the hot
// paths (parallel loops, reconstruction batches, training epochs) pays
// only a single atomic load when telemetry is off. Enable() — or the
// -metrics-out / -pprof CLI flags — turns collection on.
//
// Instrumented library code records into the swappable default registry
// (Default / SetDefault); tests and embedders that need isolation
// construct private instances with NewRegistry and pass them where a
// *Registry is accepted (stream.Config.Telemetry, Serve, ...).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named counters, gauges,
// histograms, span statistics and training series. The zero value is
// not usable; construct with NewRegistry (enabled) or use Default
// (disabled until Enable).
type Registry struct {
	enabled atomic.Bool
	spanObs atomic.Pointer[spanObsBox]

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*SpanStat
	series   map[string]*TrainSeries
}

// NewRegistry returns an empty, enabled registry. Explicitly
// constructed instances are assumed wanted; only the process-global
// default starts disabled.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*SpanStat),
		series:   make(map[string]*TrainSeries),
	}
	r.enabled.Store(true)
	return r
}

var defaultReg atomic.Pointer[Registry]

func init() {
	r := NewRegistry()
	r.enabled.Store(false)
	defaultReg.Store(r)
}

// Default returns the process-global registry that library
// instrumentation records into. It starts disabled.
func Default() *Registry { return defaultReg.Load() }

// SetDefault swaps the global registry (nil is ignored) and returns the
// previous one, so embedders can inject their own instance under all
// library instrumentation.
func SetDefault(r *Registry) *Registry {
	if r == nil {
		return Default()
	}
	return defaultReg.Swap(r)
}

// Enable turns on collection in the global default registry.
func Enable() { Default().SetEnabled(true) }

// Enabled reports whether the global default registry is collecting.
func Enabled() bool { return Default().Enabled() }

// SetEnabled flips collection on or off. Disabled registries drop
// counter/gauge/histogram updates and hand out no-op spans, keeping
// instrumented hot paths at a single atomic load of overhead.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether this registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset drops every metric, span statistic and training series while
// keeping the enabled state. Mainly for tests and long-lived servers
// that snapshot-and-reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
	r.spans = make(map[string]*SpanStat)
	r.series = make(map[string]*TrainSeries)
}

// --- Counter ---

// Counter is a monotonically increasing atomic int64. A nil Counter is
// a valid no-op, which is what a disabled registry hands out.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use. A
// disabled registry returns nil (whose methods are no-ops), so callers
// never need to branch.
func (r *Registry) Counter(name string) *Counter {
	if !r.enabled.Load() {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// --- Gauge ---

// Gauge is an atomically updated float64 (last-write-wins Set plus
// lock-free Add). A nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the named gauge, creating it on first use (nil when the
// registry is disabled).
func (r *Registry) Gauge(name string) *Gauge {
	if !r.enabled.Load() {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// --- Histogram ---

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds; observations above the last bound land in an implicit
// +Inf bucket. Count and Sum track the full distribution. All methods
// are lock-free and safe for concurrent use; a nil Histogram is a valid
// no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefBuckets is a general-purpose exponential bucket layout for
// second-denominated durations (1ms .. ~100s).
func DefBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket counts; the final element is the
// +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored; nil bounds use
// DefBuckets). Disabled registries return nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if !r.enabled.Load() {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
