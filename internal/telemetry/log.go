package telemetry

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. The default logger drops records below its
// configured level.
type Level int32

// Log levels, least to most severe. LevelOff silences everything.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// ParseLevel maps "debug", "info", "warn", "error", "off" (case
// insensitive) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none", "silent":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// Logger writes leveled key=value records, one line per record:
//
//	t=2026-08-06T12:00:00.000Z level=info msg="pretrain done" rows=182520 dur=2.1s
//
// Safe for concurrent use.
type Logger struct {
	level   atomic.Int32
	mu      sync.Mutex
	w       io.Writer
	dropped atomic.Int64
}

// Dropped reports how many records failed to reach the underlying
// writer. Logging is best-effort by design, but a nonzero count tells
// operators the sink (disk, pipe) is rejecting writes.
func (l *Logger) Dropped() int64 { return l.dropped.Load() }

// NewLogger returns a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum recorded level.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// GetLevel returns the current minimum level.
func (l *Logger) GetLevel() Level { return Level(l.level.Load()) }

// SetOutput redirects the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// Log emits one record when level clears the threshold. kv is a flat
// alternating key/value list; values are formatted with %v and quoted
// when they contain spaces.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if l == nil || level < Level(l.level.Load()) || Level(l.level.Load()) == LevelOff {
		return
	}
	var b strings.Builder
	b.Grow(64 + 16*len(kv))
	b.WriteString("t=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprintf("%v", kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[i+1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := io.WriteString(l.w, b.String()); err != nil {
		l.dropped.Add(1)
	}
}

// Debugf, Infof, Warnf, Errorf log a message with key=value pairs at
// the corresponding level.
func (l *Logger) Debugf(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }
func (l *Logger) Infof(msg string, kv ...any)  { l.Log(LevelInfo, msg, kv...) }
func (l *Logger) Warnf(msg string, kv ...any)  { l.Log(LevelWarn, msg, kv...) }
func (l *Logger) Errorf(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"=") || s == "" {
		return strconv.Quote(s)
	}
	return s
}

// defaultLogger is the package-level logger used by library
// instrumentation; it writes to stderr at LevelWarn until a CLI's
// -log-level flag (or SetLogLevel) adjusts it.
var defaultLogger = NewLogger(os.Stderr, LevelWarn)

// Log emits a record through the package-level logger.
func Log(level Level, msg string, kv ...any) { defaultLogger.Log(level, msg, kv...) }

// Debugf, Infof, Warnf, Errorf log through the package-level logger.
func Debugf(msg string, kv ...any) { defaultLogger.Debugf(msg, kv...) }
func Infof(msg string, kv ...any)  { defaultLogger.Infof(msg, kv...) }
func Warnf(msg string, kv ...any)  { defaultLogger.Warnf(msg, kv...) }
func Errorf(msg string, kv ...any) { defaultLogger.Errorf(msg, kv...) }

// SetLogLevel adjusts the package-level logger's threshold.
func SetLogLevel(level Level) { defaultLogger.SetLevel(level) }

// SetLogOutput redirects the package-level logger (tests point it at a
// buffer or io.Discard).
func SetLogOutput(w io.Writer) { defaultLogger.SetOutput(w) }
