package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// SpanSnapshot is the exported aggregate of one span label path. The
// percentiles come from a per-path fixed reservoir (exact until the
// count exceeds the reservoir size, a uniform-subsample estimate
// after), so /metrics and bench summaries report tail latency per
// stage, not just means.
type SpanSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	LastNS  int64 `json:"last_ns"`
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	P99NS   int64 `json:"p99_ns"`
}

// Snapshot is a point-in-time JSON-serializable export of a registry.
// It round-trips through encoding/json losslessly.
type Snapshot struct {
	TakenUnixNS int64                        `json:"taken_unix_ns"`
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]float64           `json:"gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans       map[string]SpanSnapshot      `json:"spans,omitempty"`
	Training    map[string][]EpochStat       `json:"training,omitempty"`
}

// Snapshot exports the registry's current state. It is safe to call
// concurrently with metric updates; individual metrics are read
// atomically but the snapshot as a whole is not a consistent cut.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenUnixNS: time.Now().UnixNano(),
		Counters:    map[string]int64{},
		Gauges:      map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
		Spans:       map[string]SpanSnapshot{},
		Training:    map[string][]EpochStat{},
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := make(map[string]*SpanStat, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	series := make(map[string]*TrainSeries, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	r.mu.RUnlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramSnapshot{
			Bounds: h.Bounds(),
			Counts: h.BucketCounts(),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
	}
	for k, st := range spans {
		st.mu.Lock()
		samples := append([]int64(nil), st.samples...)
		s.Spans[k] = SpanSnapshot{
			Count:   st.count,
			TotalNS: int64(st.total),
			MinNS:   int64(st.min),
			MaxNS:   int64(st.max),
			LastNS:  int64(st.last),
		}
		st.mu.Unlock()
		sn := s.Spans[k]
		sn.P50NS = int64(quantileNS(samples, 0.50))
		sn.P95NS = int64(quantileNS(samples, 0.95))
		sn.P99NS = int64(quantileNS(samples, 0.99))
		s.Spans[k] = sn
	}
	for k, t := range series {
		s.Training[k] = t.Epochs()
	}
	return s
}

// MarshalIndent renders the snapshot as indented JSON.
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteJSON writes the snapshot as indented JSON to w.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteSnapshotFile takes a snapshot of the registry and writes it to
// path as indented JSON.
func (r *Registry) WriteSnapshotFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return r.Snapshot().WriteJSON(f)
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// SpanPaths returns the snapshot's span labels in sorted order.
func (s *Snapshot) SpanPaths() []string {
	out := make([]string, 0, len(s.Spans))
	for k := range s.Spans {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
