// Package ensemble implements deep-ensemble uncertainty quantification
// for the FCNN reconstructor — the first of the paper's stated future
// directions ("investigating neural networks that include measures of
// uncertainty during reconstruction (e.g., using deep ensembles,
// Bayesian neural networks)", Section V).
//
// An Ensemble pretrains M independently initialized FCNNs on
// independently sampled copies of the training timestep. At
// reconstruction time every member predicts each void location; the
// ensemble mean is the reconstruction and the member standard deviation
// is a per-point predictive uncertainty. Sampled grid nodes keep their
// exact value with zero uncertainty.
package ensemble

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fillvoid/internal/core"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
)

// Ensemble is a set of independently trained FCNN reconstructors.
type Ensemble struct {
	members []*core.FCNN
}

// Size returns the number of members.
func (e *Ensemble) Size() int { return len(e.members) }

// Members exposes the underlying reconstructors (read-only by
// convention; fine-tune clones instead of mutating).
func (e *Ensemble) Members() []*core.FCNN { return e.members }

// Pretrain trains an ensemble of size members. Each member gets a
// distinct initialization seed and a distinct sampling seed, which is
// the diversity source deep ensembles rely on. Training is sequential
// per member (each member already parallelizes internally).
func Pretrain(truth *grid.Volume, fieldName string, size int, baseSampler int64, opts core.Options) (*Ensemble, error) {
	if size < 2 {
		return nil, fmt.Errorf("ensemble: size %d, need >= 2", size)
	}
	e := &Ensemble{}
	for m := 0; m < size; m++ {
		memberOpts := opts
		memberOpts.Seed = opts.Seed + int64(m)*1009
		memberOpts.SubsampleSeed = opts.SubsampleSeed + int64(m)*2003
		sampler := &sampling.Importance{Seed: baseSampler + int64(m)*3001}
		model, err := core.Pretrain(truth, fieldName, sampler, memberOpts)
		if err != nil {
			return nil, fmt.Errorf("ensemble: member %d: %w", m, err)
		}
		e.members = append(e.members, model)
	}
	return e, nil
}

// FromModels wraps existing trained reconstructors as an ensemble.
func FromModels(models []*core.FCNN) (*Ensemble, error) {
	if len(models) < 2 {
		return nil, errors.New("ensemble: need >= 2 models")
	}
	return &Ensemble{members: models}, nil
}

// FineTune fine-tunes every member on a new timestep (each member keeps
// its own sampling stream), preserving ensemble diversity across time.
func (e *Ensemble) FineTune(truth *grid.Volume, baseSampler int64, mode core.FineTuneMode, epochs int) error {
	for m, member := range e.members {
		sampler := &sampling.Importance{Seed: baseSampler + int64(m)*3001}
		if err := member.FineTune(truth, sampler, mode, epochs); err != nil {
			return fmt.Errorf("ensemble: member %d: %w", m, err)
		}
	}
	return nil
}

// Reconstruct returns the ensemble-mean reconstruction and the
// per-point predictive standard deviation on the same grid. It is
// ReconstructCtx with a background context.
func (e *Ensemble) Reconstruct(c *pointcloud.Cloud, spec interp.GridSpec) (mean, stddev *grid.Volume, err error) {
	return e.ReconstructCtx(context.Background(), c, spec)
}

// ReconstructCtx is Reconstruct under a caller context. All members
// share one query plan — the k-d tree and nearest-sample table are built
// once, not per member — and run concurrently against it through
// parallel.ForCtx, so cancelling ctx (or the first member error) stops
// the whole ensemble like any other engine query. Each member's
// internal parallelism is bounded by its own Workers setting, so on a
// single-core box this degrades gracefully.
func (e *Ensemble) ReconstructCtx(ctx context.Context, c *pointcloud.Cloud, spec interp.GridSpec) (mean, stddev *grid.Volume, err error) {
	if len(e.members) == 0 {
		return nil, nil, errors.New("ensemble: empty")
	}
	plan, err := recon.NewPlan(c, spec)
	if err != nil {
		return nil, nil, err
	}
	region := recon.Full(spec)
	recons := make([][]float64, len(e.members))
	err = parallel.ForCtx(ctx, len(e.members), len(e.members), func(m int) error {
		dst := make([]float64, region.Len())
		if err := e.members[m].ReconstructRegion(ctx, plan, region, dst); err != nil {
			return fmt.Errorf("ensemble: member %d: %w", m, err)
		}
		recons[m] = dst
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	mean = spec.NewVolume()
	stddev = spec.NewVolume()
	invM := 1 / float64(len(e.members))
	for i := range mean.Data {
		mu := 0.0
		for _, r := range recons {
			mu += r[i]
		}
		mu *= invM
		varsum := 0.0
		for _, r := range recons {
			d := r[i] - mu
			varsum += d * d
		}
		mean.Data[i] = mu
		stddev.Data[i] = sqrt(varsum * invM)
	}
	return mean, stddev, nil
}

// Name implements interp.Reconstructor (returning the mean field).
func (e *Ensemble) Name() string { return "fcnn-ensemble" }

// ReconstructMean implements the single-output interp.Reconstructor
// contract: the ensemble mean without the uncertainty field.
func (e *Ensemble) ReconstructMean(c *pointcloud.Cloud, spec interp.GridSpec) (*grid.Volume, error) {
	mean, _, err := e.Reconstruct(c, spec)
	return mean, err
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
