package ensemble

import (
	"errors"
	"math"
	"sort"

	"fillvoid/internal/grid"
)

// CalibrationReport summarizes how well the ensemble's predictive
// uncertainty tracks its actual reconstruction error.
type CalibrationReport struct {
	// Correlation is the Pearson correlation between |error| and the
	// predicted standard deviation across all grid points. Well-behaved
	// ensembles are clearly positive.
	Correlation float64
	// Coverage2Sigma is the fraction of points whose true value lies
	// within mean ± 2*stddev. A perfectly calibrated Gaussian would
	// give ~0.95; deep ensembles are typically overconfident (lower).
	Coverage2Sigma float64
	// ErrorByDecile is the mean absolute error of the points grouped by
	// predicted-uncertainty decile (decile 0 = most confident). A
	// useful uncertainty makes this increase along the deciles.
	ErrorByDecile [10]float64
}

// Calibrate compares the ensemble output against ground truth.
func Calibrate(truth, mean, stddev *grid.Volume) (*CalibrationReport, error) {
	n := truth.Len()
	if mean.Len() != n || stddev.Len() != n {
		return nil, errors.New("ensemble: calibration size mismatch")
	}
	rep := &CalibrationReport{}

	// Pearson correlation between |err| and sigma.
	var sumE, sumS, sumEE, sumSS, sumES float64
	within := 0
	for i := 0; i < n; i++ {
		e := math.Abs(truth.Data[i] - mean.Data[i])
		s := stddev.Data[i]
		sumE += e
		sumS += s
		sumEE += e * e
		sumSS += s * s
		sumES += e * s
		if e <= 2*s {
			within++
		}
	}
	fn := float64(n)
	cov := sumES/fn - (sumE/fn)*(sumS/fn)
	varE := sumEE/fn - (sumE/fn)*(sumE/fn)
	varS := sumSS/fn - (sumS/fn)*(sumS/fn)
	if varE > 0 && varS > 0 {
		rep.Correlation = cov / math.Sqrt(varE*varS)
	}
	rep.Coverage2Sigma = float64(within) / fn

	// Error by predicted-uncertainty decile.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return stddev.Data[idx[a]] < stddev.Data[idx[b]] })
	per := n / 10
	if per == 0 {
		per = 1
	}
	for d := 0; d < 10; d++ {
		lo := d * per
		hi := lo + per
		if d == 9 || hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		sum := 0.0
		for _, i := range idx[lo:hi] {
			sum += math.Abs(truth.Data[i] - mean.Data[i])
		}
		rep.ErrorByDecile[d] = sum / float64(hi-lo)
	}
	return rep, nil
}
