package ensemble

import (
	"context"
	"errors"
	"math"
	"testing"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/metrics"
	"fillvoid/internal/sampling"
)

func tinyOptions() core.Options {
	return core.Options{
		Hidden:         []int{32, 16},
		Epochs:         30,
		FineTuneEpochs: 3,
		TrainFractions: []float64{0.02, 0.05},
		MaxTrainRows:   4000,
		BatchSize:      256,
		Seed:           1,
	}
}

func testVolume() *grid.Volume {
	gen := datasets.NewIsabel(7)
	return datasets.Volume(gen, 28, 28, 8, 10)
}

func TestPretrainValidation(t *testing.T) {
	v := testVolume()
	if _, err := Pretrain(v, "pressure", 1, 1, tinyOptions()); err == nil {
		t.Fatal("accepted ensemble of size 1")
	}
}

func TestFromModels(t *testing.T) {
	if _, err := FromModels(nil); err == nil {
		t.Fatal("accepted empty model list")
	}
}

func TestEnsembleReconstructAndUncertainty(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	truth := testVolume()
	e, err := Pretrain(truth, "pressure", 3, 5, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 3 {
		t.Fatalf("size %d", e.Size())
	}

	cloud, idxs, err := (&sampling.Importance{Seed: 9}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	mean, stddev, err := e.Reconstruct(cloud, interp.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	if mean.Len() != truth.Len() || stddev.Len() != truth.Len() {
		t.Fatal("output sizes")
	}
	// Standard deviations are non-negative and finite.
	for i, s := range stddev.Data {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("bad stddev %g at %d", s, i)
		}
	}
	// Sampled nodes are exact in every member, so uncertainty there is 0
	// up to the rounding of the mean/variance accumulation.
	for _, idx := range idxs {
		scale := math.Abs(truth.Data[idx]) + 1
		if stddev.Data[idx] > 1e-12*scale {
			t.Fatalf("sampled node %d has nonzero uncertainty %g", idx, stddev.Data[idx])
		}
		if math.Abs(mean.Data[idx]-truth.Data[idx]) > 1e-12*scale {
			t.Fatalf("sampled node %d mean %g != truth %g", idx, mean.Data[idx], truth.Data[idx])
		}
	}
	// The ensemble mean should be at least as good as the worst member.
	meanSNR, _ := metrics.SNR(truth, mean)
	worst := math.Inf(1)
	for _, m := range e.Members() {
		r, err := m.Reconstruct(cloud, interp.SpecOf(truth))
		if err != nil {
			t.Fatal(err)
		}
		s, _ := metrics.SNR(truth, r)
		if s < worst {
			worst = s
		}
	}
	t.Logf("ensemble mean %.2f dB, worst member %.2f dB", meanSNR, worst)
	if meanSNR < worst {
		t.Fatalf("ensemble mean (%.2f) below worst member (%.2f)", meanSNR, worst)
	}
}

func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	truth := testVolume()
	e, err := Pretrain(truth, "pressure", 3, 5, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cloud, _, err := (&sampling.Importance{Seed: 9}).Sample(truth, "pressure", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	mean, stddev, err := e.Reconstruct(cloud, interp.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Calibrate(truth, mean, stddev)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("corr=%.3f coverage=%.3f deciles=%v", rep.Correlation, rep.Coverage2Sigma, rep.ErrorByDecile)
	if rep.Correlation < 0 {
		t.Fatalf("uncertainty anti-correlates with error: %.3f", rep.Correlation)
	}
	if rep.Coverage2Sigma < 0 || rep.Coverage2Sigma > 1 {
		t.Fatalf("coverage %g outside [0,1]", rep.Coverage2Sigma)
	}
	// Most-uncertain decile should have higher error than most-confident.
	if rep.ErrorByDecile[9] <= rep.ErrorByDecile[0] {
		t.Fatalf("deciles not increasing: %v", rep.ErrorByDecile)
	}
}

func TestCalibrateSizeMismatch(t *testing.T) {
	a := grid.New(2, 2, 2)
	b := grid.New(3, 2, 2)
	if _, err := Calibrate(a, a, b); err == nil {
		t.Fatal("accepted size mismatch")
	}
}

func TestReconstructCtxCancelled(t *testing.T) {
	truth := testVolume()
	cloud, _, err := (&sampling.Importance{Seed: 9}).Sample(truth, "pressure", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	// Members are never invoked: the member fan-out must observe the
	// already-cancelled context before dispatching any work.
	e, err := FromModels([]*core.FCNN{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.ReconstructCtx(ctx, cloud, interp.SpecOf(truth)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
