// Package server turns the reconstruction engine into an HTTP service:
// load models once, keep an LRU of query plans keyed by (cloud content
// hash, grid spec) so repeated queries against the same sampled
// timestep share the spatial index, and answer full-grid / sub-box ROI
// / point-list queries with per-request contexts so a disconnected
// client cancels engine work mid-flight.
//
// Endpoints:
//
//	POST /v1/reconstruct  run a method over a region (inline cloud or cloud_id)
//	POST /v1/clouds       upload a cloud once, get its content-hash id
//	GET  /v1/methods      list registered reconstructors
//	GET  /v1/cluster      replica membership + routing counters (404 standalone)
//	GET  /healthz         liveness + in-flight/queue/cache counts
//	GET  /metrics         telemetry JSON snapshot
//	GET  /debug/traces    kept request traces (Chrome trace-event JSON)
//	     /debug/pprof/*   net/http/pprof, /debug/vars expvar
//
// Every request is traced: the handler opens a root span (continuing
// the caller's W3C traceparent when one is sent, and echoing the trace
// ID back in the response's traceparent header), the telemetry bridge
// attaches plan-build / execute / cache events underneath it, and the
// completed tree lands in the tracer's tail-sampled ring. Each request
// also gets an X-Request-ID (stamped into error bodies and the access
// log) and one structured access-log line.
//
// Admission is a bounded-concurrency semaphore with a bounded wait
// queue: when every slot is busy a request waits up to QueueTimeout for
// one (503 on timeout); when the queue itself is full the request is
// rejected immediately with 429. A slot is held only around the engine
// call itself — decode, validation, plan-cache access (singleflighted)
// and cluster fan-out all run unslotted, so a coordinator waiting on
// sub-queries can never starve the very replicas serving them.
// Shutdown stops accepting connections and drains in-flight
// reconstructions before returning.
//
// With Config.Cluster set, the server is one replica of a serving
// cluster: external queries route by the consistent hash of their
// (cloud, grid) plan key — executed locally when this replica owns the
// key, proxied whole to the owner otherwise, and large box regions
// fanned out as sub-box shards across replicas and stitched
// bit-identically. Cluster-internal sub-requests (marked by
// X-Fillvoid-Internal) always execute locally, which is what terminates
// the routing recursion.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/cluster"
	"fillvoid/internal/jobs"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
	"fillvoid/internal/trace"
)

// Config configures the reconstruction service. The zero value of every
// field picks a sensible default.
type Config struct {
	// Registry resolves method names; required (NewRegistry / the
	// interp standard registry, plus RegisterMethod for a loaded FCNN).
	Registry *recon.Registry
	// MaxConcurrent bounds simultaneously executing reconstructions
	// (default 2×GOMAXPROCS; reconstructions are internally parallel, so
	// this is deliberately small).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are rejected immediately with 429 (default 64).
	MaxQueue int
	// QueueTimeout is how long a queued request waits for a slot before
	// a 503 (default 5s).
	QueueTimeout time.Duration
	// RequestTimeout bounds one reconstruction end to end; exceeding it
	// cancels the engine and returns 504 (default 60s).
	RequestTimeout time.Duration
	// PlanCacheSize is the plan LRU capacity in entries (default 16).
	PlanCacheSize int
	// CloudCacheSize is the uploaded-cloud LRU capacity (default 32).
	CloudCacheSize int
	// MaxBodyBytes bounds request bodies (default 1 GiB).
	MaxBodyBytes int64
	// MaxGridPoints bounds the number of output points one request may
	// ask for (region length: the full grid, a sub-box, or a point
	// list). Beyond it the request is rejected with 413 instead of
	// attempting an attacker-sized allocation (default 1<<26, i.e. a
	// 512 MiB float64 volume).
	MaxGridPoints int64
	// Telemetry receives the server's metrics (default: the process
	// global registry).
	Telemetry *telemetry.Registry
	// Tracer receives per-request trace trees (default: the process
	// global tracer). New enables it and bridges Telemetry's spans into
	// it, so serving always collects traces.
	Tracer *trace.Tracer
	// Cluster, when set, makes this server one replica of a multi-replica
	// serving cluster (see internal/cluster): plan keys route by
	// consistent hash, large box queries fan out as shards. Nil serves
	// standalone.
	Cluster *cluster.Cluster
	// JobsDir enables the training service (POST /v1/train): per-job
	// durable state, checkpoints, and the persisted model tier live
	// under it, and unfinished jobs found there at startup resume from
	// their last checkpoint. Empty disables the training endpoints
	// (503); the model store still serves, memory-only.
	JobsDir string
	// TrainWorkers is the training worker pool size (default 1;
	// negative: none). It is separate from MaxConcurrent on purpose —
	// training must never starve reconstruction slots.
	TrainWorkers int
	// TrainQueue bounds queued training jobs; beyond it POST /v1/train
	// returns 429 (default 16).
	TrainQueue int
	// TrainCheckpointEvery is the default epoch period between job
	// checkpoints (default 25).
	TrainCheckpointEvery int
	// TrainFS overrides the checkpoint filesystem for training jobs
	// (default OS). The fault-injection tests arm failures through it.
	TrainFS checkpoint.FS
	// ModelCacheSize bounds decoded models held in memory (default 8).
	ModelCacheSize int
	// ProgressiveChunks is the default chunk count for progressive
	// reconstruction streams (default 8).
	ProgressiveChunks int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 16
	}
	if c.CloudCacheSize <= 0 {
		c.CloudCacheSize = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxGridPoints <= 0 {
		c.MaxGridPoints = 1 << 26
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default()
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 8
	}
	if c.ProgressiveChunks <= 0 {
		c.ProgressiveChunks = 8
	}
	return c
}

// Server is the reconstruction HTTP service. Construct with New, bind
// with Start, stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	reg     *recon.Registry
	tel     *telemetry.Registry
	tracer  *trace.Tracer
	plans   *planCache
	clouds  *cloudStore
	models  *jobs.ModelStore
	jobs    *jobs.Manager
	cluster *cluster.Cluster
	mux     *http.ServeMux

	sem   chan struct{}
	queue chan struct{}

	inFlight atomic.Int64
	queued   atomic.Int64

	ln      net.Listener
	httpSrv *http.Server
	sampler *telemetry.RuntimeSampler
}

// New builds the service (no listener yet; see Start and Handler).
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("server: Config.Registry is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		tel:     cfg.Telemetry,
		tracer:  cfg.Tracer,
		plans:   newPlanCache(cfg.PlanCacheSize, cfg.Telemetry),
		clouds:  newCloudStore(cfg.CloudCacheSize, cfg.Telemetry),
		cluster: cfg.Cluster,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		queue:   make(chan struct{}, cfg.MaxQueue),
	}
	// The model store always exists (reconstruct-by-model_id and model
	// replication work standalone); it only gains a durable tier when a
	// jobs directory is configured.
	modelDir := ""
	if cfg.JobsDir != "" {
		modelDir = filepath.Join(cfg.JobsDir, "models")
	}
	models, err := jobs.NewModelStore(modelDir, cfg.ModelCacheSize, cfg.Telemetry)
	if err != nil {
		return nil, err
	}
	s.models = models
	if cfg.JobsDir != "" {
		jm, err := jobs.New(jobs.Config{
			Dir:             filepath.Join(cfg.JobsDir, "jobs"),
			Workers:         cfg.TrainWorkers,
			Queue:           cfg.TrainQueue,
			CheckpointEvery: cfg.TrainCheckpointEvery,
			Models:          models,
			FS:              cfg.TrainFS,
			Telemetry:       cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		s.jobs = jm
	}
	// Serving without traces is flying blind: turn the tracer on and
	// bridge the engine's telemetry spans into it so every request tree
	// includes plan build, cache, and execute stages.
	s.tracer.SetEnabled(true)
	trace.Install(s.tracer, s.tel)
	// The engine (recon, parallel, nn) records into the process-global
	// registry, not the injected one. Bridge and enable it as well, or
	// a server handed its own registry would serve traces with no
	// plan-build or execute stages in them.
	if def := telemetry.Default(); def != s.tel {
		def.SetEnabled(true)
		trace.Install(s.tracer, def)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reconstruct", s.instrument("reconstruct", s.handleReconstruct))
	mux.HandleFunc("POST /v1/clouds", s.instrument("clouds", s.handleClouds))
	mux.HandleFunc("POST /v1/train", s.instrument("train", s.handleTrain))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs", s.handleJobCancel))
	mux.HandleFunc("GET /v1/models/{id}", s.instrument("models", s.handleModelGet))
	mux.HandleFunc("GET /v1/methods", s.instrument("methods", s.handleMethods))
	mux.HandleFunc("GET /v1/cluster", s.instrument("cluster", s.handleCluster))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /metrics", telemetry.MetricsHandler(s.tel))
	telemetry.RegisterDebug(mux)
	// RegisterDebug mounted /debug/traces for the process-global tracer;
	// this method-specific pattern takes precedence and serves the
	// server's own ring instead.
	mux.Handle("GET /debug/traces", trace.Handler(s.tracer))
	s.mux = mux
	return s, nil
}

// Handler returns the service's root handler (for tests and embedders
// that manage their own listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (use "127.0.0.1:0" for an ephemeral port) and serves
// in a background goroutine. It returns once the listener is bound.
func (s *Server) Start(addr string) error {
	if s.ln != nil {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	s.sampler = telemetry.StartRuntimeSampler(s.tel, time.Second)
	go s.httpSrv.Serve(ln)
	telemetry.Infof("fillvoid server listening", "addr", ln.Addr().String(),
		"max_concurrent", s.cfg.MaxConcurrent, "max_queue", s.cfg.MaxQueue)
	return nil
}

// stopSampler halts the runtime sampler once, from whichever of
// Shutdown/Close runs first.
func (s *Server) stopSampler() {
	if s.sampler != nil {
		s.sampler.Stop()
		s.sampler = nil
	}
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server. Training jobs stop first —
// each running job cancels at its next epoch boundary, writes a final
// checkpoint, and persists as interrupted so the next process resumes
// it — then the listener closes and in-flight reconstructions drain
// (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopSampler()
	if s.jobs != nil {
		if err := s.jobs.Close(ctx); err != nil {
			telemetry.Warnf("training jobs did not drain", "err", err)
		}
	}
	if s.httpSrv == nil {
		return nil
	}
	telemetry.Infof("fillvoid server draining", "in_flight", s.inFlight.Load())
	return s.httpSrv.Shutdown(ctx)
}

// Close stops the server immediately, abandoning in-flight requests.
// Running training jobs still get a short grace to checkpoint — losing
// at most an epoch of work, like the crash Close simulates.
func (s *Server) Close() error {
	s.stopSampler()
	if s.jobs != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.jobs.Close(ctx); err != nil {
			telemetry.Warnf("training jobs did not stop before close", "err", err)
		}
		cancel()
	}
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// statusWriter captures the response code and body size for
// per-endpoint metrics and the access log, and carries the per-request
// identifiers that writeError and setCacheNote stamp into responses.
type statusWriter struct {
	http.ResponseWriter
	code   int
	bytes  int64
	reqID  string
	errMsg string
	cache  string
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so progressive NDJSON chunks
// reach the client as they complete instead of buffering to the end.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// setCacheNote records a cache outcome ("hit"/"miss") on the request,
// for its access-log line and trace span. No-op outside instrument.
func setCacheNote(w http.ResponseWriter, note string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.cache = note
	}
}

// instrument wraps a handler with per-request observability: a trace
// root span (continuing an incoming W3C traceparent and echoing the
// trace ID back), an X-Request-ID header stamped into error bodies,
// the per-endpoint latency histogram and request/error counters, and
// one structured access-log line.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := trace.NewSpanID().String()
		ctx := r.Context()
		var sp *trace.Span
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tid, sid, _, err := trace.ParseTraceparent(tp); err == nil {
				ctx, sp = s.tracer.StartRemote(ctx, "server/"+name, tid, sid)
			}
		}
		if sp == nil {
			ctx, sp = s.tracer.Start(ctx, "server/"+name)
		}
		route := r.Method + " " + r.URL.Path
		sp.SetAttr("request_id", reqID)
		sp.SetAttr("route", route)
		w.Header().Set("X-Request-ID", reqID)
		traceID := ""
		if tid := sp.TraceID(); !tid.IsZero() {
			traceID = tid.String()
			w.Header().Set("traceparent", trace.FormatTraceparent(tid, sp.ID(), true))
		}

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK, reqID: reqID}
		h(sw, r.WithContext(ctx))

		d := time.Since(start)
		sp.SetAttr("status", strconv.Itoa(sw.code))
		if sw.cache != "" {
			sp.SetAttr("plan_cache", sw.cache)
		}
		if sw.code >= 400 {
			msg := sw.errMsg
			if msg == "" {
				msg = http.StatusText(sw.code)
			}
			sp.SetError(msg)
		}
		sp.End()

		s.tel.Histogram("server."+name+".seconds", nil).Observe(d.Seconds())
		s.tel.Counter("server." + name + ".requests").Inc()
		if sw.code >= 400 {
			s.tel.Counter(fmt.Sprintf("server.%s.errors.%dxx", name, sw.code/100)).Inc()
		}

		kv := []any{
			"request_id", reqID,
			"route", route,
			"status", sw.code,
			"bytes", sw.bytes,
			"duration_ms", float64(d) / float64(time.Millisecond),
		}
		if traceID != "" {
			kv = append(kv, "trace_id", traceID)
		}
		if sw.cache != "" {
			kv = append(kv, "plan_cache", sw.cache)
		}
		if sw.code >= 400 {
			kv = append(kv, "error", sw.errMsg)
			telemetry.Warnf("request", kv...)
		} else {
			telemetry.Infof("request", kv...)
		}
	}
}

// gridPoints returns spec's total point count, or -1 when the product
// overflows int64 (dims come straight off the wire).
func gridPoints(spec recon.GridSpec) int64 {
	nx, ny, nz := int64(spec.NX), int64(spec.NY), int64(spec.NZ)
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return -1
	}
	if ny > (1<<62)/nx || nz > (1<<62)/(nx*ny) {
		return -1
	}
	return nx * ny * nz
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is gone; all we can do is count the failure
		// so operators see response-path trouble in /metrics. Count on
		// the server's own registry — a server handed an injected
		// registry must not leak its failures into the process-global
		// one, where its operators would never look.
		s.tel.Counter("server.response_encode_errors").Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	resp := errorResponse{Error: msg}
	if sw, ok := w.(*statusWriter); ok {
		sw.errMsg = msg
		resp.RequestID = sw.reqID
	}
	s.writeJSON(w, code, resp)
}

// decodeBody decodes one JSON request body under the configured size
// cap, mapping the cap trip to 413 (the body is well-formed but too
// big — telling the client "bad request" would send them debugging
// their JSON instead of their payload size) and everything else to 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any, what string) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d byte limit", mbe.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "decoding %s: %v", what, err)
		return false
	}
	return true
}

// acquire implements admission: fast path straight into an execution
// slot; otherwise take a bounded queue slot and wait up to QueueTimeout.
// It returns a release func on success, or the HTTP status to reject
// with (429 queue full, 503 queue timeout, 499 client gone).
func (s *Server) acquire(ctx context.Context) (release func(), status int, err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.queue <- struct{}{}:
		default:
			s.tel.Counter("server.admission.rejected_429").Inc()
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("queue full (%d waiting, %d executing)", s.cfg.MaxQueue, s.cfg.MaxConcurrent)
		}
		s.queued.Add(1)
		timer := time.NewTimer(s.cfg.QueueTimeout)
		defer func() {
			timer.Stop()
			s.queued.Add(-1)
			<-s.queue
		}()
		select {
		case s.sem <- struct{}{}:
		case <-timer.C:
			s.tel.Counter("server.admission.rejected_503").Inc()
			return nil, http.StatusServiceUnavailable,
				fmt.Errorf("no execution slot within %s", s.cfg.QueueTimeout)
		case <-ctx.Done():
			s.tel.Counter("server.admission.client_gone").Inc()
			return nil, 499, ctx.Err()
		}
	}
	s.inFlight.Add(1)
	s.tel.Gauge("server.in_flight").Set(float64(s.inFlight.Load()))
	return func() {
		s.inFlight.Add(-1)
		s.tel.Gauge("server.in_flight").Set(float64(s.inFlight.Load()))
		<-s.sem
	}, 0, nil
}

// resolveCloud returns the request's cloud and its content hash, either
// from the inline payload (stored for reuse) or from the cloud store.
func (s *Server) resolveCloud(req *ReconstructRequest) (*pointcloud.Cloud, recon.CloudHash, int, error) {
	switch {
	case req.Cloud != nil && req.CloudID != "":
		return nil, 0, http.StatusBadRequest, errors.New("set either cloud or cloud_id, not both")
	case req.Cloud != nil:
		c, err := req.Cloud.toCloud()
		if err != nil {
			return nil, 0, http.StatusBadRequest, err
		}
		return c, s.clouds.put(c), 0, nil
	case req.CloudID != "":
		h, err := recon.ParseCloudHash(req.CloudID)
		if err != nil {
			return nil, 0, http.StatusBadRequest, err
		}
		c, ok := s.clouds.get(h)
		if !ok {
			return nil, 0, http.StatusNotFound,
				fmt.Errorf("cloud %s not in store (re-upload via /v1/clouds)", req.CloudID)
		}
		return c, h, 0, nil
	default:
		return nil, 0, http.StatusBadRequest, errors.New("request needs cloud or cloud_id")
	}
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	// Decode and validate before admission: a malformed or oversized
	// request must not occupy an execution slot (under load, a burst of
	// bad requests used to 503 well-formed ones behind them in the
	// queue), and the cluster fan-out path below must hold no slot while
	// it waits on sub-queries that may land back on this very replica.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req ReconstructRequest
	if !s.decodeBody(w, r, &req, "request") {
		return
	}
	m, method, status, err := s.resolveMethod(ctx, &req, r)
	if err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	if req.Quant != "" {
		// Quantized inference is an opt-in per-request view of methods
		// that support it (the fcnn reconstructor); the view shares the
		// underlying model, so taking it per request is cheap.
		qm, ok := m.(interface {
			WithQuant(string) (recon.Reconstructor, error)
		})
		if !ok {
			s.writeError(w, http.StatusBadRequest, "method %q does not support quantized inference", method)
			return
		}
		if m, err = qm.WithQuant(req.Quant); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	cloud, hash, status, err := s.resolveCloud(&req)
	if err != nil {
		s.writeError(w, status, "%v", err)
		return
	}
	spec, err := req.Grid.toSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Bound the grid before Region math touches it: NX*NY*NZ from the
	// wire can overflow int, and even in range it sizes the output
	// allocation, so it must not exceed the configured ceiling.
	if pts := gridPoints(spec); pts < 0 || pts > s.cfg.MaxGridPoints {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"grid %dx%dx%d exceeds the server limit of %d points",
			spec.NX, spec.NY, spec.NZ, s.cfg.MaxGridPoints)
		return
	}
	region, err := req.Region.toRegion(spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Progressive && region.IsPoints() {
		s.writeError(w, http.StatusBadRequest, "progressive responses need a box or full-grid region, not points")
		return
	}
	key := recon.PlanKey{Cloud: hash, Spec: spec}

	// Cluster routing applies to external queries only: internal
	// sub-requests carry X-Fillvoid-Internal and always execute locally,
	// which terminates the recursion. Progressive streams and stored-
	// model queries also execute locally: a proxied stream would buffer
	// at the coordinator, and peers are not guaranteed to hold the model
	// (the model store pulls on demand instead).
	if s.cluster != nil && !cluster.IsInternal(r) && !req.Progressive && req.ModelID == "" {
		route, owner, width := s.cluster.Plan(key.Hash(), region)
		switch route {
		case cluster.RouteProxy:
			s.proxyReconstruct(ctx, w, owner, &req, cloud, hash)
			return
		case cluster.RouteFanout:
			s.fanoutReconstruct(ctx, w, &req, key, cloud, spec, region, width)
			return
		}
	}

	// The plan build runs singleflighted and unslotted: concurrent
	// first requests for one key coalesce onto a single recon.NewPlan,
	// and an expensive build never pins an execution slot.
	_, psp := trace.Start(ctx, "server/plan-cache")
	plan, cached, err := s.plans.getOrBuild(key, cloud, spec)
	if err != nil {
		psp.SetError(err.Error())
		psp.End()
		s.writeError(w, http.StatusBadRequest, "building plan: %v", err)
		return
	}
	cacheNote := "miss"
	if cached {
		cacheNote = "hit"
	}
	psp.SetAttr("cached", cacheNote)
	psp.End()
	setCacheNote(w, cacheNote)

	release, status, err := s.acquire(r.Context())
	if err != nil {
		if status == 499 {
			// Client already gone; nothing to write.
			return
		}
		s.writeError(w, status, "%v", err)
		return
	}
	defer release()

	if req.Progressive {
		// One admission slot covers the whole stream: chunks run
		// sequentially, so the stream costs what one reconstruction
		// costs, just delivered incrementally.
		s.progressiveReconstruct(ctx, w, m, method, plan, spec, region, hash, &req)
		return
	}

	start := time.Now()
	vol, err := recon.Reconstruct(ctx, m, plan, region)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client disconnected mid-reconstruction; the context
			// cancellation already stopped the engine workers.
			s.tel.Counter("server.reconstruct.cancelled").Inc()
			telemetry.Debugf("reconstruction cancelled by client", "method", req.Method)
		case errors.Is(err, context.DeadlineExceeded):
			s.tel.Counter("server.reconstruct.timeout").Inc()
			s.writeError(w, http.StatusGatewayTimeout, "reconstruction exceeded %s", s.cfg.RequestTimeout)
		default:
			s.writeError(w, http.StatusUnprocessableEntity, "reconstruction failed: %v", err)
		}
		return
	}
	s.tel.Counter("server.reconstruct.points").Add(int64(region.Len()))
	s.writeJSON(w, http.StatusOK, &ReconstructResponse{
		Method:     method,
		Dims:       [3]int{vol.NX, vol.NY, vol.NZ},
		Origin:     [3]float64{vol.Origin.X, vol.Origin.Y, vol.Origin.Z},
		Spacing:    [3]float64{vol.Spacing.X, vol.Spacing.Y, vol.Spacing.Z},
		Values:     vol.Data,
		CloudID:    hash.String(),
		PlanCached: cached,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Quant:      req.Quant,
		Replica:    s.replicaID(),
		ModelID:    req.ModelID,
	})
}

// resolveMethod picks the reconstructor for a request: a stored model
// when model_id is set (fetched from a peer on a local miss), else the
// named registry method.
func (s *Server) resolveMethod(ctx context.Context, req *ReconstructRequest, r *http.Request) (recon.Reconstructor, string, int, error) {
	if req.ModelID == "" {
		m, err := s.reg.Get(req.Method)
		if err != nil {
			return nil, "", http.StatusBadRequest, err
		}
		return m, req.Method, 0, nil
	}
	if req.Method != "" && req.Method != "fcnn" {
		return nil, "", http.StatusBadRequest,
			fmt.Errorf("model_id selects a stored fcnn model; method must be empty or \"fcnn\", not %q", req.Method)
	}
	m, err := s.getModel(ctx, req.ModelID, r)
	if err != nil {
		if errors.Is(err, jobs.ErrModelNotFound) {
			return nil, "", http.StatusNotFound,
				fmt.Errorf("model %s not in store (train via /v1/train)", req.ModelID)
		}
		return nil, "", http.StatusInternalServerError, err
	}
	return m, "fcnn", 0, nil
}

// getModel resolves a model id locally, pulling from cluster peers on a
// miss (the fetched bytes are cached, so the next query is local).
func (s *Server) getModel(ctx context.Context, id string, r *http.Request) (recon.Reconstructor, error) {
	m, err := s.models.Get(id)
	if err == nil {
		return m, nil
	}
	if !errors.Is(err, jobs.ErrModelNotFound) || s.cluster == nil || cluster.IsInternal(r) || !jobs.ValidID(id) {
		return nil, err
	}
	status, body, found := s.cluster.QueryPeers(ctx, http.MethodGet, "/v1/models/"+id)
	if !found || status != http.StatusOK {
		return nil, err
	}
	if _, perr := s.models.PutBytes(body); perr != nil {
		telemetry.Warnf("peer model fetch returned invalid bytes", "model", id, "err", perr)
		return nil, err
	}
	return s.models.Get(id)
}

// replicaID names this replica in clustered responses; empty (and
// omitted from the JSON) standalone.
func (s *Server) replicaID() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self().ID
}

// proxyReconstruct forwards a whole query to the replica owning its
// plan key and relays the owner's response verbatim, so only the
// owner's plan cache holds the plan. The inline cloud (if any) is
// rewritten to its cloud_id — the coordinator already stored it, and
// the owner pulls it via the replication push on a miss.
func (s *Server) proxyReconstruct(ctx context.Context, w http.ResponseWriter, owner cluster.Member, req *ReconstructRequest, cloud *pointcloud.Cloud, hash recon.CloudHash) {
	fwd := *req
	fwd.Cloud = nil
	fwd.CloudID = hash.String()
	body, err := json.Marshal(&fwd)
	if err != nil {
		s.writeError(w, http.StatusBadGateway, "encoding proxy request: %v", err)
		return
	}
	status, respBody, err := s.cluster.Proxy(ctx, owner, body, cloud)
	if err != nil {
		s.writeError(w, http.StatusBadGateway, "proxy to replica %s: %v", owner.ID, err)
		return
	}
	if sw, ok := w.(*statusWriter); ok && status >= 400 {
		sw.errMsg = fmt.Sprintf("proxied error from replica %s", owner.ID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.HeaderReplica, owner.ID)
	w.WriteHeader(status)
	if _, err := w.Write(respBody); err != nil {
		s.tel.Counter("server.response_encode_errors").Inc()
	}
}

// fanoutReconstruct serves a large box query by sharding it across the
// cluster and stitching the sub-volumes; the result is bit-identical to
// a single-replica run because each shard is an ordinary ROI query and
// the engine guarantees ROI output equals the full-grid values.
func (s *Server) fanoutReconstruct(ctx context.Context, w http.ResponseWriter, req *ReconstructRequest, key recon.PlanKey, cloud *pointcloud.Cloud, spec recon.GridSpec, region recon.Region, width int) {
	start := time.Now()
	res, err := s.cluster.Fanout(ctx, &cluster.Query{
		Method:  req.Method,
		Quant:   req.Quant,
		CloudID: key.Cloud.String(),
		Cloud:   cloud,
		Spec:    spec,
		Region:  region,
		KeyHash: key.Hash(),
	}, width)
	if err != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.tel.Counter("server.reconstruct.timeout").Inc()
			s.writeError(w, http.StatusGatewayTimeout, "sharded reconstruction exceeded %s", s.cfg.RequestTimeout)
			return
		}
		s.writeError(w, http.StatusBadGateway, "sharded reconstruction: %v", err)
		return
	}
	s.tel.Counter("server.reconstruct.points").Add(int64(region.Len()))
	nx, ny, nz := region.Dims()
	origin := region.Origin(spec)
	s.writeJSON(w, http.StatusOK, &ReconstructResponse{
		Method:     req.Method,
		Dims:       [3]int{nx, ny, nz},
		Origin:     [3]float64{origin.X, origin.Y, origin.Z},
		Spacing:    [3]float64{spec.Spacing.X, spec.Spacing.Y, spec.Spacing.Z},
		Values:     res.Values,
		CloudID:    key.Cloud.String(),
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		Quant:      req.Quant,
		Replica:    s.replicaID(),
		Shards:     res.Shards,
	})
}

func (s *Server) handleClouds(w http.ResponseWriter, r *http.Request) {
	var cj CloudJSON
	if !s.decodeBody(w, r, &cj, "cloud") {
		return
	}
	c, err := cj.toCloud()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h := s.clouds.put(c)
	// Broadcast external uploads to the peers (best effort, counted on
	// failure) so sharded sub-queries find the cloud already resident;
	// replication pushes themselves carry the internal marker and stop
	// here.
	if s.cluster != nil && !cluster.IsInternal(r) {
		if body, err := json.Marshal(&cj); err == nil {
			s.cluster.ReplicateCloud(r.Context(), body)
		}
	}
	s.writeJSON(w, http.StatusOK, &UploadResponse{CloudID: h.String(), Points: c.Len()})
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		s.writeError(w, http.StatusNotFound, "clustering not enabled (start with -peers)")
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.StatusSnapshot())
}

func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, &MethodsResponse{Methods: s.reg.Names()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := &HealthResponse{
		Status:   "ok",
		InFlight: s.inFlight.Load(),
		Queued:   s.queued.Load(),
		Plans:    s.plans.len(),
		Clouds:   s.clouds.len(),
		Models:   s.models.Len(),
		Training: s.jobs != nil,
	}
	if s.jobs != nil {
		resp.JobsQueued, resp.JobsRunning = s.jobs.Depth()
	}
	s.writeJSON(w, http.StatusOK, resp)
}
