package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
)

// testCloud builds a deterministic synthetic cloud inside the unit cube.
func testCloud(n int, seed int64) *CloudJSON {
	rng := rand.New(rand.NewSource(seed))
	cj := &CloudJSON{Name: "pressure"}
	for i := 0; i < n; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		cj.Points = append(cj.Points, [3]float64{x, y, z})
		cj.Values = append(cj.Values, x+2*y-z)
	}
	return cj
}

func testGrid() GridJSON {
	sp := [3]float64{1.0 / 15, 1.0 / 15, 1.0 / 7}
	return GridJSON{Dims: [3]int{16, 16, 8}, Spacing: &sp}
}

// startServer boots a Server on an ephemeral port with an isolated
// telemetry registry and tears it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = interp.StandardRegistry(2)
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + s.Addr()
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// stubRecon is a scriptable reconstructor for admission/cancellation
// tests.
type stubRecon struct {
	name string
	fn   func(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error
}

func (s *stubRecon) Name() string { return s.name }
func (s *stubRecon) Reconstruct(c *pointcloud.Cloud, spec recon.GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), s, c, spec)
}
func (s *stubRecon) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	return s.fn(ctx, p, region, dst)
}

// TestConcurrentROIRequestsShareOnePlan is the acceptance load test: 32
// concurrent sub-box queries against one uploaded cloud must all
// succeed, share a single cached plan (hits > misses, exactly one
// miss), and leave the admission counters clean. Run under -race.
func TestConcurrentROIRequestsShareOnePlan(t *testing.T) {
	tel := telemetry.NewRegistry()
	s, base := startServer(t, Config{Telemetry: tel})

	code, body := postJSON(t, base+"/v1/clouds", testCloud(400, 1))
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}

	// Warm the plan with one full-grid query.
	warm := ReconstructRequest{Method: "nearest", CloudID: up.CloudID, Grid: testGrid()}
	if code, body := postJSON(t, base+"/v1/reconstruct", warm); code != http.StatusOK {
		t.Fatalf("warm query: %d %s", code, body)
	}

	const clients = 32
	var wg sync.WaitGroup
	var failures atomic.Int64
	var notCached atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			i0 := i % 8
			req := ReconstructRequest{
				Method:  "nearest",
				CloudID: up.CloudID,
				Grid:    testGrid(),
				Region:  RegionJSON{Box: &[6]int{i0, 0, 0, i0 + 8, 8, 4}},
			}
			b, _ := json.Marshal(req)
			resp, err := http.Post(base+"/v1/reconstruct", "application/json", bytes.NewReader(b))
			if err != nil {
				failures.Add(1)
				return
			}
			defer resp.Body.Close()
			var rr ReconstructResponse
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&rr) != nil {
				failures.Add(1)
				return
			}
			if len(rr.Values) != 8*8*4 || rr.Dims != [3]int{8, 8, 4} {
				failures.Add(1)
				return
			}
			if !rr.PlanCached {
				notCached.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d of %d concurrent ROI requests failed", n, clients)
	}
	if n := notCached.Load(); n > 0 {
		t.Fatalf("%d requests missed the warmed plan", n)
	}
	hits := tel.Counter("server.plan_cache.hits").Value()
	misses := tel.Counter("server.plan_cache.misses").Value()
	if misses != 1 {
		t.Fatalf("plan cache misses = %d, want 1", misses)
	}
	if hits <= misses {
		t.Fatalf("plan cache hits %d not > misses %d", hits, misses)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight count %d after drain", got)
	}
	if c := tel.Histogram("server.reconstruct.seconds", nil).Count(); c != int64(clients)+1 {
		t.Fatalf("latency histogram has %d observations, want %d", c, clients+1)
	}
}

// TestROIMatchesFullGrid checks a served sub-box equals the same box of
// a served full grid (the engine guarantees bit-identity; the HTTP
// layer must preserve it).
func TestROIMatchesFullGrid(t *testing.T) {
	_, base := startServer(t, Config{})
	cloud := testCloud(200, 2)

	full := ReconstructRequest{Method: "shepard", Cloud: cloud, Grid: testGrid()}
	code, body := postJSON(t, base+"/v1/reconstruct", full)
	if code != http.StatusOK {
		t.Fatalf("full: %d %s", code, body)
	}
	var fullResp ReconstructResponse
	if err := json.Unmarshal(body, &fullResp); err != nil {
		t.Fatal(err)
	}

	box := [6]int{3, 2, 1, 11, 10, 5}
	roi := ReconstructRequest{Method: "shepard", CloudID: fullResp.CloudID, Grid: testGrid(),
		Region: RegionJSON{Box: &box}}
	code, body = postJSON(t, base+"/v1/reconstruct", roi)
	if code != http.StatusOK {
		t.Fatalf("roi: %d %s", code, body)
	}
	var roiResp ReconstructResponse
	if err := json.Unmarshal(body, &roiResp); err != nil {
		t.Fatal(err)
	}
	if !roiResp.PlanCached {
		t.Fatal("ROI against just-queried cloud did not hit the plan cache")
	}
	nx, ny := 16, 16
	for m, v := range roiResp.Values {
		w, h := box[3]-box[0], box[4]-box[1]
		i := box[0] + m%w
		j := box[1] + (m/w)%h
		k := box[2] + m/(w*h)
		if fv := fullResp.Values[i+nx*(j+ny*k)]; fv != v {
			t.Fatalf("roi[%d] = %g, full grid (%d,%d,%d) = %g", m, v, i, j, k, fv)
		}
	}
}

// TestPointQueries exercises the point-list region path end to end.
func TestPointQueries(t *testing.T) {
	_, base := startServer(t, Config{})
	req := ReconstructRequest{
		Method: "nearest",
		Cloud:  testCloud(100, 3),
		Grid:   testGrid(),
		Region: RegionJSON{Points: [][3]float64{{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}, {0.5, 0.5, 0.5}}},
	}
	code, body := postJSON(t, base+"/v1/reconstruct", req)
	if code != http.StatusOK {
		t.Fatalf("points: %d %s", code, body)
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != 3 || resp.Dims != [3]int{3, 1, 1} {
		t.Fatalf("point query shape: %+v", resp.Dims)
	}
}

// TestAdmissionBackpressure pins the semaphore + bounded queue: with
// one slot and a one-deep queue, a second request waits (503 on queue
// timeout) and a third is rejected immediately with 429.
func TestAdmissionBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	reg := recon.NewRegistry()
	reg.RegisterMethod(&stubRecon{name: "block", fn: func(ctx context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		started <- struct{}{}
		select {
		case <-unblock:
		case <-ctx.Done():
			return ctx.Err()
		}
		for i := range dst {
			dst[i] = 1
		}
		return nil
	}})
	s, base := startServer(t, Config{
		Registry:      reg,
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  150 * time.Millisecond,
	})
	req := ReconstructRequest{Method: "block", Cloud: testCloud(20, 4), Grid: GridJSON{Dims: [3]int{4, 4, 2}}}

	// A: takes the only slot.
	aDone := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, base+"/v1/reconstruct", req)
		aDone <- code
	}()
	<-started

	// B: queues, then times out with 503.
	bDone := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, base+"/v1/reconstruct", req)
		bDone <- code
	}()
	// Wait until B occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// C: queue full, immediate 429.
	code, body := postJSON(t, base+"/v1/reconstruct", req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", code, body)
	}

	if code := <-bDone; code != http.StatusServiceUnavailable {
		t.Fatalf("queued request: %d, want 503", code)
	}
	close(unblock)
	if code := <-aDone; code != http.StatusOK {
		t.Fatalf("first request: %d, want 200", code)
	}
}

// TestClientCancelStopsEngine checks that a client disconnect reaches
// the reconstructor's context and stops engine work early.
func TestClientCancelStopsEngine(t *testing.T) {
	started := make(chan struct{}, 1)
	sawCancel := make(chan error, 1)
	reg := recon.NewRegistry()
	reg.RegisterMethod(&stubRecon{name: "wait", fn: func(ctx context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			sawCancel <- ctx.Err()
			return ctx.Err()
		case <-time.After(10 * time.Second):
			sawCancel <- nil
			return nil
		}
	}})
	_, base := startServer(t, Config{Registry: reg})

	body, _ := json.Marshal(ReconstructRequest{Method: "wait", Cloud: testCloud(20, 5), Grid: GridJSON{Dims: [3]int{4, 4, 2}}})
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/reconstruct", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-sawCancel:
		if err == nil {
			t.Fatal("reconstructor finished instead of observing cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not observe client cancellation")
	}
	if err := <-errc; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
}

// TestGracefulShutdownDrains checks Shutdown waits for an in-flight
// reconstruction to finish and the client still gets its 200.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	reg := recon.NewRegistry()
	reg.RegisterMethod(&stubRecon{name: "slow", fn: func(ctx context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		started <- struct{}{}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
		for i := range dst {
			dst[i] = 7
		}
		return nil
	}})
	s, base := startServer(t, Config{Registry: reg})

	result := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, base+"/v1/reconstruct", ReconstructRequest{
			Method: "slow", Cloud: testCloud(20, 6), Grid: GridJSON{Dims: [3]int{4, 4, 2}}})
		result <- code
	}()
	<-started

	shutdownStart := time.Now()
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	drain := time.Since(shutdownStart)
	if code := <-result; code != http.StatusOK {
		t.Fatalf("in-flight request got %d during graceful shutdown", code)
	}
	if drain < 100*time.Millisecond {
		t.Fatalf("shutdown returned in %s, before the in-flight request could finish", drain)
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// TestPlanCacheEviction checks the LRU bound: with capacity 1,
// alternating clouds evict each other and the eviction counter moves.
func TestPlanCacheEviction(t *testing.T) {
	tel := telemetry.NewRegistry()
	_, base := startServer(t, Config{Telemetry: tel, PlanCacheSize: 1})
	a, b := testCloud(50, 7), testCloud(50, 8)
	for i := 0; i < 2; i++ {
		for _, c := range []*CloudJSON{a, b} {
			req := ReconstructRequest{Method: "nearest", Cloud: c, Grid: GridJSON{Dims: [3]int{4, 4, 2}}}
			if code, body := postJSON(t, base+"/v1/reconstruct", req); code != http.StatusOK {
				t.Fatalf("query: %d %s", code, body)
			}
		}
	}
	if ev := tel.Counter("server.plan_cache.evictions").Value(); ev < 2 {
		t.Fatalf("evictions = %d, want >= 2 with capacity 1 and alternating clouds", ev)
	}
	if misses := tel.Counter("server.plan_cache.misses").Value(); misses < 3 {
		t.Fatalf("misses = %d, want >= 3 (thrashing cache)", misses)
	}
}

// TestBadRequests covers the validation surface: every malformed input
// must produce a 4xx with a JSON error, never a 5xx or a hang.
func TestBadRequests(t *testing.T) {
	_, base := startServer(t, Config{})
	grid4 := GridJSON{Dims: [3]int{4, 4, 2}}
	cases := []struct {
		name string
		req  ReconstructRequest
		want int
	}{
		{"unknown method", ReconstructRequest{Method: "nope", Cloud: testCloud(10, 9), Grid: grid4}, http.StatusBadRequest},
		{"no cloud", ReconstructRequest{Method: "nearest", Grid: grid4}, http.StatusBadRequest},
		{"both cloud forms", ReconstructRequest{Method: "nearest", Cloud: testCloud(10, 9), CloudID: "0000000000000000", Grid: grid4}, http.StatusBadRequest},
		{"unknown cloud id", ReconstructRequest{Method: "nearest", CloudID: "00000000000000ff", Grid: grid4}, http.StatusNotFound},
		{"bad cloud id", ReconstructRequest{Method: "nearest", CloudID: "xyz", Grid: grid4}, http.StatusBadRequest},
		{"zero grid", ReconstructRequest{Method: "nearest", Cloud: testCloud(10, 9), Grid: GridJSON{}}, http.StatusBadRequest},
		{"bad box", ReconstructRequest{Method: "nearest", Cloud: testCloud(10, 9), Grid: grid4,
			Region: RegionJSON{Box: &[6]int{0, 0, 0, 9, 9, 9}}}, http.StatusBadRequest},
		{"box and points", ReconstructRequest{Method: "nearest", Cloud: testCloud(10, 9), Grid: grid4,
			Region: RegionJSON{Box: &[6]int{0, 0, 0, 2, 2, 2}, Points: [][3]float64{{0, 0, 0}}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := postJSON(t, base+"/v1/reconstruct", tc.req)
		if code != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, body, tc.want)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not a JSON envelope: %s", tc.name, body)
		}
		if tc.name == "unknown method" && !bytes.Contains(body, []byte("nearest")) {
			t.Errorf("unknown-method error does not list registered names: %s", body)
		}
	}

	// Mismatched point/value lengths on upload.
	bad := &CloudJSON{Points: [][3]float64{{0, 0, 0}}, Values: []float64{1, 2}}
	if code, _ := postJSON(t, base+"/v1/clouds", bad); code != http.StatusBadRequest {
		t.Errorf("mismatched upload accepted with %d", code)
	}
	// Garbage JSON body.
	resp, err := http.Post(base+"/v1/reconstruct", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: %d, want 400", resp.StatusCode)
	}
}

// TestHealthzMethodsMetrics smoke-tests the observability endpoints.
func TestHealthzMethodsMetrics(t *testing.T) {
	_, base := startServer(t, Config{})
	var h HealthResponse
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	var m MethodsResponse
	if code := getJSON(t, base+"/v1/methods", &m); code != http.StatusOK || len(m.Methods) == 0 {
		t.Fatalf("methods: %d %+v", code, m)
	}
	found := false
	for _, name := range m.Methods {
		if name == "nearest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("methods list %v missing nearest", m.Methods)
	}
	var snap map[string]any
	if code := getJSON(t, base+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %d", resp.StatusCode)
	}
}

// TestRequestTimeout checks a reconstruction exceeding RequestTimeout
// is cancelled and reported as 504.
func TestRequestTimeout(t *testing.T) {
	reg := recon.NewRegistry()
	reg.RegisterMethod(&stubRecon{name: "forever", fn: func(ctx context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	_, base := startServer(t, Config{Registry: reg, RequestTimeout: 100 * time.Millisecond})
	req := ReconstructRequest{Method: "forever", Cloud: testCloud(10, 10), Grid: GridJSON{Dims: [3]int{2, 2, 2}}}
	code, body := postJSON(t, base+"/v1/reconstruct", req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timeout request: %d %s, want 504", code, body)
	}
}

// TestConfigValidation checks New rejects a missing registry.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil registry")
	}
}

// TestUploadIdempotent checks re-uploading the same cloud returns the
// same id (content addressing).
func TestUploadIdempotent(t *testing.T) {
	_, base := startServer(t, Config{})
	c := testCloud(30, 11)
	var first UploadResponse
	for i := 0; i < 2; i++ {
		code, body := postJSON(t, base+"/v1/clouds", c)
		if code != http.StatusOK {
			t.Fatalf("upload %d: %d %s", i, code, body)
		}
		var up UploadResponse
		if err := json.Unmarshal(body, &up); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = up
		} else if up.CloudID != first.CloudID {
			t.Fatalf("same cloud got ids %s and %s", first.CloudID, up.CloudID)
		}
	}
	if first.Points != 30 {
		t.Fatalf("upload reports %d points, want 30", first.Points)
	}
}
