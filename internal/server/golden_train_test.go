package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/jobs"
	"fillvoid/internal/metrics"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// goldenTrainOpts mirrors the repo-level golden run (golden_test.go):
// the fixed-seed fcnn configuration whose SNR is committed in
// testdata/golden_snr.json.
func goldenTrainOpts() core.Options {
	opts := core.DefaultOptions()
	opts.Hidden = []int{32, 16}
	opts.Epochs = 150
	opts.TrainFractions = []float64{0.05}
	opts.MaxTrainRows = 4000
	opts.BatchSize = 128
	opts.Seed = 11
	opts.Workers = 2
	return opts
}

func goldenTruth() *grid.Volume {
	return datasets.Volume(datasets.NewIsabel(7), 32, 32, 10, 10)
}

// TestGoldenTrainJobBitIdentity is the end-to-end training-fidelity
// gate: a model trained through the job API (cloud upload → rebuild
// volume → queued worker → checkpointed trainer → model store) must be
// byte-identical to one trained directly via core.PretrainResumable on
// the original volume, and its reconstruction quality must match the
// committed golden fcnn SNR. Any divergence means the serving path
// changed what gets trained — exactly the silent drift this test
// exists to catch.
func TestGoldenTrainJobBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the golden model twice; skipped in -short")
	}
	truth := goldenTruth()
	opts := goldenTrainOpts()

	// Direct run: the same entry point the job worker calls.
	ckMgr, err := checkpoint.NewManager(checkpoint.Config{Dir: t.TempDir(), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := sampling.ByName("importance", 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.PretrainResumable(context.Background(), truth, "pressure", sampler, opts,
		core.Checkpointing{Manager: ckMgr, Every: 50})
	if err != nil {
		t.Fatal(err)
	}
	var directBytes bytes.Buffer
	if err := direct.Save(&directBytes); err != nil {
		t.Fatal(err)
	}

	// Job run: the full HTTP path.
	_, base := startServer(t, Config{JobsDir: t.TempDir()})
	cloudID := uploadCloud(t, base, fullFieldCloud(truth, "pressure"))
	code, body := postJSON(t, base+"/v1/train", &TrainRequest{
		CloudID:         cloudID,
		Field:           "pressure",
		Grid:            gridOf(truth),
		Sampler:         "importance",
		SamplerSeed:     3,
		Epochs:          150,
		Hidden:          []int64{32, 16},
		TrainFractions:  []float64{0.05},
		MaxTrainRows:    4000,
		BatchSize:       128,
		Workers:         2,
		Seed:            11,
		CheckpointEvery: 50,
	})
	if code != http.StatusAccepted {
		t.Fatalf("train: %d %s", code, body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, base, tr.JobID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	resp, err := http.Get(base + "/v1/models/" + st.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	jobBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("model download: %d %v", resp.StatusCode, err)
	}

	directID, err := jobs.IDForModel(direct)
	if err != nil {
		t.Fatal(err)
	}
	if st.ModelID != directID {
		t.Fatalf("job-trained model id %s differs from the direct run's %s (training is not bit-identical)",
			st.ModelID, directID)
	}
	// The serialized artifacts must agree too: both runs happen in this
	// process, so even the gob container bytes are comparable.
	if !bytes.Equal(directBytes.Bytes(), jobBytes) {
		t.Fatalf("job-trained model (%d bytes) is not byte-identical to the direct run (%d bytes)",
			len(jobBytes), directBytes.Len())
	}

	// Quality against the committed golden value: reconstruct the same
	// 5%-cloud query the repo-level golden test runs.
	model, err := core.Load(bytes.NewReader(jobBytes))
	if err != nil {
		t.Fatal(err)
	}
	qcloud, _, err := sampler.Sample(truth, "pressure", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := model.Reconstruct(qcloud, recon.SpecOf(truth))
	if err != nil {
		t.Fatal(err)
	}
	snr, err := metrics.SNR(truth, vol)
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("..", "..", "testdata", "golden_snr.json")
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var golden map[string]float64
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	want, ok := golden["fcnn"]
	if !ok {
		t.Fatal("golden file has no fcnn entry")
	}
	// Same tolerance the repo-level golden test grants fcnn (1.0 dB).
	if math.Abs(snr-want) > 1.0 {
		t.Fatalf("job-trained model SNR %.4f dB, golden %.4f dB (tolerance 1.0)", snr, want)
	}
	t.Logf("job-trained model: %d bytes, SNR %.4f dB (golden %.4f)", len(jobBytes), snr, want)
}
