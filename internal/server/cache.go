package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
)

// lru is a minimal mutex-guarded LRU map used by both the plan cache
// and the cloud store. onEvict (optional) runs under the lock when an
// entry is displaced by capacity pressure.
type lru[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[K]*list.Element
	onEvict func(K, V)
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int, onEvict func(K, V)) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[K]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// get returns the value for key, marking it most recently used.
func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// getOrAdd returns the existing value for key or inserts val, evicting
// the least recently used entry if over capacity. The returned bool
// reports whether the value was already present (a hit).
func (c *lru[K, V]) getOrAdd(key K, val V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry[K, V])
		delete(c.items, e.key)
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
	return val, false
}

// len returns the current entry count.
func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// planEntry wraps a cached plan with its gauge accounting. accounted is
// the byte count this entry currently contributes to the
// server.plan_cache.bytes gauge, or -1 once evicted. A plan's lazy
// pieces (k-d tree, nearest table, memos) grow after insertion, so the
// entry re-measures on every hit and moves the gauge by the delta; the
// eviction hook swaps in the -1 sentinel and subtracts exactly what was
// accounted, so insert/evict churn can never drive the gauge negative.
type planEntry struct {
	plan      *recon.Plan
	accounted atomic.Int64
}

// planBuild is one in-flight plan construction that concurrent misses
// for the same key coalesce onto.
type planBuild struct {
	done chan struct{}
	plan *recon.Plan
	err  error
}

// planCache is the LRU of recon.Plans keyed by (cloud hash, GridSpec).
// A cached plan carries the lazily built spatial index and per-method
// memos, so repeated queries against the same sampled timestep skip the
// k-d tree / nearest-table / tetrahedralization rebuilds entirely.
//
// Misses are singleflighted: N concurrent first requests for the same
// key run recon.NewPlan once; the other N-1 block on the leader's
// result and count as server.plan_cache.coalesced.
type planCache struct {
	lru *lru[recon.PlanKey, *planEntry]
	tel *telemetry.Registry

	// build constructs a plan on a miss; a seam over recon.NewPlan so
	// tests can observe and gate builds.
	build func(cloud *pointcloud.Cloud, spec recon.GridSpec) (*recon.Plan, error)

	mu       sync.Mutex
	inflight map[recon.PlanKey]*planBuild
}

func newPlanCache(capacity int, tel *telemetry.Registry) *planCache {
	pc := &planCache{
		tel:      tel,
		build:    recon.NewPlan,
		inflight: make(map[recon.PlanKey]*planBuild),
	}
	pc.lru = newLRU[recon.PlanKey, *planEntry](capacity, func(k recon.PlanKey, e *planEntry) {
		freed := e.accounted.Swap(-1)
		if freed > 0 {
			tel.Gauge("server.plan_cache.bytes").Add(-float64(freed))
		}
		tel.Counter("server.plan_cache.evictions").Inc()
		telemetry.Debugf("plan evicted",
			"cloud", k.Cloud.String(), "grid",
			[3]int{k.Spec.NX, k.Spec.NY, k.Spec.NZ},
			"bytes", freed)
	})
	return pc
}

// lookup returns the cached plan for key, reconciling its gauge
// contribution against the plan's current (possibly grown) size.
func (pc *planCache) lookup(key recon.PlanKey) (*recon.Plan, bool) {
	e, ok := pc.lru.get(key)
	if !ok {
		return nil, false
	}
	pc.reconcile(e)
	return e.plan, true
}

// reconcile moves the bytes gauge by exactly the growth since this
// entry's last measurement. The CAS loop loses cleanly to a concurrent
// eviction: once the sentinel is in place the entry's contribution has
// been fully subtracted and must not be touched again.
func (pc *planCache) reconcile(e *planEntry) {
	now := e.plan.Stats().Bytes
	for {
		old := e.accounted.Load()
		if old < 0 || old == now {
			return
		}
		if e.accounted.CompareAndSwap(old, now) {
			pc.tel.Gauge("server.plan_cache.bytes").Add(float64(now - old))
			return
		}
	}
}

// getOrBuild returns the cached plan for (cloud, spec) or builds and
// caches a fresh one, coalescing concurrent builds of the same key.
// The returned bool reports whether the caller got an existing plan
// (a cache hit or a coalesced wait) rather than paying for a build.
func (pc *planCache) getOrBuild(key recon.PlanKey, cloud *pointcloud.Cloud, spec recon.GridSpec) (*recon.Plan, bool, error) {
	if p, ok := pc.lookup(key); ok {
		pc.tel.Counter("server.plan_cache.hits").Inc()
		return p, true, nil
	}

	pc.mu.Lock()
	if b, ok := pc.inflight[key]; ok {
		pc.mu.Unlock()
		pc.tel.Counter("server.plan_cache.coalesced").Inc()
		<-b.done
		if b.err != nil {
			return nil, false, b.err
		}
		pc.tel.Counter("server.plan_cache.hits").Inc()
		return b.plan, true, nil
	}
	b := &planBuild{done: make(chan struct{})}
	pc.inflight[key] = b
	pc.mu.Unlock()

	// Leader. Re-check the cache first: a previous leader may have
	// inserted between our miss and our claim of the inflight slot.
	if p, ok := pc.lookup(key); ok {
		b.plan = p
		pc.finish(key, b)
		pc.tel.Counter("server.plan_cache.hits").Inc()
		return p, true, nil
	}
	p, err := pc.build(cloud, spec)
	if err != nil {
		b.err = err
		pc.finish(key, b)
		return nil, false, err
	}
	pc.insert(key, p)
	b.plan = p
	pc.finish(key, b)
	pc.tel.Counter("server.plan_cache.misses").Inc()
	return p, false, nil
}

// insert accounts the fresh plan's bytes and adds it to the LRU. The
// gauge add happens before the insert so the eviction hook (which may
// fire for this very entry on a full cache) only ever subtracts bytes
// already added.
func (pc *planCache) insert(key recon.PlanKey, p *recon.Plan) {
	e := &planEntry{plan: p}
	bytes := p.Stats().Bytes
	e.accounted.Store(bytes)
	pc.tel.Gauge("server.plan_cache.bytes").Add(float64(bytes))
	// Singleflight guarantees one leader per key, so the key cannot be
	// concurrently inserted by anyone else.
	pc.lru.getOrAdd(key, e)
}

// finish publishes the leader's result and releases the key's inflight
// slot.
func (pc *planCache) finish(key recon.PlanKey, b *planBuild) {
	pc.mu.Lock()
	delete(pc.inflight, key)
	pc.mu.Unlock()
	close(b.done)
}

func (pc *planCache) len() int { return pc.lru.len() }

// cloudStore holds uploaded clouds by content hash so clients can query
// a sampled timestep many times while sending the data once.
type cloudStore struct {
	lru *lru[recon.CloudHash, *pointcloud.Cloud]
	tel *telemetry.Registry
}

func newCloudStore(capacity int, tel *telemetry.Registry) *cloudStore {
	cs := &cloudStore{tel: tel}
	cs.lru = newLRU[recon.CloudHash, *pointcloud.Cloud](capacity, func(k recon.CloudHash, c *pointcloud.Cloud) {
		tel.Counter("server.cloud_store.evictions").Inc()
	})
	return cs
}

// put stores the cloud under its content hash and returns the hash.
func (cs *cloudStore) put(c *pointcloud.Cloud) recon.CloudHash {
	h := recon.HashCloud(c)
	cs.lru.getOrAdd(h, c)
	return h
}

// get returns the cloud for a previously returned hash.
func (cs *cloudStore) get(h recon.CloudHash) (*pointcloud.Cloud, bool) {
	return cs.lru.get(h)
}

func (cs *cloudStore) len() int { return cs.lru.len() }
