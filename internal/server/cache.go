package server

import (
	"container/list"
	"sync"

	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
)

// lru is a minimal mutex-guarded LRU map used by both the plan cache
// and the cloud store. onEvict (optional) runs under the lock when an
// entry is displaced by capacity pressure.
type lru[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[K]*list.Element
	onEvict func(K, V)
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int, onEvict func(K, V)) *lru[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K, V]{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[K]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// get returns the value for key, marking it most recently used.
func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// getOrAdd returns the existing value for key or inserts val, evicting
// the least recently used entry if over capacity. The returned bool
// reports whether the value was already present (a hit).
func (c *lru[K, V]) getOrAdd(key K, val V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*lruEntry[K, V])
		delete(c.items, e.key)
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
	return val, false
}

// len returns the current entry count.
func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// planCache is the LRU of recon.Plans keyed by (cloud hash, GridSpec).
// A cached plan carries the lazily built spatial index and per-method
// memos, so repeated queries against the same sampled timestep skip the
// k-d tree / nearest-table / tetrahedralization rebuilds entirely.
type planCache struct {
	lru *lru[recon.PlanKey, *recon.Plan]
	tel *telemetry.Registry
}

func newPlanCache(capacity int, tel *telemetry.Registry) *planCache {
	pc := &planCache{tel: tel}
	pc.lru = newLRU[recon.PlanKey, *recon.Plan](capacity, func(k recon.PlanKey, p *recon.Plan) {
		st := p.Stats()
		tel.Counter("server.plan_cache.evictions").Inc()
		tel.Gauge("server.plan_cache.bytes").Add(-float64(st.Bytes))
		telemetry.Debugf("plan evicted",
			"cloud", k.Cloud.String(), "grid",
			[3]int{k.Spec.NX, k.Spec.NY, k.Spec.NZ},
			"bytes", st.Bytes, "tree", st.TreeBuilt, "near", st.NearestTableBuilt)
	})
	return pc
}

// getOrBuild returns the cached plan for (cloud, spec) or builds and
// caches a fresh one. The hit/miss counters are the serving-layer
// cache-effectiveness signal; bytes are re-measured on hits too because
// the plan's lazy pieces grow after insertion.
func (pc *planCache) getOrBuild(key recon.PlanKey, cloud *pointcloud.Cloud, spec recon.GridSpec) (*recon.Plan, bool, error) {
	if p, ok := pc.lru.get(key); ok {
		pc.tel.Counter("server.plan_cache.hits").Inc()
		return p, true, nil
	}
	p, err := recon.NewPlan(cloud, spec)
	if err != nil {
		return nil, false, err
	}
	got, existed := pc.lru.getOrAdd(key, p)
	if existed {
		// A concurrent request inserted first; use theirs.
		pc.tel.Counter("server.plan_cache.hits").Inc()
		return got, true, nil
	}
	pc.tel.Counter("server.plan_cache.misses").Inc()
	pc.tel.Gauge("server.plan_cache.bytes").Add(float64(p.Stats().Bytes))
	return p, false, nil
}

func (pc *planCache) len() int { return pc.lru.len() }

// cloudStore holds uploaded clouds by content hash so clients can query
// a sampled timestep many times while sending the data once.
type cloudStore struct {
	lru *lru[recon.CloudHash, *pointcloud.Cloud]
	tel *telemetry.Registry
}

func newCloudStore(capacity int, tel *telemetry.Registry) *cloudStore {
	cs := &cloudStore{tel: tel}
	cs.lru = newLRU[recon.CloudHash, *pointcloud.Cloud](capacity, func(k recon.CloudHash, c *pointcloud.Cloud) {
		tel.Counter("server.cloud_store.evictions").Inc()
	})
	return cs
}

// put stores the cloud under its content hash and returns the hash.
func (cs *cloudStore) put(c *pointcloud.Cloud) recon.CloudHash {
	h := recon.HashCloud(c)
	cs.lru.getOrAdd(h, c)
	return h
}

// get returns the cloud for a previously returned hash.
func (cs *cloudStore) get(h recon.CloudHash) (*pointcloud.Cloud, bool) {
	return cs.lru.get(h)
}

func (cs *cloudStore) len() int { return cs.lru.len() }
