package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"fillvoid/internal/interp"
	"fillvoid/internal/telemetry"
)

// fuzzServer builds one in-process server shared by all fuzz execs (the
// handler is concurrency-safe; building per exec would dominate the
// fuzz loop).
func fuzzServer(tb testing.TB) *Server {
	tb.Helper()
	s, err := New(Config{
		Registry:      interp.StandardRegistry(1),
		Telemetry:     telemetry.NewRegistry(),
		MaxBodyBytes:  1 << 20,
		MaxGridPoints: 1 << 16,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// FuzzReconstructRequest throws arbitrary bytes at POST /v1/reconstruct.
// The contract: any malformed body yields a 4xx with a JSON error
// payload — never a panic (the handler runs on the fuzzing goroutine,
// so a panic fails the fuzz run, unlike production where net/http would
// turn it into a connection reset) and never a 5xx.
func FuzzReconstructRequest(f *testing.F) {
	// Valid request.
	valid, _ := json.Marshal(ReconstructRequest{
		Method: "nearest",
		Cloud:  testCloud(30, 1),
		Grid:   GridJSON{Dims: [3]int{4, 4, 2}},
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"method":"nearest"}`))
	f.Add([]byte(`{"method":"nope","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1,2]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[],"values":[]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud_id":"zzz","grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[1073741824,1073741824,1073741824]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2],"spacing":[0,0,0]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]},"region":{"box":[0,0,0,9,9,9]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]},"region":{"box":[0,0,0,1,1,1],"points":[[0,0,0]]}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json at all`))

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		code := rec.Code
		if code >= 500 {
			t.Fatalf("malformed request produced %d: body %q -> %s", code, body, rec.Body.Bytes())
		}
		if code != 200 {
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without JSON error body: %q", code, rec.Body.Bytes())
			}
		}
	})
}

// fuzzTrainServer is a training-enabled server for FuzzTrainRequest:
// TrainWorkers -1 runs no workers, so accepted jobs queue without ever
// training (the fuzz loop probes request validation, not the trainer),
// and the bounded queue caps how many job directories the corpus can
// create. One small full-field cloud is preloaded so valid requests
// reach the Submit path.
func fuzzTrainServer(tb testing.TB) (*Server, string) {
	tb.Helper()
	s, err := New(Config{
		Registry:      interp.StandardRegistry(1),
		Telemetry:     telemetry.NewRegistry(),
		MaxBodyBytes:  1 << 20,
		MaxGridPoints: 1 << 16,
		JobsDir:       tb.TempDir(),
		TrainWorkers:  -1,
		TrainQueue:    4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cj := &CloudJSON{Name: "value"}
	for k := 0; k < 2; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				cj.Points = append(cj.Points, [3]float64{float64(i), float64(j), float64(k)})
				cj.Values = append(cj.Values, float64(i+j+k))
			}
		}
	}
	body, err := json.Marshal(cj)
	if err != nil {
		tb.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/clouds", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		tb.Fatalf("preloading cloud: %d %s", rec.Code, rec.Body.Bytes())
	}
	var up UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		tb.Fatal(err)
	}
	return s, up.CloudID
}

// FuzzTrainRequest throws arbitrary bytes at POST /v1/train. The
// contract matches the reconstruct fuzzer: never a panic, never a 5xx;
// every rejection is a 4xx with a JSON error envelope, every acceptance
// a 200/202 — and nothing the fuzzer sends can start unbounded work,
// because the server runs with no training workers.
func FuzzTrainRequest(f *testing.F) {
	s, cloudID := fuzzTrainServer(f)

	valid, _ := json.Marshal(TrainRequest{
		CloudID: cloudID,
		Grid:    GridJSON{Dims: [3]int{4, 4, 2}},
		Epochs:  5,
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"cloud_id":"zzz"}`))
	f.Add([]byte(`{"cloud_id":"0123456789abcdef","grid":{"dims":[4,4,2]}}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[0,0,0]}}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[1073741824,1073741824,1073741824]}}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"epochs":-5}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"hidden":[99999]}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"train_fractions":[2.5]}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"learning_rate":-1}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"sampler":"psychic"}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"base_model":"zz"}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2]},"fine_tune_mode":"psychic"}`))
	f.Add([]byte(`{"cloud_id":"` + cloudID + `","grid":{"dims":[4,4,2],"spacing":[0,0,0]}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`train me`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/train", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		code := rec.Code
		if code >= 500 {
			t.Fatalf("train request produced %d: body %q -> %s", code, body, rec.Body.Bytes())
		}
		if code >= 300 {
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without JSON error body: %q", code, rec.Body.Bytes())
			}
		}
	})
}
