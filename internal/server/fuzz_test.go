package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"fillvoid/internal/interp"
	"fillvoid/internal/telemetry"
)

// fuzzServer builds one in-process server shared by all fuzz execs (the
// handler is concurrency-safe; building per exec would dominate the
// fuzz loop).
func fuzzServer(tb testing.TB) *Server {
	tb.Helper()
	s, err := New(Config{
		Registry:      interp.StandardRegistry(1),
		Telemetry:     telemetry.NewRegistry(),
		MaxBodyBytes:  1 << 20,
		MaxGridPoints: 1 << 16,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// FuzzReconstructRequest throws arbitrary bytes at POST /v1/reconstruct.
// The contract: any malformed body yields a 4xx with a JSON error
// payload — never a panic (the handler runs on the fuzzing goroutine,
// so a panic fails the fuzz run, unlike production where net/http would
// turn it into a connection reset) and never a 5xx.
func FuzzReconstructRequest(f *testing.F) {
	// Valid request.
	valid, _ := json.Marshal(ReconstructRequest{
		Method: "nearest",
		Cloud:  testCloud(30, 1),
		Grid:   GridJSON{Dims: [3]int{4, 4, 2}},
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"method":"nearest"}`))
	f.Add([]byte(`{"method":"nope","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1,2]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[],"values":[]},"grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud_id":"zzz","grid":{"dims":[2,2,2]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[1073741824,1073741824,1073741824]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2],"spacing":[0,0,0]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]},"region":{"box":[0,0,0,9,9,9]}}`))
	f.Add([]byte(`{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]},"region":{"box":[0,0,0,1,1,1],"points":[[0,0,0]]}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json at all`))

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		code := rec.Code
		if code >= 500 {
			t.Fatalf("malformed request produced %d: body %q -> %s", code, body, rec.Body.Bytes())
		}
		if code != 200 {
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without JSON error body: %q", code, rec.Body.Bytes())
			}
		}
	})
}
