package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"fillvoid/internal/telemetry"
	"fillvoid/internal/trace"
)

// postTraced posts a reconstruct request with an optional traceparent
// header and returns the full response for header inspection.
func postTraced(t *testing.T, url string, body any, traceparent string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTraceparentRoundTripAndDebugTraces(t *testing.T) {
	tr := trace.New(trace.Config{})
	_, base := startServer(t, Config{Tracer: tr})

	upstream := trace.NewTraceID()
	parentSpan := trace.NewSpanID()
	reqBody := &ReconstructRequest{
		Method: "linear",
		Cloud:  testCloud(200, 7),
		Grid:   testGrid(),
	}
	resp := postTraced(t, base+"/v1/reconstruct", reqBody,
		trace.FormatTraceparent(upstream, parentSpan, true))
	io.Copy(io.Discard, resp.Body) //lint:allow errdrop: draining a test response body
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The response must continue OUR trace, not invent a new one.
	tp := resp.Header.Get("traceparent")
	gotTID, _, _, err := trace.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if gotTID != upstream {
		t.Fatalf("response trace id %s, want %s", gotTID, upstream)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}

	// The completed trace is in the ring, marked remote, with the
	// handler root parented under the upstream span.
	td := tr.TraceByID(upstream)
	if td == nil {
		t.Fatal("trace not kept in ring")
	}
	if !td.Remote {
		t.Fatal("continued trace must be marked remote")
	}
	names := map[string]trace.SpanRecord{}
	for _, sp := range td.Spans {
		names[sp.Name] = sp
	}
	root, ok := names["server/reconstruct"]
	if !ok {
		t.Fatalf("no server root span; spans: %v", spanNames(td))
	}
	if root.ParentID != parentSpan {
		t.Fatal("server root must parent under the upstream span id")
	}
	// The bridge + parallel fan-out must give at least 4 nesting
	// levels: server root -> recon/execute -> parallel/worker ->
	// parallel/chunk.
	depth := maxDepth(td)
	if depth < 4 {
		t.Fatalf("trace depth %d, want >= 4; spans: %v", depth, spanNames(td))
	}
	if _, ok := names["server/plan-cache"]; !ok {
		t.Fatalf("no plan-cache span; spans: %v", spanNames(td))
	}
	if _, ok := names["recon/execute"]; !ok {
		t.Fatalf("bridged execute span missing; spans: %v", spanNames(td))
	}

	// /debug/traces serves the ring: the index lists the trace, and the
	// id= form returns loadable Chrome trace-event JSON.
	var idx struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			TraceID string `json:"trace_id"`
		} `json:"traces"`
	}
	resp2, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range idx.Traces {
		if row.TraceID == upstream.String() {
			found = true
		}
	}
	if !idx.Enabled || !found {
		t.Fatalf("/debug/traces index enabled=%v missing trace %s", idx.Enabled, upstream)
	}
	resp3, err := http.Get(base + "/debug/traces?id=" + upstream.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	ct, err := trace.ParseChrome(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != len(td.Spans) {
		t.Fatalf("chrome export has %d events, trace has %d spans", len(ct.TraceEvents), len(td.Spans))
	}
}

// spanNames lists a trace's span names for failure messages.
func spanNames(td *trace.TraceData) []string {
	var out []string
	for _, sp := range td.Spans {
		out = append(out, sp.Name)
	}
	return out
}

// maxDepth computes the deepest parent chain in a trace.
func maxDepth(td *trace.TraceData) int {
	depthOf := map[trace.SpanID]int{}
	byID := map[trace.SpanID]trace.SpanRecord{}
	for _, sp := range td.Spans {
		byID[sp.SpanID] = sp
	}
	var walk func(id trace.SpanID) int
	walk = func(id trace.SpanID) int {
		if d, ok := depthOf[id]; ok {
			return d
		}
		sp, ok := byID[id]
		if !ok {
			return 0 // parent outside this process (remote) or dropped
		}
		depthOf[id] = 1 // break cycles defensively
		d := 1 + walk(sp.ParentID)
		depthOf[id] = d
		return d
	}
	max := 0
	for id := range byID {
		if d := walk(id); d > max {
			max = d
		}
	}
	return max
}

func TestFreshTraceWithoutTraceparent(t *testing.T) {
	tr := trace.New(trace.Config{})
	_, base := startServer(t, Config{Tracer: tr})
	resp := postTraced(t, base+"/v1/reconstruct", &ReconstructRequest{
		Method: "nearest",
		Cloud:  testCloud(50, 3),
		Grid:   testGrid(),
	}, "")
	io.Copy(io.Discard, resp.Body) //lint:allow errdrop: draining a test response body
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tp := resp.Header.Get("traceparent")
	tid, _, _, err := trace.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("no valid traceparent on response: %q %v", tp, err)
	}
	td := tr.TraceByID(tid)
	if td == nil {
		t.Fatal("fresh trace not kept")
	}
	if td.Remote {
		t.Fatal("locally rooted trace must not be marked remote")
	}
}

func TestErrorResponseCarriesRequestID(t *testing.T) {
	tr := trace.New(trace.Config{})
	_, base := startServer(t, Config{Tracer: tr})
	resp := postTraced(t, base+"/v1/reconstruct", map[string]any{"method": "no-such"}, "")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var er struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID == "" {
		t.Fatalf("error body missing request_id: %s", body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != er.RequestID {
		t.Fatalf("request id mismatch: header %q body %q", got, er.RequestID)
	}
	// Error traces are always kept by the tail sampler, with the
	// failure recorded on the root span.
	var errTrace *trace.TraceData
	for _, td := range tr.Traces() {
		if td.Error != "" {
			errTrace = td
		}
	}
	if errTrace == nil {
		t.Fatal("failed request left no error trace")
	}
	if errTrace.KeepReason != "error" {
		t.Fatalf("error trace kept as %q", errTrace.KeepReason)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	telemetry.SetLogOutput(&buf)
	defer telemetry.SetLogOutput(os.Stderr)
	telemetry.SetLogLevel(telemetry.LevelInfo)
	defer telemetry.SetLogLevel(telemetry.LevelWarn)

	tr := trace.New(trace.Config{})
	_, base := startServer(t, Config{Tracer: tr})
	resp := postTraced(t, base+"/v1/reconstruct", &ReconstructRequest{
		Method: "nearest",
		Cloud:  testCloud(50, 11),
		Grid:   testGrid(),
	}, "")
	io.Copy(io.Discard, resp.Body) //lint:allow errdrop: draining a test response body
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	log := buf.String()
	var line string
	for _, l := range strings.Split(log, "\n") {
		if strings.Contains(l, "route=\"POST /v1/reconstruct\"") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no access log line for reconstruct in:\n%s", log)
	}
	reqID := resp.Header.Get("X-Request-ID")
	for _, want := range []string{
		"request_id=" + reqID,
		"status=200",
		"bytes=",
		"duration_ms=",
		"trace_id=",
		"plan_cache=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log line missing %q:\n%s", want, line)
		}
	}

	// Error requests log at warn with the error message.
	buf.Reset()
	resp2 := postTraced(t, base+"/v1/reconstruct", map[string]any{"method": "no-such"}, "")
	io.Copy(io.Discard, resp2.Body) //lint:allow errdrop: draining a test response body
	warnLog := buf.String()
	if !strings.Contains(warnLog, "status=400") || !strings.Contains(warnLog, "error=") {
		t.Fatalf("no warn access log for failed request:\n%s", warnLog)
	}
}
