package server

import (
	"fmt"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// CloudJSON is the wire form of a sampled point cloud: parallel point
// and value arrays plus the scalar attribute name.
type CloudJSON struct {
	Name   string       `json:"name,omitempty"`
	Points [][3]float64 `json:"points"`
	Values []float64    `json:"values"`
}

// toCloud validates and converts the wire cloud.
func (cj *CloudJSON) toCloud() (*pointcloud.Cloud, error) {
	if len(cj.Points) == 0 {
		return nil, fmt.Errorf("cloud has no points")
	}
	if len(cj.Points) != len(cj.Values) {
		return nil, fmt.Errorf("cloud has %d points but %d values", len(cj.Points), len(cj.Values))
	}
	name := cj.Name
	if name == "" {
		name = "value"
	}
	c := pointcloud.New(name, len(cj.Points))
	for i, p := range cj.Points {
		c.Add(mathutil.Vec3{X: p[0], Y: p[1], Z: p[2]}, cj.Values[i])
	}
	return c, nil
}

// GridJSON is the wire form of an output grid: dimensions plus optional
// world placement (origin defaults to zero, spacing to unit).
type GridJSON struct {
	Dims    [3]int      `json:"dims"`
	Origin  *[3]float64 `json:"origin,omitempty"`
	Spacing *[3]float64 `json:"spacing,omitempty"`
}

func (g GridJSON) toSpec() (recon.GridSpec, error) {
	spec := recon.GridSpec{
		NX: g.Dims[0], NY: g.Dims[1], NZ: g.Dims[2],
		Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1},
	}
	if spec.NX < 1 || spec.NY < 1 || spec.NZ < 1 {
		return spec, fmt.Errorf("invalid grid dims %dx%dx%d", spec.NX, spec.NY, spec.NZ)
	}
	if g.Origin != nil {
		spec.Origin = mathutil.Vec3{X: g.Origin[0], Y: g.Origin[1], Z: g.Origin[2]}
	}
	if g.Spacing != nil {
		spec.Spacing = mathutil.Vec3{X: g.Spacing[0], Y: g.Spacing[1], Z: g.Spacing[2]}
		if spec.Spacing.X <= 0 || spec.Spacing.Y <= 0 || spec.Spacing.Z <= 0 {
			return spec, fmt.Errorf("grid spacing must be positive, got %v", spec.Spacing)
		}
	}
	return spec, nil
}

// RegionJSON selects where to reconstruct. At most one of Box and
// Points may be set; neither means the full grid.
type RegionJSON struct {
	// Box is a half-open sub-grid range [i0,i1)x[j0,j1)x[k0,k1).
	Box *[6]int `json:"box,omitempty"`
	// Points are arbitrary world-space query positions.
	Points [][3]float64 `json:"points,omitempty"`
}

func (rj RegionJSON) toRegion(spec recon.GridSpec) (recon.Region, error) {
	if rj.Box != nil && rj.Points != nil {
		return recon.Region{}, fmt.Errorf("region sets both box and points")
	}
	switch {
	case rj.Points != nil:
		pts := make([]mathutil.Vec3, len(rj.Points))
		for i, p := range rj.Points {
			pts[i] = mathutil.Vec3{X: p[0], Y: p[1], Z: p[2]}
		}
		if len(pts) == 0 {
			return recon.Region{}, fmt.Errorf("region points list is empty")
		}
		return recon.PointList(pts), nil
	case rj.Box != nil:
		b := *rj.Box
		r := recon.Box(b[0], b[1], b[2], b[3], b[4], b[5])
		if err := r.Validate(spec); err != nil {
			return recon.Region{}, err
		}
		return r, nil
	default:
		return recon.Full(spec), nil
	}
}

// ReconstructRequest is the body of POST /v1/reconstruct. The sampled
// cloud is given either inline (Cloud) or as the cloud_id of a
// previously uploaded cloud (POST /v1/clouds); exactly one must be set.
type ReconstructRequest struct {
	// Method names a registered reconstructor ("nearest", "linear",
	// "fcnn", ...; GET /v1/methods lists them).
	Method  string     `json:"method"`
	Cloud   *CloudJSON `json:"cloud,omitempty"`
	CloudID string     `json:"cloud_id,omitempty"`
	Grid    GridJSON   `json:"grid"`
	Region  RegionJSON `json:"region"`
	// Quant selects quantized inference ("f16" or "int8") for methods
	// that support it (currently fcnn); empty means full precision.
	Quant string `json:"quant,omitempty"`
}

// ReconstructResponse carries the reconstructed values in region order
// (x-fastest within a box; list order for point queries).
type ReconstructResponse struct {
	Method  string     `json:"method"`
	Dims    [3]int     `json:"dims"`
	Origin  [3]float64 `json:"origin"`
	Spacing [3]float64 `json:"spacing"`
	Values  []float64  `json:"values"`
	// CloudID is the content hash of the cloud the query ran against;
	// resend it as cloud_id to skip re-uploading the cloud.
	CloudID string `json:"cloud_id"`
	// PlanCached reports whether the query hit an existing plan (shared
	// spatial index) instead of building a fresh one.
	PlanCached bool    `json:"plan_cached"`
	DurationMS float64 `json:"duration_ms"`
	// Quant echoes the quantization mode the reconstruction ran with
	// (empty for full precision).
	Quant string `json:"quant,omitempty"`
	// Replica is the ID of the replica that answered (clustered serving
	// only; empty standalone).
	Replica string `json:"replica,omitempty"`
	// Shards is how many sub-box shards a fanned-out query was split
	// into (0 when the query executed on a single replica).
	Shards int `json:"shards,omitempty"`
}

// UploadResponse is the body returned by POST /v1/clouds.
type UploadResponse struct {
	CloudID string `json:"cloud_id"`
	Points  int    `json:"points"`
}

// MethodsResponse is the body returned by GET /v1/methods.
type MethodsResponse struct {
	Methods []string `json:"methods"`
}

// HealthResponse is the body returned by GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Plans    int    `json:"plans_cached"`
	Clouds   int    `json:"clouds_cached"`
}

// errorResponse is the JSON error envelope for every non-2xx status.
// RequestID echoes the X-Request-ID header so a client error report
// can be joined against the server's access log and traces.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}
