package server

import (
	"fmt"

	"fillvoid/internal/core"
	"fillvoid/internal/jobs"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// CloudJSON is the wire form of a sampled point cloud: parallel point
// and value arrays plus the scalar attribute name.
type CloudJSON struct {
	Name   string       `json:"name,omitempty"`
	Points [][3]float64 `json:"points"`
	Values []float64    `json:"values"`
}

// toCloud validates and converts the wire cloud.
func (cj *CloudJSON) toCloud() (*pointcloud.Cloud, error) {
	if len(cj.Points) == 0 {
		return nil, fmt.Errorf("cloud has no points")
	}
	if len(cj.Points) != len(cj.Values) {
		return nil, fmt.Errorf("cloud has %d points but %d values", len(cj.Points), len(cj.Values))
	}
	name := cj.Name
	if name == "" {
		name = "value"
	}
	c := pointcloud.New(name, len(cj.Points))
	for i, p := range cj.Points {
		c.Add(mathutil.Vec3{X: p[0], Y: p[1], Z: p[2]}, cj.Values[i])
	}
	return c, nil
}

// GridJSON is the wire form of an output grid: dimensions plus optional
// world placement (origin defaults to zero, spacing to unit).
type GridJSON struct {
	Dims    [3]int      `json:"dims"`
	Origin  *[3]float64 `json:"origin,omitempty"`
	Spacing *[3]float64 `json:"spacing,omitempty"`
}

func (g GridJSON) toSpec() (recon.GridSpec, error) {
	spec := recon.GridSpec{
		NX: g.Dims[0], NY: g.Dims[1], NZ: g.Dims[2],
		Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1},
	}
	if spec.NX < 1 || spec.NY < 1 || spec.NZ < 1 {
		return spec, fmt.Errorf("invalid grid dims %dx%dx%d", spec.NX, spec.NY, spec.NZ)
	}
	if g.Origin != nil {
		spec.Origin = mathutil.Vec3{X: g.Origin[0], Y: g.Origin[1], Z: g.Origin[2]}
	}
	if g.Spacing != nil {
		spec.Spacing = mathutil.Vec3{X: g.Spacing[0], Y: g.Spacing[1], Z: g.Spacing[2]}
		if spec.Spacing.X <= 0 || spec.Spacing.Y <= 0 || spec.Spacing.Z <= 0 {
			return spec, fmt.Errorf("grid spacing must be positive, got %v", spec.Spacing)
		}
	}
	return spec, nil
}

// RegionJSON selects where to reconstruct. At most one of Box and
// Points may be set; neither means the full grid.
type RegionJSON struct {
	// Box is a half-open sub-grid range [i0,i1)x[j0,j1)x[k0,k1).
	Box *[6]int `json:"box,omitempty"`
	// Points are arbitrary world-space query positions.
	Points [][3]float64 `json:"points,omitempty"`
}

func (rj RegionJSON) toRegion(spec recon.GridSpec) (recon.Region, error) {
	if rj.Box != nil && rj.Points != nil {
		return recon.Region{}, fmt.Errorf("region sets both box and points")
	}
	switch {
	case rj.Points != nil:
		pts := make([]mathutil.Vec3, len(rj.Points))
		for i, p := range rj.Points {
			pts[i] = mathutil.Vec3{X: p[0], Y: p[1], Z: p[2]}
		}
		if len(pts) == 0 {
			return recon.Region{}, fmt.Errorf("region points list is empty")
		}
		return recon.PointList(pts), nil
	case rj.Box != nil:
		b := *rj.Box
		r := recon.Box(b[0], b[1], b[2], b[3], b[4], b[5])
		if err := r.Validate(spec); err != nil {
			return recon.Region{}, err
		}
		return r, nil
	default:
		return recon.Full(spec), nil
	}
}

// ReconstructRequest is the body of POST /v1/reconstruct. The sampled
// cloud is given either inline (Cloud) or as the cloud_id of a
// previously uploaded cloud (POST /v1/clouds); exactly one must be set.
type ReconstructRequest struct {
	// Method names a registered reconstructor ("nearest", "linear",
	// "fcnn", ...; GET /v1/methods lists them). Leave empty when
	// ModelID is set.
	Method  string     `json:"method"`
	Cloud   *CloudJSON `json:"cloud,omitempty"`
	CloudID string     `json:"cloud_id,omitempty"`
	Grid    GridJSON   `json:"grid"`
	Region  RegionJSON `json:"region"`
	// Quant selects quantized inference ("f16" or "int8") for methods
	// that support it (currently fcnn); empty means full precision.
	Quant string `json:"quant,omitempty"`
	// ModelID reconstructs with a stored model from the model store
	// (trained via POST /v1/train or fetched from a peer) instead of a
	// registry method. Method must be empty or "fcnn" alongside it.
	ModelID string `json:"model_id,omitempty"`
	// Progressive streams the response as NDJSON: a header line, a
	// strided coarse preview, then box chunks as the engine completes
	// them, then a done line. Box and full-grid regions only.
	Progressive bool `json:"progressive,omitempty"`
	// ProgressiveChunks overrides the server's chunk count for a
	// progressive response (clamped to [1, 64]).
	ProgressiveChunks int64 `json:"progressive_chunks,omitempty"`
}

// ReconstructResponse carries the reconstructed values in region order
// (x-fastest within a box; list order for point queries).
type ReconstructResponse struct {
	Method  string     `json:"method"`
	Dims    [3]int     `json:"dims"`
	Origin  [3]float64 `json:"origin"`
	Spacing [3]float64 `json:"spacing"`
	Values  []float64  `json:"values"`
	// CloudID is the content hash of the cloud the query ran against;
	// resend it as cloud_id to skip re-uploading the cloud.
	CloudID string `json:"cloud_id"`
	// PlanCached reports whether the query hit an existing plan (shared
	// spatial index) instead of building a fresh one.
	PlanCached bool    `json:"plan_cached"`
	DurationMS float64 `json:"duration_ms"`
	// Quant echoes the quantization mode the reconstruction ran with
	// (empty for full precision).
	Quant string `json:"quant,omitempty"`
	// Replica is the ID of the replica that answered (clustered serving
	// only; empty standalone).
	Replica string `json:"replica,omitempty"`
	// Shards is how many sub-box shards a fanned-out query was split
	// into (0 when the query executed on a single replica).
	Shards int `json:"shards,omitempty"`
	// ModelID echoes the stored model the reconstruction used (empty
	// for registry methods).
	ModelID string `json:"model_id,omitempty"`
}

// UploadResponse is the body returned by POST /v1/clouds.
type UploadResponse struct {
	CloudID string `json:"cloud_id"`
	Points  int    `json:"points"`
}

// MethodsResponse is the body returned by GET /v1/methods.
type MethodsResponse struct {
	Methods []string `json:"methods"`
}

// HealthResponse is the body returned by GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
	Plans    int    `json:"plans_cached"`
	Clouds   int    `json:"clouds_cached"`
	Models   int    `json:"models_cached"`
	// Training reports whether POST /v1/train is enabled (JobsDir set).
	Training    bool `json:"training"`
	JobsQueued  int  `json:"jobs_queued"`
	JobsRunning int  `json:"jobs_running"`
}

// errorResponse is the JSON error envelope for every non-2xx status.
// RequestID echoes the X-Request-ID header so a client error report
// can be joined against the server's access log and traces.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// TrainRequest is the body of POST /v1/train: train a model on an
// uploaded cloud that carries the full field (one point per node of
// Grid — the in-situ regime, where ground truth exists at train time).
// Numeric fields are int64 on the wire and range-checked explicitly, so
// absurd values are a clean 400 rather than an overflow or a
// decade-long training run.
type TrainRequest struct {
	// CloudID names a previously uploaded cloud (POST /v1/clouds).
	CloudID string `json:"cloud_id"`
	// Field is the scalar field name (default "value", matching the
	// default cloud name).
	Field string `json:"field,omitempty"`
	// Grid is the full simulation grid the cloud covers.
	Grid GridJSON `json:"grid"`
	// Sampler draws the training fractions from the rebuilt volume
	// ("importance", "random", "stratified"; default "importance").
	Sampler     string `json:"sampler,omitempty"`
	SamplerSeed int64  `json:"sampler_seed,omitempty"`
	// BaseModel fine-tunes a stored model instead of pretraining.
	BaseModel string `json:"base_model,omitempty"`
	// FineTuneMode is "all" (Case 1, default) or "last-two" (Case 2).
	FineTuneMode   string `json:"fine_tune_mode,omitempty"`
	FineTuneEpochs int64  `json:"fine_tune_epochs,omitempty"`
	// Epochs is the pretraining budget (default 200).
	Epochs int64 `json:"epochs,omitempty"`
	// Hidden overrides the hidden-layer widths (default: the paper's).
	Hidden []int64 `json:"hidden,omitempty"`
	// TrainFractions are the sampling percentages to train on
	// (default: the paper's 1% + 5%).
	TrainFractions []float64 `json:"train_fractions,omitempty"`
	MaxTrainRows   int64     `json:"max_train_rows,omitempty"`
	BatchSize      int64     `json:"batch_size,omitempty"`
	Workers        int64     `json:"workers,omitempty"`
	Seed           int64     `json:"seed,omitempty"`
	LearningRate   float64   `json:"learning_rate,omitempty"`
	// CheckpointEvery is the epoch period between crash-safe
	// checkpoints (default: the server's setting).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
}

// toSpec resolves defaults and converts the wire request into the
// jobs.Spec that becomes the job's identity. Every int64 is bounded
// before it is narrowed, so the conversion itself can never wrap.
func (t *TrainRequest) toSpec() (jobs.Spec, error) {
	spec := jobs.Spec{
		CloudID:     t.CloudID,
		Field:       t.Field,
		Sampler:     t.Sampler,
		SamplerSeed: t.SamplerSeed,
		BaseModel:   t.BaseModel,
	}
	if spec.Field == "" {
		spec.Field = "value"
	}
	if spec.Sampler == "" {
		spec.Sampler = "importance"
	}
	var err error
	if spec.Grid, err = t.Grid.toSpec(); err != nil {
		return spec, err
	}
	switch t.FineTuneMode {
	case "", "all", core.FineTuneAll.String():
		spec.FineTuneMode = core.FineTuneAll
	case "last-two", core.FineTuneLastTwo.String():
		spec.FineTuneMode = core.FineTuneLastTwo
	default:
		return spec, fmt.Errorf("unknown fine_tune_mode %q (use \"all\" or \"last-two\")", t.FineTuneMode)
	}

	opts := core.DefaultOptions()
	opts.Epochs = 200
	n, err := intField("epochs", t.Epochs, 0, jobs.MaxEpochs)
	if err != nil {
		return spec, err
	}
	if n > 0 {
		opts.Epochs = n
	}
	if t.Hidden != nil {
		if len(t.Hidden) > jobs.MaxHiddenLayers {
			return spec, fmt.Errorf("hidden has %d layers, limit %d", len(t.Hidden), jobs.MaxHiddenLayers)
		}
		opts.Hidden = make([]int, len(t.Hidden))
		for i, hw := range t.Hidden {
			if opts.Hidden[i], err = intField("hidden width", hw, 1, jobs.MaxHiddenWidth); err != nil {
				return spec, err
			}
		}
	}
	if t.TrainFractions != nil {
		opts.TrainFractions = t.TrainFractions
	}
	if opts.MaxTrainRows, err = intField("max_train_rows", t.MaxTrainRows, 0, jobs.MaxTrainRowsCap); err != nil {
		return spec, err
	}
	if opts.BatchSize, err = intField("batch_size", t.BatchSize, 0, jobs.MaxBatchSize); err != nil {
		return spec, err
	}
	if opts.Workers, err = intField("workers", t.Workers, 0, jobs.MaxWorkers); err != nil {
		return spec, err
	}
	opts.Seed = t.Seed
	if t.LearningRate != 0 {
		opts.LearningRate = t.LearningRate
	}
	spec.Opts = opts
	if spec.FineTuneEpochs, err = intField("fine_tune_epochs", t.FineTuneEpochs, 0, jobs.MaxEpochs); err != nil {
		return spec, err
	}
	if spec.CheckpointEvery, err = intField("checkpoint_every", t.CheckpointEvery, 0, jobs.MaxEpochs); err != nil {
		return spec, err
	}
	return spec, nil
}

// intField bounds one wire int64 and narrows it.
func intField(name string, v, lo, hi int64) (int, error) {
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s %d out of range [%d, %d]", name, v, lo, hi)
	}
	return int(v), nil
}

// TrainResponse is the body returned by POST /v1/train: 202 when the
// job was newly queued (or re-queued to resume), 200 when an identical
// spec already has a live or finished job.
type TrainResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Created reports whether this request queued work (first
	// submission, or a resume of a stopped job).
	Created bool `json:"created"`
	// EpochsTotal is the lifetime epoch count the job will finish at.
	EpochsTotal int `json:"epochs_total"`
	// ModelID is set when the job already finished (idempotent re-POST
	// of a done spec).
	ModelID string `json:"model_id,omitempty"`
	Replica string `json:"replica,omitempty"`
}

// JobStatusResponse is the body returned by GET /v1/jobs/{id} (and by
// DELETE on cancel).
type JobStatusResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Epoch is the number of lifetime epochs completed so far (live
	// from the training observer while running).
	Epoch       int     `json:"epoch"`
	EpochsTotal int     `json:"epochs_total"`
	Loss        float64 `json:"loss,omitempty"`
	CloudID     string  `json:"cloud_id"`
	// ModelID names the finished model (done jobs only).
	ModelID string `json:"model_id,omitempty"`
	Error   string `json:"error,omitempty"`
	// Resumes counts how many times the job continued from a
	// checkpoint after a restart or resubmission.
	Resumes int    `json:"resumes"`
	Replica string `json:"replica,omitempty"`
}
