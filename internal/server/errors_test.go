package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fillvoid/internal/telemetry"
)

// TestReconstructErrorPaths pins the HTTP contract for every rejection
// the reconstruct endpoint can issue: the exact status class, a JSON
// body with a non-empty "error" field, and (where the message is part
// of the contract, e.g. the re-upload hint on a cache miss) a
// distinguishing substring. The fuzz target proves "never 5xx" over
// arbitrary bytes; this test proves each specific 4xx is the *right*
// 4xx.
func TestReconstructErrorPaths(t *testing.T) {
	_, base := startServer(t, Config{
		MaxBodyBytes:  2048,
		MaxGridPoints: 1 << 12,
	})
	url := base + "/v1/reconstruct"

	small := func() *ReconstructRequest {
		return &ReconstructRequest{
			Method: "nearest",
			Cloud:  testCloud(20, 7),
			Grid:   GridJSON{Dims: [3]int{4, 4, 2}},
		}
	}

	cases := []struct {
		name string
		// Exactly one of body (raw bytes) or req (marshalled) is set.
		body     string
		req      *ReconstructRequest
		mutate   func(*ReconstructRequest)
		wantCode int
		wantMsg  string
	}{
		{
			name:     "malformed json",
			body:     `{"method": "nearest",`,
			wantCode: http.StatusBadRequest,
			wantMsg:  "decoding request",
		},
		{
			name:     "non-object json",
			body:     `[1,2,3]`,
			wantCode: http.StatusBadRequest,
			wantMsg:  "decoding request",
		},
		{
			name:     "unknown method",
			mutate:   func(r *ReconstructRequest) { r.Method = "extrapolate" },
			wantCode: http.StatusBadRequest,
			wantMsg:  "extrapolate",
		},
		{
			name:     "no cloud at all",
			mutate:   func(r *ReconstructRequest) { r.Cloud = nil },
			wantCode: http.StatusBadRequest,
			wantMsg:  "needs cloud or cloud_id",
		},
		{
			name: "cloud and cloud_id both",
			mutate: func(r *ReconstructRequest) {
				r.CloudID = "0123456789abcdef"
			},
			wantCode: http.StatusBadRequest,
			wantMsg:  "not both",
		},
		{
			name: "malformed cloud_id",
			mutate: func(r *ReconstructRequest) {
				r.Cloud, r.CloudID = nil, "not-a-hash"
			},
			wantCode: http.StatusBadRequest,
			wantMsg:  "bad cloud hash",
		},
		{
			name: "unknown cloud_id",
			mutate: func(r *ReconstructRequest) {
				r.Cloud, r.CloudID = nil, "0123456789abcdef"
			},
			wantCode: http.StatusNotFound,
			wantMsg:  "re-upload",
		},
		{
			name: "empty cloud",
			mutate: func(r *ReconstructRequest) {
				r.Cloud = &CloudJSON{}
			},
			wantCode: http.StatusBadRequest,
		},
		{
			name: "points/values length mismatch",
			mutate: func(r *ReconstructRequest) {
				r.Cloud.Values = r.Cloud.Values[:len(r.Cloud.Values)-1]
			},
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "zero grid dim",
			mutate:   func(r *ReconstructRequest) { r.Grid.Dims = [3]int{4, 0, 2} },
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "negative grid dim",
			mutate:   func(r *ReconstructRequest) { r.Grid.Dims = [3]int{4, -1, 2} },
			wantCode: http.StatusBadRequest,
		},
		{
			name: "zero spacing",
			mutate: func(r *ReconstructRequest) {
				r.Grid.Spacing = &[3]float64{0, 1, 1}
			},
			wantCode: http.StatusBadRequest,
		},
		{
			name: "grid over the point ceiling",
			mutate: func(r *ReconstructRequest) {
				r.Grid.Dims = [3]int{17, 17, 17} // 4913 > 4096
			},
			wantCode: http.StatusRequestEntityTooLarge,
			wantMsg:  "exceeds the server limit",
		},
		{
			name: "grid dims overflow int64",
			mutate: func(r *ReconstructRequest) {
				r.Grid.Dims = [3]int{1 << 31, 1 << 31, 1 << 31}
			},
			wantCode: http.StatusRequestEntityTooLarge,
		},
		{
			name: "region box outside grid",
			mutate: func(r *ReconstructRequest) {
				r.Region = RegionJSON{Box: &[6]int{0, 0, 0, 99, 99, 99}}
			},
			wantCode: http.StatusBadRequest,
		},
		{
			name: "region box and points both",
			mutate: func(r *ReconstructRequest) {
				r.Region = RegionJSON{
					Box:    &[6]int{0, 0, 0, 1, 1, 1},
					Points: [][3]float64{{0, 0, 0}},
				}
			},
			wantCode: http.StatusBadRequest,
			wantMsg:  "both box and points",
		},
		{
			// Sent raw: omitempty on Points would drop the empty list
			// during marshalling and the server would see no region.
			name:     "region with empty points list",
			body:     `{"method":"nearest","cloud":{"points":[[0,0,0]],"values":[1]},"grid":{"dims":[2,2,2]},"region":{"points":[]}}`,
			wantCode: http.StatusBadRequest,
			wantMsg:  "empty",
		},
		{
			// An oversized body is a payload problem, not a syntax
			// problem: 413, not 400, so clients debug their size limit
			// instead of their JSON.
			name:     "body over MaxBodyBytes",
			req:      &ReconstructRequest{Method: "nearest", Cloud: testCloud(200, 7), Grid: GridJSON{Dims: [3]int{4, 4, 2}}},
			wantCode: http.StatusRequestEntityTooLarge,
			wantMsg:  "exceeds the 2048 byte limit",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body []byte
			switch {
			case tc.body != "":
				resp, err := http.Post(url, "application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				code = resp.StatusCode
				body = make([]byte, 4096)
				n, _ := resp.Body.Read(body)
				body = body[:n]
			default:
				req := tc.req
				if req == nil {
					req = small()
				}
				if tc.mutate != nil {
					tc.mutate(req)
				}
				code, body = postJSON(t, url, req)
			}

			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", code, tc.wantCode, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, body)
			}
			if er.Error == "" {
				t.Fatalf("error body has empty message: %s", body)
			}
			if tc.wantMsg != "" && !strings.Contains(er.Error, tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.wantMsg)
			}
		})
	}

	// A valid request through the same server still succeeds — the table
	// above must be rejecting the requests, not the server config.
	code, body := postJSON(t, url, small())
	if code != http.StatusOK {
		t.Fatalf("control request failed: %d %s", code, body)
	}
}

// TestWriteJSONCountsEncodeFailures pins that response-path encode
// failures are counted on the server's *own* telemetry registry — a
// server handed an injected registry must not leak the counter into
// the process-global default, where its operators would never look.
func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	tel := telemetry.NewRegistry()
	s, _ := startServer(t, Config{Telemetry: tel})
	globalBefore := telemetry.Default().Counter("server.response_encode_errors").Value()

	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": math.NaN()})
	if got := tel.Counter("server.response_encode_errors").Value(); got != 1 {
		t.Fatalf("response_encode_errors = %d, want 1", got)
	}
	if got := telemetry.Default().Counter("server.response_encode_errors").Value(); got != globalBefore {
		t.Fatalf("encode failure leaked into the global registry (%d -> %d)", globalBefore, got)
	}

	rec = httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]string{"ok": "fine"})
	if got := tel.Counter("server.response_encode_errors").Value(); got != 1 {
		t.Fatalf("response_encode_errors after clean encode = %d, want 1", got)
	}
}

// TestCloudUploadOverLimitIs413 pins the same 413 contract on the
// upload endpoint, which shares the MaxBytesReader cap.
func TestCloudUploadOverLimitIs413(t *testing.T) {
	_, base := startServer(t, Config{MaxBodyBytes: 512})
	code, body := postJSON(t, base+"/v1/clouds", testCloud(100, 7))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: %d %s, want 413", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "512 byte limit") {
		t.Fatalf("413 body %s does not pin the limit message", body)
	}
}
