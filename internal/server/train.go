package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"fillvoid/internal/cluster"
	"fillvoid/internal/jobs"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// handleTrain accepts an async training job: validate the request,
// pin it to the replica owning its cloud (clustered serving), rebuild
// the full truth volume from the uploaded cloud, and queue the job.
// 202 with the job id when work was queued; 200 when the identical
// spec already has a job (content-addressed idempotency).
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusServiceUnavailable, "training disabled (start with -jobs-dir)")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req TrainRequest
	if !s.decodeBody(w, r, &req, "train request") {
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := spec.Validate(int(s.cfg.MaxGridPoints)); err != nil {
		// An oversized grid is a payload-size problem (413, like the
		// reconstruct path); everything else is a malformed request.
		if strings.Contains(err.Error(), "exceeds") {
			s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		} else {
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	h, err := recon.ParseCloudHash(spec.CloudID)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Jobs are pinned to the replica owning the cloud's hash: its
	// checkpoints, status, and resulting model then live exactly where
	// reconstruction queries for that cloud already route.
	if s.cluster != nil && !cluster.IsInternal(r) {
		if owner, self := s.cluster.Owner(uint64(h)); !self {
			s.proxyTrain(ctx, w, owner, &req, h)
			return
		}
	}

	c, ok := s.clouds.get(h)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			"cloud %s not in store (re-upload via /v1/clouds)", spec.CloudID)
		return
	}
	truth, err := jobs.VolumeFromCloud(c, spec.Grid)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var base []byte
	if spec.BaseModel != "" {
		if base, err = s.models.Bytes(spec.BaseModel); err != nil {
			if errors.Is(err, jobs.ErrModelNotFound) {
				s.writeError(w, http.StatusNotFound, "base model %s not in store", spec.BaseModel)
			} else {
				s.writeError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
	}

	st, created, err := s.jobs.Submit(spec, truth, base)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	s.writeJSON(w, code, &TrainResponse{
		JobID:       st.ID,
		State:       string(st.State),
		Created:     created,
		EpochsTotal: st.EpochsTotal,
		ModelID:     st.ModelID,
		Replica:     s.replicaID(),
	})
}

// proxyTrain forwards a training request to the replica owning its
// cloud, pushing the cloud over once if the owner does not hold it.
func (s *Server) proxyTrain(ctx context.Context, w http.ResponseWriter, owner cluster.Member, req *TrainRequest, h recon.CloudHash) {
	body, err := json.Marshal(req)
	if err != nil {
		s.writeError(w, http.StatusBadGateway, "encoding train proxy request: %v", err)
		return
	}
	status, respBody, err := s.cluster.ProxyRequest(ctx, owner, http.MethodPost, "/v1/train", body)
	if err != nil {
		s.writeError(w, http.StatusBadGateway, "train proxy to replica %s: %v", owner.ID, err)
		return
	}
	if status == http.StatusNotFound && strings.Contains(string(respBody), "not in store") {
		if c, ok := s.clouds.get(h); ok {
			// The owner missed the upload broadcast; replicate the cloud
			// (content-addressed, so the repeat is idempotent) and retry.
			if cb, err := json.Marshal(cloudToJSON(c)); err == nil {
				s.cluster.ReplicateCloud(ctx, cb)
			}
			status, respBody, err = s.cluster.ProxyRequest(ctx, owner, http.MethodPost, "/v1/train", body)
			if err != nil {
				s.writeError(w, http.StatusBadGateway, "train proxy to replica %s: %v", owner.ID, err)
				return
			}
		}
	}
	s.relay(w, owner, status, respBody)
}

// cloudToJSON converts a stored cloud back to its wire form for
// replication pushes.
func cloudToJSON(c *pointcloud.Cloud) *CloudJSON {
	cj := &CloudJSON{
		Name:   c.Name,
		Points: make([][3]float64, len(c.Points)),
		Values: append([]float64(nil), c.Values...),
	}
	for i, p := range c.Points {
		cj.Points[i] = [3]float64{p.X, p.Y, p.Z}
	}
	return cj
}

// relay writes a peer's response through verbatim, stamping which
// replica answered.
func (s *Server) relay(w http.ResponseWriter, owner cluster.Member, status int, body []byte) {
	if sw, ok := w.(*statusWriter); ok && status >= 400 {
		sw.errMsg = fmt.Sprintf("relayed error from replica %s", owner.ID)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.HeaderReplica, owner.ID)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.tel.Counter("server.response_encode_errors").Inc()
	}
}

// handleJobGet serves GET /v1/jobs/{id}. An id unknown locally is asked
// of the peers (the job lives on the replica owning its cloud, which a
// client holding only a job id cannot compute).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusServiceUnavailable, "training disabled (start with -jobs-dir)")
		return
	}
	id := r.PathValue("id")
	st, err := s.jobs.Get(id)
	if err != nil {
		if s.relayJobFromPeers(w, r, id, http.MethodGet) {
			return
		}
		s.writeError(w, http.StatusNotFound, "job %s not found", id)
		return
	}
	s.writeJSON(w, http.StatusOK, jobStatusJSON(st, s.replicaID()))
}

// handleJobCancel serves DELETE /v1/jobs/{id}: stop the job at its next
// epoch boundary (running) or immediately (queued). Cancelling a
// finished job is a conflict, not a success — its outcome already
// exists.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.writeError(w, http.StatusServiceUnavailable, "training disabled (start with -jobs-dir)")
		return
	}
	id := r.PathValue("id")
	st, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		if s.relayJobFromPeers(w, r, id, http.MethodDelete) {
			return
		}
		s.writeError(w, http.StatusNotFound, "job %s not found", id)
	case errors.Is(err, jobs.ErrJobFinished):
		s.writeError(w, http.StatusConflict, "job %s already finished (state %s)", id, st.State)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		s.writeJSON(w, http.StatusOK, jobStatusJSON(st, s.replicaID()))
	}
}

// relayJobFromPeers forwards a job status/cancel for an id this replica
// does not own, relaying the first peer answer that is not a 404.
func (s *Server) relayJobFromPeers(w http.ResponseWriter, r *http.Request, id, method string) bool {
	if s.cluster == nil || cluster.IsInternal(r) || !jobs.ValidID(id) {
		return false
	}
	status, body, found := s.cluster.QueryPeers(r.Context(), method, "/v1/jobs/"+id)
	if !found {
		return false
	}
	s.relay(w, cluster.Member{ID: "peer"}, status, body)
	return true
}

// jobStatusJSON shapes one job status for the wire.
func jobStatusJSON(st jobs.Status, replica string) *JobStatusResponse {
	return &JobStatusResponse{
		JobID:       st.ID,
		State:       string(st.State),
		Epoch:       st.Epoch,
		EpochsTotal: st.EpochsTotal,
		Loss:        st.Loss,
		CloudID:     st.Spec.CloudID,
		ModelID:     st.ModelID,
		Error:       st.Error,
		Resumes:     st.Resumes,
		Replica:     replica,
	}
}

// handleModelGet serves GET /v1/models/{id}: the serialized model
// bundle (application/octet-stream), pulled from a peer and cached on
// a local miss. The bytes round-trip through POST /v1/reconstruct's
// model_id on any replica, or load offline via core.Load.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, err := s.models.Bytes(id)
	if errors.Is(err, jobs.ErrModelNotFound) && s.cluster != nil && !cluster.IsInternal(r) && jobs.ValidID(id) {
		if status, body, found := s.cluster.QueryPeers(r.Context(), http.MethodGet, "/v1/models/"+id); found && status == http.StatusOK {
			if _, perr := s.models.PutBytes(body); perr == nil {
				b, err = body, nil
			}
		}
	}
	if err != nil {
		if errors.Is(err, jobs.ErrModelNotFound) {
			s.writeError(w, http.StatusNotFound, "model %s not in store (train via /v1/train)", id)
		} else {
			s.writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fillvoid-Model-ID", id)
	if _, err := w.Write(b); err != nil {
		s.tel.Counter("server.response_encode_errors").Inc()
	}
}
