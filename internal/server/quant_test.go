package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"fillvoid/internal/recon"
)

// quantStub is a stubRecon that also implements the WithQuant contract
// the handler wires to the fcnn reconstructor.
type quantStub struct {
	stubRecon
	mode string
}

func (q *quantStub) WithQuant(mode string) (recon.Reconstructor, error) {
	switch mode {
	case "", "none", "f64":
		return q, nil
	case "f16", "int8":
		cp := *q
		cp.mode = mode
		return &cp, nil
	default:
		return nil, fmt.Errorf("unknown quant mode %q", mode)
	}
}

func TestReconstructQuantField(t *testing.T) {
	reg := recon.NewRegistry()
	qs := &quantStub{}
	qs.name = "quantable"
	qs.fn = func(_ context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		return nil
	}
	reg.RegisterMethod(qs)
	reg.RegisterMethod(&stubRecon{name: "plain", fn: func(_ context.Context, _ *recon.Plan, _ recon.Region, dst []float64) error {
		return nil
	}})
	_, base := startServer(t, Config{Registry: reg})

	req := func(method, quant string) ReconstructRequest {
		return ReconstructRequest{
			Method: method, Quant: quant,
			Cloud: testCloud(10, 9), Grid: GridJSON{Dims: [3]int{4, 4, 2}},
		}
	}

	// A quant request against a method without WithQuant is a 400.
	if code, body := postJSON(t, base+"/v1/reconstruct", req("plain", "f16")); code != http.StatusBadRequest {
		t.Fatalf("plain+f16: got %d (%s), want 400", code, body)
	}
	// An unknown mode against a quantable method is a 400.
	if code, body := postJSON(t, base+"/v1/reconstruct", req("quantable", "f32")); code != http.StatusBadRequest {
		t.Fatalf("quantable+f32: got %d (%s), want 400", code, body)
	}
	// A valid mode runs the quantized view and echoes the mode.
	code, body := postJSON(t, base+"/v1/reconstruct", req("quantable", "f16"))
	if code != http.StatusOK {
		t.Fatalf("quantable+f16: got %d (%s)", code, body)
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Quant != "f16" {
		t.Errorf("response quant %q, want f16", resp.Quant)
	}
	// No quant field: full precision, empty echo.
	code, body = postJSON(t, base+"/v1/reconstruct", req("quantable", ""))
	if code != http.StatusOK {
		t.Fatalf("quantable: got %d (%s)", code, body)
	}
	resp = ReconstructResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Quant != "" {
		t.Errorf("response quant %q, want empty", resp.Quant)
	}
}
