package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// progressiveLine is the union of every NDJSON line type in a
// progressive stream.
type progressiveLine struct {
	Type   string    `json:"type"`
	Method string    `json:"method"`
	Dims   [3]int    `json:"dims"`
	Chunks int       `json:"chunks"`
	Stride int       `json:"stride"`
	Seq    int       `json:"seq"`
	Box    [6]int    `json:"box"`
	Values []float64 `json:"values"`
	Points int       `json:"points"`
	Error  string    `json:"error"`
}

// streamProgressive posts req and parses the NDJSON response.
func streamProgressive(t *testing.T, base string, req *ReconstructRequest) []progressiveLine {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/reconstruct", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progressive: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var lines []progressiveLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var l progressiveLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestProgressiveMatchesNonProgressive is the bit-identity contract of
// the streaming path: reassembling the chunk lines must reproduce the
// plain response value for value, with a sane header/coarse/done frame
// around them.
func TestProgressiveMatchesNonProgressive(t *testing.T) {
	_, base := startServer(t, Config{})
	code, body := postJSON(t, base+"/v1/clouds", testCloud(400, 1))
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}

	// Big enough (24*24*12 = 6912 > 4096) that the stream includes a
	// strided coarse preview.
	sp := [3]float64{1.0 / 23, 1.0 / 23, 1.0 / 11}
	grid := GridJSON{Dims: [3]int{24, 24, 12}, Spacing: &sp}

	code, body = postJSON(t, base+"/v1/reconstruct", &ReconstructRequest{
		Method: "linear", CloudID: up.CloudID, Grid: grid,
	})
	if code != http.StatusOK {
		t.Fatalf("plain reconstruct: %d %s", code, body)
	}
	var plain ReconstructResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	lines := streamProgressive(t, base, &ReconstructRequest{
		Method: "linear", CloudID: up.CloudID, Grid: grid,
		Progressive: true, ProgressiveChunks: 5,
	})
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines", len(lines))
	}
	header := lines[0]
	if header.Type != "header" || header.Method != "linear" {
		t.Fatalf("first line: %+v", header)
	}
	if header.Dims != [3]int{24, 24, 12} {
		t.Fatalf("header dims %v", header.Dims)
	}
	if header.Stride < 2 {
		t.Fatalf("header stride %d, want a strided preview for this grid", header.Stride)
	}
	done := lines[len(lines)-1]
	if done.Type != "done" || done.Chunks != header.Chunks || done.Points != len(plain.Values) {
		t.Fatalf("done line: %+v", done)
	}

	nx, ny := header.Dims[0], header.Dims[1]
	got := make([]float64, len(plain.Values))
	filled := make([]bool, len(plain.Values))
	sawCoarse, chunks := false, 0
	for _, l := range lines[1 : len(lines)-1] {
		switch l.Type {
		case "coarse":
			sawCoarse = true
			if len(l.Values) != l.Dims[0]*l.Dims[1]*l.Dims[2] {
				t.Fatalf("coarse: %d values for dims %v", len(l.Values), l.Dims)
			}
		case "chunk":
			if l.Seq != chunks {
				t.Fatalf("chunk seq %d, want %d (chunks must arrive in order)", l.Seq, chunks)
			}
			chunks++
			n := 0
			for k := l.Box[2]; k < l.Box[5]; k++ {
				for j := l.Box[1]; j < l.Box[4]; j++ {
					for i := l.Box[0]; i < l.Box[3]; i++ {
						idx := i + nx*(j+ny*k)
						if filled[idx] {
							t.Fatalf("node %d covered by two chunks", idx)
						}
						filled[idx] = true
						got[idx] = l.Values[n]
						n++
					}
				}
			}
			if n != len(l.Values) {
				t.Fatalf("chunk %d: box holds %d nodes but carries %d values", l.Seq, n, len(l.Values))
			}
		default:
			t.Fatalf("unexpected line type %q", l.Type)
		}
	}
	if !sawCoarse {
		t.Fatal("no coarse preview line")
	}
	if chunks != header.Chunks {
		t.Fatalf("%d chunk lines, header promised %d", chunks, header.Chunks)
	}
	for i := range filled {
		if !filled[i] {
			t.Fatalf("node %d never covered by any chunk", i)
		}
	}
	for i := range got {
		if got[i] != plain.Values[i] {
			t.Fatalf("value %d: progressive %v != plain %v (must be bit-identical)", i, got[i], plain.Values[i])
		}
	}
}

// TestProgressiveBoxRegion streams a sub-box and checks it against the
// plain response for the same box.
func TestProgressiveBoxRegion(t *testing.T) {
	_, base := startServer(t, Config{})
	code, body := postJSON(t, base+"/v1/clouds", testCloud(300, 2))
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	box := [6]int{2, 3, 1, 14, 13, 7}
	req := &ReconstructRequest{
		Method: "nearest", CloudID: up.CloudID, Grid: testGrid(),
		Region: RegionJSON{Box: &box},
	}
	code, body = postJSON(t, base+"/v1/reconstruct", req)
	if code != http.StatusOK {
		t.Fatalf("plain: %d %s", code, body)
	}
	var plain ReconstructResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	preq := *req
	preq.Progressive = true
	preq.ProgressiveChunks = 3
	lines := streamProgressive(t, base, &preq)
	var got []float64
	for _, l := range lines {
		if l.Type == "chunk" {
			got = append(got, l.Values...)
		}
		if l.Type == "error" {
			t.Fatalf("stream error: %s", l.Error)
		}
	}
	// Chunks split along the largest axis (x here: 12 ≥ 10 ≥ 6)...
	// whichever axis was cut, chunk-order concatenation only equals
	// x-fastest box order when the cut axis is the slowest-varying one
	// (z), so reassemble via the boxes instead of concatenation when
	// they differ.
	if len(got) != len(plain.Values) {
		t.Fatalf("progressive carried %d values, plain %d", len(got), len(plain.Values))
	}
	vals := make([]float64, len(plain.Values))
	bnx, bny := box[3]-box[0], box[4]-box[1]
	for _, l := range lines {
		if l.Type != "chunk" {
			continue
		}
		n := 0
		for k := l.Box[2]; k < l.Box[5]; k++ {
			for j := l.Box[1]; j < l.Box[4]; j++ {
				for i := l.Box[0]; i < l.Box[3]; i++ {
					vals[(i-box[0])+bnx*((j-box[1])+bny*(k-box[2]))] = l.Values[n]
					n++
				}
			}
		}
	}
	for i := range vals {
		if vals[i] != plain.Values[i] {
			t.Fatalf("value %d: progressive %v != plain %v", i, vals[i], plain.Values[i])
		}
	}
}
