package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/recon"
)

// Progressive reconstruction streams a box query as newline-delimited
// JSON: a header, a strided coarse preview (so a viewer can render
// within milliseconds), then the full-resolution values in slab chunks,
// then a done marker. Concatenating the chunk values in order yields
// exactly the bytes a non-progressive response would carry — each slab
// is an ordinary ROI query and the engine guarantees ROI output equals
// the full-grid values at those nodes.

// progressiveHeader opens the stream: everything a client needs to
// allocate the output volume and interpret the lines that follow.
type progressiveHeader struct {
	Type    string     `json:"type"` // "header"
	Method  string     `json:"method"`
	CloudID string     `json:"cloud_id"`
	ModelID string     `json:"model_id,omitempty"`
	Dims    [3]int     `json:"dims"`
	Origin  [3]float64 `json:"origin"`
	Spacing [3]float64 `json:"spacing"`
	Chunks  int        `json:"chunks"`
	Stride  int        `json:"stride"` // 0 = no coarse preview line
}

// progressiveCoarse is the preview: values at every stride-th node of
// the region box, x-fastest over the strided lattice.
type progressiveCoarse struct {
	Type   string    `json:"type"` // "coarse"
	Dims   [3]int    `json:"dims"`
	Stride int       `json:"stride"`
	Values []float64 `json:"values"`
}

// progressiveChunk is one full-resolution slab. Box holds absolute grid
// index bounds [i0,j0,k0,i1,j1,k1) and Values its nodes x-fastest.
type progressiveChunk struct {
	Type   string    `json:"type"` // "chunk"
	Seq    int       `json:"seq"`
	Box    [6]int    `json:"box"`
	Values []float64 `json:"values"`
}

type progressiveDone struct {
	Type       string  `json:"type"` // "done"
	Chunks     int     `json:"chunks"`
	Points     int     `json:"points"`
	DurationMS float64 `json:"duration_ms"`
}

// progressiveError terminates the stream early: the HTTP status is
// already committed as 200 by then, so mid-stream failures travel
// in-band.
type progressiveError struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// maxCoarsePoints bounds the preview so its latency stays negligible
// next to the first real chunk.
const maxCoarsePoints = 4096

// maxProgressiveChunks bounds the per-line overhead a client can
// request.
const maxProgressiveChunks = 64

// progressiveReconstruct streams region over w. The caller has already
// admitted the request (one execution slot is held for the whole
// stream) and validated that region is a box.
func (s *Server) progressiveReconstruct(ctx context.Context, w http.ResponseWriter, m recon.Reconstructor, method string, plan *recon.Plan, spec recon.GridSpec, region recon.Region, hash recon.CloudHash, req *ReconstructRequest) {
	start := time.Now()
	chunks := s.cfg.ProgressiveChunks
	if req.ProgressiveChunks > 0 {
		chunks = int(min64(req.ProgressiveChunks, maxProgressiveChunks))
	}
	slabs := splitRegion(region, chunks)

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			s.tel.Counter("server.response_encode_errors").Inc()
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	nx, ny, nz := region.Dims()
	origin := region.Origin(spec)
	stride := coarseStride(nx, ny, nz)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if !emit(&progressiveHeader{
		Type: "header", Method: method, CloudID: hash.String(), ModelID: req.ModelID,
		Dims:    [3]int{nx, ny, nz},
		Origin:  [3]float64{origin.X, origin.Y, origin.Z},
		Spacing: [3]float64{spec.Spacing.X, spec.Spacing.Y, spec.Spacing.Z},
		Chunks:  len(slabs), Stride: stride,
	}) {
		return
	}

	if stride > 0 {
		pts, cdims := coarsePoints(spec, region, stride)
		vals, err := recon.ReconstructPoints(ctx, m, plan, pts)
		if err != nil {
			s.streamFail(ctx, emit, err)
			return
		}
		if !emit(&progressiveCoarse{Type: "coarse", Dims: cdims, Stride: stride, Values: vals}) {
			return
		}
	}

	total := 0
	for seq, slab := range slabs {
		vol, err := recon.Reconstruct(ctx, m, plan, slab)
		if err != nil {
			s.streamFail(ctx, emit, err)
			return
		}
		total += len(vol.Data)
		if !emit(&progressiveChunk{
			Type: "chunk", Seq: seq,
			Box:    [6]int{slab.I0, slab.J0, slab.K0, slab.I1, slab.J1, slab.K1},
			Values: vol.Data,
		}) {
			return
		}
	}
	s.tel.Counter("server.reconstruct.points").Add(int64(total))
	emit(&progressiveDone{
		Type: "done", Chunks: len(slabs), Points: total,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// streamFail reports a mid-stream failure in-band and counts it.
func (s *Server) streamFail(ctx context.Context, emit func(any) bool, err error) {
	if ctx.Err() != nil {
		s.tel.Counter("server.admission.client_gone").Inc()
		return
	}
	s.tel.Counter("server.progressive.stream_errors").Inc()
	emit(&progressiveError{Type: "error", Error: err.Error()})
}

// splitRegion cuts a box region into at most n contiguous slabs along
// its largest axis. Slabs tile the region exactly and stay in axis
// order, so concatenating their values reassembles the box.
func splitRegion(r recon.Region, n int) []recon.Region {
	nx, ny, nz := r.Dims()
	if n < 1 {
		n = 1
	}
	axisLen := nz
	if ny > axisLen {
		axisLen = ny
	}
	if nx > axisLen {
		axisLen = nx
	}
	if n > axisLen {
		n = axisLen
	}
	out := make([]recon.Region, 0, n)
	for c := 0; c < n; c++ {
		lo, hi := c*axisLen/n, (c+1)*axisLen/n
		if lo == hi {
			continue
		}
		slab := r
		switch {
		case axisLen == nz:
			slab.K0, slab.K1 = r.K0+lo, r.K0+hi
		case axisLen == ny:
			slab.J0, slab.J1 = r.J0+lo, r.J0+hi
		default:
			slab.I0, slab.I1 = r.I0+lo, r.I0+hi
		}
		out = append(out, slab)
	}
	return out
}

// coarseStride picks the smallest uniform stride that keeps the preview
// under maxCoarsePoints nodes; 0 when the region is already small
// enough that a preview would only duplicate the first chunks.
func coarseStride(nx, ny, nz int) int {
	if nx*ny*nz <= maxCoarsePoints {
		return 0
	}
	for stride := 2; ; stride++ {
		cx, cy, cz := ceilDiv(nx, stride), ceilDiv(ny, stride), ceilDiv(nz, stride)
		if cx*cy*cz <= maxCoarsePoints {
			return stride
		}
	}
}

// coarsePoints lists the world positions of every stride-th node of the
// region box (x-fastest), plus the strided lattice dims.
func coarsePoints(spec recon.GridSpec, r recon.Region, stride int) ([]mathutil.Vec3, [3]int) {
	nx, ny, nz := r.Dims()
	cx, cy, cz := ceilDiv(nx, stride), ceilDiv(ny, stride), ceilDiv(nz, stride)
	pts := make([]mathutil.Vec3, 0, cx*cy*cz)
	for k := r.K0; k < r.K1; k += stride {
		for j := r.J0; j < r.J1; j += stride {
			for i := r.I0; i < r.I1; i += stride {
				pts = append(pts, spec.Point(i, j, k))
			}
		}
	}
	return pts, [3]int{cx, cy, cz}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
