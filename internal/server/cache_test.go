package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fillvoid/internal/interp"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
)

// cloudOf builds a deterministic pointcloud.Cloud (not the wire form)
// for direct planCache tests.
func cloudOf(n int, seed int64) *pointcloud.Cloud {
	rng := rand.New(rand.NewSource(seed))
	c := pointcloud.New("pressure", n)
	for i := 0; i < n; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		c.Add(mathutil.Vec3{X: x, Y: y, Z: z}, x-y+3*z)
	}
	return c
}

// TestThunderingHerdBuildsOnePlan pins the singleflight contract: 32
// concurrent first requests for one (cloud, spec) key run exactly one
// recon.NewPlan; the other 31 coalesce onto the leader's build and
// count as server.plan_cache.coalesced. The build seam is gated so the
// herd provably piles up while the build is still in flight — without
// coalescing, every one of the 32 would start its own build.
func TestThunderingHerdBuildsOnePlan(t *testing.T) {
	tel := telemetry.NewRegistry()
	s, base := startServer(t, Config{Telemetry: tel, MaxConcurrent: 64, MaxQueue: 64})

	var builds atomic.Int64
	gate := make(chan struct{})
	orig := s.plans.build
	s.plans.build = func(cloud *pointcloud.Cloud, spec recon.GridSpec) (*recon.Plan, error) {
		builds.Add(1)
		<-gate
		return orig(cloud, spec)
	}

	code, body := postJSON(t, base+"/v1/clouds", testCloud(150, 21))
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}

	const clients = 32
	var wg sync.WaitGroup
	var failures, uncached atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := ReconstructRequest{Method: "nearest", CloudID: up.CloudID, Grid: testGrid()}
			b, _ := json.Marshal(req)
			resp, err := http.Post(base+"/v1/reconstruct", "application/json", bytes.NewReader(b))
			if err != nil {
				failures.Add(1)
				return
			}
			defer resp.Body.Close()
			var rr ReconstructResponse
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&rr) != nil {
				failures.Add(1)
				return
			}
			if !rr.PlanCached {
				uncached.Add(1)
			}
		}()
	}

	// Hold the gate until every follower has joined the in-flight build,
	// so the test proves coalescing rather than racing it.
	deadline := time.Now().Add(10 * time.Second)
	for tel.Counter("server.plan_cache.coalesced").Value() != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d after 10s, want %d (builds started: %d)",
				tel.Counter("server.plan_cache.coalesced").Value(), clients-1, builds.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds in flight = %d with the whole herd queued, want 1", got)
	}
	close(gate)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d of %d herd requests failed", n, clients)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("recon.NewPlan ran %d times for one key, want 1", got)
	}
	if got := tel.Counter("server.plan_cache.misses").Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := tel.Counter("server.plan_cache.coalesced").Value(); got != clients-1 {
		t.Fatalf("coalesced = %d, want %d", got, clients-1)
	}
	// Exactly the leader reports plan_cached=false.
	if got := uncached.Load(); got != 1 {
		t.Fatalf("%d responses reported an uncached plan, want exactly 1 (the leader)", got)
	}
}

// TestPlanCacheBytesGaugeUnderChurn pins the gauge accounting fix:
// plans grow lazily after insertion (k-d tree, nearest table), so the
// old insert-size-only bookkeeping under-added and a later eviction
// drove server.plan_cache.bytes negative. With per-entry accounting
// the gauge stays non-negative through insert/grow/evict churn and
// lands exactly on the sum of the resident plans' measured sizes.
func TestPlanCacheBytesGaugeUnderChurn(t *testing.T) {
	tel := telemetry.NewRegistry()
	pc := newPlanCache(2, tel)
	gauge := tel.Gauge("server.plan_cache.bytes")
	m, err := interp.StandardRegistry(2).Get("nearest")
	if err != nil {
		t.Fatal(err)
	}
	spec := recon.GridSpec{NX: 8, NY: 8, NZ: 4, Spacing: mathutil.Vec3{X: 0.2, Y: 0.2, Z: 0.3}}

	check := func(step string, key recon.PlanKey) {
		if v := gauge.Value(); v < 0 {
			t.Fatalf("%s %v: plan_cache.bytes went negative: %g", step, key.Cloud, v)
		}
	}

	clouds := make([]*pointcloud.Cloud, 5)
	for i := range clouds {
		clouds[i] = cloudOf(60+10*i, int64(100+i))
	}
	latest := make(map[recon.PlanKey]*recon.Plan)
	var order []recon.PlanKey
	for round := 0; round < 3; round++ {
		for _, c := range clouds {
			key := recon.KeyOf(c, spec)
			plan, _, err := pc.getOrBuild(key, c, spec)
			if err != nil {
				t.Fatal(err)
			}
			check("after getOrBuild", key)
			// Grow the plan's lazy pieces past its insert-time size.
			if _, err := recon.Reconstruct(context.Background(), m, plan, recon.Full(spec)); err != nil {
				t.Fatal(err)
			}
			// A hit reconciles the growth into the gauge.
			if _, _, err := pc.getOrBuild(key, c, spec); err != nil {
				t.Fatal(err)
			}
			check("after reconcile", key)
			latest[key] = plan
			order = append(order, key)
		}
	}

	// Capacity 2: exactly the last two distinct keys are resident, and
	// the gauge must equal the sum of their last-reconciled sizes.
	var want int64
	for _, key := range order[len(order)-2:] {
		want += latest[key].Stats().Bytes
	}
	if got := int64(gauge.Value()); got != want {
		t.Fatalf("plan_cache.bytes = %d after churn, want %d (sum of resident plans)", got, want)
	}
	if ev := tel.Counter("server.plan_cache.evictions").Value(); ev < 10 {
		t.Fatalf("evictions = %d, want >= 10 (5 clouds x 3 rounds through a 2-entry cache)", ev)
	}
}

// TestPlanBuildFailureIsSharedAndRetriable checks a failed build is
// delivered to coalesced waiters and does not poison the key: the next
// request builds again.
func TestPlanBuildFailureIsSharedAndRetriable(t *testing.T) {
	tel := telemetry.NewRegistry()
	pc := newPlanCache(2, tel)
	cloud := cloudOf(30, 9)
	spec := recon.GridSpec{NX: 4, NY: 4, NZ: 2, Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1}}
	key := recon.KeyOf(cloud, spec)

	var calls atomic.Int64
	pc.build = func(c *pointcloud.Cloud, s recon.GridSpec) (*recon.Plan, error) {
		calls.Add(1)
		return nil, context.DeadlineExceeded
	}
	if _, _, err := pc.getOrBuild(key, cloud, spec); err == nil {
		t.Fatal("build failure not surfaced")
	}
	pc.build = recon.NewPlan
	plan, cached, err := pc.getOrBuild(key, cloud, spec)
	if err != nil || plan == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if cached {
		t.Fatal("retry reported a cache hit; failed build must not be cached")
	}
	if calls.Load() != 1 {
		t.Fatalf("failing builder called %d times, want 1", calls.Load())
	}
}
