package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/jobs"
	"fillvoid/internal/telemetry"
)

// trainTruth is the fixed training fixture for the server-level job
// tests: a small Isabel-analog frame.
func trainTruth() *grid.Volume {
	return datasets.Volume(datasets.NewIsabel(3), 16, 16, 8, 4)
}

// fullFieldCloud converts a volume to the wire cloud the training API
// requires: one point per grid node, values bit-exact.
func fullFieldCloud(v *grid.Volume, name string) *CloudJSON {
	cj := &CloudJSON{Name: name}
	for k := 0; k < v.NZ; k++ {
		for j := 0; j < v.NY; j++ {
			for i := 0; i < v.NX; i++ {
				p := v.Point(i, j, k)
				cj.Points = append(cj.Points, [3]float64{p.X, p.Y, p.Z})
				cj.Values = append(cj.Values, v.Data[v.Index(i, j, k)])
			}
		}
	}
	return cj
}

func gridOf(v *grid.Volume) GridJSON {
	origin := [3]float64{v.Origin.X, v.Origin.Y, v.Origin.Z}
	spacing := [3]float64{v.Spacing.X, v.Spacing.Y, v.Spacing.Z}
	return GridJSON{Dims: [3]int{v.NX, v.NY, v.NZ}, Origin: &origin, Spacing: &spacing}
}

// fastTrainRequest fills a TrainRequest that trains in well under a
// second. Workers pinned for deterministic weights.
func fastTrainRequest(cloudID string, v *grid.Volume) *TrainRequest {
	return &TrainRequest{
		CloudID:         cloudID,
		Field:           "pressure",
		Grid:            gridOf(v),
		Sampler:         "importance",
		SamplerSeed:     3,
		Epochs:          12,
		Hidden:          []int64{24, 12},
		TrainFractions:  []float64{0.03},
		MaxTrainRows:    1500,
		BatchSize:       64,
		Workers:         2,
		Seed:            5,
		CheckpointEvery: 4,
	}
}

func uploadCloud(t *testing.T, base string, cj *CloudJSON) string {
	t.Helper()
	code, body := postJSON(t, base+"/v1/clouds", cj)
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	return up.CloudID
}

// waitJob polls GET /v1/jobs/{id} until the state is terminal.
func waitJob(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatusResponse
		code := getJSON(t, base+"/v1/jobs/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("job status: %d", code)
		}
		switch jobs.State(st.State) {
		case jobs.StateDone, jobs.StateFailed, jobs.StateCancelled, jobs.StateInterrupted:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobStatusResponse{}
}

func httpDelete(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTrainJobLifecycle walks the whole training service end to end:
// upload the full field as a cloud, start an async job, watch it to
// completion, download the model artifact, and reconstruct with
// model_id.
func TestTrainJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	truth := trainTruth()
	_, base := startServer(t, Config{JobsDir: t.TempDir()})
	cloudID := uploadCloud(t, base, fullFieldCloud(truth, "pressure"))

	code, body := postJSON(t, base+"/v1/train", fastTrainRequest(cloudID, truth))
	if code != http.StatusAccepted {
		t.Fatalf("train: %d %s", code, body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Created || tr.JobID == "" || tr.EpochsTotal != 12 {
		t.Fatalf("train response: %+v", tr)
	}

	st := waitJob(t, base, tr.JobID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
	}
	if st.ModelID == "" || st.Epoch != 12 || st.CloudID != cloudID {
		t.Fatalf("job status: %+v", st)
	}

	// Re-POST of the identical spec: 200, same job, no new work.
	code, body = postJSON(t, base+"/v1/train", fastTrainRequest(cloudID, truth))
	if code != http.StatusOK {
		t.Fatalf("idempotent re-train: %d %s", code, body)
	}
	var again TrainResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Created || again.JobID != tr.JobID || again.ModelID != st.ModelID {
		t.Fatalf("idempotent re-train response: %+v", again)
	}

	// The model artifact downloads and decodes.
	resp, err := http.Get(base + "/v1/models/" + st.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("model download: %d %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("model content type %q", ct)
	}
	downloaded, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("downloaded model does not decode: %v", err)
	}
	if got, err := jobs.IDForModel(downloaded); err != nil || got != st.ModelID {
		t.Fatalf("downloaded model does not hash to the model id: %s vs %s (%v)", got, st.ModelID, err)
	}

	// Reconstruction with the stored model.
	code, body = postJSON(t, base+"/v1/reconstruct", &ReconstructRequest{
		ModelID: st.ModelID,
		CloudID: cloudID,
		Grid:    gridOf(truth),
	})
	if code != http.StatusOK {
		t.Fatalf("reconstruct with model_id: %d %s", code, body)
	}
	var rec ReconstructResponse
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Method != "fcnn" || rec.ModelID != st.ModelID {
		t.Fatalf("reconstruct response: method %q model %q", rec.Method, rec.ModelID)
	}
	if len(rec.Values) != truth.NX*truth.NY*truth.NZ {
		t.Fatalf("got %d values, want %d", len(rec.Values), truth.NX*truth.NY*truth.NZ)
	}
	for i, v := range rec.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("value %d is %v", i, v)
		}
	}

	// Cancelling the finished job is a conflict.
	code, body = httpDelete(t, base+"/v1/jobs/"+tr.JobID)
	if code != http.StatusConflict {
		t.Fatalf("cancel finished job: %d %s", code, body)
	}

	// Health reflects the training service.
	var h HealthResponse
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !h.Training || h.Models < 1 {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestFineTuneJob trains a base model through the job API, then
// fine-tunes it onto a later timestep via base_model.
func TestFineTuneJob(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	truth := trainTruth()
	_, base := startServer(t, Config{JobsDir: t.TempDir()})
	cloudID := uploadCloud(t, base, fullFieldCloud(truth, "pressure"))

	code, body := postJSON(t, base+"/v1/train", fastTrainRequest(cloudID, truth))
	if code != http.StatusAccepted {
		t.Fatalf("pretrain: %d %s", code, body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	pre := waitJob(t, base, tr.JobID)
	if pre.State != string(jobs.StateDone) {
		t.Fatalf("pretrain job: %s (%s)", pre.State, pre.Error)
	}

	// Fine-tune on the next frame of the same analog.
	next := datasets.Volume(datasets.NewIsabel(3), 16, 16, 8, 5)
	nextID := uploadCloud(t, base, fullFieldCloud(next, "pressure"))
	ftReq := fastTrainRequest(nextID, next)
	ftReq.BaseModel = pre.ModelID
	ftReq.FineTuneMode = "all"
	ftReq.FineTuneEpochs = 4
	code, body = postJSON(t, base+"/v1/train", ftReq)
	if code != http.StatusAccepted {
		t.Fatalf("finetune: %d %s", code, body)
	}
	var ft TrainResponse
	if err := json.Unmarshal(body, &ft); err != nil {
		t.Fatal(err)
	}
	if ft.JobID == tr.JobID {
		t.Fatal("fine-tune job shares the pretrain job id")
	}
	st := waitJob(t, base, ft.JobID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("finetune job: %s (%s)", st.State, st.Error)
	}
	if st.ModelID == pre.ModelID {
		t.Fatal("fine-tuning produced the identical model")
	}
}

// TestTrainErrorPaths is the table of contract errors for the training
// endpoints.
func TestTrainErrorPaths(t *testing.T) {
	truth := trainTruth()
	// Workers: -1 → no training workers; jobs queue but never run, so
	// every case is fast and deterministic.
	_, base := startServer(t, Config{JobsDir: t.TempDir(), TrainWorkers: -1, TrainQueue: 1})
	cloudID := uploadCloud(t, base, fullFieldCloud(truth, "pressure"))

	// Occupy the single queue slot.
	code, body := postJSON(t, base+"/v1/train", fastTrainRequest(cloudID, truth))
	if code != http.StatusAccepted {
		t.Fatalf("seed job: %d %s", code, body)
	}
	var seeded TrainResponse
	if err := json.Unmarshal(body, &seeded); err != nil {
		t.Fatal(err)
	}

	partial := fullFieldCloud(truth, "pressure")
	partial.Points = partial.Points[:100]
	partial.Values = partial.Values[:100]
	partialID := uploadCloud(t, base, partial)

	overflowReq := fastTrainRequest(cloudID, truth)
	overflowReq.Grid = GridJSON{Dims: [3]int{1 << 20, 1 << 20, 1 << 20}}

	queueFullReq := fastTrainRequest(cloudID, truth)
	queueFullReq.SamplerSeed = 999 // distinct spec → distinct job

	partialReq := fastTrainRequest(partialID, truth)

	badEpochs := fastTrainRequest(cloudID, truth)
	badEpochs.Epochs = -1

	badMode := fastTrainRequest(cloudID, truth)
	badMode.FineTuneMode = "psychic"

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"train unknown cloud", "POST", "/v1/train", fastTrainRequest("00000000deadbeef", truth), http.StatusNotFound},
		{"train malformed body", "POST", "/v1/train", json.RawMessage(`{"cloud_id":`), http.StatusBadRequest},
		{"train oversized grid", "POST", "/v1/train", overflowReq, http.StatusRequestEntityTooLarge},
		{"train bad epochs", "POST", "/v1/train", badEpochs, http.StatusBadRequest},
		{"train bad fine-tune mode", "POST", "/v1/train", badMode, http.StatusBadRequest},
		{"train base model missing", "POST", "/v1/train", func() any {
			r := fastTrainRequest(cloudID, truth)
			r.SamplerSeed = 40
			r.BaseModel = "00000000deadbeef"
			return r
		}(), http.StatusNotFound},
		{"train partial cloud", "POST", "/v1/train", partialReq, http.StatusBadRequest},
		{"train queue full", "POST", "/v1/train", queueFullReq, http.StatusTooManyRequests},
		{"job status unknown", "GET", "/v1/jobs/ffffffffffffffff", nil, http.StatusNotFound},
		{"job cancel unknown", "DELETE", "/v1/jobs/ffffffffffffffff", nil, http.StatusNotFound},
		{"reconstruct unknown model", "POST", "/v1/reconstruct", &ReconstructRequest{
			ModelID: "ffffffffffffffff", CloudID: cloudID, Grid: gridOf(truth),
		}, http.StatusNotFound},
		{"reconstruct model with non-fcnn method", "POST", "/v1/reconstruct", &ReconstructRequest{
			ModelID: "ffffffffffffffff", Method: "linear", CloudID: cloudID, Grid: gridOf(truth),
		}, http.StatusBadRequest},
		{"progressive point region", "POST", "/v1/reconstruct", &ReconstructRequest{
			Method: "nearest", CloudID: cloudID, Grid: gridOf(truth), Progressive: true,
			Region: RegionJSON{Points: [][3]float64{{0, 0, 0}}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var body []byte
			switch tc.method {
			case "POST":
				if raw, ok := tc.body.(json.RawMessage); ok {
					resp, err := http.Post(base+tc.path, "application/json", bytes.NewReader(raw))
					if err != nil {
						t.Fatal(err)
					}
					body, _ = io.ReadAll(resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
					break
				}
				code, body = postJSON(t, base+tc.path, tc.body)
			case "GET":
				resp, err := http.Get(base + tc.path)
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
				code = resp.StatusCode
			case "DELETE":
				code, body = httpDelete(t, base+tc.path)
			}
			if code != tc.want {
				t.Fatalf("status %d, want %d (%s)", code, tc.want, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without JSON error envelope: %s", code, body)
			}
		})
	}

	// Cancel the queued seed job (200), then cancelling again is 409.
	code, body = httpDelete(t, base+"/v1/jobs/"+seeded.JobID)
	if code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", code, body)
	}
	var cancelled JobStatusResponse
	if err := json.Unmarshal(body, &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != string(jobs.StateCancelled) {
		t.Fatalf("state %s after cancel", cancelled.State)
	}
	if code, body = httpDelete(t, base+"/v1/jobs/"+seeded.JobID); code != http.StatusConflict {
		t.Fatalf("double cancel: %d %s", code, body)
	}
}

// TestTrainingDisabled pins the 503 contract when the server runs
// without -jobs-dir.
func TestTrainingDisabled(t *testing.T) {
	truth := trainTruth()
	_, base := startServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/v1/train", fastTrainRequest("00000000deadbeef", truth)},
		{"GET", "/v1/jobs/ffffffffffffffff", nil},
		{"DELETE", "/v1/jobs/ffffffffffffffff", nil},
	} {
		var code int
		var body []byte
		switch tc.method {
		case "POST":
			code, body = postJSON(t, base+tc.path, tc.body)
		case "GET":
			resp, err := http.Get(base + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			code = resp.StatusCode
		case "DELETE":
			code, body = httpDelete(t, base+tc.path)
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: %d %s, want 503", tc.method, tc.path, code, body)
		}
	}
	// The model store still serves (memory-only): unknown is 404.
	resp, err := http.Get(base + "/v1/models/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("model get without jobs dir: %d, want 404", resp.StatusCode)
	}
	var h HealthResponse
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK || h.Training {
		t.Fatalf("healthz: code %d training %v, want training disabled", code, h.Training)
	}
}

// TestServerRestartResumesJob is the serving-layer half of the crash
// story: SIGTERM-equivalent shutdown mid-job, then a new server over
// the same directories resumes and finishes it, and the model id it
// publishes matches an uninterrupted run bit for bit.
func TestServerRestartResumesJob(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	truth := trainTruth()
	req := func(cloudID string) *TrainRequest {
		r := fastTrainRequest(cloudID, truth)
		r.Epochs = 40
		r.CheckpointEvery = 2
		return r
	}

	// Reference: the same job on an undisturbed server.
	_, refBase := startServer(t, Config{JobsDir: t.TempDir()})
	refCloud := uploadCloud(t, refBase, fullFieldCloud(truth, "pressure"))
	code, body := postJSON(t, refBase+"/v1/train", req(refCloud))
	if code != http.StatusAccepted {
		t.Fatalf("reference train: %d %s", code, body)
	}
	var refTr TrainResponse
	if err := json.Unmarshal(body, &refTr); err != nil {
		t.Fatal(err)
	}
	refSt := waitJob(t, refBase, refTr.JobID)
	if refSt.State != string(jobs.StateDone) {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}

	// Interrupted: shut the server down once training is under way.
	jobsDir := t.TempDir()
	s1, base1 := startServer(t, Config{JobsDir: jobsDir})
	cloudID := uploadCloud(t, base1, fullFieldCloud(truth, "pressure"))
	code, body = postJSON(t, base1+"/v1/train", req(cloudID))
	if code != http.StatusAccepted {
		t.Fatalf("train: %d %s", code, body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatusResponse
		if getJSON(t, base1+"/v1/jobs/"+tr.JobID, &st) == http.StatusOK && st.Epoch >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started training")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	err := s1.Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart over the same state: the scan re-queues the job and the
	// resumed run must converge to the identical model.
	_, base2 := startServer(t, Config{JobsDir: jobsDir})
	st := waitJob(t, base2, tr.JobID)
	if st.State != string(jobs.StateDone) {
		t.Fatalf("resumed job: %s (%s)", st.State, st.Error)
	}
	if st.ModelID != refSt.ModelID {
		t.Fatalf("resumed model %s != uninterrupted model %s (not bit-identical)", st.ModelID, refSt.ModelID)
	}
	if st.Resumes == 0 {
		t.Fatal("restart did not count a resume")
	}
	// And the artifact itself is reachable on the new process.
	resp, err := http.Get(base2 + "/v1/models/" + st.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model after restart: %d", resp.StatusCode)
	}
}

// TestTrainObserverProgress checks that a running job exposes live
// epoch/loss numbers (the TrainObserver plumbing end to end).
func TestTrainObserverProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	truth := trainTruth()
	tel := telemetry.NewRegistry()
	_, base := startServer(t, Config{JobsDir: t.TempDir(), Telemetry: tel})
	cloudID := uploadCloud(t, base, fullFieldCloud(truth, "pressure"))

	r := fastTrainRequest(cloudID, truth)
	r.Epochs = 60
	r.CheckpointEvery = 50
	code, body := postJSON(t, base+"/v1/train", r)
	if code != http.StatusAccepted {
		t.Fatalf("train: %d %s", code, body)
	}
	var tr TrainResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	sawProgress := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatusResponse
		if getJSON(t, base+"/v1/jobs/"+tr.JobID, &st) != http.StatusOK {
			t.Fatal("job status failed")
		}
		if st.State == string(jobs.StateRunning) && st.Epoch > 0 && st.Loss > 0 {
			sawProgress = true
		}
		if jobs.State(st.State).Terminal() {
			if st.State != string(jobs.StateDone) {
				t.Fatalf("job: %s (%s)", st.State, st.Error)
			}
			if !sawProgress && st.Epoch == 0 {
				t.Fatal("no live progress was ever observed")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish")
}
