package jobs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/checkpoint/faultfs"
	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// testCloudID is a syntactically valid cloud id; the jobs layer treats
// it as an opaque key (the server resolves it against the cloud store).
const testCloudID = "00c0ffee00c0ffee"

// testVolume is a small Isabel-analog frame: large enough that
// training has structure to learn, small enough that a full run takes
// well under a second.
func testVolume() *grid.Volume {
	return datasets.Volume(datasets.NewIsabel(3), 16, 16, 8, 4)
}

// testSpec is a complete fast pretraining spec over testVolume.
// Workers is pinned because bit-identical resume requires the same
// gradient-reduction order.
func testSpec() Spec {
	opts := core.DefaultOptions()
	opts.Hidden = []int{24, 12}
	opts.Epochs = 12
	opts.TrainFractions = []float64{0.03}
	opts.MaxTrainRows = 1500
	opts.BatchSize = 64
	opts.Seed = 5
	opts.Workers = 2
	return Spec{
		CloudID:         testCloudID,
		Field:           "pressure",
		Grid:            recon.SpecOf(testVolume()),
		Sampler:         "importance",
		SamplerSeed:     3,
		Opts:            opts,
		CheckpointEvery: 4,
	}
}

func testManager(t *testing.T, cfg Config) (*Manager, *ModelStore) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Models == nil {
		ms, err := NewModelStore("", 0, telemetry.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Models = ms
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m, cfg.Models
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return Status{}
}

func TestSubmitTrainsToDone(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	m, models := testManager(t, Config{})
	st, created, err := m.Submit(testSpec(), testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission must create the job")
	}
	if st.EpochsTotal != 12 {
		t.Fatalf("EpochsTotal = %d, want 12", st.EpochsTotal)
	}

	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (error %q), want done", final.State, final.Error)
	}
	if !ValidID(final.ModelID) {
		t.Fatalf("model id %q is not a valid content address", final.ModelID)
	}
	if final.Epoch != 12 {
		t.Fatalf("observer epoch = %d, want 12", final.Epoch)
	}
	if final.Loss <= 0 {
		t.Fatalf("observer loss = %v, want > 0", final.Loss)
	}
	model, err := models.Get(final.ModelID)
	if err != nil {
		t.Fatalf("finished model not in store: %v", err)
	}
	if model.FieldName() != "pressure" {
		t.Fatalf("model field %q, want pressure", model.FieldName())
	}

	// Idempotent re-POST of a finished spec: same job, no new work.
	again, created, err := m.Submit(testSpec(), testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if created || again.ID != st.ID || again.State != StateDone {
		t.Fatalf("resubmit: created=%v id=%s state=%s, want existing done job %s",
			created, again.ID, again.State, st.ID)
	}
}

func TestSubmitValidatesInputs(t *testing.T) {
	m, _ := testManager(t, Config{Workers: -1})
	spec := testSpec()

	if _, _, err := m.Submit(spec, nil, nil); err == nil {
		t.Error("nil volume accepted")
	}
	wrong := recon.GridSpec{NX: 4, NY: 4, NZ: 4, Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1}}.NewVolume()
	if _, _, err := m.Submit(spec, wrong, nil); err == nil {
		t.Error("mismatched volume dims accepted")
	}
	if _, _, err := m.Submit(spec, testVolume(), []byte("base")); err == nil {
		t.Error("base bytes without BaseModel accepted")
	}
	bad := spec
	bad.CloudID = "nope"
	if _, _, err := m.Submit(bad, testVolume(), nil); err == nil {
		t.Error("invalid cloud id accepted")
	}
}

func TestQueueFullRejectsSubmit(t *testing.T) {
	// Workers: -1 runs no workers, so submissions stay queued.
	m, _ := testManager(t, Config{Workers: -1, Queue: 2})
	for i := 0; i < 2; i++ {
		spec := testSpec()
		spec.SamplerSeed = int64(100 + i) // distinct specs, distinct jobs
		if _, _, err := m.Submit(spec, testVolume(), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	spec := testSpec()
	spec.SamplerSeed = 999
	if _, _, err := m.Submit(spec, testVolume(), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestCancelQueuedThenFinished(t *testing.T) {
	m, _ := testManager(t, Config{Workers: -1})
	st, _, err := m.Submit(testSpec(), testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
	if _, err := m.Cancel(st.ID); !errors.Is(err, ErrJobFinished) {
		t.Fatalf("cancelling a cancelled job: err = %v, want ErrJobFinished", err)
	}
	if _, err := m.Cancel("ffffffffffffffff"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancelling unknown job: err = %v, want ErrNotFound", err)
	}
	if q, _ := m.Depth(); q != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", q)
	}
}

// TestFaultInjectionResumeBitIdentical is the crash-recovery
// acceptance test: checkpoint storage fails mid-run (the job dies
// after its first intact checkpoint), a "restarted process" (a fresh
// Manager over the same directory) re-queues the job, and the resumed
// run must finish with the model id — i.e. the exact weight bytes — an
// uninterrupted run produces.
func TestFaultInjectionResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	// Reference: the same spec trained with no faults.
	clean, _ := testManager(t, Config{})
	ref, _, err := clean.Submit(testSpec(), testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, clean, ref.ID)
	if refSt.State != StateDone {
		t.Fatalf("reference run: state %s (error %q)", refSt.State, refSt.Error)
	}

	// Faulted: the second checkpoint write (epoch 8 of 12, Every=4)
	// fails, killing the job with the epoch-4 checkpoint intact.
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	ffs.Arm(faultfs.OpRename, 2, faultfs.Fail)
	faulted, _ := testManager(t, Config{Dir: dir, FS: ffs})
	st, _, err := faulted.Submit(testSpec(), testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := waitTerminal(t, faulted, st.ID)
	if interrupted.State != StateInterrupted {
		t.Fatalf("state %s (error %q), want interrupted", interrupted.State, interrupted.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := faulted.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same directory re-queues the
	// interrupted job and resumes it from the intact checkpoint.
	models, err := NewModelStore("", 0, telemetry.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	restarted, _ := testManager(t, Config{Dir: dir, Models: models})
	resumed := waitTerminal(t, restarted, st.ID)
	if resumed.State != StateDone {
		t.Fatalf("resumed run: state %s (error %q), want done", resumed.State, resumed.Error)
	}
	if resumed.Resumes == 0 {
		t.Fatal("resumed run did not count its resume")
	}
	// Content-addressed ids make bit-identity a string comparison: the
	// ids match iff the serialized weights match byte for byte.
	if resumed.ModelID != refSt.ModelID {
		t.Fatalf("resumed model %s differs from uninterrupted model %s (not bit-identical)",
			resumed.ModelID, refSt.ModelID)
	}
}

// TestCloseInterruptsAndRestartResumes shuts the manager down mid-run
// (the SIGTERM path) and checks the restarted manager finishes the job
// with bit-identical weights.
func TestCloseInterruptsAndRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	clean, _ := testManager(t, Config{})
	longSpec := testSpec()
	longSpec.Opts.Epochs = 40
	longSpec.CheckpointEvery = 2
	ref, _, err := clean.Submit(longSpec, testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	refSt := waitTerminal(t, clean, ref.ID)
	if refSt.State != StateDone {
		t.Fatalf("reference run: state %s (error %q)", refSt.State, refSt.Error)
	}

	dir := t.TempDir()
	m, _ := testManager(t, Config{Dir: dir})
	st, _, err := m.Submit(longSpec, testVolume(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until training is demonstrably under way, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Epoch >= 4 || cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started training")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The shutdown may have lost the race with a fast run; both
	// outcomes are legitimate, but only an interrupt exercises resume.
	if after.State != StateDone && after.State != StateInterrupted {
		t.Fatalf("state after Close: %s (error %q)", after.State, after.Error)
	}

	restarted, _ := testManager(t, Config{Dir: dir})
	resumed := waitTerminal(t, restarted, st.ID)
	if resumed.State != StateDone {
		t.Fatalf("resumed run: state %s (error %q)", resumed.State, resumed.Error)
	}
	if resumed.ModelID != refSt.ModelID {
		t.Fatalf("resumed model %s differs from uninterrupted model %s (not bit-identical)",
			resumed.ModelID, refSt.ModelID)
	}
}

func TestVolumeFromCloudRoundTrip(t *testing.T) {
	truth := testVolume()
	spec := recon.SpecOf(truth)

	// A full-coverage cloud in shuffled order must rebuild the volume
	// value-exactly.
	c := pointcloud.New("pressure", spec.Len())
	perm := rand.New(rand.NewSource(9)).Perm(spec.Len())
	for _, idx := range perm {
		i := idx % spec.NX
		j := (idx / spec.NX) % spec.NY
		k := idx / (spec.NX * spec.NY)
		c.Add(spec.Point(i, j, k), truth.Data[idx])
	}
	v, err := VolumeFromCloud(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		if v.Data[i] != truth.Data[i] {
			t.Fatalf("value %d: %v != %v (must pass through bit-exactly)", i, v.Data[i], truth.Data[i])
		}
	}

	short := pointcloud.New("pressure", 1)
	short.Add(spec.Point(0, 0, 0), 1)
	if _, err := VolumeFromCloud(short, spec); err == nil {
		t.Error("partial cloud accepted (training needs the full field)")
	}

	dup := pointcloud.New("pressure", spec.Len())
	for n := 0; n < spec.Len(); n++ {
		dup.Add(spec.Point(0, 0, 0), 1) // every point on one node
	}
	if _, err := VolumeFromCloud(dup, spec); err == nil {
		t.Error("duplicated node accepted")
	}

	off := pointcloud.New("pressure", spec.Len())
	for n := 0; n < spec.Len(); n++ {
		off.Add(mathutil.Vec3{X: 0.5, Y: 0.5, Z: float64(n)}, 1)
	}
	if _, err := VolumeFromCloud(off, spec); err == nil {
		t.Error("off-grid points accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	mutate := func(f func(*Spec)) Spec {
		s := testSpec()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"bad cloud id", mutate(func(s *Spec) { s.CloudID = "xyz" })},
		{"empty field", mutate(func(s *Spec) { s.Field = "" })},
		{"zero grid", mutate(func(s *Spec) { s.Grid.NX = 0 })},
		{"unknown sampler", mutate(func(s *Spec) { s.Sampler = "psychic" })},
		{"bad base model", mutate(func(s *Spec) { s.BaseModel = "zz" })},
		{"zero epochs", mutate(func(s *Spec) { s.Opts.Epochs = 0 })},
		{"huge epochs", mutate(func(s *Spec) { s.Opts.Epochs = MaxEpochs + 1 })},
		{"hidden too wide", mutate(func(s *Spec) { s.Opts.Hidden = []int{MaxHiddenWidth + 1} })},
		{"negative workers", mutate(func(s *Spec) { s.Opts.Workers = -1 })},
		{"no fractions", mutate(func(s *Spec) { s.Opts.TrainFractions = nil })},
		{"fraction over 1", mutate(func(s *Spec) { s.Opts.TrainFractions = []float64{1.5} })},
		{"zero learning rate", mutate(func(s *Spec) { s.Opts.LearningRate = 0 })},
		{"negative checkpoint every", mutate(func(s *Spec) { s.CheckpointEvery = -1 })},
	}
	if err := testSpec().Validate(0); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	big := mutate(func(s *Spec) { s.Grid = recon.GridSpec{NX: 1 << 20, NY: 1 << 20, NZ: 1 << 20, Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1}} })
	if err := big.Validate(1 << 30); err == nil {
		t.Error("grid over the point bound accepted (overflow in the bound check?)")
	}
}

func TestIDForIsStableAndSpecSensitive(t *testing.T) {
	a, b := testSpec(), testSpec()
	if IDFor(a) != IDFor(b) {
		t.Fatal("equal specs produced different job ids")
	}
	b.Opts.Epochs++
	if IDFor(a) == IDFor(b) {
		t.Fatal("different specs produced equal job ids")
	}
	if !ValidID(IDFor(a)) {
		t.Fatalf("job id %q is not 16-hex", IDFor(a))
	}
}

func TestModelStorePersistsAndVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	dir := t.TempDir()
	tel := telemetry.NewRegistry()
	ms, err := NewModelStore(dir, 2, tel)
	if err != nil {
		t.Fatal(err)
	}

	model := pretrainDirect(t, testSpec())

	id, err := ms.Put(model)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidID(id) {
		t.Fatalf("model id %q", id)
	}
	raw, err := ms.Bytes(id)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("stored bytes do not decode: %v", err)
	}
	if got, err := IDForModel(decoded); err != nil || got != id {
		t.Fatalf("stored bytes do not hash to their id: %s vs %s (%v)", got, id, err)
	}
	// Same weights → same id (content addressing), no duplicate entry.
	id2, err := ms.Put(model)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("same model stored under two ids: %s vs %s", id, id2)
	}

	// A fresh store over the same directory serves the model from disk.
	ms2, err := NewModelStore(dir, 2, tel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms2.Get(id); err != nil {
		t.Fatalf("persisted model not readable after restart: %v", err)
	}

	// PutBytes round-trips and rejects garbage.
	if got, err := ms2.PutBytes(raw); err != nil || got != id {
		t.Fatalf("PutBytes: id %s err %v", got, err)
	}
	if _, err := ms2.PutBytes([]byte("not a model")); err == nil {
		t.Fatal("PutBytes accepted garbage")
	}
	if _, err := ms2.Get("0000000000000000"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrModelNotFound", err)
	}
	if _, err := ms2.Get("../../etc/passwd"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("path-traversal id: err = %v, want ErrModelNotFound", err)
	}
}

// pretrainDirect trains spec's model through the same core entry point
// the job worker uses, with a throwaway checkpoint directory.
func pretrainDirect(t *testing.T, spec Spec) *core.FCNN {
	t.Helper()
	ckMgr, err := checkpoint.NewManager(checkpoint.Config{Dir: t.TempDir(), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := sampling.ByName(spec.Sampler, spec.SamplerSeed)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.PretrainResumable(context.Background(), testVolume(), spec.Field, sampler, spec.Opts,
		core.Checkpointing{Manager: ckMgr, Every: spec.CheckpointEvery})
	if err != nil {
		t.Fatal(err)
	}
	return model
}
