package jobs

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/core"
	"fillvoid/internal/grid"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a training worker.
	StateQueued State = "queued"
	// StateRunning: a worker is training.
	StateRunning State = "running"
	// StateCancelling: cancel requested; the run is stopping on an
	// epoch boundary.
	StateCancelling State = "cancelling"
	// StateDone: finished; ModelID names the result.
	StateDone State = "done"
	// StateFailed: training itself errored; terminal.
	StateFailed State = "failed"
	// StateCancelled: stopped by DELETE; terminal (resubmitting the
	// same spec resumes from its last checkpoint).
	StateCancelled State = "cancelled"
	// StateInterrupted: the process shut down or checkpoint storage
	// failed mid-run. Not retried in-process — a restart re-queues it
	// and training resumes from the last intact checkpoint.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state can never change within this
// process.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Sentinel errors the server maps onto HTTP statuses.
var (
	ErrNotFound    = errors.New("jobs: job not found")
	ErrQueueFull   = errors.New("jobs: training queue is full")
	ErrJobFinished = errors.New("jobs: job already finished")
	ErrClosed      = errors.New("jobs: manager is shut down")
)

// Record is the durable part of a job, persisted as job.json in the
// job's directory on every state transition (atomic temp + rename).
type Record struct {
	ID       string `json:"id"`
	Spec     Spec   `json:"spec"`
	State    State  `json:"state"`
	ModelID  string `json:"model_id,omitempty"`
	Error    string `json:"error,omitempty"`
	Resumes  int    `json:"resumes"`
	Created  int64  `json:"created_unix"`
	Started  int64  `json:"started_unix,omitempty"`
	Finished int64  `json:"finished_unix,omitempty"`
}

// Status is a point-in-time snapshot of a job for the API: the record
// plus live training progress from the TrainObserver hook.
type Status struct {
	Record
	// Epoch is the number of lifetime epochs completed so far.
	Epoch int
	// EpochsTotal is the lifetime epoch count the run will end at.
	EpochsTotal int
	// Loss is the most recent epoch's training loss (0 before the
	// first epoch completes).
	Loss float64
}

// jobInput is the gob payload persisted at submit time so a restarted
// process can re-run the job without the original HTTP request: the
// rebuilt truth volume and, for fine-tune jobs, the base model bytes.
type jobInput struct {
	Truth *grid.Volume
	Base  []byte
}

// job is the in-process view of one training job.
type job struct {
	mu  sync.Mutex
	rec Record

	epoch    atomic.Int64  // lifetime epochs completed
	lossBits atomic.Uint64 // math.Float64bits of last epoch loss

	cancel context.CancelFunc // non-nil while running
}

func (j *job) snapshot() Status {
	j.mu.Lock()
	rec := j.rec
	j.mu.Unlock()
	st := Status{
		Record: rec,
		Epoch:  int(j.epoch.Load()),
		Loss:   math.Float64frombits(j.lossBits.Load()),
	}
	st.EpochsTotal = rec.Spec.budgetEpochs()
	return st
}

// budgetEpochs is the lifetime epoch count a finished run reports.
// Fine-tune budgets count on top of the base model's epochs, which the
// observer's lifetime counter already includes.
func (s Spec) budgetEpochs() int {
	if s.BaseModel == "" {
		return s.Opts.Epochs
	}
	e := s.FineTuneEpochs
	if e <= 0 {
		e = s.Opts.FineTuneEpochs
		if s.FineTuneMode == core.FineTuneLastTwo {
			e = s.Opts.FineTuneEpochs * 30
		}
	}
	return e
}

// Config configures a Manager.
type Config struct {
	// Dir is the root job-state directory (one subdirectory per job,
	// holding job.json, input.gob, and ckpt/). Required.
	Dir string
	// Workers is the training worker pool size (default 1; negative
	// runs none — jobs queue but never start, which tests and fuzzing
	// use). The pool is deliberately separate from the server's
	// reconstruction admission so training never starves queries.
	Workers int
	// Queue bounds the number of queued jobs; a full queue rejects
	// Submit with ErrQueueFull (default 16). Jobs re-queued by the
	// restart scan are exempt — they were admitted before the crash.
	Queue int
	// CheckpointEvery is the default epoch period between checkpoints
	// for jobs that do not set their own (default 25).
	CheckpointEvery int
	// Keep is the checkpoint retention depth per job (default 3).
	Keep int
	// Models receives finished models. Required.
	Models *ModelStore
	// FS overrides the checkpoint filesystem (default OS); the
	// fault-injection suite arms failures through it.
	FS checkpoint.FS
	// Telemetry receives queue/duration metrics and job spans
	// (default: the process-global registry).
	Telemetry *telemetry.Registry
	// Now supplies record timestamps (default time.Now().Unix).
	Now func() int64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	if c.Keep <= 0 {
		c.Keep = 3
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().Unix() }
	}
	return c
}

// Manager owns the job queue, the worker pool, and the per-job durable
// state. Creating one scans Dir and re-queues every job a previous
// process left unfinished, so training survives crashes and restarts.
type Manager struct {
	cfg Config
	tel *telemetry.Registry

	mu      sync.Mutex
	jobs    map[string]*job
	pending []string
	closed  bool

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a Manager, runs the restart scan, and starts the workers.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if cfg.Models == nil {
		return nil, errors.New("jobs: Config.Models is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	m := &Manager{
		cfg:  cfg,
		tel:  cfg.Telemetry,
		jobs: make(map[string]*job),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	if err := m.scan(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		//lint:allow rawgoroutine: long-lived worker accounted by m.wg; exits when Close closes m.quit
		go m.worker()
	}
	m.updateDepth()
	return m, nil
}

// scan loads every job directory left by a previous process. Unfinished
// jobs (queued, running, interrupted) are re-queued with Resume counted;
// a job caught mid-cancel becomes cancelled; terminal jobs stay visible
// for status queries.
func (m *Manager) scan() error {
	ents, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("jobs: scan: %w", err)
	}
	var requeue []*job
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		rec, err := readRecord(filepath.Join(m.cfg.Dir, e.Name(), "job.json"))
		if err != nil {
			telemetry.Warnf("jobs: skipping unreadable job dir", "dir", e.Name(), "err", err)
			continue
		}
		if rec.ID != e.Name() {
			telemetry.Warnf("jobs: skipping job dir with mismatched id", "dir", e.Name(), "id", rec.ID)
			continue
		}
		j := &job{rec: rec}
		switch rec.State {
		case StateQueued, StateRunning, StateInterrupted:
			if rec.State != StateQueued {
				j.rec.Resumes++
				m.tel.Counter("jobs.resumed").Inc()
			}
			j.rec.State = StateQueued
			if err := m.persist(j); err != nil {
				return err
			}
			requeue = append(requeue, j)
		case StateCancelling:
			j.rec.State = StateCancelled
			j.rec.Finished = m.cfg.Now()
			if err := m.persist(j); err != nil {
				return err
			}
		}
		m.jobs[rec.ID] = j
	}
	// Oldest first, so a restart preserves rough submission order.
	sort.Slice(requeue, func(a, b int) bool { return requeue[a].rec.Created < requeue[b].rec.Created })
	for _, j := range requeue {
		m.pending = append(m.pending, j.rec.ID)
	}
	if len(requeue) > 0 {
		telemetry.Infof("jobs: re-queued unfinished jobs from previous run", "count", len(requeue))
		m.kick()
	}
	return nil
}

// Submit accepts a training job. truth is the full training volume
// (see VolumeFromCloud); base is the serialized base model for
// fine-tune specs (nil for pretraining). Submission is idempotent on
// the spec: an existing live or done job is returned as-is (created =
// false), and a failed/cancelled/interrupted one is re-queued, resuming
// from its last checkpoint.
func (m *Manager) Submit(spec Spec, truth *grid.Volume, base []byte) (Status, bool, error) {
	if err := spec.Validate(0); err != nil {
		return Status{}, false, err
	}
	if truth == nil {
		return Status{}, false, errors.New("jobs: training volume is required")
	}
	if truth.NX != spec.Grid.NX || truth.NY != spec.Grid.NY || truth.NZ != spec.Grid.NZ {
		return Status{}, false, errors.New("jobs: volume does not match spec grid")
	}
	if (spec.BaseModel != "") != (base != nil) {
		return Status{}, false, errors.New("jobs: base model bytes must accompany exactly the fine-tune specs")
	}
	id := IDFor(spec)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		switch j.rec.State {
		case StateFailed, StateCancelled, StateInterrupted:
			j.mu.Lock()
			j.rec.State = StateQueued
			j.rec.Resumes++
			j.rec.Error = ""
			j.rec.Finished = 0
			j.mu.Unlock()
			m.pending = append(m.pending, id)
			m.updateDepthLocked()
			m.mu.Unlock()
			// Persist outside m.mu: the fsync must not stall every other
			// job operation (lockheld). The enqueue already took effect,
			// so a persist failure is best-effort like finish()'s — the
			// worker rewrites the record with fresher state on dequeue.
			if err := m.persist(j); err != nil {
				telemetry.Warnf("jobs: persisting resubmission failed", "job", id, "err", err)
			}
			m.kick()
			m.tel.Counter("jobs.resubmitted").Inc()
			return j.snapshot(), true, nil
		default:
			m.mu.Unlock()
			return j.snapshot(), false, nil
		}
	}
	if len(m.pending) >= m.cfg.Queue {
		m.mu.Unlock()
		return Status{}, false, ErrQueueFull
	}
	// Reserve the id under the lock, then do the disk writes (gob
	// encode + two fsyncs) unlocked so concurrent submits and status
	// queries are not serialized behind them. A duplicate Submit in the
	// window sees the reservation and returns it idempotently; Cancel
	// in the window marks it cancelled and the worker's dequeue guard
	// skips it.
	j := &job{rec: Record{ID: id, Spec: spec, State: StateQueued, Created: m.cfg.Now()}}
	m.jobs[id] = j
	m.mu.Unlock()

	err := m.writeInput(id, jobInput{Truth: truth, Base: base})
	if err == nil {
		err = m.persist(j)
	}
	m.mu.Lock()
	if err != nil {
		delete(m.jobs, id)
		m.mu.Unlock()
		return Status{}, false, err
	}
	m.pending = append(m.pending, id)
	m.updateDepthLocked()
	m.mu.Unlock()
	m.kick()
	m.tel.Counter("jobs.submitted").Inc()
	return j.snapshot(), true, nil
}

// Get returns the job's current status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Cancel stops a job: a queued one is cancelled immediately, a running
// one is asked to stop on its next epoch boundary (it writes a final
// checkpoint first, so a later resubmission resumes rather than
// restarts). Cancelling a finished job returns ErrJobFinished.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	state := j.rec.State
	j.mu.Unlock()
	switch state {
	case StateQueued:
		for i, p := range m.pending {
			if p == id {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		j.mu.Lock()
		j.rec.State = StateCancelled
		j.rec.Finished = m.cfg.Now()
		j.mu.Unlock()
		m.updateDepthLocked()
		m.mu.Unlock()
		// Persist after releasing m.mu (lockheld): the record's state is
		// already final in memory; the fsync only makes it durable.
		if err := m.persist(j); err != nil {
			return Status{}, err
		}
		m.tel.Counter("jobs.cancelled").Inc()
		return j.snapshot(), nil
	case StateRunning:
		j.mu.Lock()
		j.rec.State = StateCancelling
		cancel := j.cancel
		j.mu.Unlock()
		m.mu.Unlock()
		if err := m.persist(j); err != nil {
			return Status{}, err
		}
		if cancel != nil {
			cancel()
		}
		return j.snapshot(), nil
	case StateCancelling:
		m.mu.Unlock()
		return j.snapshot(), nil
	default:
		m.mu.Unlock()
		return j.snapshot(), ErrJobFinished
	}
}

// Depth returns (queued, running) counts for health reporting.
func (m *Manager) Depth() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	queued = len(m.pending)
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.rec.State == StateRunning || j.rec.State == StateCancelling {
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// Close stops intake, interrupts running jobs (they checkpoint and
// persist as interrupted for the next process to resume), and waits
// for the workers up to ctx's deadline.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	close(m.quit)
	for _, c := range cancels {
		c()
	}
	done := make(chan struct{})
	//lint:allow rawgoroutine: bounded waiter that exits as soon as the workers drain
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Manager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

func (m *Manager) updateDepth() {
	m.mu.Lock()
	m.updateDepthLocked()
	m.mu.Unlock()
}

// updateDepthLocked refreshes the queue-depth gauge. Callers hold m.mu.
func (m *Manager) updateDepthLocked() {
	m.tel.Gauge("jobs.queue.depth").Set(float64(len(m.pending)))
}

// worker pops queued jobs and trains them until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *job
		if len(m.pending) > 0 && !m.closed {
			id := m.pending[0]
			m.pending = m.pending[1:]
			j = m.jobs[id]
			m.updateDepthLocked()
		}
		m.mu.Unlock()
		if j == nil {
			select {
			case <-m.quit:
				return
			case <-m.wake:
				continue
			}
		}
		m.run(j)
		m.kick() // there may be more pending work
	}
}

// run executes one job: rebuild the inputs, train with crash-safe
// checkpointing, classify the outcome, and persist it.
func (m *Manager) run(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	switch j.rec.State {
	case StateQueued:
		j.rec.State = StateRunning
	case StateCancelling:
		// Cancel raced the dequeue: train under an already-cancelled
		// context so the run checkpoints immediately and the outcome
		// classifies as a clean cancellation.
		cancel()
	default:
		// Cancelled between dequeue and start; Cancel already
		// persisted the outcome.
		j.mu.Unlock()
		return
	}
	if j.rec.Started == 0 {
		j.rec.Started = m.cfg.Now()
	}
	j.cancel = cancel
	id := j.rec.ID
	spec := j.rec.Spec
	j.mu.Unlock()
	if err := m.persist(j); err != nil {
		m.finish(j, StateFailed, "", fmt.Sprintf("persist: %v", err))
		return
	}

	sp := m.tel.StartSpan("jobs.train")
	m.tel.Gauge("jobs.running").Add(1)
	start := time.Now()
	modelID, err := m.train(ctx, j, id, spec)
	m.tel.Gauge("jobs.running").Add(-1)
	sp.End()
	m.tel.Histogram("jobs.train.seconds", nil).Observe(time.Since(start).Seconds())

	j.mu.Lock()
	j.cancel = nil
	cancelling := j.rec.State == StateCancelling
	j.mu.Unlock()

	switch {
	case err == nil:
		m.finish(j, StateDone, modelID, "")
	case errors.Is(err, core.ErrStopped) && cancelling:
		m.finish(j, StateCancelled, "", "")
	case errors.Is(err, core.ErrStopped), errors.Is(err, core.ErrCheckpoint):
		// Shutdown, or checkpoint storage failed mid-run: either way
		// the last intact checkpoint is the restart point.
		m.finish(j, StateInterrupted, "", errString(err))
	default:
		m.finish(j, StateFailed, "", err.Error())
	}
}

func errString(err error) string {
	if errors.Is(err, core.ErrStopped) {
		return ""
	}
	return err.Error()
}

// train runs the actual checkpointed training and stores the result.
func (m *Manager) train(ctx context.Context, j *job, id string, spec Spec) (string, error) {
	in, err := m.readInput(id)
	if err != nil {
		return "", err
	}
	sampler, err := sampling.ByName(spec.Sampler, spec.SamplerSeed)
	if err != nil {
		return "", err
	}
	ckMgr, err := checkpoint.NewManager(checkpoint.Config{
		Dir:       filepath.Join(m.cfg.Dir, id, "ckpt"),
		Keep:      m.cfg.Keep,
		FS:        m.cfg.FS,
		Telemetry: m.cfg.Telemetry,
	})
	if err != nil {
		return "", err
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = m.cfg.CheckpointEvery
	}
	ck := core.Checkpointing{
		Manager: ckMgr,
		Every:   every,
		Resume:  true,
		Observer: telemetry.ObserverFunc(func(e telemetry.EpochStat) {
			j.epoch.Store(int64(e.Epoch) + 1)
			j.lossBits.Store(math.Float64bits(e.Loss))
		}),
	}

	var model *core.FCNN
	if spec.BaseModel == "" {
		model, err = core.PretrainResumable(ctx, in.Truth, spec.Field, sampler, spec.Opts, ck)
	} else {
		model, err = core.Load(bytes.NewReader(in.Base))
		if err != nil {
			return "", fmt.Errorf("jobs: base model: %w", err)
		}
		err = model.FineTuneResumable(ctx, in.Truth, sampler, spec.FineTuneMode, spec.FineTuneEpochs, ck)
	}
	if err != nil {
		return "", err
	}
	return m.cfg.Models.Put(model)
}

// finish records a job's terminal (or interrupted) outcome.
func (m *Manager) finish(j *job, state State, modelID, errMsg string) {
	j.mu.Lock()
	j.rec.State = state
	j.rec.ModelID = modelID
	j.rec.Error = errMsg
	j.rec.Finished = m.cfg.Now()
	j.mu.Unlock()
	if err := m.persist(j); err != nil {
		telemetry.Warnf("jobs: persisting job outcome failed", "job", j.rec.ID, "err", err)
	}
	m.tel.Counter("jobs." + string(state)).Inc()
	telemetry.Infof("job finished", "job", j.rec.ID, "state", state, "model", modelID, "err", errMsg)
}

// persist writes the job's record atomically to its job.json.
func (m *Manager) persist(j *job) error {
	j.mu.Lock()
	rec := j.rec
	j.mu.Unlock()
	dir := filepath.Join(m.cfg.Dir, rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return atomicWrite(dir, "job.json", b)
}

func readRecord(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// writeInput persists the job's training inputs at submit time.
func (m *Manager) writeInput(id string, in jobInput) error {
	dir := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return atomicWrite(dir, "input.gob", buf.Bytes())
}

func (m *Manager) readInput(id string) (jobInput, error) {
	b, err := os.ReadFile(filepath.Join(m.cfg.Dir, id, "input.gob"))
	if err != nil {
		return jobInput{}, fmt.Errorf("jobs: %w", err)
	}
	var in jobInput
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&in); err != nil {
		return jobInput{}, fmt.Errorf("jobs: %w", err)
	}
	return in, nil
}

// atomicWrite writes name under dir via temp + fsync + rename so a
// crash can never leave a torn file.
func atomicWrite(dir, name string, b []byte) error {
	tmp, err := os.CreateTemp(dir, "."+name+"-*")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	_, werr := tmp.Write(b)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		//lint:allow errdrop: best-effort cleanup of a temp file already being reported
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}
