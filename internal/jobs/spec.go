// Package jobs runs asynchronous training jobs for the serving layer:
// a bounded queue of pretrain/fine-tune runs driven by the crash-safe
// core.PretrainResumable/FineTuneResumable entry points, with per-job
// checkpoint directories so a preempted or crashed job resumes from its
// last checkpoint on restart, and a content-addressed model store that
// makes finished models first-class artifacts (mirroring the server's
// cloud store).
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"fillvoid/internal/core"
	"fillvoid/internal/grid"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
)

// Spec is the fully-resolved description of one training job. Two
// submissions with equal Specs are the same job: the job id is a hash
// of the Spec, so resubmitting is idempotent rather than duplicating
// work (the same content-addressing discipline as clouds and models).
type Spec struct {
	// CloudID names the uploaded cloud (16-hex recon.CloudHash) whose
	// points carry the full training field.
	CloudID string
	// Field is the scalar field name baked into the trained model.
	Field string
	// Grid is the simulation grid the cloud samples; training rebuilds
	// the full truth volume on it (one cloud point per grid node).
	Grid recon.GridSpec
	// Sampler names the sampling strategy used to draw the training
	// fractions from the truth volume ("importance", "random",
	// "stratified").
	Sampler string
	// SamplerSeed seeds the sampler.
	SamplerSeed int64
	// BaseModel, when non-empty, is the model_id to fine-tune; empty
	// pretrains from scratch.
	BaseModel string
	// FineTuneMode selects the paper's Case 1/Case 2 strategy when
	// BaseModel is set.
	FineTuneMode core.FineTuneMode
	// FineTuneEpochs is the fine-tune epoch budget when BaseModel is
	// set (0: the mode's default from Opts).
	FineTuneEpochs int
	// Opts are the resolved training options. They participate in the
	// job id, so "same cloud, more epochs" is a distinct job.
	Opts core.Options
	// CheckpointEvery is the epoch period between checkpoints
	// (0: the manager's default).
	CheckpointEvery int
}

// Hard upper bounds on Spec numeric fields. Requests beyond them are
// rejected up front rather than allowed to allocate unbounded memory
// or spin for days; fuzzing leans on these.
const (
	MaxEpochs       = 100_000
	MaxHiddenLayers = 16
	MaxHiddenWidth  = 4096
	MaxBatchSize    = 1 << 16
	MaxWorkers      = 1024
	MaxTrainRowsCap = 50_000_000
)

// Validate rejects malformed or abusive specs. maxGridPoints bounds
// Grid (0: no bound); it mirrors the server's reconstruct-side grid
// cap.
func (s Spec) Validate(maxGridPoints int) error {
	if _, err := recon.ParseCloudHash(s.CloudID); err != nil {
		return fmt.Errorf("jobs: bad cloud_id %q", s.CloudID)
	}
	if s.Field == "" {
		return errors.New("jobs: field is required")
	}
	if s.Grid.NX < 1 || s.Grid.NY < 1 || s.Grid.NZ < 1 {
		return fmt.Errorf("jobs: invalid grid %dx%dx%d", s.Grid.NX, s.Grid.NY, s.Grid.NZ)
	}
	if maxGridPoints > 0 {
		// Divide instead of multiplying so absurd dims cannot overflow
		// past the bound.
		if s.Grid.NX > maxGridPoints ||
			s.Grid.NY > maxGridPoints/s.Grid.NX ||
			s.Grid.NZ > maxGridPoints/(s.Grid.NX*s.Grid.NY) {
			return fmt.Errorf("jobs: grid %dx%dx%d exceeds %d points", s.Grid.NX, s.Grid.NY, s.Grid.NZ, maxGridPoints)
		}
	}
	if _, err := sampling.ByName(s.Sampler, 0); err != nil {
		return fmt.Errorf("jobs: unknown sampler %q", s.Sampler)
	}
	if s.BaseModel != "" {
		if err := validModelID(s.BaseModel); err != nil {
			return fmt.Errorf("jobs: bad base_model %q", s.BaseModel)
		}
		switch s.FineTuneMode {
		case core.FineTuneAll, core.FineTuneLastTwo:
		default:
			return fmt.Errorf("jobs: unknown fine-tune mode %v", s.FineTuneMode)
		}
		if s.FineTuneEpochs < 0 || s.FineTuneEpochs > MaxEpochs {
			return fmt.Errorf("jobs: fine_tune_epochs %d out of range [0, %d]", s.FineTuneEpochs, MaxEpochs)
		}
	}
	o := s.Opts
	if o.Epochs < 1 || o.Epochs > MaxEpochs {
		return fmt.Errorf("jobs: epochs %d out of range [1, %d]", o.Epochs, MaxEpochs)
	}
	if len(o.Hidden) > MaxHiddenLayers {
		return fmt.Errorf("jobs: %d hidden layers exceeds %d", len(o.Hidden), MaxHiddenLayers)
	}
	for _, w := range o.Hidden {
		if w < 1 || w > MaxHiddenWidth {
			return fmt.Errorf("jobs: hidden width %d out of range [1, %d]", w, MaxHiddenWidth)
		}
	}
	if o.BatchSize < 0 || o.BatchSize > MaxBatchSize {
		return fmt.Errorf("jobs: batch_size %d out of range [0, %d]", o.BatchSize, MaxBatchSize)
	}
	if o.Workers < 0 || o.Workers > MaxWorkers {
		return fmt.Errorf("jobs: workers %d out of range [0, %d]", o.Workers, MaxWorkers)
	}
	if o.MaxTrainRows < 0 || o.MaxTrainRows > MaxTrainRowsCap {
		return fmt.Errorf("jobs: max_train_rows %d out of range [0, %d]", o.MaxTrainRows, MaxTrainRowsCap)
	}
	if len(o.TrainFractions) == 0 {
		return errors.New("jobs: at least one train fraction is required")
	}
	for _, f := range o.TrainFractions {
		if !(f > 0 && f <= 1) { // also rejects NaN
			return fmt.Errorf("jobs: train fraction %v out of range (0, 1]", f)
		}
	}
	if o.LearningRate <= 0 || math.IsNaN(o.LearningRate) || math.IsInf(o.LearningRate, 0) {
		return fmt.Errorf("jobs: learning_rate %v must be a positive finite number", o.LearningRate)
	}
	if o.ValidationFraction < 0 || o.ValidationFraction >= 1 || math.IsNaN(o.ValidationFraction) {
		return fmt.Errorf("jobs: validation_fraction %v out of range [0, 1)", o.ValidationFraction)
	}
	if s.CheckpointEvery < 0 || s.CheckpointEvery > MaxEpochs {
		return fmt.Errorf("jobs: checkpoint_every %d out of range [0, %d]", s.CheckpointEvery, MaxEpochs)
	}
	return nil
}

// IDFor derives the content-addressed job id from the spec: FNV-1a 64
// over its canonical JSON encoding, printed like cloud and model ids
// (16 hex digits). Equal specs collide on purpose — that is the
// idempotency key. JSON, not gob: gob streams embed process-global
// type ids that shift with whatever the process encoded earlier, so
// the same spec could mint different job ids in different processes
// (e.g. before vs after a restart scan); JSON bytes depend only on the
// values.
func IDFor(s Spec) string {
	// JSON of this all-concrete struct cannot fail; a hypothetical
	// failure would only merge two specs into one job id.
	//lint:allow errdrop: JSON-encoding an all-concrete struct cannot fail
	b, _ := json.Marshal(s)
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// VolumeFromCloud rebuilds the full truth volume from a cloud that
// covers every node of spec exactly once (the in-situ training regime:
// at train time the full field exists, and uploading it as a cloud
// reuses the wire format and content-addressed store clouds already
// have). Each point must sit on a grid node within a 1e-6·spacing
// tolerance; missing or duplicated nodes are an error. Values pass
// through bit-exactly, which is what lets a job-trained model be
// bit-identical to one trained directly on the original volume.
func VolumeFromCloud(c *pointcloud.Cloud, spec recon.GridSpec) (*grid.Volume, error) {
	if c == nil || c.Len() == 0 {
		return nil, errors.New("jobs: empty cloud")
	}
	if c.Len() != spec.Len() {
		return nil, fmt.Errorf("jobs: cloud has %d points but grid %dx%dx%d needs %d (training requires the full field)",
			c.Len(), spec.NX, spec.NY, spec.NZ, spec.Len())
	}
	v := spec.NewVolume()
	seen := make([]bool, spec.Len())
	for n, p := range c.Points {
		i, ok := nodeIndex(p.X, spec.Origin.X, spec.Spacing.X, spec.NX)
		if !ok {
			return nil, fmt.Errorf("jobs: point %d (%g, %g, %g) is off-grid on x", n, p.X, p.Y, p.Z)
		}
		j, ok := nodeIndex(p.Y, spec.Origin.Y, spec.Spacing.Y, spec.NY)
		if !ok {
			return nil, fmt.Errorf("jobs: point %d (%g, %g, %g) is off-grid on y", n, p.X, p.Y, p.Z)
		}
		k, ok := nodeIndex(p.Z, spec.Origin.Z, spec.Spacing.Z, spec.NZ)
		if !ok {
			return nil, fmt.Errorf("jobs: point %d (%g, %g, %g) is off-grid on z", n, p.X, p.Y, p.Z)
		}
		idx := v.Index(i, j, k)
		if seen[idx] {
			return nil, fmt.Errorf("jobs: grid node (%d, %d, %d) appears more than once", i, j, k)
		}
		seen[idx] = true
		v.Data[idx] = c.Values[n]
	}
	return v, nil
}

// nodeIndex snaps one coordinate onto its grid axis, tolerating only
// rounding-level deviation (1e-6 of a spacing step).
func nodeIndex(x, origin, spacing float64, n int) (int, bool) {
	if spacing == 0 {
		if x == origin {
			return 0, true
		}
		return 0, false
	}
	f := (x - origin) / spacing
	i := int(math.Round(f))
	if i < 0 || i >= n || math.Abs(f-float64(i)) > 1e-6 {
		return 0, false
	}
	return i, true
}
