package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"fillvoid/internal/core"
	"fillvoid/internal/telemetry"
)

// ErrModelNotFound reports an unknown model_id.
var ErrModelNotFound = errors.New("jobs: model not found")

// ModelStore is the content-addressed model artifact store: the
// model_id is a hash of the serialized weights, so equal models share
// one entry and an id can never silently point at different weights.
// It keeps a bounded in-memory cache of decoded models and, when given
// a directory, persists every model so ids survive restarts (which is
// what lets a resumed job's clients keep their model_id).
type ModelStore struct {
	mu  sync.Mutex
	max int
	dir string // "" = memory-only
	tel *telemetry.Registry

	entries map[string]*modelEntry
	order   []string // LRU order, most recent last
}

type modelEntry struct {
	raw   []byte
	model *core.FCNN
}

// NewModelStore builds a store caching up to max decoded models in
// memory (default 8). dir, when non-empty, is created and used to
// persist model files.
func NewModelStore(dir string, max int, tel *telemetry.Registry) (*ModelStore, error) {
	if max <= 0 {
		max = 8
	}
	if tel == nil {
		tel = telemetry.Default()
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: model store dir: %w", err)
		}
	}
	return &ModelStore{max: max, dir: dir, tel: tel, entries: make(map[string]*modelEntry)}, nil
}

// ValidID reports whether id has the shape every content-addressed id
// in this system has (cloud, model, and job ids alike): 16 lowercase
// hex digits. Handlers check it before splicing request strings into
// filesystem or URL paths.
func ValidID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// validModelID maps a malformed id onto ErrModelNotFound.
func validModelID(id string) error {
	if !ValidID(id) {
		return ErrModelNotFound
	}
	return nil
}

// IDForModel is the content address of a model: FNV-1a 64 over its
// canonical stable serialization (core.FCNN.WriteStable), 16 hex
// digits (the same shape as cloud ids). The gob bytes Save produces
// embed process-global type ids that shift with the process's encoding
// history, so hashing them would mint different ids for the same model
// in different processes; the stable form hashes only the model's
// values, which is what lets the id a training process mints verify in
// every process that later loads the artifact.
func IDForModel(m *core.FCNN) (string, error) {
	h := fnv.New64a()
	if err := m.WriteStable(h); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Put serializes m and stores it, returning its model_id.
func (s *ModelStore) Put(m *core.FCNN) (string, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return "", err
	}
	return s.putLocked(buf.Bytes(), m)
}

// PutBytes stores an already-serialized model (e.g. replicated from a
// peer), validating it decodes before accepting.
func (s *ModelStore) PutBytes(b []byte) (string, error) {
	m, err := core.Load(bytes.NewReader(b))
	if err != nil {
		return "", fmt.Errorf("jobs: invalid model bytes: %w", err)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return s.putLocked(cp, m)
}

func (s *ModelStore) putLocked(raw []byte, m *core.FCNN) (string, error) {
	id, err := IDForModel(m)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	_, existed := s.entries[id]
	if !existed {
		s.entries[id] = &modelEntry{raw: raw, model: m}
	}
	s.touch(id)
	s.evict()
	s.mu.Unlock()
	if !existed {
		s.tel.Counter("jobs.models.stored").Inc()
	}
	if s.dir != "" {
		if err := s.persist(id, raw); err != nil {
			return "", err
		}
	}
	return id, nil
}

// persist writes the model file atomically (temp + rename), so a
// crash mid-write can never leave a torn artifact under a valid id.
func (s *ModelStore) persist(id string, raw []byte) error {
	path := s.path(id)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: an existing file is already right
	}
	tmp, err := os.CreateTemp(s.dir, ".model-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(raw)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		//lint:allow errdrop: best-effort cleanup of a temp file already being reported
		_ = os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

func (s *ModelStore) path(id string) string {
	return filepath.Join(s.dir, id+".fcnn")
}

// Get returns the decoded model for id, falling back to the persist
// directory on a memory miss.
func (s *ModelStore) Get(id string) (*core.FCNN, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return e.model, nil
}

// Bytes returns the serialized model for id (the GET /v1/models body).
func (s *ModelStore) Bytes(id string) ([]byte, error) {
	e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return e.raw, nil
}

func (s *ModelStore) lookup(id string) (*modelEntry, error) {
	id = strings.ToLower(id)
	if err := validModelID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		s.touch(id)
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, ErrModelNotFound
	}
	raw, err := os.ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrModelNotFound
	}
	if err != nil {
		return nil, err
	}
	// The file is trusted less than memory: decode it and verify the
	// content address, so a corrupted artifact reads as missing rather
	// than as wrong weights (a torn file fails the decode, a tampered
	// one fails the hash).
	m, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("jobs: model file %s does not decode: %w", id, ErrModelNotFound)
	}
	if got, err := IDForModel(m); err != nil || got != id {
		return nil, fmt.Errorf("jobs: model file %s fails its content hash: %w", id, ErrModelNotFound)
	}
	e := &modelEntry{raw: raw, model: m}
	s.mu.Lock()
	if cur, ok := s.entries[id]; ok {
		e = cur
	} else {
		s.entries[id] = e
	}
	s.touch(id)
	s.evict()
	s.mu.Unlock()
	return e, nil
}

// Len reports the number of models cached in memory.
func (s *ModelStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// touch moves id to the most-recent end of the LRU order.
// Callers hold s.mu.
func (s *ModelStore) touch(id string) {
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.order = append(s.order, id)
}

// evict drops least-recently-used memory entries over the cap.
// Persisted files are kept — disk is the durable tier. Callers hold
// s.mu.
func (s *ModelStore) evict() {
	for len(s.entries) > s.max && len(s.order) > 0 {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, old)
		s.tel.Counter("jobs.models.evicted").Inc()
	}
}
