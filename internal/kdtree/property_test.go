package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"fillvoid/internal/mathutil"
)

// bruteNeighbors is the reference implementation: compute every
// distance, sort by (dist2, index). The tree computes distances with
// the same mathutil.Vec3.Dist2, so distance comparisons below are
// bit-exact, not tolerance-based.
func bruteNeighbors(points []mathutil.Vec3, q mathutil.Vec3) []Neighbor {
	out := make([]Neighbor, len(points))
	for i, p := range points {
		out[i] = Neighbor{Index: i, Dist2: p.Dist2(q)}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist2 != out[b].Dist2 {
			return out[a].Dist2 < out[b].Dist2
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// checkKNN verifies one KNearest call against brute force. Tie order is
// unspecified, so the contract checked is:
//
//  1. result length = min(k, n);
//  2. distances ascend and match the brute-force distance sequence
//     exactly (this pins boundary ties: any valid tie resolution
//     yields the same distance multiset);
//  3. indices are distinct, in range, and each reported Dist2 really
//     is the distance to the reported point.
func checkKNN(t *testing.T, points []mathutil.Vec3, q mathutil.Vec3, k int) {
	t.Helper()
	got := Build(points).KNearest(q, k)
	want := bruteNeighbors(points, q)

	wantLen := k
	if len(points) < k {
		wantLen = len(points)
	}
	if k <= 0 {
		wantLen = 0
	}
	if len(got) != wantLen {
		t.Fatalf("k=%d over %d points: got %d neighbors, want %d", k, len(points), len(got), wantLen)
	}
	seen := make(map[int]bool, len(got))
	for i, nb := range got {
		if nb.Index < 0 || nb.Index >= len(points) {
			t.Fatalf("neighbor %d: index %d out of range", i, nb.Index)
		}
		if seen[nb.Index] {
			t.Fatalf("neighbor %d: duplicate index %d", i, nb.Index)
		}
		seen[nb.Index] = true
		if d := points[nb.Index].Dist2(q); d != nb.Dist2 {
			t.Fatalf("neighbor %d: reported dist2 %v but point %d is at %v", i, nb.Dist2, nb.Index, d)
		}
		if i > 0 && got[i-1].Dist2 > nb.Dist2 {
			t.Fatalf("neighbors out of order: %v then %v", got[i-1].Dist2, nb.Dist2)
		}
		if nb.Dist2 != want[i].Dist2 {
			t.Fatalf("neighbor %d: dist2 %v, brute force says %v", i, nb.Dist2, want[i].Dist2)
		}
	}
}

// randomCloud draws n points from one of several degenerate-prone
// shapes: uniform box, tight cluster with duplicates, axis-aligned
// plane (every z equal — maximal split-axis ties), and integer lattice
// (massive exact distance ties).
func randomCloud(rng *rand.Rand, n int) []mathutil.Vec3 {
	pts := make([]mathutil.Vec3, n)
	switch rng.Intn(4) {
	case 0: // uniform
		for i := range pts {
			pts[i] = mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
	case 1: // duplicates: draw from a tiny pool
		pool := make([]mathutil.Vec3, 1+rng.Intn(4))
		for i := range pool {
			pool[i] = mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		for i := range pts {
			pts[i] = pool[rng.Intn(len(pool))]
		}
	case 2: // flat plane
		for i := range pts {
			pts[i] = mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: 0.5}
		}
	default: // small integer lattice
		for i := range pts {
			pts[i] = mathutil.Vec3{X: float64(rng.Intn(3)), Y: float64(rng.Intn(3)), Z: float64(rng.Intn(3))}
		}
	}
	return pts
}

// TestKNearestDegenerateClouds is the randomized property test over
// tie-heavy cloud shapes: across shapes, sizes, and k (including
// k > n and k = n), tree results agree with exhaustive search. The
// uniform-cloud sweep lives in TestKNearestMatchesBruteForce; this one
// exists because ties (duplicates, lattices, flat planes) exercise the
// heap's boundary behavior and the split-axis choice in ways uniform
// random points essentially never do.
func TestKNearestDegenerateClouds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		pts := randomCloud(rng, n)
		k := 1 + rng.Intn(n+5) // deliberately allowed to exceed n
		var q mathutil.Vec3
		if rng.Intn(3) == 0 {
			q = pts[rng.Intn(n)] // query coincident with an indexed point
		} else {
			q = mathutil.Vec3{X: rng.Float64()*2 - 0.5, Y: rng.Float64()*2 - 0.5, Z: rng.Float64()*2 - 0.5}
		}
		checkKNN(t, pts, q, k)
	}
}

// TestKNearestDegenerateInputs pins the explicit edge cases separately
// from the randomized sweep so a failure names the case directly.
func TestKNearestDegenerateInputs(t *testing.T) {
	q := mathutil.Vec3{X: 0.3, Y: 0.3, Z: 0.3}

	t.Run("k negative", func(t *testing.T) {
		pts := []mathutil.Vec3{{X: 1}}
		if got := Build(pts).KNearest(q, -2); len(got) != 0 {
			t.Fatalf("k<0 returned %d neighbors", len(got))
		}
	})
	t.Run("single point", func(t *testing.T) {
		checkKNN(t, []mathutil.Vec3{{X: 9, Y: 9, Z: 9}}, q, 4)
	})
	t.Run("all points identical", func(t *testing.T) {
		pts := make([]mathutil.Vec3, 17)
		for i := range pts {
			pts[i] = mathutil.Vec3{X: 1, Y: 2, Z: 3}
		}
		checkKNN(t, pts, q, 5)
		checkKNN(t, pts, mathutil.Vec3{X: 1, Y: 2, Z: 3}, 17)
	})
	t.Run("k far exceeds n", func(t *testing.T) {
		rng := rand.New(rand.NewSource(2))
		checkKNN(t, randomCloud(rng, 7), q, 100)
	})
}

// TestWithinRadiusDegenerateClouds checks the range query against
// exhaustive search as an index-set equality (results are unordered)
// over the same tie-heavy cloud shapes, plus the negative-radius edge.
func TestWithinRadiusDegenerateClouds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		pts := randomCloud(rng, 1+rng.Intn(50))
		tr := Build(pts)
		q := mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		r := rng.Float64() * 1.5

		got := tr.WithinRadius(q, r, nil)
		gotSet := make(map[int]bool, len(got))
		for _, idx := range got {
			if gotSet[idx] {
				t.Fatalf("trial %d: duplicate index %d", trial, idx)
			}
			gotSet[idx] = true
		}
		for i, p := range pts {
			in := p.Dist2(q) <= r*r
			if in != gotSet[i] {
				t.Fatalf("trial %d: point %d dist2=%v r2=%v: in=%v but reported=%v",
					trial, i, p.Dist2(q), r*r, in, gotSet[i])
			}
		}
		if neg := tr.WithinRadius(q, -1, nil); len(neg) != 0 {
			t.Fatalf("negative radius returned %d points", len(neg))
		}
	}
}
