package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fillvoid/internal/mathutil"
)

func randomPoints(n int, seed int64) []mathutil.Vec3 {
	rng := mathutil.NewRNG(seed)
	pts := make([]mathutil.Vec3, n)
	for i := range pts {
		pts[i] = mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	return pts
}

// bruteKNN is the reference oracle.
func bruteKNN(pts []mathutil.Vec3, q mathutil.Vec3, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{Index: i, Dist2: p.Dist2(q)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Dist2 < all[b].Dist2 })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 100, 1000} {
		pts := randomPoints(n, int64(n))
		tree := Build(pts)
		rng := mathutil.NewRNG(99)
		for trial := 0; trial < 50; trial++ {
			q := mathutil.Vec3{X: rng.Float64() * 1.4, Y: rng.Float64() * 1.4, Z: rng.Float64() * 1.4}
			for _, k := range []int{1, 3, 5, n} {
				got := tree.KNearest(q, k)
				want := bruteKNN(pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("n=%d k=%d: got %d results, want %d", n, k, len(got), len(want))
				}
				for i := range got {
					// Indices can differ on exact ties; distances must match.
					if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
						t.Fatalf("n=%d k=%d rank %d: dist %g want %g", n, k, i, got[i].Dist2, want[i].Dist2)
					}
				}
			}
		}
	}
}

func TestKNearestSortedAscending(t *testing.T) {
	pts := randomPoints(500, 4)
	tree := Build(pts)
	f := func(x, y, z float64) bool {
		q := mathutil.Vec3{X: x, Y: y, Z: z}
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		res := tree.KNearest(q, 10)
		for i := 1; i < len(res); i++ {
			if res[i].Dist2 < res[i-1].Dist2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestOnGridPoints(t *testing.T) {
	// Exact hits on indexed points return distance 0 and that index's
	// position.
	var pts []mathutil.Vec3
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				pts = append(pts, mathutil.Vec3{X: float64(i), Y: float64(j), Z: float64(k)})
			}
		}
	}
	tree := Build(pts)
	for i, p := range pts {
		gi, d2 := tree.Nearest(p)
		if d2 != 0 {
			t.Fatalf("point %d: dist2 %g", i, d2)
		}
		if pts[gi] != p {
			t.Fatalf("point %d: wrong match", i)
		}
	}
}

func TestNearestEmptyTree(t *testing.T) {
	tree := Build(nil)
	if i, d2 := tree.Nearest(mathutil.Vec3{}); i != -1 || !math.IsInf(d2, 1) {
		t.Fatalf("got %d, %g", i, d2)
	}
	if res := tree.KNearest(mathutil.Vec3{}, 3); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestKNearestZeroK(t *testing.T) {
	tree := Build(randomPoints(10, 1))
	if res := tree.KNearest(mathutil.Vec3{}, 0); len(res) != 0 {
		t.Fatal("k=0 should return nothing")
	}
}

func TestWithinRadiusMatchesBruteForce(t *testing.T) {
	pts := randomPoints(800, 7)
	tree := Build(pts)
	rng := mathutil.NewRNG(13)
	for trial := 0; trial < 40; trial++ {
		q := mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		r := rng.Float64() * 0.4
		got := tree.WithinRadius(q, r, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist2(q) <= r*r {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index mismatch", trial)
			}
		}
	}
}

func TestWithinRadiusNegative(t *testing.T) {
	tree := Build(randomPoints(10, 2))
	if got := tree.WithinRadius(mathutil.Vec3{}, -1, nil); len(got) != 0 {
		t.Fatal("negative radius should return nothing")
	}
}

func TestKNearestBatch(t *testing.T) {
	pts := randomPoints(300, 21)
	tree := Build(pts)
	queries := randomPoints(100, 22)
	batch := tree.KNearestBatch(queries, 4)
	if len(batch) != len(queries) {
		t.Fatalf("got %d result sets", len(batch))
	}
	for i, q := range queries {
		want := bruteKNN(pts, q, 4)
		for r := range want {
			if math.Abs(batch[i][r].Dist2-want[r].Dist2) > 1e-12 {
				t.Fatalf("query %d rank %d mismatch", i, r)
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many coincident points must not break the build or queries.
	pts := make([]mathutil.Vec3, 64)
	for i := range pts {
		pts[i] = mathutil.Vec3{X: 1, Y: 2, Z: 3}
	}
	tree := Build(pts)
	res := tree.KNearest(mathutil.Vec3{X: 1, Y: 2, Z: 3}, 10)
	if len(res) != 10 {
		t.Fatalf("got %d", len(res))
	}
	for _, nb := range res {
		if nb.Dist2 != 0 {
			t.Fatalf("dist %g", nb.Dist2)
		}
	}
}

func TestLargeParallelBuildConsistent(t *testing.T) {
	// Exercise the parallel build path (> parallelBuildThreshold).
	pts := randomPoints(40000, 5)
	tree := Build(pts)
	if tree.Len() != len(pts) {
		t.Fatalf("len %d", tree.Len())
	}
	rng := mathutil.NewRNG(6)
	for trial := 0; trial < 20; trial++ {
		q := mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		got := tree.KNearest(q, 5)
		want := bruteKNN(pts, q, 5)
		for i := range want {
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				t.Fatalf("trial %d rank %d", trial, i)
			}
		}
	}
}
