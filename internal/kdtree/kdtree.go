// Package kdtree implements a 3-D k-d tree over point sets, the spatial
// index behind every neighbour-based component in fillvoid: the [1x23]
// feature extraction (5 nearest sampled points per void location), the
// nearest-neighbor and modified-Shepard reconstructors, and the discrete
// Sibson natural-neighbor reconstructor.
//
// The tree is built once over the sampled cloud and then queried from
// many goroutines concurrently; all query methods are read-only and
// allocation-free when the caller supplies scratch buffers.
package kdtree

import (
	"math"
	"sort"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
)

// Tree is an immutable k-d tree over a fixed point set. Queries return
// indices into the original Points slice passed to Build.
type Tree struct {
	points []mathutil.Vec3
	// idx is the points permutation laid out in tree order; node n's
	// point is points[idx[n]] with children at 2n+1 and 2n+2 laid out
	// implicitly via recursion boundaries (lo, hi, mid).
	idx []int32
	// axis[n] records the split axis chosen for the subtree rooted at
	// position n of the idx slice layout.
	axis []int8
	// px/py/pz hold the point coordinates in tree order (px[n] is
	// points[idx[n]].X): a structure-of-arrays copy that replaces the
	// points[idx[mid]] double indirection on the query hot path with
	// three sequential slice loads.
	px, py, pz []float64
}

// Build constructs a tree over points. The slice is retained (not
// copied) and must not be mutated while the tree is in use. Building is
// O(n log n) and parallelizes across subtrees.
func Build(points []mathutil.Vec3) *Tree {
	t := &Tree{
		points: points,
		idx:    make([]int32, len(points)),
		axis:   make([]int8, len(points)),
	}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	if len(points) > 0 {
		b := mathutil.EmptyAABB()
		for _, p := range points {
			b = b.Extend(p)
		}
		t.build(0, len(points), b, 0)
	}
	t.px = make([]float64, len(points))
	t.py = make([]float64, len(points))
	t.pz = make([]float64, len(points))
	for n, i := range t.idx {
		p := points[i]
		t.px[n], t.py[n], t.pz[n] = p.X, p.Y, p.Z
	}
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Points returns the indexed point slice (shared, read-only by contract).
func (t *Tree) Points() []mathutil.Vec3 { return t.points }

// parallelBuildThreshold is the subtree size below which recursion stays
// on the current goroutine; chosen so goroutine overhead is amortized.
const parallelBuildThreshold = 1 << 14

// build organises idx[lo:hi] into tree order: the median along the
// widest axis of bounds moves to position mid=(lo+hi)/2, smaller points
// to [lo,mid) and larger to (mid,hi]. depth limits parallel fan-out.
func (t *Tree) build(lo, hi int, bounds mathutil.AABB, depth int) {
	n := hi - lo
	if n <= 1 {
		return
	}
	size := bounds.Size()
	ax := 0
	if size.Y > size.X {
		ax = 1
	}
	if size.Z > size.Component(ax) {
		ax = 2
	}
	mid := (lo + hi) / 2
	t.selectNth(lo, hi, mid, ax)
	t.axis[mid] = int8(ax)
	split := t.points[t.idx[mid]].Component(ax)
	lb := bounds
	lb.Max = lb.Max.WithComponent(ax, split)
	rb := bounds
	rb.Min = rb.Min.WithComponent(ax, split)
	if n > parallelBuildThreshold && depth < 4 {
		parallel.Fork(
			func() { t.build(lo, mid, lb, depth+1) },
			func() { t.build(mid+1, hi, rb, depth+1) },
		)
	} else {
		t.build(lo, mid, lb, depth+1)
		t.build(mid+1, hi, rb, depth+1)
	}
}

// selectNth partially sorts idx[lo:hi] so that position nth holds the
// element of rank nth along axis ax (quickselect with median-of-three).
func (t *Tree) selectNth(lo, hi, nth, ax int) {
	for hi-lo > 16 {
		p := t.medianOfThree(lo, hi, ax)
		i, j := lo, hi-1
		for i <= j {
			for t.key(i, ax) < p {
				i++
			}
			for t.key(j, ax) > p {
				j--
			}
			if i <= j {
				t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
	sub := t.idx[lo:hi]
	sort.Slice(sub, func(a, b int) bool {
		return t.points[sub[a]].Component(ax) < t.points[sub[b]].Component(ax)
	})
}

func (t *Tree) key(i, ax int) float64 { return t.points[t.idx[i]].Component(ax) }

func (t *Tree) medianOfThree(lo, hi, ax int) float64 {
	a := t.key(lo, ax)
	b := t.key((lo+hi)/2, ax)
	c := t.key(hi-1, ax)
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

// Neighbor is a query result: the index of a point in the original slice
// and its squared distance to the query position.
type Neighbor struct {
	Index int
	Dist2 float64
}

// Nearest returns the index of the closest indexed point to q and the
// squared distance, or (-1, +Inf) for an empty tree.
func (t *Tree) Nearest(q mathutil.Vec3) (int, float64) {
	if len(t.points) == 0 {
		return -1, inf()
	}
	// Dedicated 1-NN traversal: routing k=1 through KNearestInto makes
	// the one-element buffer escape into the heap struct, costing one
	// allocation per call — and Nearest is called once per grid node
	// when the recon engine builds its nearest-sample table.
	b := nearest1{index: -1, d2: inf()}
	t.nearest1(0, len(t.points), q, &b)
	return b.index, b.d2
}

type nearest1 struct {
	index int
	d2    float64
}

func (t *Tree) nearest1(lo, hi int, q mathutil.Vec3, b *nearest1) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	dx := t.px[mid] - q.X
	dy := t.py[mid] - q.Y
	dz := t.pz[mid] - q.Z
	if d2 := dx*dx + dy*dy + dz*dz; d2 < b.d2 {
		b.index, b.d2 = int(t.idx[mid]), d2
	}
	if hi-lo == 1 {
		return
	}
	var d float64
	switch t.axis[mid] {
	case 0:
		d = q.X - t.px[mid]
	case 1:
		d = q.Y - t.py[mid]
	default:
		d = q.Z - t.pz[mid]
	}
	if d < 0 {
		t.nearest1(lo, mid, q, b)
		if d*d < b.d2 {
			t.nearest1(mid+1, hi, q, b)
		}
	} else {
		t.nearest1(mid+1, hi, q, b)
		if d*d < b.d2 {
			t.nearest1(lo, mid, q, b)
		}
	}
}

// KNearest returns the k nearest points to q ordered by increasing
// distance (fewer when the tree holds fewer than k points).
func (t *Tree) KNearest(q mathutil.Vec3, k int) []Neighbor {
	return t.KNearestInto(q, k, nil)
}

// KNearestInto is KNearest writing into buf (reused when cap(buf) >= k)
// to let hot loops avoid allocation: when the buffer is large enough the
// call performs no heap allocation at all. The returned slice is sorted
// by increasing distance.
func (t *Tree) KNearestInto(q mathutil.Vec3, k int, buf []Neighbor) []Neighbor {
	if k <= 0 || len(t.points) == 0 {
		return buf[:0]
	}
	h := heapNeighbors{items: buf[:0], k: k}
	t.knn(0, len(t.points), q, &h)
	// Heap holds the k nearest in max-heap order; insertion sort keeps
	// the call allocation-free (sort.Slice's closure and reflect-based
	// swapper both escape to the heap), and k is tiny (typically 5).
	items := h.items
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && items[j].Dist2 > it.Dist2 {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
	return items
}

func (t *Tree) knn(lo, hi int, q mathutil.Vec3, h *heapNeighbors) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	dx := t.px[mid] - q.X
	dy := t.py[mid] - q.Y
	dz := t.pz[mid] - q.Z
	h.offer(int(t.idx[mid]), dx*dx+dy*dy+dz*dz)
	if hi-lo == 1 {
		return
	}
	var d float64
	switch t.axis[mid] {
	case 0:
		d = q.X - t.px[mid]
	case 1:
		d = q.Y - t.py[mid]
	default:
		d = q.Z - t.pz[mid]
	}
	// Search the near side first, then the far side only if the
	// splitting plane is closer than the current k-th best distance.
	if d < 0 {
		t.knn(lo, mid, q, h)
		if d*d < h.bound() {
			t.knn(mid+1, hi, q, h)
		}
	} else {
		t.knn(mid+1, hi, q, h)
		if d*d < h.bound() {
			t.knn(lo, mid, q, h)
		}
	}
}

// WithinRadius appends to out the indices of all points within radius r
// of q (unordered) and returns the extended slice.
func (t *Tree) WithinRadius(q mathutil.Vec3, r float64, out []int) []int {
	if r < 0 || len(t.points) == 0 {
		return out
	}
	return t.radius(0, len(t.points), q, r*r, out)
}

func (t *Tree) radius(lo, hi int, q mathutil.Vec3, r2 float64, out []int) []int {
	if hi <= lo {
		return out
	}
	mid := (lo + hi) / 2
	p := t.points[t.idx[mid]]
	if p.Dist2(q) <= r2 {
		out = append(out, int(t.idx[mid]))
	}
	if hi-lo == 1 {
		return out
	}
	ax := int(t.axis[mid])
	d := q.Component(ax) - p.Component(ax)
	if d < 0 {
		out = t.radius(lo, mid, q, r2, out)
		if d*d <= r2 {
			out = t.radius(mid+1, hi, q, r2, out)
		}
	} else {
		out = t.radius(mid+1, hi, q, r2, out)
		if d*d <= r2 {
			out = t.radius(lo, mid, q, r2, out)
		}
	}
	return out
}

// KNearestBatchInto answers len(queries) k-NN queries into one flat
// caller-owned buffer: query i's neighbors land in out[i*k:(i+1)*k],
// sorted by increasing distance and padded with {Index: -1,
// Dist2: +Inf} entries when the tree holds fewer than k points. out
// must have length >= len(queries)*k. workers <= 0 uses
// parallel.DefaultWorkers(); workers == 1 runs inline on the calling
// goroutine with zero heap allocations, which is what the fused
// inference path relies on (each reconstruction worker batches its own
// chunk serially). Returns out[:len(queries)*k].
func (t *Tree) KNearestBatchInto(queries []mathutil.Vec3, k, workers int, out []Neighbor) []Neighbor {
	if k <= 0 || len(queries) == 0 {
		return out[:0]
	}
	if len(out) < len(queries)*k {
		panic("kdtree: KNearestBatchInto buffer shorter than len(queries)*k")
	}
	if workers == 1 {
		t.knnBatchRange(queries, k, out, 0, len(queries))
	} else {
		parallel.ForChunked(len(queries), workers, func(lo, hi int) {
			t.knnBatchRange(queries, k, out, lo, hi)
		})
	}
	return out[:len(queries)*k]
}

func (t *Tree) knnBatchRange(queries []mathutil.Vec3, k int, out []Neighbor, lo, hi int) {
	for i := lo; i < hi; i++ {
		// Three-index slice: KNearestInto appends into exactly the
		// [i*k, (i+1)*k) window of out, never beyond it.
		got := t.KNearestInto(queries[i], k, out[i*k:i*k:(i+1)*k])
		for j := len(got); j < k; j++ {
			out[i*k+j] = Neighbor{Index: -1, Dist2: inf()}
		}
	}
}

// KNearestBatch runs KNearest for every query in parallel, returning one
// result slice per query. It is the allocating convenience wrapper over
// KNearestBatchInto; hot loops should call the Into variant with a
// reused buffer.
func (t *Tree) KNearestBatch(queries []mathutil.Vec3, k int) [][]Neighbor {
	out := make([][]Neighbor, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	flat := t.KNearestBatchInto(queries, k, 0, make([]Neighbor, len(queries)*k))
	per := k
	if t.Len() < per {
		per = t.Len()
	}
	for i := range out {
		out[i] = flat[i*k : i*k+per]
	}
	return out
}

// NearestBulk runs Nearest for n queries in parallel, writing the
// nearest sample index and squared distance into idx and d2 (both of
// length n). point maps a query ordinal to its position, so callers can
// enumerate grid nodes without materializing them. It is the bulk entry
// point the recon engine uses to build nearest-sample tables.
func (t *Tree) NearestBulk(n, workers int, point func(i int) mathutil.Vec3, idx []int32, d2 []float64) {
	parallel.For(n, workers, func(i int) {
		bi, bd2 := t.Nearest(point(i))
		idx[i] = int32(bi)
		d2[i] = bd2
	})
}

func inf() float64 { return math.Inf(1) }

// heapNeighbors is a fixed-capacity max-heap by Dist2: the root is the
// worst of the best-k so far, so bound() prunes subtree descent.
type heapNeighbors struct {
	items []Neighbor
	k     int
}

func (h *heapNeighbors) bound() float64 {
	if len(h.items) < h.k {
		return inf()
	}
	return h.items[0].Dist2
}

func (h *heapNeighbors) offer(index int, d2 float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, Neighbor{index, d2})
		h.up(len(h.items) - 1)
		return
	}
	if d2 >= h.items[0].Dist2 {
		return
	}
	h.items[0] = Neighbor{index, d2}
	h.down(0)
}

func (h *heapNeighbors) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist2 >= h.items[i].Dist2 {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *heapNeighbors) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.items[l].Dist2 > h.items[big].Dist2 {
			big = l
		}
		if r < n && h.items[r].Dist2 > h.items[big].Dist2 {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}
