package kdtree

import (
	"math"
	"testing"

	"fillvoid/internal/mathutil"
)

func TestKNearestBatchIntoMatchesSingle(t *testing.T) {
	pts := randomPoints(800, 12)
	tree := Build(pts)
	queries := randomPoints(137, 13)
	const k = 5
	flat := tree.KNearestBatchInto(queries, k, 4, make([]Neighbor, len(queries)*k))
	if len(flat) != len(queries)*k {
		t.Fatalf("flat length %d, want %d", len(flat), len(queries)*k)
	}
	for i, q := range queries {
		want := tree.KNearest(q, k)
		got := flat[i*k : (i+1)*k]
		for j := range want {
			if math.Abs(got[j].Dist2-want[j].Dist2) > 0 {
				t.Fatalf("query %d rank %d: dist %g want %g", i, j, got[j].Dist2, want[j].Dist2)
			}
		}
	}
}

func TestKNearestBatchIntoPadsShortTrees(t *testing.T) {
	pts := randomPoints(3, 7)
	tree := Build(pts)
	queries := randomPoints(4, 8)
	const k = 5
	flat := tree.KNearestBatchInto(queries, k, 1, make([]Neighbor, len(queries)*k))
	for i := range queries {
		for j := 0; j < k; j++ {
			nb := flat[i*k+j]
			if j < 3 {
				if nb.Index < 0 || math.IsInf(nb.Dist2, 1) {
					t.Fatalf("query %d rank %d: unexpected padding %+v", i, j, nb)
				}
			} else if nb.Index != -1 || !math.IsInf(nb.Dist2, 1) {
				t.Fatalf("query %d rank %d: want padding, got %+v", i, j, nb)
			}
		}
	}
}

func TestKNearestBatchIntoBufferTooSmall(t *testing.T) {
	tree := Build(randomPoints(10, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer did not panic")
		}
	}()
	tree.KNearestBatchInto(randomPoints(2, 2), 5, 1, make([]Neighbor, 9))
}

// TestKNearestIntoZeroAllocs pins the satellite guarantee: with
// cap(buf) >= k a query performs no heap allocation, and the serial
// batched entry point inherits that.
func TestKNearestIntoZeroAllocs(t *testing.T) {
	pts := randomPoints(4096, 21)
	tree := Build(pts)
	q := mathutil.Vec3{X: 0.41, Y: 0.58, Z: 0.27}
	const k = 5
	buf := make([]Neighbor, k)
	if n := testing.AllocsPerRun(200, func() {
		tree.KNearestInto(q, k, buf[:0])
	}); n != 0 {
		t.Errorf("KNearestInto: %v allocs/op, want 0", n)
	}

	queries := randomPoints(64, 22)
	flat := make([]Neighbor, len(queries)*k)
	if n := testing.AllocsPerRun(50, func() {
		tree.KNearestBatchInto(queries, k, 1, flat)
	}); n != 0 {
		t.Errorf("KNearestBatchInto(workers=1): %v allocs/op, want 0", n)
	}

	// Nearest has its own 1-NN traversal precisely so the per-grid-node
	// table build in the recon engine stays allocation-free.
	if n := testing.AllocsPerRun(200, func() {
		tree.Nearest(q)
	}); n != 0 {
		t.Errorf("Nearest: %v allocs/op, want 0", n)
	}
}

// TestNearestMatchesKNearest pins the dedicated 1-NN traversal to the
// general k-NN path.
func TestNearestMatchesKNearest(t *testing.T) {
	tree := Build(randomPoints(700, 41))
	for _, q := range randomPoints(200, 42) {
		gi, gd := tree.Nearest(q)
		want := tree.KNearest(q, 1)
		if gi != want[0].Index || gd != want[0].Dist2 {
			t.Fatalf("Nearest(%v) = (%d, %g), KNearest = (%d, %g)",
				q, gi, gd, want[0].Index, want[0].Dist2)
		}
	}
	if i, d := (&Tree{}).Nearest(mathutil.Vec3{}); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty tree Nearest = (%d, %g)", i, d)
	}
}

func BenchmarkKNearestInto(b *testing.B) {
	tree := Build(randomPoints(1<<16, 31))
	q := mathutil.Vec3{X: 0.3, Y: 0.7, Z: 0.5}
	buf := make([]Neighbor, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNearestInto(q, 5, buf[:0])
	}
}

func BenchmarkKNearestBatchInto(b *testing.B) {
	tree := Build(randomPoints(1<<16, 31))
	queries := randomPoints(512, 32)
	flat := make([]Neighbor, len(queries)*5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.KNearestBatchInto(queries, 5, 1, flat)
	}
}
