package grid

import (
	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
)

// GradientAt computes the scalar-field gradient at grid index (i, j, k)
// with central differences in the interior and one-sided differences on
// the boundary, in world units (divided by the physical spacing).
//
// These gradients form the last three components of the FCNN's [1x4]
// training target (Section III-D of the paper): supervising on them
// forces the network to account for neighbouring values, which is the
// Fig 8 ablation.
func (v *Volume) GradientAt(i, j, k int) mathutil.Vec3 {
	var g mathutil.Vec3
	g.X = v.axisDiff(i, j, k, 0) / v.Spacing.X
	g.Y = v.axisDiff(i, j, k, 1) / v.Spacing.Y
	g.Z = v.axisDiff(i, j, k, 2) / v.Spacing.Z
	return g
}

// axisDiff returns the (index-space) finite difference along one axis.
func (v *Volume) axisDiff(i, j, k, axis int) float64 {
	var n, c int
	switch axis {
	case 0:
		n, c = v.NX, i
	case 1:
		n, c = v.NY, j
	default:
		n, c = v.NZ, k
	}
	if n == 1 {
		return 0
	}
	step := func(d int) float64 {
		switch axis {
		case 0:
			return v.At(i+d, j, k)
		case 1:
			return v.At(i, j+d, k)
		default:
			return v.At(i, j, k+d)
		}
	}
	switch {
	case c == 0:
		return step(1) - step(0)
	case c == n-1:
		return step(0) - step(-1)
	default:
		return (step(1) - step(-1)) / 2
	}
}

// GradientField computes the gradient at every grid point in parallel,
// returning three volumes (d/dx, d/dy, d/dz) with the same geometry.
func (v *Volume) GradientField() (gx, gy, gz *Volume) {
	gx = NewWithGeometry(v.NX, v.NY, v.NZ, v.Origin, v.Spacing)
	gy = NewWithGeometry(v.NX, v.NY, v.NZ, v.Origin, v.Spacing)
	gz = NewWithGeometry(v.NX, v.NY, v.NZ, v.Origin, v.Spacing)
	parallel.For(v.NZ, 0, func(k int) {
		for j := 0; j < v.NY; j++ {
			for i := 0; i < v.NX; i++ {
				g := v.GradientAt(i, j, k)
				idx := v.Index(i, j, k)
				gx.Data[idx] = g.X
				gy.Data[idx] = g.Y
				gz.Data[idx] = g.Z
			}
		}
	})
	return gx, gy, gz
}

// GradientMagnitudeField computes |∇f| at every grid point in parallel.
// The importance sampler uses it as the feature-preservation criterion.
func (v *Volume) GradientMagnitudeField() *Volume {
	out := NewWithGeometry(v.NX, v.NY, v.NZ, v.Origin, v.Spacing)
	parallel.For(v.NZ, 0, func(k int) {
		for j := 0; j < v.NY; j++ {
			for i := 0; i < v.NX; i++ {
				out.Data[out.Index(i, j, k)] = v.GradientAt(i, j, k).Norm()
			}
		}
	})
	return out
}
