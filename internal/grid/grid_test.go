package grid

import (
	"math"
	"testing"
	"testing/quick"

	"fillvoid/internal/mathutil"
)

func TestIndexCoordsRoundTrip(t *testing.T) {
	v := New(7, 5, 3)
	for idx := 0; idx < v.Len(); idx++ {
		i, j, k := v.Coords(idx)
		if v.Index(i, j, k) != idx {
			t.Fatalf("round trip failed at %d -> (%d,%d,%d)", idx, i, j, k)
		}
	}
}

func TestIndexOrderXFastest(t *testing.T) {
	v := New(4, 3, 2)
	if v.Index(1, 0, 0) != 1 {
		t.Fatal("x should vary fastest")
	}
	if v.Index(0, 1, 0) != 4 {
		t.Fatal("y stride should be NX")
	}
	if v.Index(0, 0, 1) != 12 {
		t.Fatal("z stride should be NX*NY")
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { New(0, 1, 1) })
	mustPanic(func() {
		NewWithGeometry(2, 2, 2, mathutil.Vec3{}, mathutil.Vec3{X: 0, Y: 1, Z: 1})
	})
}

func TestPointGeometry(t *testing.T) {
	v := NewWithGeometry(3, 3, 3,
		mathutil.Vec3{X: 10, Y: 20, Z: 30},
		mathutil.Vec3{X: 1, Y: 2, Z: 3})
	if got := v.Point(0, 0, 0); got != (mathutil.Vec3{X: 10, Y: 20, Z: 30}) {
		t.Fatalf("origin: %+v", got)
	}
	if got := v.Point(2, 2, 2); got != (mathutil.Vec3{X: 12, Y: 24, Z: 36}) {
		t.Fatalf("far corner: %+v", got)
	}
	b := v.Bounds()
	if b.Min != v.Point(0, 0, 0) || b.Max != v.Point(2, 2, 2) {
		t.Fatalf("bounds: %+v", b)
	}
}

func TestFillAndStats(t *testing.T) {
	v := New(10, 10, 10)
	v.Fill(func(i, j, k int, _ mathutil.Vec3) float64 {
		return float64(i + j + k)
	})
	s := v.Stats()
	if s.Min() != 0 || s.Max() != 27 {
		t.Fatalf("min/max: %g/%g", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-13.5) > 1e-9 {
		t.Fatalf("mean: %g", s.Mean())
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(2, 2, 2)
	v.Set(1, 1, 1, 5)
	c := v.Clone()
	c.Set(1, 1, 1, 9)
	if v.At(1, 1, 1) != 5 {
		t.Fatal("clone shares storage")
	}
	if !v.SameGeometry(c) {
		t.Fatal("clone geometry differs")
	}
}

func TestTrilinearAtGridNodesExact(t *testing.T) {
	v := NewWithGeometry(5, 4, 3, mathutil.Vec3{X: -1, Y: 2, Z: 0}, mathutil.Vec3{X: 0.5, Y: 1, Z: 2})
	v.Fill(func(i, j, k int, p mathutil.Vec3) float64 { return p.X*p.Y + p.Z })
	for idx := 0; idx < v.Len(); idx++ {
		p := v.PointAt(idx)
		if got := v.TrilinearAt(p); math.Abs(got-v.Data[idx]) > 1e-12 {
			t.Fatalf("node %d: got %g want %g", idx, got, v.Data[idx])
		}
	}
}

func TestTrilinearReproducesTrilinearFunctions(t *testing.T) {
	// A function linear in each axis is reproduced exactly between nodes.
	v := New(4, 4, 4)
	f := func(p mathutil.Vec3) float64 { return 2*p.X - p.Y + 3*p.Z + p.X*p.Y - p.Y*p.Z + p.X*p.Y*p.Z }
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return f(p) })
	g := func(x, y, z float64) bool {
		p := mathutil.Vec3{
			X: mathutil.Clamp(math.Abs(x), 0, 3),
			Y: mathutil.Clamp(math.Abs(y), 0, 3),
			Z: mathutil.Clamp(math.Abs(z), 0, 3),
		}
		return math.Abs(v.TrilinearAt(p)-f(p)) < 1e-9
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTrilinearClampsOutside(t *testing.T) {
	v := New(3, 3, 3)
	v.Fill(func(i, j, k int, _ mathutil.Vec3) float64 { return float64(i) })
	if got := v.TrilinearAt(mathutil.Vec3{X: -5, Y: 1, Z: 1}); got != 0 {
		t.Fatalf("below: %g", got)
	}
	if got := v.TrilinearAt(mathutil.Vec3{X: 50, Y: 1, Z: 1}); got != 2 {
		t.Fatalf("above: %g", got)
	}
}

func TestResampleIdentity(t *testing.T) {
	v := New(6, 5, 4)
	v.Fill(func(i, j, k int, _ mathutil.Vec3) float64 { return float64(i*100 + j*10 + k) })
	r := v.Resample(6, 5, 4, v.Origin, v.Spacing)
	if MaxAbsDiff(v, r) > 1e-12 {
		t.Fatal("identity resample changed data")
	}
}

func TestGradientOfLinearField(t *testing.T) {
	v := NewWithGeometry(8, 8, 8, mathutil.Vec3{}, mathutil.Vec3{X: 0.5, Y: 2, Z: 1})
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return 3*p.X - 2*p.Y + 7*p.Z })
	want := mathutil.Vec3{X: 3, Y: -2, Z: 7}
	for k := 0; k < v.NZ; k++ {
		for j := 0; j < v.NY; j++ {
			for i := 0; i < v.NX; i++ {
				g := v.GradientAt(i, j, k)
				if g.Sub(want).Norm() > 1e-9 {
					t.Fatalf("(%d,%d,%d): got %+v want %+v", i, j, k, g, want)
				}
			}
		}
	}
}

func TestGradientFieldMatchesPointwise(t *testing.T) {
	v := New(6, 6, 6)
	v.Fill(func(i, j, k int, p mathutil.Vec3) float64 { return math.Sin(p.X) * math.Cos(p.Y+p.Z) })
	gx, gy, gz := v.GradientField()
	for idx := 0; idx < v.Len(); idx++ {
		i, j, k := v.Coords(idx)
		g := v.GradientAt(i, j, k)
		if gx.Data[idx] != g.X || gy.Data[idx] != g.Y || gz.Data[idx] != g.Z {
			t.Fatalf("mismatch at %d", idx)
		}
	}
	gm := v.GradientMagnitudeField()
	for idx := 0; idx < v.Len(); idx++ {
		i, j, k := v.Coords(idx)
		if math.Abs(gm.Data[idx]-v.GradientAt(i, j, k).Norm()) > 1e-12 {
			t.Fatalf("magnitude mismatch at %d", idx)
		}
	}
}

func TestGradientSingletonAxis(t *testing.T) {
	v := New(4, 4, 1) // flat in z
	v.Fill(func(i, j, k int, _ mathutil.Vec3) float64 { return float64(i + j) })
	g := v.GradientAt(1, 1, 0)
	if g.Z != 0 {
		t.Fatalf("z gradient on flat axis: %g", g.Z)
	}
}

func TestSliceZ(t *testing.T) {
	v := New(3, 2, 2)
	v.Fill(func(i, j, k int, _ mathutil.Vec3) float64 { return float64(v.Index(i, j, k)) })
	s := v.SliceZ(1)
	if len(s) != 2 || len(s[0]) != 3 {
		t.Fatalf("shape %dx%d", len(s), len(s[0]))
	}
	if s[0][0] != float64(v.Index(0, 0, 1)) || s[1][2] != float64(v.Index(2, 1, 1)) {
		t.Fatalf("content: %v", s)
	}
	// Mutating the slice must not touch the volume.
	s[0][0] = -1
	if v.At(0, 0, 1) == -1 {
		t.Fatal("SliceZ returned shared storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slice")
		}
	}()
	v.SliceZ(5)
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(2, 2, 2)
	b := New(2, 2, 2)
	b.Data[3] = -4
	if got := MaxAbsDiff(a, b); got != 4 {
		t.Fatalf("got %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	MaxAbsDiff(a, New(3, 2, 2))
}
