// Package grid implements the regular-grid volume substrate: the
// structured 3-D scalar fields that simulations emit, that the sampler
// decimates, and that every reconstructor must rebuild. It mirrors the
// VTK ImageData model (dims + origin + spacing + point data) that the
// paper's workflow stores as .vti files.
package grid

import (
	"fmt"
	"math"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
)

// Volume is a scalar field on a regular 3-D grid. Data is stored in VTK
// point order: x varies fastest, then y, then z, so
// Data[i + j*NX + k*NX*NY] is the value at grid index (i, j, k).
type Volume struct {
	// NX, NY, NZ are the point counts along each axis (all >= 1).
	NX, NY, NZ int
	// Origin is the world-space position of grid index (0, 0, 0).
	Origin mathutil.Vec3
	// Spacing is the world-space distance between adjacent points along
	// each axis (all components > 0).
	Spacing mathutil.Vec3
	// Data holds NX*NY*NZ scalar values in x-fastest order.
	Data []float64
}

// New allocates a zero-filled volume with unit spacing at the origin.
func New(nx, ny, nz int) *Volume {
	return NewWithGeometry(nx, ny, nz, mathutil.Vec3{}, mathutil.Vec3{X: 1, Y: 1, Z: 1})
}

// NewWithGeometry allocates a zero-filled volume with the given world
// placement. It panics if any dimension is < 1 or any spacing is <= 0;
// those are programming errors, not data errors.
func NewWithGeometry(nx, ny, nz int, origin, spacing mathutil.Vec3) *Volume {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("grid: invalid dims %dx%dx%d", nx, ny, nz))
	}
	if spacing.X <= 0 || spacing.Y <= 0 || spacing.Z <= 0 {
		panic(fmt.Sprintf("grid: invalid spacing %+v", spacing))
	}
	return &Volume{
		NX: nx, NY: ny, NZ: nz,
		Origin:  origin,
		Spacing: spacing,
		Data:    make([]float64, nx*ny*nz),
	}
}

// Len returns the number of grid points.
func (v *Volume) Len() int { return v.NX * v.NY * v.NZ }

// Index converts grid coordinates to the flat Data index.
func (v *Volume) Index(i, j, k int) int { return i + v.NX*(j+v.NY*k) }

// Coords converts a flat Data index back to grid coordinates.
func (v *Volume) Coords(idx int) (i, j, k int) {
	i = idx % v.NX
	j = (idx / v.NX) % v.NY
	k = idx / (v.NX * v.NY)
	return
}

// At returns the value at grid index (i, j, k).
func (v *Volume) At(i, j, k int) float64 { return v.Data[v.Index(i, j, k)] }

// Set stores a value at grid index (i, j, k).
func (v *Volume) Set(i, j, k int, x float64) { v.Data[v.Index(i, j, k)] = x }

// Point returns the world-space position of grid index (i, j, k).
func (v *Volume) Point(i, j, k int) mathutil.Vec3 {
	return mathutil.Vec3{
		X: v.Origin.X + float64(i)*v.Spacing.X,
		Y: v.Origin.Y + float64(j)*v.Spacing.Y,
		Z: v.Origin.Z + float64(k)*v.Spacing.Z,
	}
}

// PointAt returns the world-space position of a flat index.
func (v *Volume) PointAt(idx int) mathutil.Vec3 {
	i, j, k := v.Coords(idx)
	return v.Point(i, j, k)
}

// Bounds returns the world-space axis-aligned bounding box of the grid.
func (v *Volume) Bounds() mathutil.AABB {
	return mathutil.AABB{
		Min: v.Origin,
		Max: v.Point(v.NX-1, v.NY-1, v.NZ-1),
	}
}

// Clone returns a deep copy of the volume.
func (v *Volume) Clone() *Volume {
	out := &Volume{NX: v.NX, NY: v.NY, NZ: v.NZ, Origin: v.Origin, Spacing: v.Spacing}
	out.Data = make([]float64, len(v.Data))
	copy(out.Data, v.Data)
	return out
}

// SameGeometry reports whether two volumes share dims, origin, spacing.
func (v *Volume) SameGeometry(o *Volume) bool {
	return v.NX == o.NX && v.NY == o.NY && v.NZ == o.NZ &&
		v.Origin == o.Origin && v.Spacing == o.Spacing
}

// Fill evaluates f at every grid point in parallel and stores the result.
// f receives grid indices and the corresponding world position.
func (v *Volume) Fill(f func(i, j, k int, p mathutil.Vec3) float64) {
	parallel.For(v.NZ, 0, func(k int) {
		for j := 0; j < v.NY; j++ {
			base := v.Index(0, j, k)
			for i := 0; i < v.NX; i++ {
				v.Data[base+i] = f(i, j, k, v.Point(i, j, k))
			}
		}
	})
}

// Stats computes min/max/mean/stddev over the whole field in parallel.
func (v *Volume) Stats() *mathutil.RunningStats {
	workers := parallel.DefaultWorkers()
	accs := make([]*mathutil.RunningStats, workers)
	n := len(v.Data)
	chunk := (n + workers - 1) / workers
	parallel.ForChunked(n, workers, func(start, end int) {
		s := mathutil.NewRunningStats()
		for i := start; i < end; i++ {
			s.Add(v.Data[i])
		}
		accs[start/chunk] = s
	})
	total := mathutil.NewRunningStats()
	for _, s := range accs {
		if s != nil {
			total.Merge(s)
		}
	}
	return total
}

// TrilinearAt samples the field at an arbitrary world position using
// trilinear interpolation, clamping to the grid boundary. It is used by
// the resampler and by the cross-resolution experiments.
func (v *Volume) TrilinearAt(p mathutil.Vec3) float64 {
	fx := (p.X - v.Origin.X) / v.Spacing.X
	fy := (p.Y - v.Origin.Y) / v.Spacing.Y
	fz := (p.Z - v.Origin.Z) / v.Spacing.Z
	fx = mathutil.Clamp(fx, 0, float64(v.NX-1))
	fy = mathutil.Clamp(fy, 0, float64(v.NY-1))
	fz = mathutil.Clamp(fz, 0, float64(v.NZ-1))
	i0 := int(fx)
	j0 := int(fy)
	k0 := int(fz)
	i1, j1, k1 := i0+1, j0+1, k0+1
	if i1 > v.NX-1 {
		i1 = v.NX - 1
	}
	if j1 > v.NY-1 {
		j1 = v.NY - 1
	}
	if k1 > v.NZ-1 {
		k1 = v.NZ - 1
	}
	tx := fx - float64(i0)
	ty := fy - float64(j0)
	tz := fz - float64(k0)
	c000 := v.At(i0, j0, k0)
	c100 := v.At(i1, j0, k0)
	c010 := v.At(i0, j1, k0)
	c110 := v.At(i1, j1, k0)
	c001 := v.At(i0, j0, k1)
	c101 := v.At(i1, j0, k1)
	c011 := v.At(i0, j1, k1)
	c111 := v.At(i1, j1, k1)
	c00 := mathutil.Lerp(c000, c100, tx)
	c10 := mathutil.Lerp(c010, c110, tx)
	c01 := mathutil.Lerp(c001, c101, tx)
	c11 := mathutil.Lerp(c011, c111, tx)
	c0 := mathutil.Lerp(c00, c10, ty)
	c1 := mathutil.Lerp(c01, c11, ty)
	return mathutil.Lerp(c0, c1, tz)
}

// Resample evaluates the field by trilinear interpolation onto a new
// grid with the given dims, origin and spacing, in parallel.
func (v *Volume) Resample(nx, ny, nz int, origin, spacing mathutil.Vec3) *Volume {
	out := NewWithGeometry(nx, ny, nz, origin, spacing)
	out.Fill(func(_, _, _ int, p mathutil.Vec3) float64 {
		return v.TrilinearAt(p)
	})
	return out
}

// SliceZ extracts the k-th z-plane as a row-major [NY][NX] copy; used by
// the image renderer for Fig 2/3-style comparisons.
func (v *Volume) SliceZ(k int) [][]float64 {
	if k < 0 || k >= v.NZ {
		panic(fmt.Sprintf("grid: SliceZ index %d out of range [0,%d)", k, v.NZ))
	}
	rows := make([][]float64, v.NY)
	for j := 0; j < v.NY; j++ {
		row := make([]float64, v.NX)
		copy(row, v.Data[v.Index(0, j, k):v.Index(0, j, k)+v.NX])
		rows[j] = row
	}
	return rows
}

// MaxAbsDiff returns the largest absolute pointwise difference between
// two volumes with identical dims. It panics on a dimension mismatch.
func MaxAbsDiff(a, b *Volume) float64 {
	if a.Len() != b.Len() {
		panic("grid: MaxAbsDiff dimension mismatch")
	}
	m := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
