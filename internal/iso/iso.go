// Package iso implements isosurface extraction and surface-fidelity
// metrics. The paper motivates importance sampling by downstream
// visualization tasks — "volume rendering and isosurface contouring"
// (Section I) — so reconstruction quality ultimately matters at the
// isosurface level: does the contour extracted from a reconstruction
// match the contour of the original field?
//
// Extraction uses marching tetrahedra: each grid cell is split into six
// tetrahedra and each tetrahedron contributes 0-2 triangles with
// vertices linearly interpolated along its edges. Unlike marching
// cubes, the method is table-free and unambiguous (no face ambiguities)
// at the cost of a few more triangles.
package iso

import (
	"errors"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
)

// Mesh is an indexed triangle surface.
type Mesh struct {
	Vertices  []mathutil.Vec3
	Triangles [][3]int32
}

// NumVertices returns the vertex count.
func (m *Mesh) NumVertices() int { return len(m.Vertices) }

// NumTriangles returns the triangle count.
func (m *Mesh) NumTriangles() int { return len(m.Triangles) }

// SurfaceArea returns the total area of all triangles.
func (m *Mesh) SurfaceArea() float64 {
	area := 0.0
	for _, t := range m.Triangles {
		a := m.Vertices[t[0]]
		b := m.Vertices[t[1]]
		c := m.Vertices[t[2]]
		area += b.Sub(a).Cross(c.Sub(a)).Norm() / 2
	}
	return area
}

// Centroids returns the triangle centroids (used by surface-distance
// metrics).
func (m *Mesh) Centroids() []mathutil.Vec3 {
	out := make([]mathutil.Vec3, len(m.Triangles))
	for i, t := range m.Triangles {
		out[i] = m.Vertices[t[0]].Add(m.Vertices[t[1]]).Add(m.Vertices[t[2]]).Scale(1.0 / 3)
	}
	return out
}

// cubeTets lists the six tetrahedra of a unit cell by corner index
// (corner bit 0 = +x, bit 1 = +y, bit 2 = +z). All six share the main
// diagonal 0-7, which makes faces between neighboring cells consistent.
var cubeTets = [6][4]int{
	{0, 1, 3, 7},
	{0, 3, 2, 7},
	{0, 2, 6, 7},
	{0, 6, 4, 7},
	{0, 4, 5, 7},
	{0, 5, 1, 7},
}

// Extract computes the isosurface of v at isovalue. Vertices on shared
// cell edges are deduplicated, so the mesh is watertight wherever the
// surface does not exit the domain.
func Extract(v *grid.Volume, isovalue float64) (*Mesh, error) {
	if v.NX < 2 || v.NY < 2 || v.NZ < 2 {
		return nil, errors.New("iso: grid must be at least 2 points per axis")
	}
	mesh := &Mesh{}
	// Edge-keyed vertex dedup: an isosurface vertex lies on the segment
	// between two grid points; key by their flat indices (lo, hi).
	vertexOn := make(map[[2]int32]int32)

	corner := func(i, j, k, c int) (int, int, int) {
		return i + (c & 1), j + (c >> 1 & 1), k + (c >> 2 & 1)
	}

	addVertex := func(ai, aj, ak, bi, bj, bk int) int32 {
		a := int32(v.Index(ai, aj, ak))
		b := int32(v.Index(bi, bj, bk))
		key := [2]int32{a, b}
		if a > b {
			key = [2]int32{b, a}
		}
		if idx, ok := vertexOn[key]; ok {
			return idx
		}
		va := v.Data[a]
		vb := v.Data[b]
		t := 0.5
		//lint:allow floateq: exact-equality guard against 0/0 in the edge weight; any nonzero difference is a valid divisor
		if vb != va {
			t = (isovalue - va) / (vb - va)
		}
		t = mathutil.Clamp(t, 0, 1)
		pa := v.PointAt(int(a))
		pb := v.PointAt(int(b))
		p := pa.Add(pb.Sub(pa).Scale(t))
		idx := int32(len(mesh.Vertices))
		mesh.Vertices = append(mesh.Vertices, p)
		vertexOn[key] = idx
		return idx
	}

	for k := 0; k < v.NZ-1; k++ {
		for j := 0; j < v.NY-1; j++ {
			for i := 0; i < v.NX-1; i++ {
				for _, tet := range cubeTets {
					var gi, gj, gk [4]int
					var above [4]bool
					nAbove := 0
					for c := 0; c < 4; c++ {
						gi[c], gj[c], gk[c] = corner(i, j, k, tet[c])
						if v.At(gi[c], gj[c], gk[c]) >= isovalue {
							above[c] = true
							nAbove++
						}
					}
					switch nAbove {
					case 0, 4:
						continue
					case 1, 3:
						// One vertex isolated: one triangle.
						iso := 0
						want := nAbove == 1
						for c := 0; c < 4; c++ {
							if above[c] == want {
								iso = c
							}
						}
						var tri [3]int32
						t := 0
						for c := 0; c < 4; c++ {
							if c == iso {
								continue
							}
							tri[t] = addVertex(gi[iso], gj[iso], gk[iso], gi[c], gj[c], gk[c])
							t++
						}
						mesh.Triangles = append(mesh.Triangles, tri)
					case 2:
						// Two-and-two: a quad, emitted as two triangles.
						var hi, lo []int
						for c := 0; c < 4; c++ {
							if above[c] {
								hi = append(hi, c)
							} else {
								lo = append(lo, c)
							}
						}
						v00 := addVertex(gi[hi[0]], gj[hi[0]], gk[hi[0]], gi[lo[0]], gj[lo[0]], gk[lo[0]])
						v01 := addVertex(gi[hi[0]], gj[hi[0]], gk[hi[0]], gi[lo[1]], gj[lo[1]], gk[lo[1]])
						v10 := addVertex(gi[hi[1]], gj[hi[1]], gk[hi[1]], gi[lo[0]], gj[lo[0]], gk[lo[0]])
						v11 := addVertex(gi[hi[1]], gj[hi[1]], gk[hi[1]], gi[lo[1]], gj[lo[1]], gk[lo[1]])
						mesh.Triangles = append(mesh.Triangles,
							[3]int32{v00, v01, v11},
							[3]int32{v00, v11, v10})
					}
				}
			}
		}
	}
	return mesh, nil
}

// ChamferDistance returns the symmetric mean distance between two
// surfaces, measured over their triangle centroids: for every centroid
// of a, the distance to the nearest centroid of b, and vice versa,
// averaged. It is the surface-level analog of RMSE and the metric the
// isosurface-fidelity experiment reports.
func ChamferDistance(a, b *Mesh) (float64, error) {
	ca := a.Centroids()
	cb := b.Centroids()
	if len(ca) == 0 || len(cb) == 0 {
		return 0, errors.New("iso: empty mesh")
	}
	ta := kdtree.Build(ca)
	tb := kdtree.Build(cb)
	sum := 0.0
	for _, p := range ca {
		_, d2 := tb.Nearest(p)
		sum += math.Sqrt(d2)
	}
	for _, p := range cb {
		_, d2 := ta.Nearest(p)
		sum += math.Sqrt(d2)
	}
	return sum / float64(len(ca)+len(cb)), nil
}

// EdgeManifoldness reports how many mesh edges are shared by exactly
// two triangles (interior), exactly one (boundary — the surface exits
// the domain), or more (non-manifold, which marching tetrahedra never
// produces on a consistent cell decomposition).
func (m *Mesh) EdgeManifoldness() (interior, boundary, nonManifold int) {
	count := make(map[[2]int32]int, 3*len(m.Triangles))
	for _, t := range m.Triangles {
		for e := 0; e < 3; e++ {
			a, b := t[e], t[(e+1)%3]
			if a > b {
				a, b = b, a
			}
			count[[2]int32{a, b}]++
		}
	}
	for _, c := range count {
		switch {
		case c == 2:
			interior++
		case c == 1:
			boundary++
		default:
			nonManifold++
		}
	}
	return
}
