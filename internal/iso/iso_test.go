package iso

import (
	"math"
	"testing"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
)

// sphereField returns a grid of distance-to-center values, so the
// isosurface at value r is a sphere of radius r.
func sphereField(n int) *grid.Volume {
	v := grid.New(n, n, n)
	c := mathutil.Vec3{X: float64(n-1) / 2, Y: float64(n-1) / 2, Z: float64(n-1) / 2}
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 {
		return p.Sub(c).Norm()
	})
	return v
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(grid.New(1, 5, 5), 0); err == nil {
		t.Fatal("accepted a 1-thick grid")
	}
}

func TestSphereAreaConvergence(t *testing.T) {
	// The extracted surface area must approach 4*pi*r^2 as the grid
	// refines, and the error must shrink with resolution.
	r := 10.0
	var prevErr float64
	for trial, n := range []int{24, 48} {
		v := sphereField(n)
		// Radius in grid units scales with n to keep the sphere at a
		// fixed relative size.
		radius := r * float64(n-1) / 47.0
		m, err := Extract(v, radius)
		if err != nil {
			t.Fatal(err)
		}
		want := 4 * math.Pi * radius * radius
		got := m.SurfaceArea()
		relErr := math.Abs(got-want) / want
		t.Logf("n=%d: area %.2f want %.2f (err %.3f)", n, got, want, relErr)
		if relErr > 0.10 {
			t.Fatalf("n=%d: area error %.3f too large", n, relErr)
		}
		if trial > 0 && relErr > prevErr*1.05 {
			t.Fatalf("area error grew with resolution: %.4f -> %.4f", prevErr, relErr)
		}
		prevErr = relErr
	}
}

func TestSphereIsWatertight(t *testing.T) {
	v := sphereField(20)
	m, err := Extract(v, 6) // fully interior sphere
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() == 0 {
		t.Fatal("no triangles")
	}
	interior, boundary, nonManifold := m.EdgeManifoldness()
	if nonManifold != 0 {
		t.Fatalf("%d non-manifold edges", nonManifold)
	}
	if boundary != 0 {
		t.Fatalf("%d boundary edges on a fully interior sphere", boundary)
	}
	if interior == 0 {
		t.Fatal("no interior edges")
	}
}

func TestVerticesLieOnIsovalue(t *testing.T) {
	// Every extracted vertex, trilinearly re-sampled in the field,
	// should evaluate close to the isovalue (exactly, for a field
	// linear along grid edges like the planar one here).
	v := grid.New(8, 8, 8)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return p.X + 2*p.Y + 0.5*p.Z })
	const iso = 9.3
	m, err := Extract(v, iso)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() == 0 {
		t.Fatal("no vertices")
	}
	for _, p := range m.Vertices {
		if got := p.X + 2*p.Y + 0.5*p.Z; math.Abs(got-iso) > 1e-9 {
			t.Fatalf("vertex %v evaluates to %g, want %g", p, got, iso)
		}
	}
}

func TestPlanarIsosurfaceArea(t *testing.T) {
	// f = x: isosurface x = c is a plane of area (NY-1)*(NZ-1).
	v := grid.New(10, 7, 5)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return p.X })
	m, err := Extract(v, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 6.0 * 4.0
	if math.Abs(m.SurfaceArea()-want) > 1e-9 {
		t.Fatalf("area %.6f want %.6f", m.SurfaceArea(), want)
	}
}

func TestEmptyIsosurface(t *testing.T) {
	v := grid.New(5, 5, 5) // all zeros
	m, err := Extract(v, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 0 {
		t.Fatalf("%d triangles for an isovalue outside the range", m.NumTriangles())
	}
}

func TestChamferDistance(t *testing.T) {
	v := sphereField(20)
	a, err := Extract(v, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Identical meshes: zero distance.
	d, err := ChamferDistance(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self distance %g", d)
	}
	// Concentric spheres of radius 6 and 8: distance ~2.
	b, err := Extract(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err = ChamferDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1.5 || d > 2.5 {
		t.Fatalf("concentric spheres distance %.3f, want ~2", d)
	}
	// Empty mesh rejected.
	if _, err := ChamferDistance(a, &Mesh{}); err == nil {
		t.Fatal("accepted empty mesh")
	}
}
