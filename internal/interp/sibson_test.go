package interp

import (
	"math"
	"testing"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/sampling"
)

// bruteSibson is a direct (gather-form) reference implementation of
// discrete Sibson interpolation: for every output node q, scan EVERY
// grid voxel x and count it toward sample n(x) when |x-q| < |x-n(x)|.
// O(N^2) — only usable on tiny grids, but unambiguous.
func bruteSibson(c *pointcloud.Cloud, spec GridSpec) *grid.Volume {
	out := spec.NewVolume()
	tree := kdtree.Build(c.Points)
	n := out.Len()
	nearestIdx := make([]int, n)
	nearestD2 := make([]float64, n)
	for i := 0; i < n; i++ {
		nearestIdx[i], nearestD2[i] = tree.Nearest(out.PointAt(i))
	}
	for q := 0; q < n; q++ {
		if nearestD2[q] == 0 {
			out.Data[q] = c.Values[nearestIdx[q]]
			continue
		}
		qp := out.PointAt(q)
		sum, count := 0.0, 0
		for x := 0; x < n; x++ {
			if nearestD2[x] == 0 {
				continue
			}
			if out.PointAt(x).Dist2(qp) < nearestD2[x] {
				sum += c.Values[nearestIdx[x]]
				count++
			}
		}
		if count > 0 {
			out.Data[q] = sum / float64(count)
		} else {
			out.Data[q] = c.Values[nearestIdx[q]]
		}
	}
	return out
}

func TestDiscreteSibsonMatchesBruteForce(t *testing.T) {
	v := grid.New(10, 9, 8)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 {
		return math.Sin(p.X*0.8) + p.Y*0.3 - p.Z*p.Z*0.05
	})
	cloud, _, err := (&sampling.Random{Seed: 5}).Sample(v, "f", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecOf(v)
	want := bruteSibson(cloud, spec)
	got, err := (&NaturalNeighbor{}).Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("scatter implementation deviates from gather reference by %g", d)
	}
}

func TestDiscreteSibsonMatchesBruteForceAcrossWorkerCounts(t *testing.T) {
	// The z-slab decomposition must be invariant to the worker count.
	v := grid.New(8, 8, 12)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return p.X + 2*p.Y - p.Z })
	cloud, _, err := (&sampling.Random{Seed: 9}).Sample(v, "f", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecOf(v)
	ref, err := (&NaturalNeighbor{Workers: 1}).Reconstruct(cloud, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 16} {
		got, err := (&NaturalNeighbor{Workers: workers}).Reconstruct(cloud, spec)
		if err != nil {
			t.Fatal(err)
		}
		if d := grid.MaxAbsDiff(ref, got); d != 0 {
			t.Fatalf("workers=%d deviates by %g", workers, d)
		}
	}
}
