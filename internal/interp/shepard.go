package interp

import (
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
)

// Shepard is modified Shepard (Franke–Little) interpolation: inverse
// distance weighting restricted to the K nearest samples with the
// compactly-supported weight
//
//	w_i = ((R - d_i)_+ / (R * d_i))^2
//
// where R is the distance to the K-th neighbor. It is exact at sample
// locations and smoother than plain IDW, matching the photutils-style
// implementation the paper references.
type Shepard struct {
	// K is the neighborhood size; defaults to 12.
	K int
	// Workers bounds the query parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *Shepard) Name() string { return "shepard" }

// Reconstruct implements Reconstructor.
func (r *Shepard) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	if err := validate(c, spec); err != nil {
		return nil, err
	}
	k := r.K
	if k < 1 {
		k = 12
	}
	if k > c.Len() {
		k = c.Len()
	}
	tree := kdtree.Build(c.Points)
	out := spec.NewVolume()
	workers := r.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	parallel.ForChunked(out.Len(), workers, func(start, end int) {
		buf := make([]kdtree.Neighbor, 0, k)
		for idx := start; idx < end; idx++ {
			q := out.PointAt(idx)
			nbs := tree.KNearestInto(q, k, buf)
			out.Data[idx] = shepardValue(c, nbs)
		}
	})
	return out, nil
}

// shepardValue evaluates the Franke–Little weighted average over the
// sorted neighbor set.
func shepardValue(c *pointcloud.Cloud, nbs []kdtree.Neighbor) float64 {
	if len(nbs) == 0 {
		return 0
	}
	// Coincident sample: exact interpolation.
	const eps2 = 1e-18
	if nbs[0].Dist2 < eps2 {
		return c.Values[nbs[0].Index]
	}
	r2 := nbs[len(nbs)-1].Dist2
	if r2 <= nbs[0].Dist2 {
		// All neighbors at (numerically) the same distance: average.
		sum := 0.0
		for _, nb := range nbs {
			sum += c.Values[nb.Index]
		}
		return sum / float64(len(nbs))
	}
	R := math.Sqrt(r2)
	num, den := 0.0, 0.0
	for _, nb := range nbs {
		d := math.Sqrt(nb.Dist2)
		if d >= R {
			continue
		}
		w := (R - d) / (R * d)
		w *= w
		num += w * c.Values[nb.Index]
		den += w
	}
	if den == 0 {
		return c.Values[nbs[0].Index]
	}
	return num / den
}
