package interp

import (
	"context"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// Shepard is modified Shepard (Franke–Little) interpolation: inverse
// distance weighting restricted to the K nearest samples with the
// compactly-supported weight
//
//	w_i = ((R - d_i)_+ / (R * d_i))^2
//
// where R is the distance to the K-th neighbor. It is exact at sample
// locations and smoother than plain IDW, matching the photutils-style
// implementation the paper references.
type Shepard struct {
	// K is the neighborhood size; defaults to 12.
	K int
	// Workers bounds the query parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *Shepard) Name() string { return "shepard" }

// Reconstruct implements Reconstructor (legacy full-grid path).
func (r *Shepard) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// ReconstructRegion implements Reconstructor: per-query k-NN against the
// plan's shared tree. Each query is independent, so tiling cannot change
// the result.
func (r *Shepard) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	k := r.K
	if k < 1 {
		k = 12
	}
	if k > c.Len() {
		k = c.Len()
	}
	tree := p.Tree()
	spec := p.Spec()
	return parallel.ForChunkedCtx(ctx, region.Len(), r.Workers, func(start, end int) error {
		buf := make([]kdtree.Neighbor, 0, k)
		for m := start; m < end; m++ {
			nbs := tree.KNearestInto(region.PointAt(spec, m), k, buf)
			dst[m] = shepardValue(c, nbs)
		}
		return nil
	})
}

// shepardValue evaluates the Franke–Little weighted average over the
// sorted neighbor set.
func shepardValue(c *pointcloud.Cloud, nbs []kdtree.Neighbor) float64 {
	if len(nbs) == 0 {
		return 0
	}
	// Coincident sample: exact interpolation.
	const eps2 = 1e-18
	if nbs[0].Dist2 < eps2 {
		return c.Values[nbs[0].Index]
	}
	r2 := nbs[len(nbs)-1].Dist2
	if r2 <= nbs[0].Dist2 {
		// All neighbors at (numerically) the same distance: average.
		sum := 0.0
		for _, nb := range nbs {
			sum += c.Values[nb.Index]
		}
		return sum / float64(len(nbs))
	}
	R := math.Sqrt(r2)
	num, den := 0.0, 0.0
	for _, nb := range nbs {
		d := math.Sqrt(nb.Dist2)
		if d >= R {
			continue
		}
		w := (R - d) / (R * d)
		w *= w
		num += w * c.Values[nb.Index]
		den += w
	}
	if den == 0 {
		return c.Values[nbs[0].Index]
	}
	return num / den
}
