// Package interp implements the rule-based point-cloud reconstruction
// baselines the paper compares against (Section III-B): nearest
// neighbor, modified Shepard inverse-distance weighting, discrete-Sibson
// natural neighbor, local radial basis functions, and an adapter over
// the Delaunay piecewise-linear interpolator. All methods share the
// Reconstructor interface: unstructured samples in, full regular grid
// out.
package interp

import (
	"errors"
	"fmt"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
)

// GridSpec describes the output grid a reconstructor must fill.
type GridSpec struct {
	NX, NY, NZ      int
	Origin, Spacing mathutil.Vec3
}

// SpecOf extracts the spec of an existing volume (the usual case:
// reconstruct back onto the original simulation grid).
func SpecOf(v *grid.Volume) GridSpec {
	return GridSpec{NX: v.NX, NY: v.NY, NZ: v.NZ, Origin: v.Origin, Spacing: v.Spacing}
}

// NewVolume allocates a zeroed volume with this spec's geometry.
func (s GridSpec) NewVolume() *grid.Volume {
	return grid.NewWithGeometry(s.NX, s.NY, s.NZ, s.Origin, s.Spacing)
}

// Len returns the number of grid points in the spec.
func (s GridSpec) Len() int { return s.NX * s.NY * s.NZ }

// Reconstructor rebuilds a full regular-grid field from a sampled point
// cloud.
type Reconstructor interface {
	// Name identifies the method in experiment output ("nearest",
	// "shepard", "natural", "linear", "rbf", "fcnn").
	Name() string
	// Reconstruct fills the spec'd grid from the cloud.
	Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error)
}

// ErrEmptyCloud is returned when a reconstructor receives no samples.
var ErrEmptyCloud = errors.New("interp: point cloud is empty")

func validate(c *pointcloud.Cloud, spec GridSpec) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Len() == 0 {
		return ErrEmptyCloud
	}
	if spec.NX < 1 || spec.NY < 1 || spec.NZ < 1 {
		return fmt.Errorf("interp: invalid grid spec %dx%dx%d", spec.NX, spec.NY, spec.NZ)
	}
	return nil
}

// Nearest assigns each grid point the value of its closest sample —
// fast, but blocky at sparse sampling (the paper's weakest baseline).
type Nearest struct {
	// Workers bounds the query parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *Nearest) Name() string { return "nearest" }

// Reconstruct implements Reconstructor.
func (r *Nearest) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	if err := validate(c, spec); err != nil {
		return nil, err
	}
	tree := kdtree.Build(c.Points)
	out := spec.NewVolume()
	parallel.For(out.Len(), r.Workers, func(idx int) {
		i, err := nearestIndex(tree, out.PointAt(idx))
		if err == nil {
			out.Data[idx] = c.Values[i]
		}
	})
	return out, nil
}

func nearestIndex(tree *kdtree.Tree, q mathutil.Vec3) (int, error) {
	i, _ := tree.Nearest(q)
	if i < 0 {
		return 0, ErrEmptyCloud
	}
	return i, nil
}

// ByName constructs a reconstructor with its paper-default parameters.
// Known names: nearest, shepard, natural, rbf, linear, linear-seq.
func ByName(name string) (Reconstructor, error) {
	switch name {
	case "nearest":
		return &Nearest{}, nil
	case "shepard":
		return &Shepard{}, nil
	case "natural":
		return &NaturalNeighbor{}, nil
	case "rbf":
		return &RBF{}, nil
	case "linear":
		return &Linear{}, nil
	case "linear-seq":
		return &Linear{Workers: 1}, nil
	default:
		return nil, fmt.Errorf("interp: unknown reconstructor %q", name)
	}
}

// BaselineNames lists the rule-based methods in the order the paper's
// figures present them.
func BaselineNames() []string {
	return []string{"linear", "natural", "shepard", "nearest"}
}
