// Package interp implements the rule-based point-cloud reconstruction
// baselines the paper compares against (Section III-B): nearest
// neighbor, modified Shepard inverse-distance weighting, discrete-Sibson
// natural neighbor, local radial basis functions, and an adapter over
// the Delaunay piecewise-linear interpolator. All methods implement
// recon.Reconstructor and execute through the shared recon engine: a
// query Plan (validated cloud + k-d tree + nearest-sample table) built
// once per (cloud, grid) pair, cancellable chunked execution, and
// region-of-interest queries.
package interp

import (
	"context"

	"fillvoid/internal/grid"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// GridSpec describes the output grid a reconstructor must fill. It is
// the engine's recon.GridSpec; the alias keeps this package's historical
// surface.
type GridSpec = recon.GridSpec

// SpecOf extracts the spec of an existing volume (the usual case:
// reconstruct back onto the original simulation grid).
func SpecOf(v *grid.Volume) GridSpec { return recon.SpecOf(v) }

// Reconstructor is the engine's method interface (see
// recon.Reconstructor): legacy full-grid Reconstruct plus the
// plan-sharing, cancellable ReconstructRegion.
type Reconstructor = recon.Reconstructor

// ErrEmptyCloud is returned when a reconstructor receives no samples.
var ErrEmptyCloud = recon.ErrEmptyCloud

// Nearest assigns each grid point the value of its closest sample —
// fast, but blocky at sparse sampling (the paper's weakest baseline).
type Nearest struct {
	// Workers bounds the query parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *Nearest) Name() string { return "nearest" }

// Reconstruct implements Reconstructor (legacy full-grid path).
func (r *Nearest) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// ReconstructRegion implements Reconstructor: the nearest-sample table
// is exactly the plan's, so this is a lookup.
func (r *Nearest) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	idx, _, err := p.NearestFor(ctx, region, r.Workers)
	if err != nil {
		return err
	}
	vals := p.Cloud().Values
	for m := range dst {
		dst[m] = vals[idx[m]]
	}
	return nil
}

// StandardRegistry returns a registry with every rule-based baseline
// registered under its paper name: nearest, shepard, natural, rbf,
// linear, and linear-seq (the sequential Fig 10 timing variant). Neural
// methods (fcnn) are registered by callers holding a trained model.
func StandardRegistry(workers int) *recon.Registry {
	reg := recon.NewRegistry()
	reg.RegisterMethod(&Nearest{Workers: workers})
	reg.RegisterMethod(&Shepard{Workers: workers})
	reg.RegisterMethod(&NaturalNeighbor{Workers: workers})
	reg.RegisterMethod(&RBF{Workers: workers})
	reg.RegisterMethod(&Linear{Workers: workers})
	reg.Register("linear-seq", func() (recon.Reconstructor, error) {
		return &Linear{Workers: 1}, nil
	})
	return reg
}

// BaselineNames lists the rule-based methods in the order the paper's
// figures present them.
func BaselineNames() []string {
	return []string{"linear", "natural", "shepard", "nearest"}
}
