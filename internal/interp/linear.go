package interp

import (
	"context"

	"fillvoid/internal/delaunay"
	"fillvoid/internal/grid"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// Linear is Delaunay-triangulation piecewise-linear interpolation — the
// strongest rule-based baseline in the paper. The triangulation is
// built once per plan (memoized, so region queries and repeated runs
// against the same cloud share it); grid queries then walk the mesh and
// evaluate barycentric weights. Workers = 1 reproduces the paper's
// "naive sequential" timing line; Workers <= 0 uses every core and
// reproduces the "CGAL + OpenMP" line in Fig 10 (reconstruction time
// only — the build is sequential in both configurations, as in the
// paper, where triangulation construction is also serial per timestep).
//
// Queries outside the convex hull of the samples fall back to the
// nearest sample value.
type Linear struct {
	// Workers bounds the query parallelism: 1 = sequential baseline,
	// <= 0 = all cores.
	Workers int
}

// Name implements Reconstructor.
func (r *Linear) Name() string {
	if r.Workers == 1 {
		return "linear-seq"
	}
	return "linear"
}

// Reconstruct implements Reconstructor (legacy full-grid path).
func (r *Linear) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// ReconstructRegion implements Reconstructor. The tetrahedralization is
// the per-method state worth sharing across queries, so it lives in the
// plan's memo under "delaunay".
func (r *Linear) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	if c.Len() < 4 {
		// Too few points to triangulate: degrade to nearest neighbor.
		nn := &Nearest{Workers: r.Workers}
		return nn.ReconstructRegion(ctx, p, region, dst)
	}
	v, err := p.Memo("delaunay", func() (any, error) {
		return delaunay.Build(c.Points, c.Values)
	})
	if err != nil {
		return err
	}
	tri := v.(*delaunay.Triangulation)
	tree := p.Tree()
	spec := p.Spec()
	// Chunked so each tile's Locator benefits from the spatial coherence
	// of consecutive grid indices (short mesh walks).
	return parallel.ForChunkedCtx(ctx, region.Len(), r.Workers, func(start, end int) error {
		loc := tri.NewLocator()
		for m := start; m < end; m++ {
			q := region.PointAt(spec, m)
			if val, ok := loc.Interpolate(q); ok {
				dst[m] = val
				continue
			}
			if i, _ := tree.Nearest(q); i >= 0 {
				dst[m] = c.Values[i]
			}
		}
		return nil
	})
}
