package interp

import (
	"fillvoid/internal/delaunay"
	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
)

// Linear is Delaunay-triangulation piecewise-linear interpolation — the
// strongest rule-based baseline in the paper. The triangulation is
// built once per cloud; grid queries then walk the mesh and evaluate
// barycentric weights. Workers = 1 reproduces the paper's "naive
// sequential" timing line; Workers <= 0 uses every core and reproduces
// the "CGAL + OpenMP" line in Fig 10 (reconstruction time only — the
// build is sequential in both configurations, as in the paper, where
// triangulation construction is also serial per timestep).
//
// Queries outside the convex hull of the samples fall back to the
// nearest sample value.
type Linear struct {
	// Workers bounds the query parallelism: 1 = sequential baseline,
	// <= 0 = all cores.
	Workers int
}

// Name implements Reconstructor.
func (r *Linear) Name() string {
	if r.Workers == 1 {
		return "linear-seq"
	}
	return "linear"
}

// Reconstruct implements Reconstructor.
func (r *Linear) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	if err := validate(c, spec); err != nil {
		return nil, err
	}
	if c.Len() < 4 {
		// Too few points to triangulate: degrade to nearest neighbor.
		nn := &Nearest{Workers: r.Workers}
		return nn.Reconstruct(c, spec)
	}
	tri, err := delaunay.Build(c.Points, c.Values)
	if err != nil {
		return nil, err
	}
	tree := kdtree.Build(c.Points)
	out := spec.NewVolume()
	workers := r.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	// Chunked so each worker's Locator benefits from the spatial
	// coherence of consecutive grid indices (short mesh walks).
	parallel.ForChunked(out.Len(), workers, func(start, end int) {
		loc := tri.NewLocator()
		for idx := start; idx < end; idx++ {
			q := out.PointAt(idx)
			if v, ok := loc.Interpolate(q); ok {
				out.Data[idx] = v
				continue
			}
			if i, _ := tree.Nearest(q); i >= 0 {
				out.Data[idx] = c.Values[i]
			}
		}
	})
	return out, nil
}
