package interp

import (
	"context"
	"fmt"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// RBF is local radial-basis-function interpolation over the K nearest
// samples: per query, solve the constant-augmented (K+1)×(K+1) system
// and evaluate sum_i w_i phi(|q - p_i|) + c. The paper measured RBFs
// ("such as thin-plate splines") as far slower than the other methods
// for no quality gain and excluded them from the main experiments; the
// implementation is kept for the same comparison (and it is indeed the
// slowest method here).
type RBF struct {
	// K is the local stencil size; defaults to 16.
	K int
	// Kernel selects the basis function: "imq" (inverse multiquadric,
	// the default — best conditioned on near-regular sample layouts) or
	// "tps" (thin-plate spline r^2 log r, the variant the paper names).
	Kernel string
	// Shape is the kernel width multiplier relative to the local
	// neighbor spacing (imq only); defaults to 1.
	Shape float64
	// Ridge is the diagonal regularization added to the kernel matrix;
	// defaults to 1e-8.
	Ridge float64
	// Workers bounds the query parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *RBF) Name() string { return "rbf" }

// Reconstruct implements Reconstructor (legacy full-grid path).
func (r *RBF) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// ReconstructRegion implements Reconstructor: per-query local solves
// against the plan's shared tree.
func (r *RBF) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	k := r.K
	if k < 1 {
		k = 16
	}
	if k > c.Len() {
		k = c.Len()
	}
	shape := r.Shape
	if shape <= 0 {
		shape = 1
	}
	ridge := r.Ridge
	if ridge <= 0 {
		ridge = 1e-8
	}
	kernel := r.Kernel
	if kernel == "" {
		kernel = "imq"
	}
	if kernel != "imq" && kernel != "tps" {
		return fmt.Errorf("interp: unknown RBF kernel %q (want imq or tps)", kernel)
	}
	tree := p.Tree()
	spec := p.Spec()
	return parallel.ForChunkedCtx(ctx, region.Len(), r.Workers, func(start, end int) error {
		nbBuf := make([]kdtree.Neighbor, 0, k)
		mat := make([]float64, (k+1)*(k+1))
		rhs := make([]float64, k+1)
		for m := start; m < end; m++ {
			q := region.PointAt(spec, m)
			nbs := tree.KNearestInto(q, k, nbBuf)
			dst[m] = rbfValue(c, nbs, q, kernel, shape, ridge, mat, rhs)
		}
		return nil
	})
}

func rbfValue(c *pointcloud.Cloud, nbs []kdtree.Neighbor, q mathutil.Vec3, kernel string, shape, ridge float64, mat, rhs []float64) float64 {
	m := len(nbs)
	if m == 0 {
		return 0
	}
	if nbs[0].Dist2 < 1e-18 {
		return c.Values[nbs[0].Index]
	}
	// Kernel width from the median neighbor distance adapts to the
	// local sampling density (imq); tps is parameter-free.
	h := math.Sqrt(nbs[m/2].Dist2) * shape
	if h == 0 {
		return c.Values[nbs[0].Index]
	}
	h2 := h * h
	var phi func(d2 float64) float64
	if kernel == "tps" {
		// Thin-plate spline r^2 log r, with phi(0) = 0.
		phi = func(d2 float64) float64 {
			if d2 <= 0 {
				return 0
			}
			return 0.5 * d2 * math.Log(d2) // == r^2 log r
		}
	} else {
		// Inverse multiquadric: far better conditioned than a Gaussian
		// on near-regular sample layouts.
		phi = func(d2 float64) float64 { return 1 / math.Sqrt(d2+h2) }
	}

	// Augmented system with a constant polynomial term: without it a
	// decaying kernel cannot reproduce constants, and scientific fields
	// with large offsets (pressure ~1000 hPa) reconstruct terribly.
	//
	//	[ Phi  1 ] [w]   [f]
	//	[ 1^T  0 ] [c] = [0]
	dim := m + 1
	mat = mat[:dim*dim]
	rhs = rhs[:dim]
	for i := 0; i < m; i++ {
		pi := c.Points[nbs[i].Index]
		for j := 0; j < m; j++ {
			d2 := pi.Dist2(c.Points[nbs[j].Index])
			mat[i*dim+j] = phi(d2)
		}
		mat[i*dim+i] += ridge * phi(0)
		mat[i*dim+m] = 1
		mat[m*dim+i] = 1
		rhs[i] = c.Values[nbs[i].Index]
	}
	mat[m*dim+m] = 0
	rhs[m] = 0
	if err := mathutil.SolveLinear(mat, rhs); err != nil {
		// Degenerate stencil: fall back to the nearest sample.
		return c.Values[nbs[0].Index]
	}
	val := rhs[m] // constant term
	for i := 0; i < m; i++ {
		val += rhs[i] * phi(nbs[i].Dist2)
	}
	// The Gaussian kernel matrix is ill-conditioned when samples sit on
	// near-regular grids, which can produce wild oscillations between
	// samples. Clamp to the stencil's value range — interpolation, not
	// extrapolation (the paper notes RBFs "may produce poor results";
	// this keeps poor bounded).
	lo, hi := c.Values[nbs[0].Index], c.Values[nbs[0].Index]
	for _, nb := range nbs[1:] {
		v := c.Values[nb.Index]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return mathutil.Clamp(val, lo, hi)
}
