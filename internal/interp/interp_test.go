package interp

import (
	"math"
	"strings"
	"testing"

	"fillvoid/internal/datasets"
	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/metrics"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/sampling"
)

func testVolume() *grid.Volume {
	gen := datasets.NewIsabel(2)
	return datasets.Volume(gen, 24, 24, 10, 8)
}

func sampledCloud(t *testing.T, v *grid.Volume, frac float64) (*pointcloud.Cloud, []int) {
	t.Helper()
	c, idxs, err := (&sampling.Importance{Seed: 7}).Sample(v, "pressure", frac)
	if err != nil {
		t.Fatal(err)
	}
	return c, idxs
}

func allMethods() []Reconstructor {
	return []Reconstructor{
		&Nearest{},
		&Shepard{},
		&NaturalNeighbor{},
		&Linear{},
		&RBF{K: 10},
	}
}

func TestAllMethodsRejectEmptyCloud(t *testing.T) {
	v := testVolume()
	empty := pointcloud.New("f", 0)
	for _, m := range allMethods() {
		if _, err := m.Reconstruct(empty, SpecOf(v)); err == nil {
			t.Fatalf("%s accepted an empty cloud", m.Name())
		}
	}
}

func TestAllMethodsExactAtSampledNodes(t *testing.T) {
	v := testVolume()
	cloud, idxs := sampledCloud(t, v, 0.05)
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, idx := range idxs {
			got := recon.Data[idx]
			want := v.Data[idx]
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1) {
				t.Fatalf("%s: sampled node %d: got %g want %g", m.Name(), idx, got, want)
			}
		}
	}
}

func TestAllMethodsReasonableSNR(t *testing.T) {
	v := testVolume()
	cloud, _ := sampledCloud(t, v, 0.05)
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		snr, err := metrics.SNR(v, recon)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %.2f dB", m.Name(), snr)
		if snr < 5 {
			t.Fatalf("%s: SNR %.2f dB too low for 5%% sampling", m.Name(), snr)
		}
	}
}

func TestQualityOrderingLinearBeatsNearest(t *testing.T) {
	// The paper's consistent finding among rule-based methods: linear
	// (Delaunay) beats nearest neighbor at moderate sampling rates.
	v := testVolume()
	cloud, _ := sampledCloud(t, v, 0.03)
	lin, err := (&Linear{}).Reconstruct(cloud, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	near, err := (&Nearest{}).Reconstruct(cloud, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	sLin, _ := metrics.SNR(v, lin)
	sNear, _ := metrics.SNR(v, near)
	t.Logf("linear=%.2f dB nearest=%.2f dB", sLin, sNear)
	if sLin <= sNear {
		t.Fatalf("linear (%.2f) should beat nearest (%.2f)", sLin, sNear)
	}
}

func TestLinearSequentialMatchesParallel(t *testing.T) {
	v := testVolume()
	cloud, _ := sampledCloud(t, v, 0.03)
	seq, err := (&Linear{Workers: 1}).Reconstruct(cloud, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Linear{}).Reconstruct(cloud, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(seq, par); d > 1e-9 {
		t.Fatalf("sequential and parallel linear differ by %g", d)
	}
}

func TestLinearNameReflectsWorkers(t *testing.T) {
	if (&Linear{Workers: 1}).Name() != "linear-seq" {
		t.Fatal("sequential name")
	}
	if (&Linear{}).Name() != "linear" {
		t.Fatal("parallel name")
	}
}

func TestLinearDegradesToNearestForTinyClouds(t *testing.T) {
	v := testVolume()
	c := pointcloud.New("f", 3)
	c.Add(mathutil.Vec3{X: 0.1, Y: 0.1, Z: 0.1}, 1)
	c.Add(mathutil.Vec3{X: 0.9, Y: 0.9, Z: 0.9}, 2)
	c.Add(mathutil.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, 3)
	recon, err := (&Linear{}).Reconstruct(c, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	// Every value must be one of the three sample values.
	for _, x := range recon.Data {
		if x != 1 && x != 2 && x != 3 {
			t.Fatalf("unexpected value %g", x)
		}
	}
}

func TestMethodsReproduceLinearField(t *testing.T) {
	// Linear interpolation is exact on a linear field (inside the
	// hull); Shepard / natural / nearest are not exact but must stay
	// within the value range (no extrapolation blow-ups).
	v := grid.New(16, 16, 16)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return 2*p.X + 3*p.Y - p.Z })
	cloud, _, err := (&sampling.Random{Seed: 3}).Sample(v, "f", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for idx, x := range recon.Data {
			if x < st.Min()-1e-6 || x > st.Max()+1e-6 {
				t.Fatalf("%s: value %g at %d outside field range [%g, %g]",
					m.Name(), x, idx, st.Min(), st.Max())
			}
		}
	}
}

func TestNearestIsVoronoiAssignment(t *testing.T) {
	v := grid.New(8, 8, 8)
	c := pointcloud.New("f", 2)
	c.Add(mathutil.Vec3{X: 0, Y: 0, Z: 0}, 10)
	c.Add(mathutil.Vec3{X: 7, Y: 7, Z: 7}, 20)
	recon, err := (&Nearest{}).Reconstruct(c, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < v.Len(); idx++ {
		p := v.PointAt(idx)
		want := 10.0
		if p.Dist2(c.Points[1]) < p.Dist2(c.Points[0]) {
			want = 20.0
		}
		if p.Dist2(c.Points[1]) == p.Dist2(c.Points[0]) {
			continue // tie: either is acceptable
		}
		if recon.Data[idx] != want {
			t.Fatalf("node %d: got %g want %g", idx, recon.Data[idx], want)
		}
	}
}

func TestShepardWeightsLocal(t *testing.T) {
	// A query right next to one sample should take ~that sample's value.
	v := grid.New(10, 10, 10)
	c := pointcloud.New("f", 0)
	c.Add(mathutil.Vec3{X: 2, Y: 2, Z: 2}, 100)
	for i := 0; i < 20; i++ {
		c.Add(mathutil.Vec3{X: 8 + float64(i%3)*0.2, Y: 8, Z: 8}, 0)
	}
	recon, err := (&Shepard{K: 5}).Reconstruct(c, SpecOf(v))
	if err != nil {
		t.Fatal(err)
	}
	near := recon.At(2, 2, 2)
	if near != 100 {
		t.Fatalf("at the sample: %g", near)
	}
	// One voxel away, still strongly dominated by the close sample.
	if v := recon.At(2, 2, 3); v < 50 {
		t.Fatalf("adjacent voxel %g should be dominated by the near sample", v)
	}
}

func TestStandardRegistry(t *testing.T) {
	reg := StandardRegistry(0)
	for _, name := range []string{"nearest", "shepard", "natural", "rbf", "linear", "linear-seq"} {
		m, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, m.Name())
		}
	}
	_, err := reg.Get("bogus")
	if err == nil {
		t.Fatal("expected error")
	}
	// Typos should be self-diagnosing: the error lists what is registered.
	for _, want := range []string{"bogus", "linear", "natural", "nearest", "rbf", "shepard"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestGridSpec(t *testing.T) {
	v := testVolume()
	spec := SpecOf(v)
	if spec.Len() != v.Len() {
		t.Fatal("spec length mismatch")
	}
	nv := spec.NewVolume()
	if !nv.SameGeometry(v) {
		t.Fatal("NewVolume geometry mismatch")
	}
}

func TestReconstructOntoDifferentGrid(t *testing.T) {
	// Reconstructing onto a finer grid than the source samples came
	// from must work for every method (the upscaling scenario).
	v := testVolume()
	cloud, _ := sampledCloud(t, v, 0.05)
	fine := GridSpec{
		NX: 30, NY: 30, NZ: 12,
		Origin:  v.Origin,
		Spacing: mathutil.Vec3{X: v.Spacing.X * 23 / 29, Y: v.Spacing.Y * 23 / 29, Z: v.Spacing.Z * 9 / 11},
	}
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, fine)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if recon.Len() != fine.Len() {
			t.Fatalf("%s: wrong output size", m.Name())
		}
	}
}

func TestMethodsHandleOffGridSamples(t *testing.T) {
	// Sample positions need not coincide with output grid nodes (e.g.
	// clouds decoded from a different grid, or upscaling workflows).
	v := grid.New(12, 12, 12)
	v.Fill(func(_, _, _ int, p mathutil.Vec3) float64 { return p.X * p.Y })
	rng := mathutil.NewRNG(9)
	cloud := pointcloud.New("f", 0)
	for i := 0; i < 200; i++ {
		p := mathutil.Vec3{X: rng.Float64() * 11, Y: rng.Float64() * 11, Z: rng.Float64() * 11}
		cloud.Add(p, p.X*p.Y)
	}
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		snr, err := metrics.SNR(v, recon)
		if err != nil {
			t.Fatal(err)
		}
		if snr < 10 {
			t.Fatalf("%s: SNR %.2f dB on a smooth bilinear field", m.Name(), snr)
		}
	}
}

func TestSingleSampleCloud(t *testing.T) {
	// One sample: nearest/shepard/natural must all return that value
	// everywhere; linear degrades to nearest; rbf likewise.
	v := grid.New(4, 4, 4)
	cloud := pointcloud.New("f", 1)
	cloud.Add(mathutil.Vec3{X: 1, Y: 1, Z: 1}, 7)
	for _, m := range allMethods() {
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for idx, x := range recon.Data {
			if x != 7 {
				t.Fatalf("%s: node %d = %g, want 7", m.Name(), idx, x)
			}
		}
	}
}

func TestRBFKernels(t *testing.T) {
	v := testVolume()
	cloud, _ := sampledCloud(t, v, 0.05)
	for _, kernel := range []string{"imq", "tps"} {
		m := &RBF{K: 12, Kernel: kernel}
		recon, err := m.Reconstruct(cloud, SpecOf(v))
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		snr, err := metrics.SNR(v, recon)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("rbf/%s: %.2f dB", kernel, snr)
		if snr < 5 {
			t.Fatalf("rbf/%s: %.2f dB too low", kernel, snr)
		}
	}
	if _, err := (&RBF{Kernel: "bogus"}).Reconstruct(cloud, SpecOf(v)); err == nil {
		t.Fatal("accepted unknown kernel")
	}
}
