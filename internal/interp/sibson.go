package interp

import (
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/kdtree"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
)

// NaturalNeighbor is discrete Sibson interpolation (Park et al., IEEE
// TVCG 2006), the efficient rasterized form of natural-neighbor
// interpolation. The continuous method weights each sample s by the
// volume q's Voronoi cell would steal from s's cell if q were inserted;
// the discrete method measures those volumes by counting grid voxels:
//
//	a voxel x with nearest sample n(x) is "stolen" by a query q
//	exactly when |x - q| < |x - n(x)|,
//
// so every voxel x scatters the value of its nearest sample to all grid
// nodes within radius |x - n(x)| of x. Accumulated sums divided by
// counts give the Sibson estimate. The scatter is parallelized by
// output z-slab: each worker revisits the source voxels that can reach
// its slab and writes only rows it owns, so no synchronization is
// needed on the accumulators.
type NaturalNeighbor struct {
	// Workers bounds the scatter parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *NaturalNeighbor) Name() string { return "natural" }

// Reconstruct implements Reconstructor.
func (r *NaturalNeighbor) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	if err := validate(c, spec); err != nil {
		return nil, err
	}
	tree := kdtree.Build(c.Points)
	out := spec.NewVolume()
	n := out.Len()

	// Pass 1: nearest sample and squared distance for every voxel
	// (parallel). Squared distances are kept exact — taking a square
	// root and re-squaring would flip strict comparisons at the exact
	// ties regular grids produce constantly.
	nearestIdx := make([]int32, n)
	nearestD2 := make([]float64, n)
	parallel.For(n, r.Workers, func(idx int) {
		i, d2 := tree.Nearest(out.PointAt(idx))
		nearestIdx[idx] = int32(i)
		nearestD2[idx] = d2
	})

	// Pass 2: scatter, decomposed by output z-slab.
	sums := make([]float64, n)
	counts := make([]int32, n)
	workers := r.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > spec.NZ {
		workers = spec.NZ
	}
	nxy := spec.NX * spec.NY
	// Per-plane maximum scatter radius, for source-plane culling.
	planeMaxD := make([]float64, spec.NZ)
	parallel.For(spec.NZ, r.Workers, func(sk int) {
		base := sk * nxy
		maxD2 := 0.0
		for o := 0; o < nxy; o++ {
			if nearestD2[base+o] > maxD2 {
				maxD2 = nearestD2[base+o]
			}
		}
		planeMaxD[sk] = math.Sqrt(maxD2)
	})
	parallel.ForChunked(spec.NZ, workers, func(zLo, zHi int) {
		// Source voxels at plane sk can reach output planes within
		// ceil(d / spacing.Z); scan the superset of source planes whose
		// scatter balls intersect [zLo, zHi).
		for sk := 0; sk < spec.NZ; sk++ {
			base := sk * nxy
			reach := int(planeMaxD[sk]/spec.Spacing.Z) + 1
			if sk+reach < zLo || sk-reach >= zHi {
				continue
			}
			for sj := 0; sj < spec.NY; sj++ {
				for si := 0; si < spec.NX; si++ {
					src := base + sj*spec.NX + si
					d2 := nearestD2[src]
					if d2 == 0 {
						continue // sampled node: no stolen volume
					}
					val := c.Values[nearestIdx[src]]
					scatterBall(out, spec, si, sj, sk, d2, val, zLo, zHi, sums, counts)
				}
			}
		}
	})

	// Pass 3: finalize. Nodes that coincide with a sample (d = 0) keep
	// the exact sampled value — natural neighbor interpolation is exact
	// at the samples; nodes nothing scattered to fall back to nearest.
	parallel.For(n, r.Workers, func(idx int) {
		switch {
		case nearestD2[idx] == 0:
			out.Data[idx] = c.Values[nearestIdx[idx]]
		case counts[idx] > 0:
			out.Data[idx] = sums[idx] / float64(counts[idx])
		default:
			out.Data[idx] = c.Values[nearestIdx[idx]]
		}
	})
	return out, nil
}

// scatterBall adds val to every grid node whose squared distance to the
// source node (si, sj, sk) is strictly below d2, restricted to output
// planes [zLo, zHi). The index bounds may be slightly generous (the
// sqrt is only used for bounding); the inclusion test uses d2 exactly.
func scatterBall(out *grid.Volume, spec GridSpec, si, sj, sk int, d2, val float64, zLo, zHi int, sums []float64, counts []int32) {
	d := math.Sqrt(d2)
	ri := int(d/spec.Spacing.X) + 1
	rj := int(d/spec.Spacing.Y) + 1
	rk := int(d/spec.Spacing.Z) + 1
	kMin := maxInt(sk-rk, zLo)
	kMax := minInt(sk+rk, zHi-1)
	for k := kMin; k <= kMax; k++ {
		dz := float64(k-sk) * spec.Spacing.Z
		dz2 := dz * dz
		if dz2 >= d2 {
			continue
		}
		jMin := maxInt(sj-rj, 0)
		jMax := minInt(sj+rj, spec.NY-1)
		for j := jMin; j <= jMax; j++ {
			dy := float64(j-sj) * spec.Spacing.Y
			dyz2 := dz2 + dy*dy
			if dyz2 >= d2 {
				continue
			}
			iMin := maxInt(si-ri, 0)
			iMax := minInt(si+ri, spec.NX-1)
			row := out.Index(0, j, k)
			for i := iMin; i <= iMax; i++ {
				dx := float64(i-si) * spec.Spacing.X
				if dyz2+dx*dx < d2 {
					sums[row+i] += val
					counts[row+i]++
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
