package interp

import (
	"context"
	"math"

	"fillvoid/internal/grid"
	"fillvoid/internal/mathutil"
	"fillvoid/internal/parallel"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
)

// NaturalNeighbor is discrete Sibson interpolation (Park et al., IEEE
// TVCG 2006), the efficient rasterized form of natural-neighbor
// interpolation. The continuous method weights each sample s by the
// volume q's Voronoi cell would steal from s's cell if q were inserted;
// the discrete method measures those volumes by counting grid voxels:
//
//	a voxel x with nearest sample n(x) is "stolen" by a query q
//	exactly when |x - q| < |x - n(x)|,
//
// so every voxel x scatters the value of its nearest sample to all grid
// nodes within radius |x - n(x)| of x. Accumulated sums divided by
// counts give the Sibson estimate.
//
// Box regions keep the scatter form, restricted to the region's output
// nodes but still scanning every full-grid source voxel (the stolen
// volumes are defined on the full grid); the per-voxel nearest table
// comes from the shared plan. Arbitrary point queries use the equivalent
// gather form: accumulate every voxel x with |x - q| < |x - n(x)|.
// The scatter is parallelized by output z-plane tile: each worker writes
// only rows it owns, so no synchronization is needed on the
// accumulators, and each output node receives its contributions in
// source-scan order regardless of tiling.
type NaturalNeighbor struct {
	// Workers bounds the scatter parallelism (<= 0 means all cores).
	Workers int
}

// Name implements Reconstructor.
func (r *NaturalNeighbor) Name() string { return "natural" }

// Reconstruct implements Reconstructor (legacy full-grid path).
func (r *NaturalNeighbor) Reconstruct(c *pointcloud.Cloud, spec GridSpec) (*grid.Volume, error) {
	return recon.ReconstructCloud(context.Background(), r, c, spec)
}

// planeMaxD returns, per source z-plane, the maximum scatter radius of
// its voxels — the source-plane culling bound. Memoized on the plan so
// repeated region queries share it.
func (r *NaturalNeighbor) planeMaxD(p *recon.Plan, nearestD2 []float64) []float64 {
	//lint:allow errdrop: the memo builder below always returns a nil error
	v, _ := p.Memo("natural/plane-max-d", func() (any, error) {
		spec := p.Spec()
		nxy := spec.NX * spec.NY
		out := make([]float64, spec.NZ)
		parallel.For(spec.NZ, r.Workers, func(sk int) {
			base := sk * nxy
			maxD2 := 0.0
			for o := 0; o < nxy; o++ {
				if nearestD2[base+o] > maxD2 {
					maxD2 = nearestD2[base+o]
				}
			}
			out[sk] = math.Sqrt(maxD2)
		})
		return out, nil
	})
	return v.([]float64)
}

// ReconstructRegion implements Reconstructor.
func (r *NaturalNeighbor) ReconstructRegion(ctx context.Context, p *recon.Plan, region recon.Region, dst []float64) error {
	c := p.Cloud()
	spec := p.Spec()
	// Squared distances are kept exact throughout — taking a square root
	// and re-squaring would flip strict comparisons at the exact ties
	// regular grids produce constantly.
	nearestIdx, nearestD2 := p.NearestTable(r.Workers)
	planeMaxD := r.planeMaxD(p, nearestD2)
	if region.IsPoints() {
		return r.gatherPoints(ctx, p, region.Points, dst, nearestIdx, nearestD2, planeMaxD)
	}

	// Scatter, decomposed by output z-plane tile. Accumulators are
	// region-local; sources are the full grid.
	w := region.I1 - region.I0
	h := region.J1 - region.J0
	nzr := region.K1 - region.K0
	sums := make([]float64, region.Len())
	counts := make([]int32, region.Len())
	workers := r.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > nzr {
		workers = nzr
	}
	nxy := spec.NX * spec.NY
	err := parallel.ForChunkedCtx(ctx, nzr, workers, func(zLo, zHi int) error {
		// Absolute output planes this tile owns.
		kLo, kHi := region.K0+zLo, region.K0+zHi
		// Source voxels at plane sk can reach output planes within
		// ceil(d / spacing.Z); scan the superset of source planes whose
		// scatter balls intersect [kLo, kHi).
		for sk := 0; sk < spec.NZ; sk++ {
			base := sk * nxy
			reach := int(planeMaxD[sk]/spec.Spacing.Z) + 1
			if sk+reach < kLo || sk-reach >= kHi {
				continue
			}
			for sj := 0; sj < spec.NY; sj++ {
				for si := 0; si < spec.NX; si++ {
					src := base + sj*spec.NX + si
					d2 := nearestD2[src]
					if d2 == 0 {
						continue // sampled node: no stolen volume
					}
					val := c.Values[nearestIdx[src]]
					scatterBall(spec, region, si, sj, sk, d2, val, kLo, kHi, w, h, sums, counts)
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Finalize. Nodes that coincide with a sample (d = 0) keep the exact
	// sampled value — natural neighbor interpolation is exact at the
	// samples; nodes nothing scattered to fall back to nearest.
	return parallel.ForCtx(ctx, region.Len(), r.Workers, func(m int) error {
		g := region.GridIndex(spec, m)
		switch {
		case nearestD2[g] == 0:
			dst[m] = c.Values[nearestIdx[g]]
		case counts[m] > 0:
			dst[m] = sums[m] / float64(counts[m])
		default:
			dst[m] = c.Values[nearestIdx[g]]
		}
		return nil
	})
}

// gatherPoints answers arbitrary query points in the gather form of the
// same discrete-Sibson estimate: accumulate the nearest-sample value of
// every grid voxel x the query would steal (|x - q| < |x - n(x)|).
func (r *NaturalNeighbor) gatherPoints(ctx context.Context, p *recon.Plan, pts []mathutil.Vec3, dst []float64, nearestIdx []int32, nearestD2 []float64, planeMaxD []float64) error {
	c := p.Cloud()
	spec := p.Spec()
	tree := p.Tree()
	return parallel.ForCtx(ctx, len(pts), r.Workers, func(m int) error {
		q := pts[m]
		bi, bd2 := tree.Nearest(q)
		if bd2 == 0 {
			dst[m] = c.Values[bi]
			return nil
		}
		sum := 0.0
		count := 0
		for sk := 0; sk < spec.NZ; sk++ {
			dz := spec.Origin.Z + float64(sk)*spec.Spacing.Z - q.Z
			if math.Abs(dz) >= planeMaxD[sk] {
				continue
			}
			dz2 := dz * dz
			base := sk * spec.NX * spec.NY
			for sj := 0; sj < spec.NY; sj++ {
				dy := spec.Origin.Y + float64(sj)*spec.Spacing.Y - q.Y
				dyz2 := dz2 + dy*dy
				row := base + sj*spec.NX
				for si := 0; si < spec.NX; si++ {
					src := row + si
					d2 := nearestD2[src]
					if d2 == 0 {
						continue
					}
					dx := spec.Origin.X + float64(si)*spec.Spacing.X - q.X
					if dyz2+dx*dx < d2 {
						sum += c.Values[nearestIdx[src]]
						count++
					}
				}
			}
		}
		if count > 0 {
			dst[m] = sum / float64(count)
		} else {
			dst[m] = c.Values[bi]
		}
		return nil
	})
}

// scatterBall adds val to every region output node whose squared
// distance to the source node (si, sj, sk) is strictly below d2,
// restricted to absolute output planes [kLo, kHi) and the region's i/j
// box. The index bounds may be slightly generous (the sqrt is only used
// for bounding); the inclusion test uses d2 exactly. w and h are the
// region's x/y extents for region-local indexing.
func scatterBall(spec GridSpec, region recon.Region, si, sj, sk int, d2, val float64, kLo, kHi, w, h int, sums []float64, counts []int32) {
	d := math.Sqrt(d2)
	ri := int(d/spec.Spacing.X) + 1
	rj := int(d/spec.Spacing.Y) + 1
	rk := int(d/spec.Spacing.Z) + 1
	kMin := maxInt(sk-rk, kLo)
	kMax := minInt(sk+rk, kHi-1)
	for k := kMin; k <= kMax; k++ {
		dz := float64(k-sk) * spec.Spacing.Z
		dz2 := dz * dz
		if dz2 >= d2 {
			continue
		}
		jMin := maxInt(sj-rj, region.J0)
		jMax := minInt(sj+rj, region.J1-1)
		for j := jMin; j <= jMax; j++ {
			dy := float64(j-sj) * spec.Spacing.Y
			dyz2 := dz2 + dy*dy
			if dyz2 >= d2 {
				continue
			}
			iMin := maxInt(si-ri, region.I0)
			iMax := minInt(si+ri, region.I1-1)
			row := w * ((j - region.J0) + h*(k-region.K0))
			for i := iMin; i <= iMax; i++ {
				dx := float64(i-si) * spec.Spacing.X
				if dyz2+dx*dx < d2 {
					m := row + (i - region.I0)
					sums[m] += val
					counts[m]++
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
