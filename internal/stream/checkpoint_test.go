package stream

import (
	"os"
	"path/filepath"
	"testing"

	"fillvoid/internal/datasets"
)

// TestPipelineCheckpointing: with CheckpointDir set, each timestep's
// training run leaves checkpoints under its own subdirectory, and the
// pipeline still produces a sane reconstruction.
func TestPipelineCheckpointing(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := tinyConfig()
	cfg.Options.Hidden = []int{24, 12}
	cfg.Options.Epochs = 8
	cfg.Options.MaxTrainRows = 1500
	cfg.Options.Workers = 2
	cfg.FineTuneEpochs = 4
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := datasets.NewIsabel(7)
	for _, ts := range []int{4, 8} {
		truth := datasets.Volume(gen, 16, 16, 8, ts)
		if _, err := p.Step(truth, ts); err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
	}
	for _, sub := range []string{"t0004", "t0008"} {
		entries, err := os.ReadDir(filepath.Join(cfg.CheckpointDir, sub))
		if err != nil {
			t.Fatalf("reading %s: %v", sub, err)
		}
		if len(entries) == 0 {
			t.Fatalf("no checkpoints under %s", sub)
		}
	}
}
