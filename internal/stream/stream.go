// Package stream operationalizes the paper's deployment story: an in
// situ pipeline attached to a running simulation that, at every
// timestep, (1) importance-samples the full field down to the storage
// budget, (2) keeps the FCNN reconstructor current — pretraining on the
// first timestep and fine-tuning on later ones (Case 1 or Case 2), and
// (3) reconstructs the full field from the stored samples, reporting
// quality, wall time, and the bytes that actually had to be stored
// (samples + per-timestep model state).
//
// The storage accounting mirrors Section IV-C: under Case 1 a full
// model per timestep must be stored if models are kept (or one model
// that is re-tuned on demand); under Case 2 only the last two layers
// change per timestep, so the per-step model cost shrinks to those
// layers after the first step.
package stream

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"fillvoid/internal/checkpoint"
	"fillvoid/internal/codec"
	"fillvoid/internal/core"
	"fillvoid/internal/grid"
	"fillvoid/internal/interp"
	"fillvoid/internal/metrics"
	"fillvoid/internal/recon"
	"fillvoid/internal/sampling"
	"fillvoid/internal/telemetry"
)

// Config controls the pipeline.
type Config struct {
	// Fraction is the per-timestep storage budget (e.g. 0.01 for 1%).
	Fraction float64
	// Method names the reconstructor used in step 4 (default "fcnn").
	// Any registry name works — the trained model is registered
	// alongside the rule-based baselines, so e.g. "linear" reconstructs
	// the stored samples with the Delaunay baseline while the model is
	// still kept current for storage accounting.
	Method string
	// FieldName labels the stored scalar.
	FieldName string
	// Mode selects the fine-tuning strategy for timesteps after the
	// first (Case 1 = all layers, Case 2 = last two).
	Mode core.FineTuneMode
	// FineTuneEpochs overrides the per-step tuning epochs (0 = the
	// mode's default from Options).
	FineTuneEpochs int
	// Options configures the underlying FCNN.
	Options core.Options
	// SamplerSeed salts the per-timestep sampler streams.
	SamplerSeed int64
	// KeepModels stores a model snapshot per timestep (the Case 1 vs
	// Case 2 storage trade-off only matters when this is on).
	KeepModels bool
	// CompactStorage accounts sample bytes using the grid-index +
	// quantized-value codec instead of raw float64 quadruples.
	CompactStorage bool
	// ValueBits is the codec quantization depth (default 16) when
	// CompactStorage is on.
	ValueBits int
	// Telemetry receives the pipeline's spans and counters (nil: the
	// process-global telemetry.Default registry).
	Telemetry *telemetry.Registry
	// CheckpointDir, when set, makes every training phase crash-safe:
	// each timestep's pretrain/fine-tune writes atomic checkpoints under
	// CheckpointDir/tNNNN and resumes from them when the pipeline is
	// restarted on the same directory (see internal/checkpoint).
	CheckpointDir string
	// CheckpointEvery is the epoch period between checkpoints (default
	// 25) when CheckpointDir is set.
	CheckpointEvery int
	// CheckpointKeep is the per-timestep retention depth (default 3).
	CheckpointKeep int
}

// StepReport summarizes one pipeline step.
type StepReport struct {
	Timestep int
	// SNR of the reconstruction against this timestep's ground truth.
	SNR float64
	// SampleCount and SampleBytes are the stored point-cloud size
	// (x, y, z, value as float64 per point).
	SampleCount int
	SampleBytes int64
	// ModelBytes is the model state stored for this timestep:
	// the full parameter set on the first step or under Case 1 with
	// KeepModels; only the trainable (last two) layers under Case 2.
	// Zero when KeepModels is off and it is not the first step.
	ModelBytes int64
	// TrainTime covers pretraining (first step) or fine-tuning. It is
	// read from the model's own stage timer ((*core.FCNN).Timings), the
	// same measurement the "pretrain"/"finetune" telemetry spans record,
	// so the two can never disagree.
	TrainTime time.Duration
	// ReconTime covers sampling-to-volume reconstruction, read from the
	// same stage timer as the "reconstruct" telemetry span.
	ReconTime time.Duration
}

// Pipeline is an in situ sampling + reconstruction loop. Not safe for
// concurrent Step calls; a simulation advances one timestep at a time.
type Pipeline struct {
	cfg     Config
	model   *core.FCNN
	reports []StepReport
	// out is the reconstruction buffer, reused across timesteps so a
	// long-running pipeline does not reallocate a full-grid volume (and
	// its engine feature buffers) every step.
	out *grid.Volume
}

// New validates the configuration and returns an idle pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		return nil, fmt.Errorf("stream: fraction %g outside (0, 1]", cfg.Fraction)
	}
	if cfg.FieldName == "" {
		return nil, errors.New("stream: FieldName is required")
	}
	if cfg.Method == "" {
		cfg.Method = "fcnn"
	}
	// Fail on a typo'd method at construction, not steps into a run. The
	// registry here mirrors the one Step resolves through.
	if cfg.Method != "fcnn" {
		if _, err := interp.StandardRegistry(cfg.Options.Workers).Get(cfg.Method); err != nil {
			return nil, err
		}
	}
	return &Pipeline{cfg: cfg}, nil
}

// Model returns the current reconstructor (nil before the first step).
func (p *Pipeline) Model() *core.FCNN { return p.model }

// Reports returns the per-step reports so far.
func (p *Pipeline) Reports() []StepReport { return p.reports }

// Step processes one simulation timestep: sample, train/tune,
// reconstruct, account. The full field `truth` is only available inside
// this call, as in a real in situ pipeline.
func (p *Pipeline) Step(truth *grid.Volume, t int) (StepReport, error) {
	return p.StepCtx(context.Background(), truth, t)
}

// StepCtx is Step with cancellation: the reconstruction phase runs
// through the recon engine's chunked executor and stops promptly when
// ctx is cancelled.
func (p *Pipeline) StepCtx(ctx context.Context, truth *grid.Volume, t int) (StepReport, error) {
	reg := p.telemetry()
	stepSp := reg.StartSpan("pipeline/step")
	defer stepSp.End()
	rep := StepReport{Timestep: t}
	sampler := &sampling.Importance{Seed: p.cfg.SamplerSeed + int64(t)*911}

	// 1. The stored artifact: the sampled cloud.
	sampleSp := stepSp.Child("sample")
	cloud, idxs, err := sampler.Sample(truth, p.cfg.FieldName, p.cfg.Fraction)
	sampleSp.End()
	if err != nil {
		return rep, err
	}
	rep.SampleCount = cloud.Len()
	if p.cfg.CompactStorage {
		rep.SampleBytes, err = codec.EncodedSize(truth, p.cfg.FieldName, idxs, codec.Options{ValueBits: p.cfg.ValueBits})
		if err != nil {
			return rep, err
		}
	} else {
		rep.SampleBytes = int64(cloud.Len()) * 4 * 8 // x, y, z, value float64
	}

	// 2. Keep the model current. The wall time is taken from the
	// model's own stage timer — the same measurement core's
	// pretrain/finetune telemetry spans record — rather than a second
	// clock around the call, so report and telemetry cannot drift.
	trainSp := stepSp.Child("train")
	first := p.model == nil
	if p.cfg.CheckpointDir != "" {
		ck, err := p.stepCheckpointing(t)
		if err != nil {
			trainSp.End()
			return rep, err
		}
		if first {
			model, err := core.PretrainResumable(ctx, truth, p.cfg.FieldName, sampler, p.cfg.Options, ck)
			if err != nil {
				trainSp.End()
				return rep, err
			}
			p.model = model
		} else if err := p.model.FineTuneResumable(ctx, truth, sampler, p.cfg.Mode, p.cfg.FineTuneEpochs, ck); err != nil {
			trainSp.End()
			return rep, err
		}
	} else if first {
		model, err := core.Pretrain(truth, p.cfg.FieldName, sampler, p.cfg.Options)
		if err != nil {
			trainSp.End()
			return rep, err
		}
		p.model = model
	} else {
		if err := p.model.FineTune(truth, sampler, p.cfg.Mode, p.cfg.FineTuneEpochs); err != nil {
			trainSp.End()
			return rep, err
		}
	}
	trainSp.End()
	rep.TrainTime, _ = p.model.Timings()

	// 3. Storage for model state.
	switch {
	case first:
		rep.ModelBytes = int64(p.model.Network().ParamCount()) * 8
	case p.cfg.KeepModels && p.cfg.Mode == core.FineTuneLastTwo:
		p.model.Network().FreezeAllButLast(2)
		rep.ModelBytes = int64(p.model.Network().TrainableParamCount()) * 8
		p.model.Network().UnfreezeAll()
	case p.cfg.KeepModels:
		rep.ModelBytes = int64(p.model.Network().ParamCount()) * 8
	}

	// 4. Reconstruct from the stored samples through the engine: resolve
	// the configured method from one registry holding the baselines plus
	// the current model, build the cloud's query plan, and execute into
	// the reused output buffer.
	methods := interp.StandardRegistry(p.cfg.Options.Workers)
	methods.RegisterMethod(p.model)
	m, err := methods.Get(p.cfg.Method)
	if err != nil {
		return rep, err
	}
	spec := interp.SpecOf(truth)
	if p.out == nil || p.out.NX != spec.NX || p.out.NY != spec.NY || p.out.NZ != spec.NZ {
		p.out = spec.NewVolume()
	} else {
		p.out.Origin = spec.Origin
		p.out.Spacing = spec.Spacing
	}
	reconSp := stepSp.Child("reconstruct")
	plan, err := recon.NewPlan(cloud, spec)
	if err != nil {
		reconSp.End()
		return rep, err
	}
	reconStart := time.Now()
	err = recon.ReconstructInto(ctx, m, plan, recon.Full(spec), p.out)
	reconSp.End()
	if err != nil {
		return rep, err
	}
	if p.cfg.Method == "fcnn" {
		// The model's own stage timer — the same measurement the
		// "reconstruct" telemetry span records.
		_, rep.ReconTime = p.model.Timings()
	} else {
		rep.ReconTime = time.Since(reconStart)
	}
	snr, err := metrics.SNR(truth, p.out)
	if err != nil {
		return rep, err
	}
	rep.SNR = snr
	reg.Counter("pipeline.steps").Inc()
	telemetry.Infof("pipeline step done",
		"t", t, "snr_db", fmt.Sprintf("%.2f", snr), "samples", rep.SampleCount,
		"train", rep.TrainTime.Round(time.Millisecond),
		"recon", rep.ReconTime.Round(time.Millisecond))

	p.reports = append(p.reports, rep)
	return rep, nil
}

// stepCheckpointing builds the per-timestep checkpoint configuration:
// one subdirectory per timestep (each training run owns its directory),
// always resuming — a fresh directory is a normal cold start.
func (p *Pipeline) stepCheckpointing(t int) (core.Checkpointing, error) {
	m, err := checkpoint.NewManager(checkpoint.Config{
		Dir:       filepath.Join(p.cfg.CheckpointDir, fmt.Sprintf("t%04d", t)),
		Keep:      p.cfg.CheckpointKeep,
		Telemetry: p.telemetry(),
	})
	if err != nil {
		return core.Checkpointing{}, err
	}
	return core.Checkpointing{Manager: m, Every: p.cfg.CheckpointEvery, Resume: true}, nil
}

// telemetry returns the registry pipeline instrumentation records into.
func (p *Pipeline) telemetry() *telemetry.Registry {
	if p.cfg.Telemetry != nil {
		return p.cfg.Telemetry
	}
	return telemetry.Default()
}

// Totals aggregates storage and time across all steps so far.
func (p *Pipeline) Totals() (sampleBytes, modelBytes int64, trainTime, reconTime time.Duration) {
	for _, r := range p.reports {
		sampleBytes += r.SampleBytes
		modelBytes += r.ModelBytes
		trainTime += r.TrainTime
		reconTime += r.ReconTime
	}
	return
}

// CompressionRatio reports raw-field bytes divided by stored bytes
// (samples + model state) across all steps, for a volume of n points
// per timestep.
func (p *Pipeline) CompressionRatio(pointsPerStep int) float64 {
	sampleBytes, modelBytes, _, _ := p.Totals()
	stored := sampleBytes + modelBytes
	if stored == 0 {
		return 0
	}
	raw := int64(len(p.reports)) * int64(pointsPerStep) * 8
	return float64(raw) / float64(stored)
}
