package stream

import (
	"testing"

	"fillvoid/internal/core"
	"fillvoid/internal/datasets"
)

func tinyConfig() Config {
	return Config{
		Fraction:       0.03,
		FieldName:      "pressure",
		Mode:           core.FineTuneAll,
		FineTuneEpochs: 3,
		Options: core.Options{
			Hidden:         []int{32, 16},
			Epochs:         25,
			TrainFractions: []float64{0.02, 0.05},
			MaxTrainRows:   4000,
			BatchSize:      256,
			Seed:           1,
		},
		SamplerSeed: 7,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Fraction = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero fraction")
	}
	cfg = tinyConfig()
	cfg.FieldName = ""
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted empty field name")
	}
}

func TestPipelineRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Model() != nil {
		t.Fatal("model before first step")
	}
	gen := datasets.NewIsabel(7)
	var lastSNR float64
	for _, ts := range []int{4, 8, 12} {
		truth := datasets.Volume(gen, 24, 24, 8, ts)
		rep, err := p.Step(truth, ts)
		if err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
		if rep.SampleCount != int(0.03*float64(truth.Len())+0.5) {
			t.Fatalf("t=%d: sample count %d", ts, rep.SampleCount)
		}
		if rep.SampleBytes != int64(rep.SampleCount)*32 {
			t.Fatalf("t=%d: sample bytes %d", ts, rep.SampleBytes)
		}
		if rep.TrainTime <= 0 || rep.ReconTime <= 0 {
			t.Fatalf("t=%d: missing timings %+v", ts, rep)
		}
		lastSNR = rep.SNR
	}
	if lastSNR < 2 {
		t.Fatalf("pipeline SNR %.2f dB implausibly low", lastSNR)
	}
	if len(p.Reports()) != 3 {
		t.Fatalf("%d reports", len(p.Reports()))
	}
	// First step stores the full model; later steps store nothing when
	// KeepModels is off.
	reps := p.Reports()
	if reps[0].ModelBytes == 0 {
		t.Fatal("first step should store the full model")
	}
	for _, r := range reps[1:] {
		if r.ModelBytes != 0 {
			t.Fatalf("step %d stored model bytes without KeepModels", r.Timestep)
		}
	}
	sampleBytes, modelBytes, trainTime, reconTime := p.Totals()
	if sampleBytes <= 0 || modelBytes <= 0 || trainTime <= 0 || reconTime <= 0 {
		t.Fatal("totals incomplete")
	}
	ratio := p.CompressionRatio(24 * 24 * 8)
	if ratio <= 1 {
		t.Fatalf("compression ratio %.1f should be > 1", ratio)
	}
}

func TestCase2StoresFewerModelBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	gen := datasets.NewIsabel(7)
	run := func(mode core.FineTuneMode) []StepReport {
		cfg := tinyConfig()
		cfg.Mode = mode
		cfg.KeepModels = true
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range []int{4, 10} {
			truth := datasets.Volume(gen, 20, 20, 8, ts)
			if _, err := p.Step(truth, ts); err != nil {
				t.Fatal(err)
			}
		}
		return p.Reports()
	}
	case1 := run(core.FineTuneAll)
	case2 := run(core.FineTuneLastTwo)
	// Both store the full model on step 0.
	if case1[0].ModelBytes != case2[0].ModelBytes {
		t.Fatal("first-step storage should match")
	}
	// Case 2 stores strictly less per subsequent step.
	if case2[1].ModelBytes >= case1[1].ModelBytes {
		t.Fatalf("case2 bytes %d not < case1 bytes %d", case2[1].ModelBytes, case1[1].ModelBytes)
	}
}

func TestCompressionRatioEmpty(t *testing.T) {
	p, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CompressionRatio(1000) != 0 {
		t.Fatal("empty pipeline should report 0")
	}
}

func TestCompactStorageShrinksSampleBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen := datasets.NewIsabel(7)
	truth := datasets.Volume(gen, 20, 20, 8, 4)

	runBytes := func(compact bool) int64 {
		cfg := tinyConfig()
		cfg.CompactStorage = compact
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Step(truth, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.SampleBytes
	}
	raw := runBytes(false)
	compact := runBytes(true)
	t.Logf("raw %d bytes, compact %d bytes", raw, compact)
	if compact*3 > raw {
		t.Fatalf("compact storage %d not well below raw %d", compact, raw)
	}
}
