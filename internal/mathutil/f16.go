package mathutil

import "math"

// IEEE 754 binary16 (half precision) conversion, used by the quantized
// inference path: trained f64 weights are stored as 16-bit halves and
// expanded on the fly inside the tiled GEMM. Only conversion is
// implemented — no half arithmetic — because the dot products themselves
// always run in float64.
//
// Encoding goes through float32 first (Go's conversion rounds to
// nearest-even), then float32 → binary16 with round-to-nearest-even.
// Values beyond the half range (|v| > 65504 after rounding) become
// ±Inf, subnormal halves are produced below 2^-14, and NaN encodes to a
// canonical quiet NaN.

const (
	f16SignMask = 0x8000
	f16ExpMask  = 0x7c00
	f16ManMask  = 0x03ff
	f16Inf      = 0x7c00
	f16NaN      = 0x7e00
)

// F16Encode converts v to its nearest IEEE 754 binary16 representation.
func F16Encode(v float64) uint16 {
	b := math.Float32bits(float32(v))
	sign := uint16(b>>16) & f16SignMask
	exp := int(b >> 23 & 0xff)
	man := b & 0x007fffff

	if exp == 0xff { // Inf or NaN
		if man != 0 {
			return sign | f16NaN
		}
		return sign | f16Inf
	}

	e := exp - 127 + 15
	if e <= 0 {
		// Subnormal half (or underflow to signed zero). The smallest
		// subnormal is 2^-24, i.e. e = -10 after re-biasing.
		if e < -10 {
			return sign
		}
		man |= 0x00800000 // make the implicit leading 1 explicit
		shift := uint(14 - e)
		half := uint32(1) << (shift - 1)
		m := man >> shift
		// Round to nearest, ties to even.
		if man&half != 0 && (man&(half-1) != 0 || m&1 == 1) {
			m++
		}
		return sign | uint16(m)
	}
	if e >= 0x1f {
		return sign | f16Inf
	}

	m := man >> 13
	// Round to nearest, ties to even; a mantissa carry bumps the
	// exponent (and can overflow to infinity at the top of the range).
	if man&0x1000 != 0 && (man&0x0fff != 0 || m&1 == 1) {
		m++
		if m == 0x400 {
			m = 0
			e++
			if e >= 0x1f {
				return sign | f16Inf
			}
		}
	}
	return sign | uint16(e)<<10 | uint16(m)
}

// F16Decode converts binary16 bits back to float64. The conversion is
// exact: every finite half is representable in float64.
func F16Decode(h uint16) float64 {
	sign := uint32(h&f16SignMask) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & f16ManMask)
	var b uint32
	switch {
	case exp == 0:
		if man == 0 {
			b = sign // ±0
		} else {
			// Subnormal half: normalize into a float32 normal.
			e := uint32(113) // 127 - 14
			for man&0x400 == 0 {
				man <<= 1
				e--
			}
			b = sign | e<<23 | (man&f16ManMask)<<13
		}
	case exp == 0x1f:
		b = sign | 0x7f800000 | man<<13 // ±Inf / NaN (payload widened)
	default:
		b = sign | (exp-15+127)<<23 | man<<13
	}
	return float64(math.Float32frombits(b))
}
