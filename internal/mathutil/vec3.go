// Package mathutil provides small geometric and statistical primitives
// shared by the sampling, reconstruction, and evaluation code: 3-D
// vectors, axis-aligned bounding boxes, deterministic RNG construction,
// and streaming statistics.
package mathutil

import "math"

// Vec3 is a point or direction in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Component returns the axis-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Component(axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// WithComponent returns a copy of v with the axis-th component set to s.
func (v Vec3) WithComponent(axis int, s float64) Vec3 {
	switch axis {
	case 0:
		v.X = s
	case 1:
		v.Y = s
	default:
		v.Z = s
	}
	return v
}

// AABB is an axis-aligned bounding box [Min, Max].
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns a box that contains nothing; Extend-ing it with any
// point yields a degenerate box at that point.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Extend grows the box to contain p.
func (b AABB) Extend(p Vec3) AABB {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
	return b
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return b.Extend(o.Min).Extend(o.Max)
}

// Contains reports whether p lies inside the closed box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Size returns the edge lengths of the box.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the centroid of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Dist2 returns the squared distance from p to the box (0 when inside).
func (b AABB) Dist2(p Vec3) float64 {
	d := 0.0
	for axis := 0; axis < 3; axis++ {
		v := p.Component(axis)
		lo := b.Min.Component(axis)
		hi := b.Max.Component(axis)
		if v < lo {
			d += (lo - v) * (lo - v)
		} else if v > hi {
			d += (v - hi) * (v - hi)
		}
	}
	return d
}
