package mathutil

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no stable solution.
var ErrSingular = errors.New("mathutil: singular matrix")

// SolveLinear solves the dense n×n system A x = b in place using
// Gaussian elimination with partial pivoting. A is row-major (len n*n)
// and both A and b are clobbered; the solution is returned in b's
// storage. The local RBF reconstructor solves one small system per
// query through this.
func SolveLinear(a []float64, b []float64) error {
	n := len(b)
	if len(a) != n*n {
		return errors.New("mathutil: SolveLinear dimension mismatch")
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-300 {
			return ErrSingular
		}
		if pivot != col {
			for c := col; c < n; c++ {
				a[col*n+c], a[pivot*n+c] = a[pivot*n+c], a[col*n+c]
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for c := col + 1; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * b[c]
		}
		b[r] = s / a[r*n+r]
	}
	return nil
}
