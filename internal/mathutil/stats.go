package mathutil

import (
	"math"
	"math/rand"
)

// RunningStats accumulates count, mean, and variance in one pass using
// Welford's algorithm, which stays accurate for the large value ranges
// scientific fields have (e.g. pressure in pascals next to tiny noise).
type RunningStats struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// NewRunningStats returns an empty accumulator.
func NewRunningStats() *RunningStats {
	return &RunningStats{min: math.Inf(1), max: math.Inf(-1)}
}

// Add folds one observation into the accumulator.
func (s *RunningStats) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Merge folds another accumulator into s (parallel reduction step).
func (s *RunningStats) Merge(o *RunningStats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.mean += d * float64(o.n) / float64(n)
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s *RunningStats) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (s *RunningStats) Mean() float64 { return s.mean }

// Variance returns the population variance (divide by n).
func (s *RunningStats) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *RunningStats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (+Inf when empty).
func (s *RunningStats) Min() float64 { return s.min }

// Max returns the largest observation (-Inf when empty).
func (s *RunningStats) Max() float64 { return s.max }

// StatsOf computes RunningStats over a slice in one pass.
func StatsOf(xs []float64) *RunningStats {
	s := NewRunningStats()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// NewRNG returns a deterministic rand.Rand for the given seed. All
// stochastic components of fillvoid (samplers, weight init, training
// shuffles, synthetic turbulence) construct their RNGs through this so
// experiments replay bit-identically.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// SmoothStep is the cubic Hermite ramp 3t^2-2t^3 clamped to [0,1]; used
// by the synthetic dataset generators to shape fronts and interfaces.
func SmoothStep(t float64) float64 {
	t = Clamp(t, 0, 1)
	return t * t * (3 - 2*t)
}
