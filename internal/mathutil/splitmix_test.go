package mathutil

import "testing"

func TestSplitMixStateRoundTrip(t *testing.T) {
	a := NewSplitMix(7)
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	b := NewSplitMix(0)
	b.SetState(a.State())
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSplitMixIntnRange(t *testing.T) {
	g := NewSplitMix(3)
	seen := map[int]bool{}
	for i := 0; i < 10_000; i++ {
		v := g.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	g.Intn(0)
}

func TestSplitMixShuffleIsPermutation(t *testing.T) {
	g := NewSplitMix(11)
	perm := make([]int, 31)
	for i := range perm {
		perm[i] = i
	}
	g.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}

	// Same state, same permutation — the resume invariant.
	h := NewSplitMix(0)
	h.SetState(NewSplitMix(11).State())
	perm2 := make([]int, 31)
	for i := range perm2 {
		perm2[i] = i
	}
	h.Shuffle(len(perm2), func(i, j int) { perm2[i], perm2[j] = perm2[j], perm2[i] })
	for i := range perm {
		if perm[i] != perm2[i] {
			t.Fatalf("same-state shuffles differ at %d", i)
		}
	}
}
