package mathutil

import (
	"math"
	"testing"
)

// TestF16ExhaustiveRoundTrip walks every one of the 65536 half bit
// patterns: decode must be exact (every finite half is a float64), and
// re-encoding the decoded value must reproduce the original bits.
// NaN payloads are the one exception — encode canonicalizes them.
func TestF16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		v := F16Decode(bits)
		isNaN := bits&f16ExpMask == f16ExpMask && bits&f16ManMask != 0
		if isNaN {
			if !math.IsNaN(v) {
				t.Fatalf("%#04x: decoded %g, want NaN", bits, v)
			}
			if got := F16Encode(v); got&f16ExpMask != f16ExpMask || got&f16ManMask == 0 {
				t.Fatalf("%#04x: NaN re-encoded to non-NaN %#04x", bits, got)
			}
			continue
		}
		if got := F16Encode(v); got != bits {
			t.Fatalf("%#04x: decode %g re-encodes to %#04x", bits, v, got)
		}
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		v    float64
		bits uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // largest finite half
		{65505, 0x7bff},                 // rounds back down
		{65520, 0x7c00},                 // ties up to infinity
		{1e9, 0x7c00},                   // overflow
		{-1e9, 0xfc00},                  // overflow, negative
		{math.Inf(1), 0x7c00},           //
		{math.Inf(-1), 0xfc00},          //
		{6.103515625e-05, 0x0400},       // smallest normal, 2^-14
		{5.960464477539063e-08, 0x0001}, // smallest subnormal, 2^-24
		{1e-10, 0x0000},                 // underflow to zero
	}
	for _, c := range cases {
		if got := F16Encode(c.v); got != c.bits {
			t.Errorf("F16Encode(%g) = %#04x, want %#04x", c.v, got, c.bits)
		}
	}
	if !math.IsNaN(F16Decode(F16Encode(math.NaN()))) {
		t.Error("NaN did not round-trip to NaN")
	}
}

// TestF16RelativeError bounds the representation error over the normal
// half range: one half ulp is 2^-11 of the value.
func TestF16RelativeError(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 20000; trial++ {
		// Log-uniform magnitudes across the normal half range.
		mag := math.Exp2(rng.Float64()*30 - 14) // 2^-14 .. 2^16
		if mag > 65504 {
			continue
		}
		v := mag
		if rng.Intn(2) == 1 {
			v = -v
		}
		got := F16Decode(F16Encode(v))
		if rel := math.Abs(got-v) / math.Abs(v); rel > 1.0/2048 {
			t.Fatalf("F16 round-trip of %g gives %g (relative error %g)", v, got, rel)
		}
	}
}

// FuzzF16RoundTrip checks the encode/decode pair on arbitrary float64
// inputs: NaN/Inf handling, the relative-error bound in range, and
// order preservation (encode is monotone in the input).
func FuzzF16RoundTrip(f *testing.F) {
	seeds := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, -0.1,
		65504, 65505, 65519.999, 65520, -65520,
		6.103515625e-05, 5.960464477539063e-08, 1e-10,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Pi, 1e300, -1e300, 2.980232e-08,
	}
	for _, a := range seeds {
		f.Add(a, 1.0)
	}
	f.Fuzz(func(t *testing.T, a, b float64) {
		for _, v := range [2]float64{a, b} {
			h := F16Encode(v)
			rt := F16Decode(h)
			switch {
			case math.IsNaN(v):
				if !math.IsNaN(rt) {
					t.Fatalf("NaN input decoded to %g", rt)
				}
			case math.IsInf(v, 0) || math.Abs(v) >= 65520:
				if !math.IsInf(rt, int(math.Copysign(1, v))) {
					t.Fatalf("out-of-range %g decoded to %g, want Inf", v, rt)
				}
			case math.Abs(v) > 65504:
				// Between the largest finite half and the overflow
				// threshold the value rounds to ±65504 — except that
				// the float32 pre-rounding step can push inputs just
				// under 65520 over the edge to ±Inf (double rounding).
				if rt != math.Copysign(65504, v) && !math.IsInf(rt, int(math.Copysign(1, v))) {
					t.Fatalf("near-max %g decoded to %g, want ±65504 or Inf", v, rt)
				}
			case math.Abs(v) >= 6.103515625e-05:
				// Normal range: half a half-ulp of relative error.
				if rel := math.Abs(rt-v) / math.Abs(v); rel > 1.0/2048 {
					t.Fatalf("round-trip of %g gives %g (relative error %g)", v, rt, rel)
				}
			default:
				// Subnormal range: absolute error within one subnormal
				// step, 2^-24.
				if math.Abs(rt-v) > 5.960464477539063e-08 {
					t.Fatalf("subnormal round-trip of %g gives %g", v, rt)
				}
			}
		}
		// Monotonicity: ordering of inputs survives the round trip.
		if !math.IsNaN(a) && !math.IsNaN(b) {
			ra, rb := F16Decode(F16Encode(a)), F16Decode(F16Encode(b))
			if a <= b && !(ra <= rb) {
				t.Fatalf("monotonicity violated: %g <= %g but %g > %g", a, b, ra, rb)
			}
		}
	})
}
