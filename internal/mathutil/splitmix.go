package mathutil

// SplitMix is a deterministic SplitMix64 PRNG whose entire state is a
// single uint64. Training components that must survive a crash/resume
// cycle (minibatch shuffling, most importantly) use it instead of
// math/rand so the generator position can be captured in a checkpoint
// header and restored bit-exactly: resume(k epochs) + (N-k) epochs then
// replays the same shuffle sequence as an uninterrupted N-epoch run.
//
// SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush and is the
// canonical seeding generator for the xoshiro family; its statistical
// quality is far beyond what permutation shuffling needs.
type SplitMix struct {
	state uint64
}

// NewSplitMix returns a generator seeded from seed.
func NewSplitMix(seed int64) *SplitMix {
	return &SplitMix{state: uint64(seed)}
}

// Uint64 returns the next pseudo-random value and advances the state.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0,
// matching math/rand. Rejection sampling removes modulo bias, so the
// shuffle distribution is exactly uniform.
func (s *SplitMix) Intn(n int) int {
	if n <= 0 {
		panic("mathutil: SplitMix.Intn n <= 0")
	}
	max := uint64(n)
	// Largest multiple of max representable in a uint64; values at or
	// above it would bias the low residues.
	limit := ^uint64(0) - ^uint64(0)%max
	for {
		if v := s.Uint64(); v < limit {
			return int(v % max)
		}
	}
}

// Shuffle applies a Fisher–Yates shuffle over n elements via swap.
func (s *SplitMix) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// State returns the generator state for serialization.
func (s *SplitMix) State() uint64 { return s.state }

// SetState restores a state captured with State.
func (s *SplitMix) SetState(state uint64) { s.state = state }
