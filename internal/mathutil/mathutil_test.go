package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add: %+v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub: %+v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale: %+v", got)
	}
	if got := a.Dot(b); got != 1*4+2*-5+3*6 {
		t.Fatalf("Dot: %g", got)
	}
	if got := a.Norm2(); got != 14 {
		t.Fatalf("Norm2: %g", got)
	}
	if !almost(a.Norm(), math.Sqrt(14), 1e-15) {
		t.Fatalf("Norm: %g", a.Norm())
	}
	if !almost(a.Dist(b), a.Sub(b).Norm(), 1e-15) {
		t.Fatal("Dist inconsistent with Sub().Norm()")
	}
}

// tame maps an arbitrary float into a well-conditioned range so the
// quick-generated extremes (1e308) don't overflow the products the
// properties multiply out.
func tame(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Remainder(x, 1e6)
}

func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{tame(ax), tame(ay), tame(az)}
		b := Vec3{tame(bx), tame(by), tame(bz)}
		c := a.Cross(b)
		// Cross product is orthogonal to both operands.
		scale := a.Norm()*b.Norm() + 1
		return almost(c.Dot(a)/scale, 0, 1e-9) && almost(c.Dot(b)/scale, 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossAnticommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{tame(ax), tame(ay), tame(az)}
		b := Vec3{tame(bx), tame(by), tame(bz)}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentRoundTrip(t *testing.T) {
	v := Vec3{1, 2, 3}
	for axis := 0; axis < 3; axis++ {
		got := v.WithComponent(axis, 9)
		if got.Component(axis) != 9 {
			t.Fatalf("axis %d: %+v", axis, got)
		}
		// Other components untouched.
		for o := 0; o < 3; o++ {
			if o != axis && got.Component(o) != v.Component(o) {
				t.Fatalf("axis %d clobbered %d", axis, o)
			}
		}
	}
}

func TestAABB(t *testing.T) {
	b := EmptyAABB()
	if b.Contains(Vec3{0, 0, 0}) {
		t.Fatal("empty box contains origin")
	}
	b = b.Extend(Vec3{1, 2, 3}).Extend(Vec3{-1, 0, 5})
	if b.Min != (Vec3{-1, 0, 3}) || b.Max != (Vec3{1, 2, 5}) {
		t.Fatalf("extend: %+v", b)
	}
	if !b.Contains(Vec3{0, 1, 4}) {
		t.Fatal("should contain interior point")
	}
	if b.Contains(Vec3{2, 1, 4}) {
		t.Fatal("should not contain outside point")
	}
	if got := b.Center(); got != (Vec3{0, 1, 4}) {
		t.Fatalf("center: %+v", got)
	}
	if got := b.Size(); got != (Vec3{2, 2, 2}) {
		t.Fatalf("size: %+v", got)
	}
	u := b.Union(AABB{Min: Vec3{5, 5, 5}, Max: Vec3{6, 6, 6}})
	if u.Max != (Vec3{6, 6, 6}) || u.Min != (Vec3{-1, 0, 3}) {
		t.Fatalf("union: %+v", u)
	}
}

func TestAABBDist2(t *testing.T) {
	b := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 1, 1}}
	if d := b.Dist2(Vec3{0.5, 0.5, 0.5}); d != 0 {
		t.Fatalf("inside: %g", d)
	}
	if d := b.Dist2(Vec3{2, 0.5, 0.5}); !almost(d, 1, 1e-15) {
		t.Fatalf("face: %g", d)
	}
	if d := b.Dist2(Vec3{2, 2, 2}); !almost(d, 3, 1e-15) {
		t.Fatalf("corner: %g", d)
	}
}

func TestRunningStats(t *testing.T) {
	s := NewRunningStats()
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n=%d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean=%g", s.Mean())
	}
	if !almost(s.StdDev(), 2, 1e-12) {
		t.Fatalf("std=%g", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %g/%g", s.Min(), s.Max())
	}
}

func TestRunningStatsMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		k := int(split) % len(xs)
		a := NewRunningStats()
		b := NewRunningStats()
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		whole := StatsOf(xs)
		tol := 1e-6 * (math.Abs(whole.Mean()) + whole.Variance() + 1)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), tol) &&
			almost(a.Variance(), whole.Variance(), tol) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmpty(t *testing.T) {
	a := NewRunningStats()
	b := NewRunningStats()
	b.Add(3)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("%+v", a)
	}
	c := NewRunningStats()
	a.Merge(c) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestClampLerpSmoothStep(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
	if Lerp(2, 4, 0.5) != 3 || Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Fatal("Lerp")
	}
	if SmoothStep(0) != 0 || SmoothStep(1) != 1 || SmoothStep(-3) != 0 || SmoothStep(3) != 1 {
		t.Fatal("SmoothStep endpoints")
	}
	if s := SmoothStep(0.5); !almost(s, 0.5, 1e-15) {
		t.Fatalf("SmoothStep midpoint %g", s)
	}
	// Monotone on [0,1].
	prev := 0.0
	for i := 0; i <= 100; i++ {
		v := SmoothStep(float64(i) / 100)
		if v < prev {
			t.Fatal("SmoothStep not monotone")
		}
		prev = v
	}
}

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x2: {{2, 1}, {1, 3}} x = {5, 10} -> x = {1, 3}
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 10}
	if err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if !almost(b[0], 1, 1e-12) || !almost(b[1], 3, 1e-12) {
		t.Fatalf("x=%v", b)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero on the diagonal forces a pivot swap.
	a := []float64{0, 1, 1, 0}
	b := []float64{2, 3}
	if err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if !almost(b[0], 3, 1e-12) || !almost(b[1], 2, 1e-12) {
		t.Fatalf("x=%v", b)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{1, 2}
	if err := SolveLinear(a, b); err != ErrSingular {
		t.Fatalf("err=%v", err)
	}
}

func TestSolveLinearDimensionMismatch(t *testing.T) {
	if err := SolveLinear([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]float64, n*n)
		x := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// b = A x
		b := make([]float64, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				b[r] += a[r*n+c] * x[c]
			}
		}
		ac := append([]float64(nil), a...)
		if err := SolveLinear(ac, b); err != nil {
			continue // random singular matrix: fine
		}
		for i := range x {
			if !almost(b[i], x[i], 1e-6*(math.Abs(x[i])+1)) {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, b[i], x[i])
			}
		}
	}
}
