package delaunay

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fillvoid/internal/mathutil"
)

func randomPoints(n int, seed int64) ([]mathutil.Vec3, []float64) {
	rng := mathutil.NewRNG(seed)
	pts := make([]mathutil.Vec3, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = mathutil.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		vals[i] = rng.NormFloat64()
	}
	return pts, vals
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(make([]mathutil.Vec3, 3), make([]float64, 3)); err == nil {
		t.Fatal("expected error for < 4 points")
	}
	if _, err := Build(make([]mathutil.Vec3, 5), make([]float64, 4)); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	same := make([]mathutil.Vec3, 10)
	if _, err := Build(same, make([]float64, 10)); err == nil {
		t.Fatal("expected error for coincident points")
	}
}

func TestStructuralInvariantsRandom(t *testing.T) {
	for _, n := range []int{4, 10, 50, 200, 1000} {
		pts, vals := randomPoints(n, int64(n))
		tri, err := Build(pts, vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := tri.NumVertices(); got != n {
			t.Fatalf("n=%d: NumVertices=%d", n, got)
		}
		if _, err := tri.Validate(n <= 200); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestStructuralInvariantsGrid(t *testing.T) {
	// Regular-grid points are maximally degenerate (cospherical
	// everywhere); the jitter must keep the build healthy.
	var pts []mathutil.Vec3
	var vals []float64
	for k := 0; k < 5; k++ {
		for j := 0; j < 6; j++ {
			for i := 0; i < 7; i++ {
				pts = append(pts, mathutil.Vec3{X: float64(i), Y: float64(j), Z: float64(k)})
				vals = append(vals, float64(i+j+k))
			}
		}
	}
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tri.Validate(true); err != nil {
		t.Fatal(err)
	}
}

// A linear field must be reproduced exactly (up to jitter) by the
// piecewise-linear interpolant at any point inside the convex hull.
func TestLinearFieldReproduction(t *testing.T) {
	lin := func(p mathutil.Vec3) float64 { return 3*p.X - 2*p.Y + 0.5*p.Z + 7 }
	pts, _ := randomPoints(500, 42)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = lin(p)
	}
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	loc := tri.NewLocator()
	rng := mathutil.NewRNG(7)
	checked := 0
	for i := 0; i < 2000; i++ {
		// Interior queries: stay away from the hull boundary.
		q := mathutil.Vec3{
			X: 0.2 + 0.6*rng.Float64(),
			Y: 0.2 + 0.6*rng.Float64(),
			Z: 0.2 + 0.6*rng.Float64(),
		}
		got, ok := loc.Interpolate(q)
		if !ok {
			continue // can land outside the hull of the random points
		}
		checked++
		if math.Abs(got-lin(q)) > 1e-4 {
			t.Fatalf("query %v: got %g want %g", q, got, lin(q))
		}
	}
	if checked < 1500 {
		t.Fatalf("only %d/2000 queries landed inside the hull", checked)
	}
}

func TestInterpolateOutsideHull(t *testing.T) {
	pts, vals := randomPoints(100, 3)
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	loc := tri.NewLocator()
	if _, ok := loc.Interpolate(mathutil.Vec3{X: 50, Y: 50, Z: 50}); ok {
		t.Fatal("expected ok=false far outside the hull")
	}
}

// Property: interpolation never extrapolates — the interpolated value
// lies within [min, max] of the vertex values (convexity of barycentric
// weights after clamping).
func TestInterpolationConvexHullProperty(t *testing.T) {
	pts, vals := randomPoints(300, 11)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y, z float64) bool {
		q := mathutil.Vec3{
			X: mathutil.Clamp(math.Abs(x)-math.Floor(math.Abs(x)), 0, 1),
			Y: mathutil.Clamp(math.Abs(y)-math.Floor(math.Abs(y)), 0, 1),
			Z: mathutil.Clamp(math.Abs(z)-math.Floor(math.Abs(z)), 0, 1),
		}
		loc := tri.NewLocator()
		got, ok := loc.Interpolate(q)
		if !ok {
			return true
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBarycentricAtVertices(t *testing.T) {
	a := mathutil.Vec3{X: 0, Y: 0, Z: 0}
	b := mathutil.Vec3{X: 1, Y: 0, Z: 0}
	c := mathutil.Vec3{X: 0, Y: 1, Z: 0}
	d := mathutil.Vec3{X: 0, Y: 0, Z: 1}
	for i, q := range []mathutil.Vec3{a, b, c, d} {
		w, ok := barycentric(a, b, c, d, q)
		if !ok {
			t.Fatalf("vertex %d: degenerate", i)
		}
		for j := range w {
			want := 0.0
			if j == i {
				want = 1.0
			}
			if math.Abs(w[j]-want) > 1e-12 {
				t.Fatalf("vertex %d: w=%v", i, w)
			}
		}
	}
	// Centroid has equal weights.
	q := a.Add(b).Add(c).Add(d).Scale(0.25)
	w, _ := barycentric(a, b, c, d, q)
	for _, wi := range w {
		if math.Abs(wi-0.25) > 1e-12 {
			t.Fatalf("centroid weights %v", w)
		}
	}
}

func TestBarycentricDegenerate(t *testing.T) {
	a := mathutil.Vec3{}
	if _, ok := barycentric(a, a, a, a, a); ok {
		t.Fatal("expected degenerate tet to fail")
	}
}

func TestClusteredPoints(t *testing.T) {
	// Tight clusters with huge empty space between them stress the
	// walk and the cavity logic.
	rng := mathutil.NewRNG(99)
	var pts []mathutil.Vec3
	var vals []float64
	centers := []mathutil.Vec3{{X: 0, Y: 0, Z: 0}, {X: 100, Y: 0, Z: 0}, {X: 50, Y: 80, Z: 40}}
	for _, c := range centers {
		for i := 0; i < 80; i++ {
			pts = append(pts, mathutil.Vec3{
				X: c.X + rng.NormFloat64()*0.01,
				Y: c.Y + rng.NormFloat64()*0.01,
				Z: c.Z + rng.NormFloat64()*0.01,
			})
			vals = append(vals, c.X)
		}
	}
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tri.Validate(false); err != nil {
		t.Fatal(err)
	}
	// Interpolating at a cluster center returns ~the cluster value.
	loc := tri.NewLocator()
	for _, c := range centers {
		v, ok := loc.Interpolate(c)
		if !ok {
			continue
		}
		if math.Abs(v-c.X) > 1 {
			t.Fatalf("cluster at %v interpolates to %g", c, v)
		}
	}
}

func TestCollinearAndCoplanarInput(t *testing.T) {
	// Perfectly collinear / coplanar inputs are degenerate without
	// jitter; the builder must survive them.
	var pts []mathutil.Vec3
	var vals []float64
	for i := 0; i < 30; i++ {
		pts = append(pts, mathutil.Vec3{X: float64(i), Y: 0, Z: 0})
		vals = append(vals, float64(i))
	}
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tri.Validate(false); err != nil {
		t.Fatal(err)
	}

	pts = pts[:0]
	vals = vals[:0]
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			pts = append(pts, mathutil.Vec3{X: float64(i), Y: float64(j), Z: 0})
			vals = append(vals, float64(i+j))
		}
	}
	tri, err = Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tri.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestLocatorsAreIndependent(t *testing.T) {
	pts, vals := randomPoints(300, 15)
	tri, err := Build(pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent locators must agree with a fresh locator's answers.
	q := make([]mathutil.Vec3, 200)
	rng := mathutil.NewRNG(1)
	for i := range q {
		q[i] = mathutil.Vec3{X: 0.2 + 0.6*rng.Float64(), Y: 0.2 + 0.6*rng.Float64(), Z: 0.2 + 0.6*rng.Float64()}
	}
	type res struct {
		v  float64
		ok bool
	}
	want := make([]res, len(q))
	ref := tri.NewLocator()
	for i, p := range q {
		v, ok := ref.Interpolate(p)
		want[i] = res{v, ok}
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			loc := tri.NewLocator()
			for i := len(q) - 1; i >= 0; i-- { // reversed order: cursor state differs
				v, ok := loc.Interpolate(q[i])
				if ok != want[i].ok || (ok && math.Abs(v-want[i].v) > 1e-9) {
					done <- fmt.Errorf("worker %d query %d: %v/%v vs %v/%v", w, i, v, ok, want[i].v, want[i].ok)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNumTetsGrowsWithPoints(t *testing.T) {
	prev := 0
	for _, n := range []int{10, 100, 500} {
		pts, vals := randomPoints(n, int64(n)+1)
		tri, err := Build(pts, vals)
		if err != nil {
			t.Fatal(err)
		}
		nt := tri.NumTets()
		if nt <= prev {
			t.Fatalf("n=%d: tets %d did not grow past %d", n, nt, prev)
		}
		// A 3-D Delaunay triangulation of n points has O(n^2) tets in
		// the worst case but ~6-7n for uniform points (+ super-tet
		// cone tets).
		if nt > 40*n {
			t.Fatalf("n=%d: %d tets is implausibly many", n, nt)
		}
		prev = nt
	}
}
