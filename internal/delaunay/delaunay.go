// Package delaunay implements 3-D Delaunay tetrahedralization with
// barycentric linear interpolation — the "piecewise linear" baseline the
// paper identifies as the strongest rule-based reconstructor (its
// reference implementation used CGAL + OpenMP; this one is from-scratch
// Go). Construction is incremental Bowyer–Watson with visibility-walk
// point location; queries are read-only and safe to run from many
// goroutines, each holding its own Locator cursor.
//
// Scientific sample points sit on (subsets of) regular grids and are
// therefore massively cospherical; the builder applies a deterministic
// hash-based jitter, a tiny fraction of the bounding-box diagonal, to
// break ties (a standard symbolic-perturbation stand-in). The jittered
// coordinates are used consistently for location and interpolation, so
// the scheme stays self-consistent and the interpolation error it
// introduces is orders of magnitude below sampling error.
package delaunay

import (
	"errors"
	"fmt"
	"math"

	"fillvoid/internal/mathutil"
)

// Triangulation is an immutable (after Build) Delaunay tetrahedral mesh
// with one scalar value per vertex.
type Triangulation struct {
	// verts[0:4] are the enclosing super-tetrahedron corners; input
	// points follow in insertion order.
	verts  []mathutil.Vec3
	values []float64
	tets   []tet
	// firstLive is a tet index guaranteed alive, used to seed Locators.
	firstLive int32
	bounds    mathutil.AABB
}

// tet is one tetrahedron: vertex indices, neighbor tets (neighbor[i] is
// across the face opposite verts[i]; -1 = hull boundary), and a cached
// circumsphere for fast in-sphere tests.
type tet struct {
	verts    [4]int32
	neighbor [4]int32
	center   mathutil.Vec3
	r2       float64
	dead     bool
}

const noTet = int32(-1)

// Build triangulates the given points (len(points) == len(values),
// at least 4 non-degenerate points required). The inputs are copied.
func Build(points []mathutil.Vec3, values []float64) (*Triangulation, error) {
	if len(points) != len(values) {
		return nil, errors.New("delaunay: points/values length mismatch")
	}
	if len(points) < 4 {
		return nil, fmt.Errorf("delaunay: need >= 4 points, got %d", len(points))
	}

	bounds := mathutil.EmptyAABB()
	for _, p := range points {
		bounds = bounds.Extend(p)
	}
	diag := bounds.Size().Norm()
	if diag == 0 {
		return nil, errors.New("delaunay: all points coincide")
	}

	t := &Triangulation{bounds: bounds}

	// Super-tetrahedron comfortably containing the bounding box.
	c := bounds.Center()
	m := 20 * diag
	t.verts = append(t.verts,
		mathutil.Vec3{X: c.X - m, Y: c.Y - m, Z: c.Z - m},
		mathutil.Vec3{X: c.X + m, Y: c.Y - m, Z: c.Z - m},
		mathutil.Vec3{X: c.X, Y: c.Y + m, Z: c.Z - m},
		mathutil.Vec3{X: c.X, Y: c.Y, Z: c.Z + m},
	)
	t.values = append(t.values, 0, 0, 0, 0)

	// Deterministic jitter breaks the grid's cospherical degeneracies.
	jitter := diag * 1e-7
	for i, p := range points {
		t.verts = append(t.verts, jitterPoint(p, i, jitter))
		t.values = append(t.values, values[i])
	}

	root := t.newTet([4]int32{0, 1, 2, 3}, [4]int32{noTet, noTet, noTet, noTet})
	t.firstLive = root

	// Insert in a scrambled deterministic order: sequential insertion
	// of grid-ordered points makes the walk O(n^2); scrambling restores
	// the expected O(n log n).
	order := scrambledOrder(len(points))
	last := root
	for _, oi := range order {
		v := int32(oi + 4)
		var err error
		last, err = t.insert(v, last)
		if err != nil {
			return nil, err
		}
	}
	t.refreshFirstLive()
	return t, nil
}

// jitterPoint displaces p by a deterministic hash of its index.
func jitterPoint(p mathutil.Vec3, i int, scale float64) mathutil.Vec3 {
	h := uint64(i+1) * 0x9e3779b97f4a7c15
	f := func() float64 {
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		return (float64(h>>11)/float64(1<<53) - 0.5) * 2 * scale
	}
	return mathutil.Vec3{X: p.X + f(), Y: p.Y + f(), Z: p.Z + f()}
}

// scrambledOrder returns a deterministic pseudo-random permutation.
func scrambledOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := mathutil.NewRNG(0x5eed)
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// newTet appends a tetrahedron, normalizing to positive orientation,
// and returns its index.
func (t *Triangulation) newTet(v [4]int32, nb [4]int32) int32 {
	if orient3d(t.verts[v[0]], t.verts[v[1]], t.verts[v[2]], t.verts[v[3]]) < 0 {
		v[2], v[3] = v[3], v[2]
		nb[2], nb[3] = nb[3], nb[2]
	}
	center, r2 := circumsphere(t.verts[v[0]], t.verts[v[1]], t.verts[v[2]], t.verts[v[3]])
	t.tets = append(t.tets, tet{verts: v, neighbor: nb, center: center, r2: r2})
	return int32(len(t.tets) - 1)
}

// orient3d returns det[b-a, c-a, d-a]: positive when d lies on the
// positive side of plane (a,b,c).
func orient3d(a, b, c, d mathutil.Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a))
}

// circumsphere returns the circumcenter and squared circumradius of the
// tetrahedron (a,b,c,d). Degenerate (near-flat) tets get r2 = +Inf so
// that any subsequent insertion flushes them from the mesh.
func circumsphere(a, b, c, d mathutil.Vec3) (mathutil.Vec3, float64) {
	ab := b.Sub(a)
	ac := c.Sub(a)
	ad := d.Sub(a)
	det := ab.Dot(ac.Cross(ad))
	if math.Abs(det) < 1e-300 {
		return a, math.Inf(1)
	}
	ab2 := ab.Norm2()
	ac2 := ac.Norm2()
	ad2 := ad.Norm2()
	// center - a = (ab2*(ac x ad) + ac2*(ad x ab) + ad2*(ab x ac)) / (2 det)
	o := ac.Cross(ad).Scale(ab2).
		Add(ad.Cross(ab).Scale(ac2)).
		Add(ab.Cross(ac).Scale(ad2)).
		Scale(1 / (2 * det))
	return a.Add(o), o.Norm2()
}

// inSphere reports whether p lies strictly inside tet k's circumsphere,
// with a relative epsilon keeping boundary cases out of the cavity.
func (t *Triangulation) inSphere(k int32, p mathutil.Vec3) bool {
	tt := &t.tets[k]
	if math.IsInf(tt.r2, 1) {
		return true
	}
	return p.Dist2(tt.center) < tt.r2*(1-1e-12)
}

// insert adds vertex v to the triangulation, walking from tet hint to
// find the cavity. It returns one of the newly created tets as the next
// walk hint.
func (t *Triangulation) insert(v int32, hint int32) (int32, error) {
	p := t.verts[v]
	start, err := t.locate(p, hint)
	if err != nil {
		return noTet, err
	}

	// Grow the cavity: all tets whose circumsphere contains p.
	cavity := t.growCavity(start, p)

	// Collect boundary faces. A boundary face is a face of a cavity tet
	// whose neighbor is outside the cavity (or the hull).
	type boundaryFace struct {
		a, b, c int32 // face vertices
		outside int32 // neighbor tet beyond the face (noTet on hull)
	}
	var faces []boundaryFace
	for _, ci := range cavity {
		ct := &t.tets[ci]
		for f := 0; f < 4; f++ {
			nb := ct.neighbor[f]
			if nb != noTet && t.tets[nb].dead {
				continue // internal cavity face
			}
			// Face opposite vertex f.
			fa, fb, fc := faceOf(ct.verts, f)
			faces = append(faces, boundaryFace{fa, fb, fc, nb})
		}
	}

	// Retriangulate: one new tet per boundary face, joined at v.
	created := make([]int32, 0, len(faces))
	// faceKey → (tet, local face index) for stitching new tets together.
	open := make(map[[3]int32]faceRef, 3*len(faces))
	for _, bf := range faces {
		nt := t.newTet([4]int32{bf.a, bf.b, bf.c, v}, [4]int32{noTet, noTet, noTet, noTet})
		created = append(created, nt)
		// Wire the face shared with the outside world. After
		// normalization vertex order may have changed; find v's slot —
		// the face opposite v is the boundary face.
		vSlot := slotOf(t.tets[nt].verts, v)
		t.tets[nt].neighbor[vSlot] = bf.outside
		if bf.outside != noTet {
			// Point the outside tet back at the new tet.
			ot := &t.tets[bf.outside]
			oSlot := -1
			for f := 0; f < 4; f++ {
				oa, ob, oc := faceOf(ot.verts, f)
				if sameFace(oa, ob, oc, bf.a, bf.b, bf.c) {
					oSlot = f
					break
				}
			}
			if oSlot < 0 {
				return noTet, errors.New("delaunay: inconsistent cavity boundary")
			}
			ot.neighbor[oSlot] = nt
		}
		// Register the three internal faces (those touching v).
		for f := 0; f < 4; f++ {
			if f == vSlot {
				continue
			}
			fa, fb, fc := faceOf(t.tets[nt].verts, f)
			key := faceKey(fa, fb, fc)
			if other, ok := open[key]; ok {
				t.tets[nt].neighbor[f] = other.tet
				t.tets[other.tet].neighbor[other.face] = nt
				delete(open, key)
			} else {
				open[key] = faceRef{nt, int8(f)}
			}
		}
	}
	if len(open) != 0 {
		return noTet, errors.New("delaunay: cavity retriangulation left unmatched faces")
	}
	return created[0], nil
}

type faceRef struct {
	tet  int32
	face int8
}

// growCavity marks dead and returns all tets whose circumsphere
// contains p, reachable from start.
func (t *Triangulation) growCavity(start int32, p mathutil.Vec3) []int32 {
	cavity := []int32{start}
	t.tets[start].dead = true
	for qi := 0; qi < len(cavity); qi++ {
		ct := t.tets[cavity[qi]]
		for f := 0; f < 4; f++ {
			nb := ct.neighbor[f]
			if nb == noTet || t.tets[nb].dead {
				continue
			}
			if t.inSphere(nb, p) {
				t.tets[nb].dead = true
				cavity = append(cavity, nb)
			}
		}
	}
	return cavity
}

// faceOf returns the three vertices of the face opposite local vertex f.
func faceOf(v [4]int32, f int) (int32, int32, int32) {
	switch f {
	case 0:
		return v[1], v[2], v[3]
	case 1:
		return v[0], v[2], v[3]
	case 2:
		return v[0], v[1], v[3]
	default:
		return v[0], v[1], v[2]
	}
}

func slotOf(v [4]int32, x int32) int {
	for i := 0; i < 4; i++ {
		if v[i] == x {
			return i
		}
	}
	return -1
}

func faceKey(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

func sameFace(a, b, c int32, x, y, z int32) bool {
	return faceKey(a, b, c) == faceKey(x, y, z)
}

// locate finds a live tet containing p by visibility walk from hint,
// falling back to an exhaustive scan if the walk cycles (degenerate
// numerics). Returns an error only if no tet contains p, which cannot
// happen inside the super-tetrahedron.
func (t *Triangulation) locate(p mathutil.Vec3, hint int32) (int32, error) {
	cur := hint
	if cur == noTet || t.tets[cur].dead {
		cur = t.findLive()
	}
	maxSteps := 4 * (len(t.tets) + 16)
	for step := 0; step < maxSteps; step++ {
		ct := &t.tets[cur]
		moved := false
		for f := 0; f < 4; f++ {
			fa, fb, fc := faceOf(ct.verts, f)
			a, b, c := t.verts[fa], t.verts[fb], t.verts[fc]
			op := t.verts[ct.verts[f]]
			sideP := orient3d(a, b, c, p)
			sideV := orient3d(a, b, c, op)
			// p beyond face f (strictly on the opposite side from the
			// tet's own fourth vertex) → cross to the neighbor.
			if sideV > 0 && sideP < 0 || sideV < 0 && sideP > 0 {
				nb := ct.neighbor[f]
				if nb == noTet {
					continue // outside hull along this face; try others
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			return cur, nil
		}
	}
	// Walk cycled: exhaustive containment scan.
	for i := range t.tets {
		if t.tets[i].dead {
			continue
		}
		if t.contains(int32(i), p) {
			return int32(i), nil
		}
	}
	return noTet, errors.New("delaunay: point location failed")
}

// contains reports whether p is inside (or on) tet k.
func (t *Triangulation) contains(k int32, p mathutil.Vec3) bool {
	ct := &t.tets[k]
	for f := 0; f < 4; f++ {
		fa, fb, fc := faceOf(ct.verts, f)
		a, b, c := t.verts[fa], t.verts[fb], t.verts[fc]
		op := t.verts[ct.verts[f]]
		sideP := orient3d(a, b, c, p)
		sideV := orient3d(a, b, c, op)
		if sideV > 0 && sideP < 0 || sideV < 0 && sideP > 0 {
			return false
		}
	}
	return true
}

func (t *Triangulation) findLive() int32 {
	if t.firstLive != noTet && !t.tets[t.firstLive].dead {
		return t.firstLive
	}
	for i := range t.tets {
		if !t.tets[i].dead {
			t.firstLive = int32(i)
			return t.firstLive
		}
	}
	return noTet
}

func (t *Triangulation) refreshFirstLive() {
	t.firstLive = noTet
	t.findLive()
}

// NumTets returns the number of live tetrahedra (including those
// touching the super-tetrahedron corners).
func (t *Triangulation) NumTets() int {
	n := 0
	for i := range t.tets {
		if !t.tets[i].dead {
			n++
		}
	}
	return n
}

// NumVertices returns the number of input points.
func (t *Triangulation) NumVertices() int { return len(t.verts) - 4 }
