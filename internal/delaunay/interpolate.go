package delaunay

import (
	"math"

	"fillvoid/internal/mathutil"
)

// Locator is a point-location cursor over a finished triangulation.
// Walks are dramatically faster when successive queries are spatially
// coherent (e.g. scanning grid points in order), so each goroutine doing
// interpolation should hold its own Locator.
type Locator struct {
	t    *Triangulation
	last int32
}

// NewLocator returns a fresh cursor. Safe to create from any goroutine;
// the underlying triangulation is read-only.
func (t *Triangulation) NewLocator() *Locator {
	return &Locator{t: t, last: t.firstLive}
}

// Interpolate evaluates the piecewise-linear interpolant at q. ok is
// false when q falls outside the convex hull of the input points (its
// containing tet touches a super-tetrahedron corner) or location fails;
// callers typically fall back to the nearest sample value there.
func (l *Locator) Interpolate(q mathutil.Vec3) (value float64, ok bool) {
	t := l.t
	k, err := t.locate(q, l.last)
	if err != nil || k == noTet {
		return 0, false
	}
	l.last = k
	tt := &t.tets[k]
	for _, v := range tt.verts {
		if v < 4 {
			return 0, false // outside the input convex hull
		}
	}
	w, ok := barycentric(
		t.verts[tt.verts[0]], t.verts[tt.verts[1]],
		t.verts[tt.verts[2]], t.verts[tt.verts[3]], q)
	if !ok {
		return 0, false
	}
	value = w[0]*t.values[tt.verts[0]] +
		w[1]*t.values[tt.verts[1]] +
		w[2]*t.values[tt.verts[2]] +
		w[3]*t.values[tt.verts[3]]
	return value, true
}

// barycentric returns the barycentric coordinates of q in tet (a,b,c,d),
// clamped to [0,1] and renormalized to absorb the location tolerance.
// ok is false for a degenerate tetrahedron.
func barycentric(a, b, c, d, q mathutil.Vec3) ([4]float64, bool) {
	vap := q.Sub(a)
	vab := b.Sub(a)
	vac := c.Sub(a)
	vad := d.Sub(a)

	v6 := vab.Dot(vac.Cross(vad)) // 6 * signed volume of the tet
	if math.Abs(v6) < 1e-300 {
		return [4]float64{}, false
	}
	inv := 1 / v6
	var w [4]float64
	w[1] = vap.Dot(vac.Cross(vad)) * inv
	w[2] = vap.Dot(vad.Cross(vab)) * inv
	w[3] = vap.Dot(vab.Cross(vac)) * inv
	w[0] = 1 - w[1] - w[2] - w[3]
	sum := 0.0
	for i := range w {
		if w[i] < 0 {
			w[i] = 0
		}
		sum += w[i]
	}
	if sum <= 0 {
		return [4]float64{}, false
	}
	for i := range w {
		w[i] /= sum
	}
	return w, true
}

// Validate checks structural invariants — mutual neighbor links, live
// tets having positive orientation, and (expensively, on small meshes)
// the Delaunay empty-circumsphere property within tolerance. It returns
// the number of live tets checked.
func (t *Triangulation) Validate(checkDelaunay bool) (int, error) {
	live := 0
	for i := range t.tets {
		tt := &t.tets[i]
		if tt.dead {
			continue
		}
		live++
		// Positive orientation.
		if orient3d(t.verts[tt.verts[0]], t.verts[tt.verts[1]],
			t.verts[tt.verts[2]], t.verts[tt.verts[3]]) < 0 {
			return live, errNegativeTet(i)
		}
		// Neighbor symmetry.
		for f := 0; f < 4; f++ {
			nb := tt.neighbor[f]
			if nb == noTet {
				continue
			}
			if t.tets[nb].dead {
				return live, errDeadNeighbor(i)
			}
			back := false
			for g := 0; g < 4; g++ {
				if t.tets[nb].neighbor[g] == int32(i) {
					back = true
					break
				}
			}
			if !back {
				return live, errAsymmetricLink(i)
			}
		}
	}
	if checkDelaunay {
		for i := range t.tets {
			tt := &t.tets[i]
			if tt.dead || math.IsInf(tt.r2, 1) {
				continue
			}
			tol := tt.r2 * 1e-9
			for v := 4; v < len(t.verts); v++ {
				if int32(v) == tt.verts[0] || int32(v) == tt.verts[1] ||
					int32(v) == tt.verts[2] || int32(v) == tt.verts[3] {
					continue
				}
				if t.verts[v].Dist2(tt.center) < tt.r2-tol {
					return live, errNotDelaunay(i, v)
				}
			}
		}
	}
	return live, nil
}

type validationError string

func (e validationError) Error() string { return string(e) }

func errNegativeTet(i int) error {
	return validationError("delaunay: tet has negative orientation")
}
func errDeadNeighbor(i int) error {
	return validationError("delaunay: live tet links to dead neighbor")
}
func errAsymmetricLink(i int) error {
	return validationError("delaunay: neighbor link not symmetric")
}
func errNotDelaunay(i, v int) error {
	return validationError("delaunay: circumsphere contains a foreign vertex")
}
