package cluster

import (
	"testing"

	"fillvoid/internal/recon"
)

// TestSplitBoxPartitions: for a range of boxes and widths, the shards
// must tile the box exactly — every cell in exactly one shard — and
// follow ascending slab order along one axis.
func TestSplitBoxPartitions(t *testing.T) {
	boxes := []recon.Region{
		recon.Box(0, 0, 0, 16, 12, 8),
		recon.Box(3, 2, 1, 11, 10, 5),
		recon.Box(0, 0, 0, 1, 1, 7),
		recon.Box(0, 0, 0, 9, 1, 1),
		recon.Box(2, 2, 2, 3, 3, 3), // single cell
	}
	for _, box := range boxes {
		for _, n := range []int{1, 2, 3, 4, 7, 64} {
			shards := splitBox(box, n)
			if len(shards) < 1 || len(shards) > n {
				t.Fatalf("splitBox(%v, %d) returned %d shards", box, n, len(shards))
			}
			total := 0
			seen := make(map[[3]int]int)
			for si, s := range shards {
				if s.Len() == 0 {
					t.Fatalf("splitBox(%v, %d): shard %d is empty", box, n, si)
				}
				total += s.Len()
				for m := 0; m < s.Len(); m++ {
					i, j, k := s.Coords(m)
					cell := [3]int{i, j, k}
					if prev, dup := seen[cell]; dup {
						t.Fatalf("cell %v in shards %d and %d", cell, prev, si)
					}
					seen[cell] = si
				}
			}
			if total != box.Len() {
				t.Fatalf("splitBox(%v, %d) covers %d cells, want %d", box, n, total, box.Len())
			}
			for m := 0; m < box.Len(); m++ {
				i, j, k := box.Coords(m)
				if _, ok := seen[[3]int{i, j, k}]; !ok {
					t.Fatalf("cell (%d,%d,%d) of %v missing from shards", i, j, k, box)
				}
			}
		}
	}
}

// TestStitchReassemblesExactly: stitching per-shard outputs (each in
// box-local x-fastest order) must reproduce the flat region output of a
// single run, element for element.
func TestStitchReassemblesExactly(t *testing.T) {
	region := recon.Box(3, 1, 2, 15, 11, 9)
	value := func(i, j, k int) float64 { return float64(i) + 100*float64(j) + 10000*float64(k) }

	want := make([]float64, region.Len())
	for m := range want {
		i, j, k := region.Coords(m)
		want[m] = value(i, j, k)
	}

	for _, n := range []int{1, 2, 3, 5, 12} {
		got := make([]float64, region.Len())
		for _, shard := range splitBox(region, n) {
			src := make([]float64, shard.Len())
			for m := range src {
				i, j, k := shard.Coords(m)
				src[m] = value(i, j, k)
			}
			stitch(got, region, src, shard)
		}
		for m := range got {
			if got[m] != want[m] {
				t.Fatalf("n=%d: stitched[%d] = %g, want %g", n, m, got[m], want[m])
			}
		}
	}
}
