package cluster

import "fillvoid/internal/recon"

// splitBox cuts a box region into up to n contiguous slabs along its
// largest axis (ties prefer z, the outermost axis, whose slabs are
// contiguous runs of the output array). Every grid node of r lands in
// exactly one shard, in ascending slab order, so stitching the shard
// outputs back reproduces the single-run output exactly. Fewer than n
// shards come back when the axis is shorter than n.
func splitBox(r recon.Region, n int) []recon.Region {
	nx, ny, nz := r.Dims()
	axis, extent := 2, nz
	if ny > extent {
		axis, extent = 1, ny
	}
	if nx > extent {
		axis, extent = 0, nx
	}
	if n > extent {
		n = extent
	}
	if n <= 1 {
		return []recon.Region{r}
	}
	shards := make([]recon.Region, 0, n)
	for s := 0; s < n; s++ {
		// Even split with the remainder spread over the first shards.
		lo := s * extent / n
		hi := (s + 1) * extent / n
		sub := r
		switch axis {
		case 0:
			sub.I0, sub.I1 = r.I0+lo, r.I0+hi
		case 1:
			sub.J0, sub.J1 = r.J0+lo, r.J0+hi
		default:
			sub.K0, sub.K1 = r.K0+lo, r.K0+hi
		}
		shards = append(shards, sub)
	}
	return shards
}

// stitch copies one shard's output (box-local, x-fastest order, as the
// engine and the HTTP API emit it) into the full region's output
// array at the right offsets. dst is the flat output for region; src
// is the flat output for shard, which must be a sub-box of region.
func stitch(dst []float64, region recon.Region, src []float64, shard recon.Region) {
	rnx, rny, _ := region.Dims()
	snx, sny, snz := shard.Dims()
	di, dj, dk := shard.I0-region.I0, shard.J0-region.J0, shard.K0-region.K0
	for k := 0; k < snz; k++ {
		for j := 0; j < sny; j++ {
			srow := src[snx*(j+sny*k) : snx*(j+sny*k)+snx]
			off := (di) + rnx*((dj+j)+rny*(dk+k))
			copy(dst[off:off+snx], srow)
		}
	}
}
