package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fillvoid/internal/mathutil"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/recon"
	"fillvoid/internal/telemetry"
)

func testClusterOf(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func specOf(nx, ny, nz int) recon.GridSpec {
	return recon.GridSpec{NX: nx, NY: ny, NZ: nz, Spacing: mathutil.Vec3{X: 1, Y: 1, Z: 1}}
}

// shardValues computes the deterministic per-cell payload a fake
// replica returns for one shard, in box-local x-fastest order.
func shardValues(shard recon.Region) []float64 {
	out := make([]float64, shard.Len())
	for m := range out {
		i, j, k := shard.Coords(m)
		out[m] = float64(i) + 100*float64(j) + 10000*float64(k)
	}
	return out
}

// TestPlanRoutes pins the routing decision table: single member always
// local, large boxes fan out, small queries go to the key's ring owner
// (local or proxy), and point lists never fan out regardless of size.
func TestPlanRoutes(t *testing.T) {
	solo := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0"), ShardThreshold: 1})
	if route, _, _ := solo.Plan(keyHash(1), recon.Box(0, 0, 0, 10, 10, 10)); route != RouteLocal {
		t.Fatalf("single-member cluster routed %v, want local", route)
	}

	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1", "r2"),
		ShardThreshold: 100, Telemetry: tel})

	if route, _, width := c.Plan(keyHash(2), recon.Box(0, 0, 0, 10, 10, 10)); route != RouteFanout || width != 3 {
		t.Fatalf("1000-point box routed (%v, width %d), want fanout across 3", route, width)
	}
	pts := make([]mathutil.Vec3, 500)
	if route, _, _ := c.Plan(keyHash(3), recon.PointList(pts)); route == RouteFanout {
		t.Fatal("point-list region fanned out; points cannot be sharded by sub-box")
	}

	// Small boxes follow the ring owner, and every replica agrees on it.
	ring := newRing(membersOf("r0", "r1", "r2"), 64)
	sawProxy := false
	for i := 0; i < 50; i++ {
		h := keyHash(100 + i)
		route, owner, _ := c.Plan(h, recon.Box(0, 0, 0, 2, 2, 2))
		want := ring.owner(h).ID
		switch route {
		case RouteLocal:
			if want != "r0" {
				t.Fatalf("key %d executed locally but the ring owner is %s", i, want)
			}
		case RouteProxy:
			sawProxy = true
			if owner.ID != want {
				t.Fatalf("key %d proxied to %s, ring owner is %s", i, owner.ID, want)
			}
		default:
			t.Fatalf("small box routed %v", route)
		}
	}
	if !sawProxy {
		t.Fatal("no key in 50 proxied away from r0; ring placement is degenerate")
	}
	if tel.Counter("cluster.route.proxy").Value() == 0 || tel.Counter("cluster.route.local").Value() == 0 {
		t.Fatal("routing counters did not move")
	}
}

// TestFanoutStitchesShardsAcrossReplicas drives Fanout through the do
// seam: each sub-query is answered with deterministic per-cell values,
// and the assembled volume must equal the direct region evaluation.
// Along the way it checks shard placement walks the ring (both members
// serve sub-queries) and the shard counter advances.
func TestFanoutStitchesShardsAcrossReplicas(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1"),
		ShardThreshold: 10, HedgeAfter: time.Hour, Telemetry: tel})

	var perMember [2]atomic.Int64
	c.do = func(ctx context.Context, m Member, q *subQuery) ([]float64, error) {
		if m.ID == "r0" {
			perMember[0].Add(1)
		} else {
			perMember[1].Add(1)
		}
		b := q.Region.Box
		return shardValues(recon.Box(b[0], b[1], b[2], b[3], b[4], b[5])), nil
	}

	spec := specOf(16, 12, 8)
	region := recon.Full(spec)
	res, err := c.Fanout(context.Background(), &Query{
		Method: "nearest", CloudID: "0123456789abcdef", Spec: spec,
		Region: region, KeyHash: keyHash(7),
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("shards = %d, want 4", res.Shards)
	}
	want := shardValues(region)
	if len(res.Values) != len(want) {
		t.Fatalf("stitched %d values, want %d", len(res.Values), len(want))
	}
	for m := range want {
		if res.Values[m] != want[m] {
			t.Fatalf("value[%d] = %g, want %g", m, res.Values[m], want[m])
		}
	}
	if perMember[0].Load() == 0 || perMember[1].Load() == 0 {
		t.Fatalf("sub-queries did not spread over both replicas (%d, %d)",
			perMember[0].Load(), perMember[1].Load())
	}
	if got := tel.Counter("cluster.fanout.shards").Value(); got != 4 {
		t.Fatalf("cluster.fanout.shards = %d, want 4", got)
	}
}

// TestHedgeRacesSlowPrimary: a sub-query whose primary stalls past the
// hedge delay must be raced against the next replica on the ring; the
// backup's answer wins and the hedge counters advance.
func TestHedgeRacesSlowPrimary(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1"),
		HedgeAfter: 5 * time.Millisecond, Telemetry: tel})

	replicas := c.replicasFor(keyHash(11), 2)
	primary := replicas[0].ID
	c.do = func(ctx context.Context, m Member, q *subQuery) ([]float64, error) {
		if m.ID == primary {
			<-ctx.Done() // stall until the winner cancels us
			return nil, ctx.Err()
		}
		b := q.Region.Box
		return shardValues(recon.Box(b[0], b[1], b[2], b[3], b[4], b[5])), nil
	}

	spec := specOf(4, 4, 2)
	shard := recon.Full(spec)
	vals, hedged, err := c.runShard(context.Background(), &Query{Spec: spec, Region: shard, KeyHash: keyHash(11)},
		shard, replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hedged {
		t.Fatal("stalled primary did not trigger a hedge")
	}
	if len(vals) != shard.Len() {
		t.Fatalf("hedged answer has %d values, want %d", len(vals), shard.Len())
	}
	if tel.Counter("cluster.hedges").Value() != 1 || tel.Counter("cluster.hedge_wins").Value() != 1 {
		t.Fatalf("hedge counters = (%d, %d), want (1, 1)",
			tel.Counter("cluster.hedges").Value(), tel.Counter("cluster.hedge_wins").Value())
	}
}

// TestPrimaryFailureFailsOverImmediately: an outright primary error
// must not wait out the hedge timer before trying the backup.
func TestPrimaryFailureFailsOverImmediately(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1"),
		HedgeAfter: time.Hour, Telemetry: tel})

	replicas := c.replicasFor(keyHash(13), 2)
	primary := replicas[0].ID
	c.do = func(ctx context.Context, m Member, q *subQuery) ([]float64, error) {
		if m.ID == primary {
			return nil, errors.New("replica on fire")
		}
		b := q.Region.Box
		return shardValues(recon.Box(b[0], b[1], b[2], b[3], b[4], b[5])), nil
	}

	spec := specOf(4, 4, 2)
	shard := recon.Full(spec)
	start := time.Now()
	vals, _, err := c.runShard(context.Background(), &Query{Spec: spec, Region: shard, KeyHash: keyHash(13)},
		shard, replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != shard.Len() {
		t.Fatalf("failover answer has %d values", len(vals))
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("failover waited for the hour-long hedge timer")
	}
}

// TestBothReplicasFailingSurfacesBothErrors: when the primary and the
// hedge both fail, the caller sees a single error naming both causes.
func TestBothReplicasFailingSurfacesBothErrors(t *testing.T) {
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1"),
		HedgeAfter: time.Millisecond})
	c.do = func(ctx context.Context, m Member, q *subQuery) ([]float64, error) {
		return nil, fmt.Errorf("%s declined", m.ID)
	}
	spec := specOf(4, 4, 2)
	shard := recon.Full(spec)
	replicas := c.replicasFor(keyHash(17), 2)
	_, _, err := c.runShard(context.Background(), &Query{Spec: spec, Region: shard}, shard, replicas, 0)
	if err == nil {
		t.Fatal("both replicas failed yet runShard succeeded")
	}
}

// TestHTTPDoRepushesEvictedCloud: a replica answering 404 "not in
// store" (its cloud LRU evicted the entry) gets the cloud re-pushed and
// the sub-query retried, transparently to the caller.
func TestHTTPDoRepushesEvictedCloud(t *testing.T) {
	var pushed atomic.Bool
	var reconCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reconstruct", func(w http.ResponseWriter, r *http.Request) {
		reconCalls.Add(1)
		if r.Header.Get(HeaderInternal) != internalShard {
			t.Errorf("sub-query missing %s header", HeaderInternal)
		}
		w.Header().Set("Content-Type", "application/json")
		if !pushed.Load() {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"cloud 0123456789abcdef not in store (re-upload via /v1/clouds)"}`)
			return
		}
		fmt.Fprint(w, `{"values":[1,2,3,4]}`)
	})
	mux.HandleFunc("POST /v1/clouds", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderInternal) != internalReplicate {
			t.Errorf("cloud push missing %s header", HeaderInternal)
		}
		pushed.Store(true)
		fmt.Fprint(w, `{"cloud_id":"0123456789abcdef","points":2}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r0", Members: []Member{{ID: "r0", URL: srv.URL}}, Telemetry: tel})

	cloud := pointcloud.New("pressure", 2)
	cloud.Add(mathutil.Vec3{X: 0.1}, 1)
	cloud.Add(mathutil.Vec3{X: 0.9}, 2)
	q := c.subRequest(&Query{Method: "nearest", CloudID: "0123456789abcdef", Cloud: cloud,
		Spec: specOf(4, 1, 1)}, recon.Box(0, 0, 0, 4, 1, 1))

	vals, err := c.httpDo(context.Background(), Member{ID: "r1", URL: srv.URL}, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values after re-push, want 4", len(vals))
	}
	if !pushed.Load() || reconCalls.Load() != 2 {
		t.Fatalf("expected push + retry (pushed=%v, recon calls=%d)", pushed.Load(), reconCalls.Load())
	}
	if got := tel.Counter("cluster.cloud_pushes").Value(); got != 1 {
		t.Fatalf("cluster.cloud_pushes = %d, want 1", got)
	}
}

// TestSetMembersRequiresSelf pins the membership validation and the
// late-binding flow (placeholder URLs swapped once listeners exist).
func TestSetMembersRequiresSelf(t *testing.T) {
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0", "r1")})
	if err := c.SetMembers(membersOf("r1", "r2")); err == nil {
		t.Fatal("SetMembers accepted a list without self")
	}
	if err := c.SetMembers([]Member{{ID: "r0", URL: "http://real:1"}, {ID: "r1", URL: "http://real:2"}}); err != nil {
		t.Fatal(err)
	}
	if c.Self().URL != "http://real:1" {
		t.Fatalf("self URL not rebound: %q", c.Self().URL)
	}
	if _, err := New(Config{Self: "r9", Members: membersOf("r0", "r1")}); err == nil {
		t.Fatal("New accepted a member list without self")
	}
}

// TestStatusSnapshot checks the /v1/cluster payload assembly.
func TestStatusSnapshot(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := testClusterOf(t, Config{Self: "r1", Members: membersOf("r1", "r0"), ShardThreshold: 10, Telemetry: tel})
	if route, _, _ := c.Plan(keyHash(1), recon.Box(0, 0, 0, 10, 10, 10)); route != RouteFanout {
		t.Fatal("expected a fanout route")
	}
	st := c.StatusSnapshot()
	if st.Replica != "r1" || len(st.Members) != 2 {
		t.Fatalf("status %+v", st)
	}
	if st.Members[0].ID != "r0" || st.Members[1].ID != "r1" || !st.Members[1].Self {
		t.Fatalf("members not ID-sorted with self marked: %+v", st.Members)
	}
	if st.Counters["cluster.route.fanout"] != 1 {
		t.Fatalf("fanout counter = %d in status", st.Counters["cluster.route.fanout"])
	}
	if st.Shards != 2 {
		t.Fatalf("default shard width = %d, want member count 2", st.Shards)
	}
}

// TestLatencyTrackerQuantile covers the adaptive hedge-delay source.
func TestLatencyTrackerQuantile(t *testing.T) {
	lt := newLatencyTracker(32)
	if _, ok := lt.quantile(0.95); ok {
		t.Fatal("quantile reported ok with no samples")
	}
	for i := 1; i <= 20; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	p95, ok := lt.quantile(0.95)
	if !ok {
		t.Fatal("quantile not ready after 20 samples")
	}
	if p95 < 15*time.Millisecond || p95 > 20*time.Millisecond {
		t.Fatalf("p95 = %s over 1..20ms", p95)
	}
	// Hedge delay clamps: tiny p95s round up to 5ms.
	c := testClusterOf(t, Config{Self: "r0", Members: membersOf("r0")})
	for i := 0; i < 32; i++ {
		c.lat.observe(time.Microsecond)
	}
	if d := c.hedgeDelay(); d != 5*time.Millisecond {
		t.Fatalf("hedge delay %s, want the 5ms floor", d)
	}
}
