// Package cluster is the multi-replica serving layer: a consistent-hash
// ring that assigns every (cloud, grid) plan key an owner replica, a
// coordinator that splits large box queries into sub-box shards
// executed on different replicas over the ordinary HTTP API and
// stitched back into one volume, and hedged sub-queries for tail
// tolerance. It is a transport + placement layer on the recon engine
// seam: replicas never share state beyond content-addressed cloud
// uploads, and the engine's ROI-equals-full-grid guarantee makes the
// sharded output bit-identical to a single-replica run.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Member is one replica of the serving cluster.
type Member struct {
	// ID is the replica's stable identity on the ring; membership
	// changes move only the keys owned by the members that left.
	ID string `json:"id"`
	// URL is the replica's base URL (scheme://host:port).
	URL string `json:"url"`
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member int // index into ring.members
}

// ring is an immutable consistent-hash ring with virtual nodes. Build
// a new one on membership change; lookups are lock-free.
type ring struct {
	members []Member
	points  []ringPoint // sorted by hash
}

// fmix64 is the splitmix64 finalizer: full-avalanche mixing so every
// input bit disturbs every output bit. FNV alone is not enough here —
// its multiply only carries entropy upward, so near-identical short
// member IDs ("r0", "r1", ...) produce correlated high bits, clustered
// ring positions, and badly skewed ownership.
func fmix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// vnodeHash positions vnode v of member id on the ring: FNV-1a over
// "id\x00v", then finalized for avalanche. Stable across processes and
// reorderings of the member list.
func vnodeHash(id string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime64
		x >>= 8
	}
	return fmix64(h)
}

// newRing builds the ring with vnodes virtual nodes per member.
func newRing(members []Member, vnodes int) *ring {
	r := &ring{
		members: append([]Member(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m.ID, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member ID so every
		// replica builds the identical ring.
		return r.members[r.points[i].member].ID < r.members[r.points[j].member].ID
	})
	return r
}

// owner returns the member owning key hash h: the member of the first
// virtual node at or clockwise after h, wrapping at the top.
func (r *ring) owner(h uint64) Member {
	return r.members[r.points[r.search(h)].member]
}

// search returns the index of the first point at or after the key's
// finalized hash (wrapped). Keys get the same avalanche treatment as
// vnode positions: plan-key hashes are FNV chains too, and only a key's
// high bits decide its arc, so un-mixed keys would inherit FNV's
// high-bit correlation.
func (r *ring) search(h uint64) int {
	h = fmix64(h)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// owners returns up to n distinct members walking clockwise from key
// hash h: owners(h, n)[0] is the key's owner, the rest are the stable
// fallback/hedge order. n is clamped to the member count.
func (r *ring) owners(h uint64, n int) []Member {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]Member, 0, n)
	seen := make(map[int]bool, n)
	start := r.search(h)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// ParsePeers parses the -peers flag form "id=url,id=url,...". IDs must
// be unique and every entry needs both halves.
func ParsePeers(s string) ([]Member, error) {
	var members []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		members = append(members, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	return members, nil
}
