package cluster

import (
	"fmt"
	"testing"
)

func membersOf(ids ...string) []Member {
	ms := make([]Member, len(ids))
	for i, id := range ids {
		ms[i] = Member{ID: id, URL: "http://" + id}
	}
	return ms
}

// keyHash generates a deterministic spread of key hashes.
func keyHash(i int) uint64 { return vnodeHash(fmt.Sprintf("key-%d", i), i) }

// TestRingOwnerIndependentOfMemberOrder: every replica must compute the
// same placement from its own copy of the member list, whatever order
// the -peers flag listed it in.
func TestRingOwnerIndependentOfMemberOrder(t *testing.T) {
	a := newRing(membersOf("r0", "r1", "r2"), 64)
	b := newRing(membersOf("r2", "r0", "r1"), 64)
	for i := 0; i < 2000; i++ {
		h := keyHash(i)
		if a.owner(h).ID != b.owner(h).ID {
			t.Fatalf("key %d: owner %q vs %q across member orderings", i, a.owner(h).ID, b.owner(h).ID)
		}
	}
}

// TestRingBalance: virtual nodes must spread ownership evenly enough
// that no replica owns a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	r := newRing(membersOf("r0", "r1", "r2"), 64)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.owner(keyHash(i)).ID]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys; vnode spread is broken (%v)", id, 100*frac, counts)
		}
	}
}

// TestRingStabilityAcrossMembershipChange: removing one member may move
// only the keys that member owned; everything else stays put. This is
// the property that keeps the other replicas' plan caches warm through
// a membership change.
func TestRingStabilityAcrossMembershipChange(t *testing.T) {
	before := newRing(membersOf("r0", "r1", "r2", "r3"), 64)
	after := newRing(membersOf("r0", "r1", "r2"), 64)
	moved := 0
	const n = 20000
	for i := 0; i < n; i++ {
		h := keyHash(i)
		was, is := before.owner(h).ID, after.owner(h).ID
		if was != "r3" && was != is {
			t.Fatalf("key %d moved %s -> %s though %s never left", i, was, is, was)
		}
		if was == "r3" {
			moved++
		}
	}
	// r3 owned roughly a quarter of the space; all of it (and only it)
	// must have been redistributed.
	if moved < n/8 || moved > n/2 {
		t.Fatalf("%d of %d keys were on the departed member; expected roughly a quarter", moved, n)
	}
}

// TestOwnersDistinctOrder: the replica walk is distinct, starts at the
// owner, and clamps to the member count.
func TestOwnersDistinctOrder(t *testing.T) {
	r := newRing(membersOf("r0", "r1", "r2"), 64)
	for i := 0; i < 500; i++ {
		h := keyHash(i)
		got := r.owners(h, 5)
		if len(got) != 3 {
			t.Fatalf("owners(h, 5) with 3 members returned %d", len(got))
		}
		if got[0].ID != r.owner(h).ID {
			t.Fatalf("owners[0] = %s, owner = %s", got[0].ID, r.owner(h).ID)
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m.ID] {
				t.Fatalf("duplicate member %s in owners walk", m.ID)
			}
			seen[m.ID] = true
		}
	}
}

func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("r0=http://a:1, r1=http://b:2/,r2=http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[1].ID != "r1" || ms[1].URL != "http://b:2" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "r0", "r0=", "=http://a", "r0=http://a,r0=http://b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}
