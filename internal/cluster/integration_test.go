// Multi-replica integration tests: real servers on ephemeral ports,
// wired into a cluster, serving the golden Isabel-analog fixture. In an
// external test package so it can import both cluster and server
// (server imports cluster; the reverse would be a cycle).
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"fillvoid/internal/cluster"
	"fillvoid/internal/datasets"
	"fillvoid/internal/interp"
	"fillvoid/internal/pointcloud"
	"fillvoid/internal/sampling"
	"fillvoid/internal/server"
	"fillvoid/internal/telemetry"
)

// isabelCloud reproduces the repo's golden fixture: one Isabel-analog
// frame on a 32x32x10 grid, importance-sampled at 5%.
func isabelCloud(t *testing.T) (*pointcloud.Cloud, server.GridJSON) {
	t.Helper()
	gen, err := datasets.ByName("isabel", 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := datasets.Volume(gen, 32, 32, 10, 10)
	cloud, _, err := (&sampling.Importance{Seed: 3}).Sample(truth, "pressure", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec := interp.SpecOf(truth)
	origin := [3]float64{spec.Origin.X, spec.Origin.Y, spec.Origin.Z}
	spacing := [3]float64{spec.Spacing.X, spec.Spacing.Y, spec.Spacing.Z}
	return cloud, server.GridJSON{Dims: [3]int{spec.NX, spec.NY, spec.NZ}, Origin: &origin, Spacing: &spacing}
}

func wireCloudOf(c *pointcloud.Cloud) *server.CloudJSON {
	cj := &server.CloudJSON{Name: c.Name, Values: c.Values}
	for _, p := range c.Points {
		cj.Points = append(cj.Points, [3]float64{p.X, p.Y, p.Z})
	}
	return cj
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

type replica struct {
	srv *server.Server
	cl  *cluster.Cluster
	tel *telemetry.Registry
	url string
}

// startCluster boots n replicas on ephemeral ports and binds them into
// one membership. Listener addresses only exist after Start, so the
// clusters begin on placeholder URLs and are rebound via SetMembers —
// the same late-binding flow the serve command uses.
func startCluster(t *testing.T, n, shards, threshold int) []replica {
	t.Helper()
	reps := make([]replica, n)
	placeholders := make([]cluster.Member, n)
	for i := range placeholders {
		placeholders[i] = cluster.Member{ID: fmt.Sprintf("r%d", i)}
	}
	for i := range reps {
		tel := telemetry.NewRegistry()
		cl, err := cluster.New(cluster.Config{
			Self:           fmt.Sprintf("r%d", i),
			Members:        placeholders,
			Shards:         shards,
			ShardThreshold: threshold,
			// A fixed, generous hedge delay keeps the counter assertions
			// deterministic on slow CI machines.
			HedgeAfter: 30 * time.Second,
			Telemetry:  tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Registry:  interp.StandardRegistry(2),
			Telemetry: tel,
			Cluster:   cl,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		reps[i] = replica{srv: srv, cl: cl, tel: tel, url: "http://" + srv.Addr()}
	}
	members := make([]cluster.Member, n)
	for i, r := range reps {
		members[i] = cluster.Member{ID: fmt.Sprintf("r%d", i), URL: r.url}
	}
	for _, r := range reps {
		if err := r.cl.SetMembers(members); err != nil {
			t.Fatal(err)
		}
	}
	return reps
}

// TestShardedMatchesSingleReplicaGolden is the tentpole acceptance
// test: a full-grid reconstruction of the golden Isabel fixture fanned
// out across a cluster must be bit-identical to the standalone answer,
// across several replica/shard shapes. The engine pins ROI == full-grid
// bit-identity; this pins that HTTP sharding, JSON float round-trips,
// and stitching preserve it end to end.
func TestShardedMatchesSingleReplicaGolden(t *testing.T) {
	cloud, gj := isabelCloud(t)
	cj := wireCloudOf(cloud)

	// Standalone reference.
	ref, err := server.New(server.Config{Registry: interp.StandardRegistry(2), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	code, body := post(t, "http://"+ref.Addr()+"/v1/reconstruct",
		&server.ReconstructRequest{Method: "shepard", Cloud: cj, Grid: gj})
	if code != http.StatusOK {
		t.Fatalf("reference: %d %s", code, body)
	}
	var refResp server.ReconstructResponse
	if err := json.Unmarshal(body, &refResp); err != nil {
		t.Fatal(err)
	}
	if refResp.Replica != "" || refResp.Shards != 0 {
		t.Fatalf("standalone response carries cluster fields: %q/%d", refResp.Replica, refResp.Shards)
	}

	configs := []struct {
		name             string
		replicas, shards int
		wantShards       int
	}{
		{"2 replicas, 2 shards", 2, 2, 2},
		{"3 replicas, 3 shards", 3, 3, 3},
		{"3 replicas, 5 shards", 3, 5, 5},
		{"4 replicas, default width", 4, 0, 4},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			reps := startCluster(t, cfg.replicas, cfg.shards, 1)
			code, body := post(t, reps[0].url+"/v1/clouds", cj)
			if code != http.StatusOK {
				t.Fatalf("upload: %d %s", code, body)
			}
			code, body = post(t, reps[0].url+"/v1/reconstruct",
				&server.ReconstructRequest{Method: "shepard", Cloud: cj, Grid: gj})
			if code != http.StatusOK {
				t.Fatalf("sharded reconstruct: %d %s", code, body)
			}
			var got server.ReconstructResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if got.Shards != cfg.wantShards {
				t.Fatalf("shards = %d, want %d", got.Shards, cfg.wantShards)
			}
			if got.Replica != "r0" {
				t.Fatalf("coordinator replica = %q, want r0", got.Replica)
			}
			if got.Dims != refResp.Dims || got.Origin != refResp.Origin || got.Spacing != refResp.Spacing {
				t.Fatalf("sharded geometry %v/%v/%v, reference %v/%v/%v",
					got.Dims, got.Origin, got.Spacing, refResp.Dims, refResp.Origin, refResp.Spacing)
			}
			if len(got.Values) != len(refResp.Values) {
				t.Fatalf("sharded %d values, reference %d", len(got.Values), len(refResp.Values))
			}
			for i := range got.Values {
				if got.Values[i] != refResp.Values[i] {
					t.Fatalf("%s: value[%d] = %v, reference %v — sharded run is not bit-identical",
						cfg.name, i, got.Values[i], refResp.Values[i])
				}
			}
			// Plan-build economy: every replica builds the (cloud, spec)
			// plan at most once, however many shards it served.
			for i, r := range reps {
				if misses := r.tel.Counter("server.plan_cache.misses").Value(); misses > 1 {
					t.Fatalf("replica %d built %d plans for one key", i, misses)
				}
			}
			if fanouts := reps[0].tel.Counter("cluster.route.fanout").Value(); fanouts != 1 {
				t.Fatalf("cluster.route.fanout = %d on the coordinator, want 1", fanouts)
			}
		})
	}
}

// TestProxyRoutesSmallQueriesToOwner: below the shard threshold, every
// replica must agree on the key's owner and forward there, so exactly
// one replica's plan cache ever holds the plan.
func TestProxyRoutesSmallQueriesToOwner(t *testing.T) {
	cloud, gj := isabelCloud(t)
	cj := wireCloudOf(cloud)
	reps := startCluster(t, 3, 0, 1<<30) // threshold high: never fan out

	code, body := post(t, reps[0].url+"/v1/clouds", cj)
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}

	req := &server.ReconstructRequest{Method: "nearest", Cloud: cj, Grid: gj,
		Region: server.RegionJSON{Box: &[6]int{0, 0, 0, 4, 4, 4}}}
	var answers []server.ReconstructResponse
	for i, r := range reps {
		code, body := post(t, r.url+"/v1/reconstruct", req)
		if code != http.StatusOK {
			t.Fatalf("via replica %d: %d %s", i, code, body)
		}
		var resp server.ReconstructResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		answers = append(answers, resp)
	}
	owner := answers[0].Replica
	if owner == "" {
		t.Fatal("clustered response has no replica field")
	}
	for i, a := range answers {
		if a.Replica != owner {
			t.Fatalf("replica field differs by entry point: %q via r0, %q via r%d — owner routing is unstable",
				owner, a.Replica, i)
		}
		for m := range a.Values {
			if a.Values[m] != answers[0].Values[m] {
				t.Fatalf("answer via r%d differs at value[%d]", i, m)
			}
		}
	}
	var local, proxied, misses int64
	for _, r := range reps {
		local += r.tel.Counter("cluster.route.local").Value()
		proxied += r.tel.Counter("cluster.route.proxy").Value()
		misses += r.tel.Counter("server.plan_cache.misses").Value()
	}
	if local != 1 || proxied != 2 {
		t.Fatalf("route counters local=%d proxy=%d, want 1/2", local, proxied)
	}
	if misses != 1 {
		t.Fatalf("plan built on %d replicas, want exactly the owner", misses)
	}
}

// TestClusterStatusEndpoint exercises GET /v1/cluster on a live
// cluster and its 404 on a standalone server.
func TestClusterStatusEndpoint(t *testing.T) {
	reps := startCluster(t, 2, 0, 1)
	resp, err := http.Get(reps[1].url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.Replica != "r1" || len(st.Members) != 2 {
		t.Fatalf("cluster status: %d %+v", resp.StatusCode, st)
	}
	selfMarked := 0
	for _, m := range st.Members {
		if m.Self {
			selfMarked++
			if m.ID != "r1" {
				t.Fatalf("replica r1 marked %s as self", m.ID)
			}
		}
	}
	if selfMarked != 1 {
		t.Fatalf("%d members marked self", selfMarked)
	}

	standalone, err := server.New(server.Config{Registry: interp.StandardRegistry(2), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := standalone.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { standalone.Close() })
	resp2, err := http.Get("http://" + standalone.Addr() + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone /v1/cluster: %d, want 404", resp2.StatusCode)
	}
}

// TestUploadReplicatesToPeers: one upload to any replica lands the
// cloud on all of them, so sub-queries never need the 404 re-push path
// in the common case.
func TestUploadReplicatesToPeers(t *testing.T) {
	cloud, gj := isabelCloud(t)
	cj := wireCloudOf(cloud)
	reps := startCluster(t, 3, 0, 1<<30)

	code, body := post(t, reps[1].url+"/v1/clouds", cj)
	if code != http.StatusOK {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up server.UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	// Query by cloud_id through every replica with an internal-marked
	// request (forcing local execution): each must already have the
	// cloud resident.
	req := &server.ReconstructRequest{Method: "nearest", CloudID: up.CloudID, Grid: gj,
		Region: server.RegionJSON{Box: &[6]int{0, 0, 0, 2, 2, 2}}}
	b, _ := json.Marshal(req)
	for i, r := range reps {
		hr, err := http.NewRequest(http.MethodPost, r.url+"/v1/reconstruct", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(cluster.HeaderInternal, "shard")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d does not hold the replicated cloud (status %d)", i, resp.StatusCode)
		}
	}
}
